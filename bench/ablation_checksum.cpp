// Ablation (extension): cost of end-to-end data integrity.
//
// StreamOptions::checksumData adds a CRC-32 over each record's data
// section, computed node-parallel (each node checksums its own block;
// crc32Combine assembles the whole-section value). This measures the
// overhead on the host (real time, memory backend) — the honest price of
// the integrity check, since the 1995 platform models have no calibration
// for it.
#include <chrono>
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

double runOnce(int nprocs, std::int64_t segments, int particles,
               bool checksum, int reps, benchutil::MetricsDump& dump) {
  double best = 1e99;
  for (int rep = 0; rep < reps; ++rep) {
    pfs::Pfs fs{pfs::PfsConfig{}};
    rt::Machine machine(nprocs);
    // Observe the first rep only; the timed best-of reps run uninstrumented.
    if (rep == 0) dump.attach(machine);
    const auto t0 = std::chrono::steady_clock::now();
    machine.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, particles);
      ds::StreamOptions so;
      so.checksumData = checksum;
      {
        ds::OStream s(fs, &d, "ck", so);
        s << data;
        s.write();
      }
      coll::Collection<scf::Segment> back(&d);
      ds::IStream in(fs, &d, "ck");
      in.unsortedRead();
      in >> back;
    });
    const auto t1 = std::chrono::steady_clock::now();
    if (rep == 0) {
      dump.capture(strfmt("segments=%lld checksum=%s",
                          static_cast<long long>(segments),
                          checksum ? "on" : "off"));
    }
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_checksum",
               "host-time cost of the data-integrity CRC (write+read)");
  opts.add("nprocs", "4", "node count");
  opts.add("reps", "3", "repetitions (best-of)");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  const int reps = static_cast<int>(opts.getInt("reps"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  Table t("Ablation: data checksum overhead (host time, memory backend, "
          "output+input)");
  t.setHeader({"# of Segments", "no checksum", "CRC-32 + verify",
               "overhead"});
  for (std::int64_t n : {256ll, 1000ll, 4000ll}) {
    const double off = runOnce(nprocs, n, 100, false, reps, dump);
    const double on = runOnce(nprocs, n, 100, true, reps, dump);
    t.addRow({strfmt("%lld", static_cast<long long>(n)),
              strfmt("%.4f sec.", off), strfmt("%.4f sec.", on),
              strfmt("%+.1f%%", 100.0 * (on - off) / off)});
  }
  t.setFootnote(
      "corruption of any data byte is detected on read "
      "(tests/dstream/checksum_inspect_test.cpp); the memory backend makes "
      "this the worst case — against real disks or the modeled 1995 "
      "platforms the CRC cost vanishes next to the transfer time");
  t.print();
  dump.write();
  return 0;
}
