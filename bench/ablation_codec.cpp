// Ablation (extension): the pfs chunk codec (LZ compression + dedup).
//
// Two identical checkpoint-style epochs of compressible doubles are written
// through the d/stream path with the codec off ("none"), with LZ chunk
// framing ("lz"), and with LZ plus cross-epoch dedup (epoch1 names epoch0
// as its dedup base). Epoch1 is read back and verified element-exact in
// every mode. With obs enabled the run asserts the codec actually moved
// fewer bytes through the storage backend than it was handed
// (pfs.codec_stored_bytes < pfs.codec_raw_bytes), that dedup produced ref
// frames (pfs.codec_dedup_hits > 0), and that no chunk was damaged.
//
// The codec sits BELOW the perf model — modeled charges are per logical
// byte — so the virtual-time totals must be identical across all three
// modes; the run asserts that too (the "no sync-path regression" check).
// pfs.codec_seconds is wall clock even under TimeMode::Virtual, so it is
// zeroed out of the snapshots before --metrics-json capture: the perf gate
// compares timers one-sided and must never see host-speed noise.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/util/error.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

constexpr int kNodes = 4;

/// Checkpoint-like fill: long runs of small repeated values, so the LZ
/// stage has real redundancy to find (doubles of small ints are mostly
/// zero bytes). Identical for both epochs, so dedup sees repeated chunks.
double fillValue(std::int64_t g) { return static_cast<double>(g % 17); }

struct RunResult {
  double modelSeconds = 0.0;  ///< merged virtual d/stream write+read time
  std::uint64_t logicalBytes = 0;
  std::uint64_t rawBytes = 0;
  std::uint64_t storedBytes = 0;
  std::uint64_t dedupHits = 0;
  std::uint64_t damagedChunks = 0;
  std::int64_t mismatches = 0;
  std::string metricsJson;  // empty when obs is compiled out
};

/// Write two identical epochs with per-epoch stream options from `optFor`,
/// read epoch1 back, verify element-exact. Fresh Pfs per call.
RunResult runMode(std::int64_t elements,
                  const std::function<ds::StreamOptions(int epoch)>& optFor) {
  RunResult res;
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  rt::Machine m(kNodes, rt::CommModel{100e-6, 1.25e-8});
#if PCXX_OBS_ENABLED
  obs::MetricsRegistry reg(kNodes);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.timeMode = obs::Observer::TimeMode::Virtual;
  m.attachObserver(observer);
#endif
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    data.forEachLocal([](double& v, std::int64_t g) { v = fillValue(g); });
    for (int epoch = 0; epoch < 2; ++epoch) {
      ds::OStream s(fs, &d, strfmt("epoch%d", epoch), optFor(epoch));
      s << data;
      s.write();
    }
    coll::Collection<double> back(&d);
    ds::IStream in(fs, &d, "epoch1");
    in.unsortedRead();
    in >> back;
    std::int64_t local = 0;
    back.forEachLocal([&](double& v, std::int64_t g) {
      if (v != fillValue(g)) ++local;
    });
    bad.fetch_add(local);
  });
#if PCXX_OBS_ENABLED
  m.detachObserver();
  auto snap = reg.snapshot();
  // Wall-clock timer in an otherwise virtual-time snapshot: zero it before
  // capture so the perf gate's one-sided timer compare stays deterministic.
  snap.merged.seconds[static_cast<size_t>(obs::Timer::PfsCodecSeconds)] = 0.0;
  for (auto& node : snap.perNode) {
    node.seconds[static_cast<size_t>(obs::Timer::PfsCodecSeconds)] = 0.0;
  }
  res.modelSeconds = snap.merged.timer(obs::Timer::DsWriteSeconds) +
                     snap.merged.timer(obs::Timer::DsReadSeconds);
  res.logicalBytes = snap.merged.counter(obs::Counter::PfsWriteBytes);
  res.rawBytes = snap.merged.counter(obs::Counter::PfsCodecRawBytes);
  res.storedBytes = snap.merged.counter(obs::Counter::PfsCodecStoredBytes);
  res.dedupHits = snap.merged.counter(obs::Counter::PfsCodecDedupHits);
  res.damagedChunks =
      snap.merged.counter(obs::Counter::PfsCodecDamagedChunks);
  res.metricsJson = obs::snapshotJson(snap);
#endif
  res.mismatches = bad.load();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // The codec env override would silently turn every mode into the same
  // configuration; this bench sets the codec per stream, explicitly.
#ifndef _WIN32
  unsetenv("PCXX_CODEC");
#endif
  Options opts("ablation_codec",
               "pfs chunk codec: none vs LZ vs LZ + cross-epoch dedup");
  opts.add("elements", "16384", "doubles per epoch");
  opts.add("chunk-kib", "16", "codec chunk size (KiB)");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t elements = opts.getInt("elements");
  const std::uint32_t chunkBytes =
      static_cast<std::uint32_t>(opts.getInt("chunk-kib")) * 1024;

  const auto modeOpts = [&](const std::string& codec, bool dedup) {
    return [codec, dedup, chunkBytes](int epoch) {
      ds::StreamOptions so;
      so.codec = codec;
      so.codecChunkBytes = chunkBytes;
      if (dedup && epoch == 1) so.codecDedupBase = "epoch0";
      return so;
    };
  };
  struct Mode {
    const char* label;
    RunResult res;
  };
  Mode modes[] = {
      {"codec=none", runMode(elements, modeOpts("none", false))},
      {"codec=lz", runMode(elements, modeOpts("lz", false))},
      {"codec=lz+dedup", runMode(elements, modeOpts("lz", true))},
  };

  Table t(strfmt("Ablation: pfs chunk codec (2 identical epochs of %lld "
                 "doubles on %d nodes BLOCK, %u KiB chunks, epoch1 "
                 "read back)",
                 static_cast<long long>(elements), kNodes,
                 chunkBytes / 1024));
  t.setHeader({"mode", "model time", "logical MB", "stored MB", "saved",
               "dedup hits"});
  bool ok = true;
  for (const Mode& mode : modes) {
    const RunResult& r = mode.res;
    if (r.mismatches != 0) {
      std::fprintf(stderr, "verification FAILED (%s): %lld mismatched "
                   "elements after read-back\n",
                   mode.label, static_cast<long long>(r.mismatches));
      ok = false;
    }
    const double logicalMb = static_cast<double>(r.logicalBytes) / 1e6;
    // The unframed mode stores exactly its logical bytes.
    const std::uint64_t stored =
        r.rawBytes == 0 ? r.logicalBytes : r.storedBytes;
    t.addRow({mode.label, strfmt("%.4f sec.", r.modelSeconds),
              strfmt("%.2f", logicalMb),
              strfmt("%.2f", static_cast<double>(stored) / 1e6),
              strfmt("%.1f%%",
                     r.logicalBytes == 0
                         ? 0.0
                         : 100.0 * (1.0 - static_cast<double>(stored) /
                                        static_cast<double>(r.logicalBytes))),
              strfmt("%llu", static_cast<unsigned long long>(r.dedupHits))});
  }

#if PCXX_OBS_ENABLED
  const RunResult& none = modes[0].res;
  const RunResult& lz = modes[1].res;
  const RunResult& dedup = modes[2].res;
  if (none.rawBytes != 0) {
    std::fprintf(stderr, "codec=none moved %llu bytes through the codec "
                 "stage — the unframed path must bypass it entirely\n",
                 static_cast<unsigned long long>(none.rawBytes));
    ok = false;
  }
  if (lz.rawBytes == 0 || lz.storedBytes >= lz.rawBytes) {
    std::fprintf(stderr, "LZ did not reduce backend traffic: raw=%llu "
                 "stored=%llu (compressible fill must compress)\n",
                 static_cast<unsigned long long>(lz.rawBytes),
                 static_cast<unsigned long long>(lz.storedBytes));
    ok = false;
  }
  if (dedup.dedupHits == 0 || dedup.storedBytes >= lz.storedBytes) {
    std::fprintf(stderr, "dedup ineffective: hits=%llu stored=%llu vs "
                 "lz-only stored=%llu (identical epochs must share "
                 "chunks)\n",
                 static_cast<unsigned long long>(dedup.dedupHits),
                 static_cast<unsigned long long>(dedup.storedBytes),
                 static_cast<unsigned long long>(lz.storedBytes));
    ok = false;
  }
  for (const Mode& mode : modes) {
    if (mode.res.damagedChunks != 0) {
      std::fprintf(stderr, "%s: %llu damaged chunk(s) on a clean run\n",
                   mode.label,
                   static_cast<unsigned long long>(mode.res.damagedChunks));
      ok = false;
    }
    // Modeled charges are per LOGICAL byte; the codec lives below the
    // model, so turning it on must not move virtual time at all.
    const double base = none.modelSeconds;
    if (std::abs(mode.res.modelSeconds - base) > 1e-9 * std::max(base, 1.0)) {
      std::fprintf(stderr, "%s: virtual time %.9f sec. differs from "
                   "codec=none %.9f sec. — the codec leaked into the "
                   "sync-path model\n",
                   mode.label, mode.res.modelSeconds, base);
      ok = false;
    }
  }
#endif

  t.setFootnote(
      "all modes verified element-exact on read-back; virtual time is "
      "identical by construction (the codec runs below the perf model), so "
      "the savings column is the whole story: bytes the storage backend "
      "never had to move");
  t.print();

  const std::string metricsPath = opts.get("metrics-json");
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open metrics output file: " + metricsPath);
    out << "{\"schema\": \"pcxx-bench-metrics-v1\", \"runs\": [\n";
    for (size_t i = 0; i < std::size(modes); ++i) {
      out << "{\"label\": \"" << modes[i].label
          << "\", \"metrics\": " << modes[i].res.metricsJson << "}"
          << (i + 1 < std::size(modes) ? "," : "") << "\n";
    }
    out << "]}\n";
    if (!out) {
      throw IoError("failed writing metrics output file: " + metricsPath);
    }
  }
  return ok ? 0 : 1;
}
