// Ablation: where should the distribution + size information go?
//
// Paper §4.1 step 1: "for collections having a small number of elements,
// the latency involved in this parallel write may be greater than the time
// that would be required to communicate the information to node zero" —
// so pC++/streams gathers the size table to node 0 for small collections
// and writes it in parallel for large ones. This ablation forces each
// strategy across element counts and shows the crossover.
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

double runOnce(int nprocs, std::int64_t elements,
               ds::StreamOptions::HeaderPolicy policy,
               benchutil::MetricsDump& dump, const std::string& label) {
  rt::Machine machine(nprocs, rt::CommModel{100e-6, 1.25e-8});
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  dump.attach(machine);

  // Small (int) elements: the size table is twice the data, so the header
  // strategy dominates the record cost — the regime §4.1 discusses.
  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Block);
    coll::Collection<int> data(&d);
    data.forEachLocal([](int& v, std::int64_t i) {
      v = static_cast<int>(i);
    });
    ds::StreamOptions so;
    so.headerPolicy = policy;
    ds::OStream s(fs, &d, "ablation_hdr", so);
    s << data;
    s.write();
  });
  dump.capture(label);
  return machine.maxVirtualTime();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_header_strategy",
               "gathered vs parallel size-table write (Paragon model)");
  opts.add("nprocs", "8", "node count");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  Table t("Ablation: output time, size table gathered to node 0 vs written "
          "in parallel (Paragon model, " +
          std::to_string(nprocs) + " nodes)");
  t.setHeader({"# of elements", "Gathered", "Parallel", "winner"});
  for (std::int64_t n :
       {64ll, 1000ll, 16000ll, 128000ll, 512000ll, 2048000ll}) {
    const double gathered =
        runOnce(nprocs, n, ds::StreamOptions::HeaderPolicy::ForceGathered,
                dump, strfmt("elements=%lld gathered",
                             static_cast<long long>(n)));
    const double parallel =
        runOnce(nprocs, n, ds::StreamOptions::HeaderPolicy::ForceParallel,
                dump, strfmt("elements=%lld parallel",
                             static_cast<long long>(n)));
    t.addRow({strfmt("%lld", static_cast<long long>(n)),
              strfmt("%.3f sec.", gathered), strfmt("%.3f sec.", parallel),
              gathered <= parallel ? "gathered" : "parallel"});
  }
  t.setFootnote(
      "pC++/streams' Auto policy picks gathered below the threshold and "
      "parallel above it (StreamOptions::parallelHeaderThreshold)");
  t.print();
  dump.write();
  return 0;
}
