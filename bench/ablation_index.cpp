// Ablation: the index footer (pcxx::dsindex) against chain replay
// (StreamOptions::dsindexUseFooter = false).
//
// A file of R records is written on 4 nodes (BLOCK, doubles), then record
// R-1 plus a fixed mid-chain record are fetched repeatedly through both
// access paths. Replay pays one header read per skipped record, so its cost
// grows linearly in R while the indexed path stays flat — the sweep over
// record counts makes the asymptote visible in one table. Both paths are
// verified element-exact against the deterministic fill (equality with the
// ground truth on every element is byte-identity between the paths; exit 1
// otherwise), and with obs enabled the run asserts the indexed path
// actually used the footer (dsindex.hits > 0, exit 1 otherwise).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/util/error.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

constexpr int kWriters = 4;

/// Deterministic fill for record r: element g holds g + r * 10000.
double expectedValue(std::int64_t g, int r) {
  return static_cast<double>(g) + static_cast<double>(r) * 10000.0;
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t indexHits = 0;
  std::uint64_t fallbacks = 0;
  std::int64_t mismatches = 0;
  std::string metricsJson;  // empty when obs is compiled out
};

/// Fetch records {records-1, records/2} `repeats` times on `q` nodes,
/// verifying the first pass element-exact; wall-clock covers all passes.
RunResult runSeek(pfs::Pfs& fs, const std::string& file, int q,
                  std::int64_t elements, int records, int repeats,
                  ds::StreamOptions so) {
  RunResult res;
  fs.model().reset();
  rt::Machine m(q, rt::CommModel{100e-6, 1.25e-8});
#if PCXX_OBS_ENABLED
  obs::MetricsRegistry reg(q);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
#endif
  const std::uint32_t targets[] = {static_cast<std::uint32_t>(records - 1),
                                   static_cast<std::uint32_t>(records / 2)};
  std::atomic<std::int64_t> bad{0};
  const auto t0 = std::chrono::steady_clock::now();
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    for (int rep = 0; rep < repeats; ++rep) {
      ds::IStream s(fs, &d, file, so);
      for (std::uint32_t k : targets) {
        s.readRecord(k);
        s >> back;
        if (rep == 0) {
          std::int64_t local = 0;
          back.forEachLocal([&](double& v, std::int64_t g) {
            if (v != expectedValue(g, static_cast<int>(k))) ++local;
          });
          bad.fetch_add(local);
        }
      }
    }
  });
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
#if PCXX_OBS_ENABLED
  m.detachObserver();
  const auto snap = reg.snapshot();
  res.indexHits = snap.merged.counter(obs::Counter::DsIndexHits);
  res.fallbacks = snap.merged.counter(obs::Counter::DsIndexFallbacks);
  res.metricsJson = obs::snapshotJson(snap);
#endif
  res.mismatches = bad.load();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_index",
               "footer-indexed record seeks vs chain replay");
  opts.add("elements", "2048", "collection size");
  opts.add("max-records", "64", "cap on the record-count sweep");
  opts.add("readers", "4", "nodes in each read pass");
  opts.add("repeats", "3", "seek passes per configuration");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t elements = opts.getInt("elements");
  const int maxRecords = static_cast<int>(opts.getInt("max-records"));
  const int readers = static_cast<int>(opts.getInt("readers"));
  const int repeats = static_cast<int>(opts.getInt("repeats"));

  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);

  const int sweep[] = {4, 16, 64};
  Table t(strfmt("Ablation: record seek via index footer vs chain replay "
                 "(%lld doubles, written on %d nodes BLOCK, %d passes of "
                 "2 seeks each on %d readers)",
                 static_cast<long long>(elements), kWriters, repeats,
                 readers));
  t.setHeader({"records", "indexed seek", "chain replay", "speedup",
               "index hits", "fallbacks"});
  std::vector<std::pair<std::string, std::string>> metricRuns;
  bool ok = true;
  for (int records : sweep) {
    if (records > maxRecords) continue;
    const std::string file = strfmt("ablation_index_r%d", records);
    {
      rt::Machine writer(kWriters, rt::CommModel{100e-6, 1.25e-8});
      writer.run([&](rt::Node&) {
        coll::Processors P;
        coll::Distribution d(elements, &P, coll::DistKind::Block);
        coll::Collection<double> data(&d);
        ds::OStream s(fs, &d, file);
        for (int r = 0; r < records; ++r) {
          data.forEachLocal([r](double& v, std::int64_t g) {
            v = expectedValue(g, r);
          });
          s << data;
          s.write();
        }
      });
    }

    ds::StreamOptions indexedOpts;
    const RunResult indexed = runSeek(fs, file, readers, elements, records,
                                      repeats, indexedOpts);
    ds::StreamOptions replayOpts;
    replayOpts.dsindexUseFooter = false;
    const RunResult replay = runSeek(fs, file, readers, elements, records,
                                     repeats, replayOpts);
    if (indexed.mismatches != 0 || replay.mismatches != 0) {
      std::fprintf(stderr,
                   "verification FAILED (%d records): indexed=%lld "
                   "replay=%lld mismatched values\n",
                   records, static_cast<long long>(indexed.mismatches),
                   static_cast<long long>(replay.mismatches));
      ok = false;
    }
#if PCXX_OBS_ENABLED
    if (indexed.indexHits == 0) {
      std::fprintf(stderr,
                   "index never hit (%d records): the footer should back "
                   "every seek on an indexed file\n",
                   records);
      ok = false;
    }
    if (!indexed.metricsJson.empty()) {
      metricRuns.emplace_back(strfmt("records=%d indexed", records),
                              indexed.metricsJson);
      metricRuns.emplace_back(strfmt("records=%d replay", records),
                              replay.metricsJson);
    }
#endif
    t.addRow({strfmt("%d", records),
              strfmt("%.3f sec.", indexed.seconds),
              strfmt("%.3f sec.", replay.seconds),
              strfmt("%.2fx", replay.seconds / indexed.seconds),
              strfmt("%llu",
                     static_cast<unsigned long long>(indexed.indexHits)),
              strfmt("%llu",
                     static_cast<unsigned long long>(replay.fallbacks))});
  }
  t.setFootnote("both paths verified element-exact against the "
                "deterministic fill, so their outputs are byte-identical; "
                "replay pays one header read per skipped record, the "
                "indexed path a constant number of I/Os per seek");
  t.print();

  const std::string metricsPath = opts.get("metrics-json");
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open metrics output file: " + metricsPath);
    out << "{\"schema\": \"pcxx-bench-metrics-v1\", \"runs\": [\n";
    for (size_t i = 0; i < metricRuns.size(); ++i) {
      out << "{\"label\": \"" << metricRuns[i].first
          << "\", \"metrics\": " << metricRuns[i].second << "}"
          << (i + 1 < metricRuns.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    if (!out) {
      throw IoError("failed writing metrics output file: " + metricsPath);
    }
  }
  return ok ? 0 : 1;
}
