// Ablation: interleaving (paper §3, §4.1).
//
// Writing two fields from two aligned collections with consecutive inserts
// and ONE write produces element-interleaved data in the file (what
// visualization tools want), at essentially the cost of a single record;
// the alternative — one write per field — pays the record machinery twice.
// This measures both and verifies the interleaved byte layout.
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

struct GridCell {
  int numberOfParticles = 0;
  double particleDensity = 0.0;
};

double runOnce(int nprocs, std::int64_t n, bool interleaved,
               benchutil::MetricsDump& dump) {
  rt::Machine machine(nprocs, rt::CommModel{100e-6, 1.25e-8});
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  dump.attach(machine);

  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<GridCell> g(&d);
    coll::Collection<GridCell> g2(&d);
    g.forEachLocal([](GridCell& c, std::int64_t i) {
      c.numberOfParticles = static_cast<int>(i);
    });
    g2.forEachLocal([](GridCell& c, std::int64_t i) {
      c.particleDensity = 0.5 * static_cast<double>(i);
    });

    ds::OStream s(fs, &d, "ablation_il");
    if (interleaved) {
      s << g.field(&GridCell::numberOfParticles);
      s << g2.field(&GridCell::particleDensity);
      s.write();
    } else {
      s << g.field(&GridCell::numberOfParticles);
      s.write();
      s << g2.field(&GridCell::particleDensity);
      s.write();
    }
  });
  dump.capture(strfmt("elements=%lld %s", static_cast<long long>(n),
                      interleaved ? "interleaved" : "two_records"));
  return machine.maxVirtualTime();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_interleave",
               "one interleaved record vs one record per field");
  opts.add("nprocs", "8", "node count");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  Table t("Ablation: two corresponding fields written contiguously "
          "(interleaved, 1 record) vs separately (2 records)");
  t.setHeader({"# of elements", "interleaved", "two records", "saving"});
  for (std::int64_t n : {256ll, 2000ll, 16000ll}) {
    const double one = runOnce(nprocs, n, true, dump);
    const double two = runOnce(nprocs, n, false, dump);
    t.addRow({strfmt("%lld", static_cast<long long>(n)),
              strfmt("%.3f sec.", one), strfmt("%.3f sec.", two),
              strfmt("%.1f%%", 100.0 * (two - one) / two)});
  }
  t.setFootnote("interleaving additionally places corresponding fields "
                "contiguously in the file, the layout visualization tools "
                "require (verified by tests/dstream/interleave_test)");
  t.print();
  dump.write();
  return 0;
}
