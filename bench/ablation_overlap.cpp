// Ablation (extension): overlapped I/O — write-behind flushing and
// read-ahead prefetch (pcxx::aio).
//
// The workload is Table 2's (Intel Paragon model, 8 processors, 1000
// segments of 100 particles), extended to a frame series with modeled
// compute between I/O operations — the situation overlap exists for. Each
// run writes `frames` records with per-frame compute, then reads them back
// with per-frame analysis compute, sweeping the write-behind queue depth
// against the read-ahead prefetch depth. Depth (0, 0) is the synchronous
// path, byte for byte; every other cell must produce the identical file
// (the pipeline only reorders WHEN bytes move, never WHERE) — the bench
// verifies this with a CRC over the finished file and fails loudly on any
// mismatch.
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/pfs/parallel_file.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/crc32.h"
#include "src/util/error.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

struct RunResult {
  double seconds = 0.0;        ///< modeled machine time (max over nodes)
  std::uint64_t fileBytes = 0; ///< finished file size (node 0)
  std::uint32_t fileCrc = 0;   ///< CRC-32 of the finished file (node 0)
};

RunResult runOnce(int nprocs, std::int64_t segments, int particles,
                  int frames, double computeSeconds, int queueDepth,
                  int prefetchDepth, benchutil::MetricsDump& dump) {
  rt::Machine machine(nprocs, rt::CommModel{100e-6, 1.25e-8});  // paragon
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Memory;
  cfg.perf = pfs::paramsByName("paragon", nprocs);
  pfs::Pfs fs(cfg);
  dump.attach(machine);

  RunResult r;
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> data(&d);
    scf::fillDeterministic(data, particles);

    ds::StreamOptions wo;
    wo.aioQueueDepth = queueDepth;
    {
      ds::OStream s(fs, &d, "overlap_frames", wo);
      for (int frame = 0; frame < frames; ++frame) {
        node.clock().advance(computeSeconds);  // modeled frame compute
        s << data;
        s.write();
      }
      s.close();  // drains the write-behind queue inside the measurement
    }

    coll::Collection<scf::Segment> back(&d);
    ds::StreamOptions ro;
    ro.aioPrefetchDepth = prefetchDepth;
    {
      ds::IStream in(fs, &d, "overlap_frames", ro);
      for (int frame = 0; frame < frames; ++frame) {
        in.unsortedRead();
        in >> back;
        node.clock().advance(computeSeconds);  // modeled frame analysis
      }
      in.close();
    }

    auto f = fs.open(node, "overlap_frames", pfs::OpenMode::Read);
    if (node.id() == 0) {
      ByteBuffer all(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, all) != all.size()) {
        throw IoError("ablation_overlap: short read of the finished file");
      }
      r.fileBytes = all.size();
      r.fileCrc = crc32(all);
    }
    node.barrier();
  });
  dump.capture(strfmt("queue=%d prefetch=%d", queueDepth, prefetchDepth));
  r.seconds = machine.maxVirtualTime();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_overlap",
               "overlapped I/O: write-behind queue depth x read-ahead "
               "prefetch depth on the Table 2 workload with per-frame "
               "compute (modeled Paragon time)");
  opts.add("nprocs", "8", "node count");
  opts.add("segments", "1000", "segments per frame (Table 2 column)");
  opts.add("particles", "100", "particles per segment");
  opts.add("frames", "4", "records written/read back-to-back");
  opts.add("compute", "1.0", "modeled compute seconds between frames");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  const auto segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  const int frames = static_cast<int>(opts.getInt("frames"));
  const double compute = opts.getDouble("compute");
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  const int depths[] = {0, 1, 2, 4};
  Table t(strfmt("Ablation: overlapped I/O, %d frames x %lld segments, "
                 "paragon model (%d processors)",
                 frames, static_cast<long long>(segments), nprocs));
  t.setHeader({"write-behind \\ read-ahead", "prefetch 0", "prefetch 1",
               "prefetch 2", "prefetch 4"});

  RunResult baseline;  // queue 0 x prefetch 0: today's synchronous path
  double bestOverlapped = 1e99;
  for (const int q : depths) {
    std::vector<std::string> row{strfmt("queue %d", q)};
    for (const int p : depths) {
      const RunResult r = runOnce(nprocs, segments, particles, frames,
                                  compute, q, p, dump);
      if (q == 0 && p == 0) {
        baseline = r;
      } else {
        // Overlap must never change the bytes on disk, only when they move.
        if (r.fileBytes != baseline.fileBytes ||
            r.fileCrc != baseline.fileCrc) {
          throw InternalError(strfmt(
              "async file diverged from the synchronous one at queue=%d "
              "prefetch=%d (%llu bytes crc %08x vs %llu bytes crc %08x)",
              q, p, static_cast<unsigned long long>(r.fileBytes), r.fileCrc,
              static_cast<unsigned long long>(baseline.fileBytes),
              baseline.fileCrc));
        }
        if (q >= 2) bestOverlapped = std::min(bestOverlapped, r.seconds);
      }
      row.push_back(strfmt("%.3f sec.", r.seconds));
    }
    t.addRow(std::move(row));
  }
  t.setFootnote(strfmt(
      "all 16 runs produced byte-identical files (%llu bytes, crc %08x); "
      "synchronous baseline %.3f sec., best overlapped (queue >= 2) %.3f "
      "sec. (%+.1f%%)",
      static_cast<unsigned long long>(baseline.fileBytes), baseline.fileCrc,
      baseline.seconds, bestOverlapped,
      100.0 * (bestOverlapped - baseline.seconds) / baseline.seconds));
  t.print();
  dump.write();
  if (bestOverlapped >= baseline.seconds) {
    std::fprintf(stderr,
                 "ablation_overlap: overlapped runs (queue >= 2) were not "
                 "faster than the synchronous baseline\n");
    return 1;
  }
  return 0;
}
