// Ablation: read() vs unsortedRead() (paper §3).
//
// "When unsortedRead is used, no guarantee is made about the order in which
// the element data is extracted ... so the interprocessor communication can
// be avoided, resulting in higher performance."
//
// The communication read() pays appears when the reading distribution
// differs from the writing one: here each file is written CYCLIC and read
// back into a BLOCK-distributed collection, so read() must sort and send
// every element to its owner while unsortedRead() hands out file order.
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

double runOnce(int nprocs, std::int64_t segments, int particles, bool sorted,
               benchutil::MetricsDump& dump) {
  rt::Machine machine(nprocs, rt::CommModel{100e-6, 1.25e-8});
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);

  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution dw(segments, &P, coll::DistKind::Cyclic);
    coll::Collection<scf::Segment> data(&dw);
    scf::fillDeterministic(data, particles);
    ds::OStream s(fs, &dw, "ablation_rs");
    s << data;
    s.write();
  });
  fs.model().reset();

  double elapsed = 0.0;
  dump.attach(machine);
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution dr(segments, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> back(&dr);
    const double t0 = node.clock().now();
    ds::IStream s(fs, &dr, "ablation_rs");
    if (sorted) {
      s.read();
    } else {
      s.unsortedRead();
    }
    s >> back;
    const double t1 = node.allreduceMax(node.clock().now());
    if (node.id() == 0) elapsed = t1 - t0;
  });
  dump.capture(strfmt("segments=%lld %s", static_cast<long long>(segments),
                      sorted ? "read" : "unsortedRead"));
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_read_vs_unsorted",
               "read() vs unsortedRead() input cost, writer CYCLIC -> "
               "reader BLOCK, Paragon model, 8 nodes");
  opts.add("nprocs", "8", "node count");
  opts.add("particles", "100", "particles per segment");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  const int particles = static_cast<int>(opts.getInt("particles"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  Table t("Ablation: input time, read() (sorts + sends to owners) vs "
          "unsortedRead() (no communication)");
  t.setHeader({"# of Segments", "read()", "unsortedRead()",
               "communication avoided"});
  for (std::int64_t n : {256ll, 1000ll, 4000ll}) {
    const double sorted = runOnce(nprocs, n, particles, true, dump);
    const double unsorted = runOnce(nprocs, n, particles, false, dump);
    t.addRow({strfmt("%lld", static_cast<long long>(n)),
              strfmt("%.3f sec.", sorted), strfmt("%.3f sec.", unsorted),
              strfmt("%.3f sec. (%.1f%%)", sorted - unsorted,
                     100.0 * (sorted - unsorted) / sorted)});
  }
  t.setFootnote(
      "writer distribution CYCLIC, reader distribution BLOCK, so read() must "
      "move essentially every element between nodes; the avoided cost is the "
      "all-to-all of the full data volume over the modeled interconnect "
      "(~80 MB/s mesh), a few percent of an I/O-bound input. With identical "
      "layouts the two primitives cost the same.");
  t.print();
  dump.write();
  return 0;
}
