// Ablation: the plan-based redistribution engine (cached plans, flat-buffer
// counting-sort routing, chunked exchange) against the legacy per-element
// std::map path it replaced (StreamOptions::redistUsePlan = false).
//
// A file written on 6 nodes (BLOCK, several records of small variable-size
// elements) is read back repeatedly under mismatched layouts. Both paths are
// verified element-exact against the deterministic fill — equality with the
// ground truth on every element is byte-identity between the paths — and the
// wall-clock per configuration is reported side by side. With obs enabled
// the run also asserts the plan cache actually hit on the repeated
// same-layout reads (exit 1 otherwise), which is the property the engine's
// amortization argument rests on.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/redist/redist.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/error.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

constexpr int kWriters = 6;
constexpr const char* kFile = "ablation_redist";

struct RunResult {
  double seconds = 0.0;
  std::uint64_t planHits = 0;
  std::uint64_t planMisses = 0;
  std::int64_t mismatches = 0;
  std::string metricsJson;  // empty when obs is compiled out
};

/// Read the file back `repeats` times on `q` nodes under `kind`, verifying
/// the first pass element-exact; wall-clock covers all passes.
RunResult runRead(pfs::Pfs& fs, int q, coll::DistKind kind,
                  std::int64_t segments, int particles, int records,
                  int repeats, ds::StreamOptions so) {
  RunResult res;
  fs.model().reset();
  rt::Machine m(q, rt::CommModel{100e-6, 1.25e-8});
#if PCXX_OBS_ENABLED
  obs::MetricsRegistry reg(q);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
#endif
  std::atomic<std::int64_t> bad{0};
  const auto t0 = std::chrono::steady_clock::now();
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(segments, &P, kind);
    coll::Collection<scf::Segment> back(&d);
    for (int rep = 0; rep < repeats; ++rep) {
      ds::IStream s(fs, &d, kFile, so);
      for (int r = 0; r < records; ++r) {
        s.read();
        s >> back;
        if (rep == 0) {
          bad.fetch_add(scf::verifyDeterministic(back, particles));
        }
      }
    }
  });
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
#if PCXX_OBS_ENABLED
  m.detachObserver();
  const auto snap = reg.snapshot();
  res.planHits = snap.merged.counter(obs::Counter::RedistPlanHits);
  res.planMisses = snap.merged.counter(obs::Counter::RedistPlanMisses);
  res.metricsJson = obs::snapshotJson(snap);
#endif
  res.mismatches = bad.load();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_redist",
               "plan-based redistribution vs the legacy map-based exchange");
  opts.add("segments", "4000", "collection size");
  opts.add("particles", "8", "particles per segment (small elements)");
  opts.add("records", "3", "records in the file");
  opts.add("repeats", "4", "read passes per configuration");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  const int records = static_cast<int>(opts.getInt("records"));
  const int repeats = static_cast<int>(opts.getInt("repeats"));

  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);

  // Write once on 6 nodes, BLOCK: every reader below forces an exchange.
  {
    rt::Machine writer(kWriters, rt::CommModel{100e-6, 1.25e-8});
    writer.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, particles);
      ds::OStream s(fs, &d, kFile);
      for (int r = 0; r < records; ++r) {
        s << data;
        s.write();
      }
    });
  }
  redist::PlanCache::instance().clear();

  struct Config {
    int readers;
    coll::DistKind kind;
    std::uint64_t chunkBytes;
  };
  const Config configs[] = {
      {4, coll::DistKind::Cyclic, 1 << 20},
      {3, coll::DistKind::Block, 1 << 20},
      {4, coll::DistKind::Cyclic, 1 << 16},
      {4, coll::DistKind::Cyclic, 0},  // unchunked single round
  };

  Table t(strfmt("Ablation: redistribution of %d records x %lld segments "
                 "written on %d nodes (BLOCK), %d read passes each",
                 records, static_cast<long long>(segments), kWriters,
                 repeats));
  t.setHeader({"readers", "layout", "chunk budget", "plan engine",
               "legacy map", "speedup", "plan hits/misses"});
  std::vector<std::pair<std::string, std::string>> metricRuns;
  bool ok = true;
  for (const Config& c : configs) {
    ds::StreamOptions planOpts;
    planOpts.redistChunkBytes = c.chunkBytes;
    const RunResult plan = runRead(fs, c.readers, c.kind, segments, particles,
                                   records, repeats, planOpts);
    ds::StreamOptions legacyOpts;
    legacyOpts.redistUsePlan = false;
    const RunResult legacy = runRead(fs, c.readers, c.kind, segments,
                                     particles, records, repeats, legacyOpts);
    const char* kindName = c.kind == coll::DistKind::Block ? "BLOCK" : "CYCLIC";
    if (plan.mismatches != 0 || legacy.mismatches != 0) {
      std::fprintf(stderr,
                   "verification FAILED (%d readers, %s): plan=%lld "
                   "legacy=%lld mismatched values\n",
                   c.readers, kindName,
                   static_cast<long long>(plan.mismatches),
                   static_cast<long long>(legacy.mismatches));
      ok = false;
    }
#if PCXX_OBS_ENABLED
    // Pass 1 record 1 misses; every later record and pass must reuse the
    // plan (stream memo or process cache).
    if (plan.planHits == 0) {
      std::fprintf(stderr,
                   "plan cache never hit (%d readers, %s): the repeated "
                   "same-layout reads should amortize the plan build\n",
                   c.readers, kindName);
      ok = false;
    }
    if (!plan.metricsJson.empty()) {
      metricRuns.emplace_back(strfmt("readers=%d %s chunk=%llu plan",
                                     c.readers, kindName,
                                     static_cast<unsigned long long>(
                                         c.chunkBytes)),
                              plan.metricsJson);
      metricRuns.emplace_back(
          strfmt("readers=%d %s legacy", c.readers, kindName),
          legacy.metricsJson);
    }
#endif
    t.addRow({strfmt("%d", c.readers), kindName,
              c.chunkBytes == 0 ? std::string("unchunked")
                                : strfmt("%llu B", static_cast<unsigned long
                                                   long>(c.chunkBytes)),
              strfmt("%.3f sec.", plan.seconds),
              strfmt("%.3f sec.", legacy.seconds),
              strfmt("%.2fx", legacy.seconds / plan.seconds),
              strfmt("%llu/%llu",
                     static_cast<unsigned long long>(plan.planHits),
                     static_cast<unsigned long long>(plan.planMisses))});
  }
  t.setFootnote("both paths verified element-exact against the deterministic "
                "fill on every configuration, so their outputs are "
                "byte-identical; times are wall-clock over all read passes");
  t.print();

  const std::string metricsPath = opts.get("metrics-json");
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open metrics output file: " + metricsPath);
    out << "{\"schema\": \"pcxx-bench-metrics-v1\", \"runs\": [\n";
    for (size_t i = 0; i < metricRuns.size(); ++i) {
      out << "{\"label\": \"" << metricRuns[i].first
          << "\", \"metrics\": " << metricRuns[i].second << "}"
          << (i + 1 < metricRuns.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    if (!out) {
      throw IoError("failed writing metrics output file: " + metricsPath);
    }
  }
  return ok ? 0 : 1;
}
