// Ablation: cost of reading a checkpoint under a different node count.
//
// The paper's read() "does the paperwork": the file stores the writing
// distribution, so a record written on P nodes can be read on Q nodes —
// with a redistribution (sort + send to owners) when Q != P or the
// distribution changed. This measures read() input time for a file written
// on 8 nodes, read back on 2, 4, and 8 nodes (the 8-node case is the
// no-communication fast path).
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

int main(int argc, char** argv) {
  Options opts("ablation_redistribution",
               "read() cost vs reading node count (written on 8 nodes)");
  opts.add("segments", "1000", "collection size");
  opts.add("particles", "100", "particles per segment");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);

  // Write once on 8 nodes, BLOCK distribution.
  {
    rt::Machine writer(8, rt::CommModel{100e-6, 1.25e-8});
    writer.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, particles);
      ds::OStream s(fs, &d, "ablation_redist");
      s << data;
      s.write();
    });
  }

  Table t(strfmt("Ablation: input time for a record written on 8 nodes "
                 "(BLOCK, %lld segments), read back on fewer nodes",
                 static_cast<long long>(segments)));
  t.setHeader({"reading nodes", "read()", "unsortedRead()",
               "redistribution cost", "note"});
  for (int q : {2, 4, 8}) {
    double times[2] = {0.0, 0.0};
    for (int pass = 0; pass < 2; ++pass) {
      const bool sorted = pass == 0;
      fs.model().reset();
      rt::Machine reader(q, rt::CommModel{100e-6, 1.25e-8});
      dump.attach(reader);
      std::int64_t bad = -1;
      reader.run([&](rt::Node& node) {
        coll::Processors P;
        coll::Distribution d(segments, &P, coll::DistKind::Block);
        coll::Collection<scf::Segment> back(&d);
        ds::IStream s(fs, &d, "ablation_redist");
        if (sorted) {
          s.read();
        } else {
          s.unsortedRead();
        }
        s >> back;
        // Only the sorted read guarantees element order.
        const auto mism =
            sorted ? scf::verifyDeterministic(back, particles) : 0;
        const auto total =
            node.allreduceSumU64(static_cast<std::uint64_t>(mism));
        if (node.id() == 0) bad = static_cast<std::int64_t>(total);
      });
      if (bad != 0) {
        std::fprintf(stderr,
                     "verification FAILED on %d nodes (%lld values)\n", q,
                     static_cast<long long>(bad));
        return 1;
      }
      dump.capture(strfmt("readers=%d %s", q,
                          sorted ? "read" : "unsortedRead"));
      times[pass] = reader.maxVirtualTime();
    }
    // An 8->8 BLOCK read matches the writer layout: the library skips the
    // exchange entirely and read() == unsortedRead().
    t.addRow({strfmt("%d", q), strfmt("%.3f sec.", times[0]),
              strfmt("%.3f sec.", times[1]),
              strfmt("%.3f sec.", times[0] - times[1]),
              q == 8 ? "layouts match: fast path, no exchange"
                     : "node count changed: sort + alltoall"});
  }
  t.setFootnote("read() results verified bit-exact after every read; the "
                "absolute times also show the bulk-cache effect of reading "
                "the same 5+ MB file with fewer nodes");
  t.print();
  dump.write();
  return 0;
}
