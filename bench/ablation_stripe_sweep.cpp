// Ablation: parallel file system scaling (I/O node count).
//
// The paper's library leans on "parallel I/O primitives ... which transfer
// a contiguous block of data from each compute node to the file system
// simultaneously". This sweep scales the modeled file system from 1 to 8
// I/O nodes and shows how each method responds: bulk transfers scale with
// aggregate bandwidth, while unbuffered small requests stay latency-bound
// (they spread over more queues but each request still pays full latency).
#include <cstdio>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/scf/io_methods.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

using namespace pcxx;

namespace {

double runOnce(int nprocs, int nIoNodes, std::int64_t segments, int particles,
               scf::IoMethod& method, benchutil::MetricsDump& dump) {
  rt::Machine machine(nprocs, rt::CommModel{100e-6, 1.25e-8});
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  cfg.nIoNodes = nIoNodes;
  pfs::Pfs fs(cfg);
  dump.attach(machine);
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> data(&d);
    scf::fillDeterministic(data, particles);
    method.output(node, fs, data, "stripe_sweep");
    coll::Collection<scf::Segment> back(&d);
    method.input(node, fs, back, "stripe_sweep", particles);
  });
  dump.capture(strfmt("io_nodes=%d %s", nIoNodes, method.name().c_str()));
  return machine.maxVirtualTime();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_stripe_sweep",
               "output+input time vs I/O node count (Paragon model)");
  opts.add("segments", "2000", "collection size");
  opts.add("nprocs", "8", "compute node count");
  opts.add("metrics-json", "", "write per-run obs snapshots to this path");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int nprocs = static_cast<int>(opts.getInt("nprocs"));
  benchutil::MetricsDump dump(opts.get("metrics-json"));

  auto unbuffered = scf::makeUnbufferedIo();
  auto manual = scf::makeManualBufferingIo();
  auto streams = scf::makeStreamsIo();

  Table t(strfmt("Ablation: file system scaling, %lld segments, %d compute "
                 "nodes (Paragon model)",
                 static_cast<long long>(segments), nprocs));
  t.setHeader({"I/O nodes", "Unbuffered", "Manual Buffering", "pC++/streams"});
  for (int io : {1, 2, 4, 8}) {
    t.addRow({strfmt("%d", io),
              strfmt("%.2f sec.",
                     runOnce(nprocs, io, segments, 100, *unbuffered, dump)),
              strfmt("%.2f sec.",
                     runOnce(nprocs, io, segments, 100, *manual, dump)),
              strfmt("%.2f sec.",
                     runOnce(nprocs, io, segments, 100, *streams, dump))});
  }
  t.print();
  dump.write();
  return 0;
}
