// Shared --metrics-json support for the ablation/micro benches, which drive
// rt::Machine directly rather than through the SCF harness. One MetricsDump
// collects a labeled obs snapshot per machine run and writes them all as a
// single JSON document. With an empty path every call is a no-op, so benches
// thread one instance through unconditionally.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/obs.h"
#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace pcxx::benchutil {

class MetricsDump {
 public:
  explicit MetricsDump(std::string path) : path_(std::move(path)) {}
  bool enabled() const { return !path_.empty(); }

  /// Attach a fresh registry to `machine`; call before machine.run() and
  /// pair with capture() after the run completes.
  void attach(rt::Machine& machine) {
    if (!enabled()) return;
    registry_ = std::make_unique<obs::MetricsRegistry>(machine.nprocs());
    obs::Observer observer;
    observer.metrics = registry_.get();
    observer.timeMode = obs::Observer::TimeMode::Virtual;
    machine.attachObserver(observer);
  }

  /// Snapshot the registry from the last attach() under `label`.
  void capture(const std::string& label) {
    if (registry_ == nullptr) return;
    runs_.emplace_back(label, obs::snapshotJson(registry_->snapshot()));
    registry_.reset();
  }

  void write() const {
    if (!enabled()) return;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open metrics output file: " + path_);
    out << "{\"schema\": \"pcxx-bench-metrics-v1\", \"runs\": [\n";
    for (size_t i = 0; i < runs_.size(); ++i) {
      out << "{\"label\": \"" << runs_[i].first
          << "\", \"metrics\": " << runs_[i].second << "}"
          << (i + 1 < runs_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    if (!out) throw IoError("failed writing metrics output file: " + path_);
  }

 private:
  std::string path_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::vector<std::pair<std::string, std::string>> runs_;  // label -> JSON
};

}  // namespace pcxx::benchutil
