#!/usr/bin/env python3
"""Diff two pcxx-metrics-v1 JSON files phase-by-phase.

Usage:
    bench/compare_metrics.py baseline.json candidate.json [--threshold PCT]

Prints, for every (table, cell, method) present in both files, the change in
total time and in each I/O phase.  Rows whose relative change exceeds the
threshold (default 5%) are flagged with '!'.  Exit status is 1 when any row
is flagged, so the script can gate a CI perf check.

With --fail-on-regression PCT the script becomes a one-sided gate: only
*increases* count (a speedup never fails the build), and the exit status is
3 when any total or phase grew by more than PCT percent, 0 otherwise, 2 on
usage errors (bad arguments, unreadable files, or no comparable keys).
bench/perf_gate.py drives this mode against the checked-in baseline.

Counters are also diffed, informationally (never flagged): the JSON emits
only non-zero counters, and older reports predate some counters entirely
(e.g. the retry/fault set pfs.retries, pfs.give_ups, or the redistribution
engine's redist.plan_hits / redist.plan_misses), so a counter absent on
either side is read as 0 rather than an error.

Only the Python standard library is used.
"""

import argparse
import json
import sys

PHASES = ("insert_buffer_fill", "header", "redistribution",
          "pfs_read", "pfs_write", "other")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "pcxx-metrics-v1":
        raise SystemExit(f"{path}: not a pcxx-metrics-v1 file "
                         f"(schema={doc.get('schema')!r})")
    return doc


def index(doc):
    """Map (table title, segments, method) -> method record."""
    out = {}
    for table in doc.get("tables", []):
        for cell in table.get("cells", []):
            for method in cell.get("methods", []):
                key = (table.get("title", "?"), cell.get("segments", 0),
                       method.get("method", "?"))
                out[key] = method
    return out


def fmt_delta(base, cand):
    delta = cand - base
    if base != 0.0:
        return f"{delta:+.4g}s ({100.0 * delta / base:+.1f}%)"
    if delta == 0.0:
        return "unchanged"
    return f"{delta:+.4g}s (new)"


def rel_change(base, cand):
    if base == 0.0:
        return float("inf") if cand != 0.0 else 0.0
    return abs(cand - base) / base


def is_regression(base, cand, pct):
    """One-sided check: did `cand` grow past `base` by more than pct%?

    A phase absent from the baseline (base == 0) only counts when the
    candidate spends measurable time there — 1 microsecond of simulated
    time — so schema growth alone cannot fail the gate.
    """
    if base == 0.0:
        return cand > 1e-6
    return (cand - base) / base * 100.0 > pct


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="flag phases whose relative change exceeds this "
                         "percentage (default: 5)")
    ap.add_argument("--fail-on-regression", type=float, default=None,
                    metavar="PCT",
                    help="gate mode: exit 3 when any total or phase grew "
                         "by more than PCT percent (improvements never "
                         "fail); exit 0 otherwise")
    args = ap.parse_args()
    if args.fail_on_regression is not None and args.fail_on_regression < 0:
        ap.error("--fail-on-regression must be non-negative")

    base = index(load(args.baseline))
    cand = index(load(args.candidate))

    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if not common:
        print("no (table, cell, method) keys in common", file=sys.stderr)
        return 2

    flagged = 0
    regressions = []
    thresh = args.threshold / 100.0
    for key in common:
        title, segments, method = key
        b, c = base[key], cand[key]
        rows = [("total", b.get("total_seconds", 0.0),
                 c.get("total_seconds", 0.0))]
        bp = b.get("phases", {})
        cp = c.get("phases", {})
        for phase in PHASES:
            rows.append((phase, bp.get(phase, 0.0), cp.get(phase, 0.0)))

        header_printed = False
        for name, bv, cv in rows:
            if (args.fail_on_regression is not None and
                    is_regression(bv, cv, args.fail_on_regression)):
                regressions.append((key, name, bv, cv))
            mark = "!" if rel_change(bv, cv) > thresh else " "
            if mark == "!" or name == "total":
                if not header_printed:
                    print(f"{title} | segments={segments} | {method}")
                    header_printed = True
                print(f"  {mark} {name:<20} {bv:.6g}s -> {cv:.6g}s  "
                      f"{fmt_delta(bv, cv)}")
            if mark == "!":
                flagged += 1

        # Counters: informational only.  Union the keys — a counter missing
        # from one side (older schema, or zero-suppressed) just reads as 0.
        bc = b.get("counters", {}) or {}
        cc = c.get("counters", {}) or {}
        for cname in sorted(set(bc) | set(cc)):
            bv, cv = bc.get(cname, 0), cc.get(cname, 0)
            if bv == cv:
                continue
            if not header_printed:
                print(f"{title} | segments={segments} | {method}")
                header_printed = True
            print(f"    {cname:<20} {bv} -> {cv}  ({cv - bv:+d})")
        if header_printed:
            print()

    for key in only_base:
        print(f"only in baseline:  {key}")
    for key in only_cand:
        print(f"only in candidate: {key}")
    if flagged:
        print(f"{flagged} phase(s) changed by more than {args.threshold}%")
    if args.fail_on_regression is not None:
        if regressions:
            print(f"{len(regressions)} regression(s) beyond "
                  f"{args.fail_on_regression}%:")
            for (title, segments, method), name, bv, cv in regressions:
                print(f"  {title} | segments={segments} | {method}: "
                      f"{name} {bv:.6g}s -> {cv:.6g}s {fmt_delta(bv, cv)}")
            return 3
        return 0
    return 1 if flagged else 0


if __name__ == "__main__":
    sys.exit(main())
