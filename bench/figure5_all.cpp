// Reproduces Figure 5 (the four benchmark tables) plus the two trends the
// paper's caption calls out:
//   1. the library's overhead decreases as the I/O size increases
//      ("% of Manual Buf." rises toward 100%), and
//   2. buffered I/O (manual or pC++/streams) outperforms unbuffered I/O.
#include <cstdio>
#include <string>
#include <vector>

#include "src/scf/harness.h"
#include "src/scf/metrics_json.h"
#include "src/util/options.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  pcxx::Options opts("figure5_all", "Paper Figure 5 reproduction (Tables 1-4)");
  opts.addFlag("real", "measure wall-clock on the host instead of the model");
  opts.add("metrics-json", "",
           "write one combined pcxx-metrics-v1 JSON covering all four "
           "tables to this path");
  opts.add("trace-json", "",
           "base path for Chrome trace_event JSONs; one file per table is "
           "written as <base>.tableN.json");
  if (!opts.parse(argc, argv)) return 0;
  const bool real = opts.getFlag("real");
  const std::string metricsPath = opts.get("metrics-json");
  const std::string traceBase = opts.get("trace-json");

  const pcxx::scf::BenchConfig configs[4] = {
      pcxx::scf::table1Paragon4(), pcxx::scf::table2Paragon8(),
      pcxx::scf::table3SgiUni(), pcxx::scf::table4Sgi8()};

  pcxx::Table trend("Figure 5 trends: pC++/streams overhead vs I/O size");
  trend.setHeader({"Table", "smallest size", "largest size",
                   "buffered beats unbuffered at every size?"});

  std::vector<pcxx::scf::BenchTableResult> results;
  for (int i = 0; i < 4; ++i) {
    pcxx::scf::BenchConfig cfg = configs[i];
    if (real) cfg.platform = "none";
    cfg.collectMetrics = !metricsPath.empty();
    if (!traceBase.empty()) {
      cfg.traceJsonPath = pcxx::strfmt("%s.table%d.json",
                                       traceBase.c_str(), i + 1);
    }
    const auto result = pcxx::scf::runBenchTable(cfg);
    pcxx::scf::printWithPaperComparison(i + 1, result);
    std::puts("");

    bool bufferedWins = true;
    for (const auto& cell : result.cells) {
      if (cell.streams >= cell.unbuffered || cell.manual >= cell.unbuffered) {
        bufferedWins = false;
      }
    }
    trend.addRow({pcxx::strfmt("Table %d", i + 1),
                  pcxx::strfmt("%.1f%% of manual",
                               result.cells.front().pctOfManual()),
                  pcxx::strfmt("%.1f%% of manual",
                               result.cells.back().pctOfManual()),
                  bufferedWins ? "yes" : "NO"});
    results.push_back(result);
  }
  trend.print();
  if (!metricsPath.empty()) {
    pcxx::scf::writeMetricsJson(metricsPath, results);
    std::printf("wrote metrics: %s\n", metricsPath.c_str());
  }
  return 0;
}
