// Micro-benchmarks (google-benchmark) for the substrate layers: runtime
// collectives, byte codecs, checksums, and the d/stream insert/extract path
// (real host time — these measure this implementation, not the 1995
// platforms).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench/bench_obs.h"
#include "src/collection/collection.h"
#include "src/dstream/dstream.h"
#include "src/scf/io_methods.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"

using namespace pcxx;

namespace {

void BM_Crc32(benchmark::State& state) {
  ByteBuffer data(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto& b : data) b = static_cast<Byte>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_ByteCodecU64(benchmark::State& state) {
  ByteBuffer buf;
  buf.reserve(8 * 1024);
  for (auto _ : state) {
    buf.clear();
    ByteWriter w(buf);
    for (std::uint64_t i = 0; i < 1024; ++i) w.u64(i * 0x9E3779B97F4A7C15ull);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 * 1024);
}
BENCHMARK(BM_ByteCodecU64);

void BM_Barrier(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  rt::Machine machine(nprocs);
  for (auto _ : state) {
    machine.run([](rt::Node& node) {
      for (int i = 0; i < 100; ++i) node.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_Alltoallv(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  rt::Machine machine(nprocs);
  for (auto _ : state) {
    machine.run([&](rt::Node& node) {
      std::vector<ByteBuffer> send(static_cast<size_t>(nprocs),
                                   ByteBuffer(1024));
      for (int i = 0; i < 20; ++i) {
        benchmark::DoNotOptimize(node.alltoallv(send));
      }
    });
  }
}
BENCHMARK(BM_Alltoallv)->Arg(2)->Arg(8);

/// The full d/stream output+input path on the host (memory backend, no
/// timing model): measures the library's real CPU cost per element.
void BM_StreamRoundtrip(benchmark::State& state) {
  const std::int64_t segments = state.range(0);
  rt::Machine machine(4);
  for (auto _ : state) {
    pfs::Pfs fs{pfs::PfsConfig{}};
    machine.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, 100);
      ds::OStream out(fs, &d, "bench");
      out << data;
      out.write();
      coll::Collection<scf::Segment> back(&d);
      ds::IStream in(fs, &d, "bench");
      in.unsortedRead();
      in >> back;
    });
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * segments *
                          (4 + 7 * 8 * 100) * 2);
}
BENCHMARK(BM_StreamRoundtrip)->Arg(64)->Arg(512);

/// Buffered (one parallel op) vs unbuffered (one op per field) on the host:
/// the micro version of the paper's headline comparison.
void BM_UnbufferedVsBuffered(benchmark::State& state) {
  const bool buffered = state.range(0) != 0;
  const std::int64_t segments = 256;
  rt::Machine machine(4);
  for (auto _ : state) {
    pfs::Pfs fs{pfs::PfsConfig{}};
    machine.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, 100);
      auto method = buffered ? scf::makeManualBufferingIo()
                             : scf::makeUnbufferedIo();
      method->output(node, fs, data, "bench");
      coll::Collection<scf::Segment> back(&d);
      method->input(node, fs, back, "bench", 100);
    });
  }
}
BENCHMARK(BM_UnbufferedVsBuffered)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"buffered"});

/// --metrics-json support: google-benchmark owns argv, so the flag is
/// stripped before Initialize(). When given, one instrumented stream
/// round-trip (the BM_StreamRoundtrip workload) is run and its obs snapshot
/// dumped — enough for phase-level before/after diffs of the library path.
std::string extractMetricsPath(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      path = argv[i] + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

void dumpInstrumentedRoundtrip(const std::string& path) {
  benchutil::MetricsDump dump(path);
  rt::Machine machine(4);
  pfs::Pfs fs{pfs::PfsConfig{}};
  dump.attach(machine);
  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(512, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> data(&d);
    scf::fillDeterministic(data, 100);
    ds::OStream out(fs, &d, "bench");
    out << data;
    out.write();
    coll::Collection<scf::Segment> back(&d);
    ds::IStream in(fs, &d, "bench");
    in.unsortedRead();
    in >> back;
  });
  dump.capture("stream_roundtrip segments=512 nprocs=4");
  dump.write();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metricsPath = extractMetricsPath(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metricsPath.empty()) dumpInstrumentedRoundtrip(metricsPath);
  return 0;
}
