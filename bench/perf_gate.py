#!/usr/bin/env python3
"""CI perf-regression gate over the deterministic virtual-time benches.

Runs the table benches (figure5_all) plus the ablation_redist,
ablation_overlap, ablation_index, and ablation_codec sweeps, validates
the emitted trace artifacts (loadable
JSON containing flow events with no unterminated chains), and compares
the fresh metrics against the checked-in baseline (bench/BENCH_7.json):

    bench/perf_gate.py --build-dir build                 # gate
    bench/perf_gate.py --build-dir build --update        # refresh baseline
    bench/perf_gate.py --build-dir build --self-test     # gate the gate

The simulation is bit-reproducible, so the baseline is an exact artifact:
any growth beyond --fail-on-regression percent (default 5) in a bench
total or phase is a genuine model regression, not measurement noise.
Table metrics are gated through compare_metrics.py --fail-on-regression;
the ablation runs are gated in-process with the same one-sided rule over
each run's merged phase timers.

--self-test synthesizes a candidate with every table total and phase
inflated by 20% and asserts the gate rejects it (exit 3) while accepting
the unmodified metrics — run in CI so the gate itself cannot silently rot.

A human-readable summary is written to OUT_DIR/gate_report.txt alongside
the raw artifacts. Standard library only.

Exit status: 0 pass, 1 self-test/internal failure, 2 usage or artifact
errors, 3 regression detected.
"""

import argparse
import glob
import json
import os
import subprocess
import sys

GATE_EXIT_REGRESSION = 3

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
COMPARE = os.path.join(BENCH_DIR, "compare_metrics.py")

# ablation_redist CI-smoke shape (matches ci/run_ci.sh): small but
# exercises plan vs legacy and the chunked exchange.
ABLATION_REDIST_ARGS = ["--segments", "600", "--particles", "6",
                        "--records", "2", "--repeats", "2"]

# ablation_index CI-smoke shape (matches ci/run_ci.sh): exercises the
# indexed-seek and chain-replay paths over a short record-count sweep.
ABLATION_INDEX_ARGS = ["--elements", "256", "--max-records", "16",
                       "--repeats", "2"]

# ablation_codec CI-smoke shape: small enough to be quick, big enough
# that whole chunks repeat across the two epochs (dedup must hit). The
# bench zeroes its wall-clock pfs.codec_seconds timer before capture, so
# every timer the gate compares is deterministic virtual time.
ABLATION_CODEC_ARGS = ["--elements", "8192", "--chunk-kib", "8"]

# Methods whose per-phase attribution is scheduling-dependent: the
# perf model's smallOpsSerialize queue arbitrates concurrent small ops
# in real lock-acquisition order, so the element-at-a-time Unbuffered
# I/O method redistributes time between pfs_read/pfs_write/other from
# run to run (its totals stay reproducible to <0.01%). The gate keeps
# these methods' totals and drops their phases on both sides.
SCHEDULING_NOISY_METHODS = {"Unbuffered I/O"}


class GateError(Exception):
    """Artifact or usage problem (exit 2)."""


def run_bench(build_dir, out_dir, report):
    """Run the five benches; return paths of the metrics documents."""
    tables = os.path.join(out_dir, "figure5.metrics.json")
    trace_base = os.path.join(out_dir, "figure5.trace.json")
    redist = os.path.join(out_dir, "ablation_redist.metrics.json")
    overlap = os.path.join(out_dir, "ablation_overlap.metrics.json")
    index = os.path.join(out_dir, "ablation_index.metrics.json")
    codec = os.path.join(out_dir, "ablation_codec.metrics.json")
    jobs = [
        ([os.path.join(build_dir, "bench", "figure5_all"),
          "--metrics-json", tables, "--trace-json", trace_base],
         "figure5_all"),
        ([os.path.join(build_dir, "bench", "ablation_redist"),
          *ABLATION_REDIST_ARGS, "--metrics-json", redist],
         "ablation_redist"),
        ([os.path.join(build_dir, "bench", "ablation_overlap"),
          "--metrics-json", overlap],
         "ablation_overlap"),
        ([os.path.join(build_dir, "bench", "ablation_index"),
          *ABLATION_INDEX_ARGS, "--metrics-json", index],
         "ablation_index"),
        ([os.path.join(build_dir, "bench", "ablation_codec"),
          *ABLATION_CODEC_ARGS, "--metrics-json", codec],
         "ablation_codec"),
    ]
    for cmd, name in jobs:
        if not os.path.exists(cmd[0]):
            raise GateError(f"bench binary not found: {cmd[0]} "
                            f"(build the tree first)")
        log = os.path.join(out_dir, f"{name}.log")
        with open(log, "w", encoding="utf-8") as f:
            proc = subprocess.run(cmd, stdout=f, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            raise GateError(f"{name} exited {proc.returncode}, see {log}")
        report.append(f"ran {name}: OK")
    return {"tables": tables, "ablation_redist": redist,
            "ablation_overlap": overlap, "ablation_index": index,
            "ablation_codec": codec, "trace_base": trace_base}


def validate_traces(trace_base, report):
    """Every emitted trace must load and carry terminated flow chains."""
    paths = sorted(glob.glob(trace_base + ".table*.json"))
    if not paths:
        raise GateError(f"no trace artifacts matching {trace_base}.table*")
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                raise GateError(f"{path}: invalid JSON: {e}") from e
        events = doc.get("traceEvents")
        if not isinstance(events, list) or not events:
            raise GateError(f"{path}: no traceEvents")
        starts = {e.get("id") for e in events if e.get("ph") == "s"}
        ends = {e.get("id") for e in events if e.get("ph") == "f"}
        if not starts:
            raise GateError(f"{path}: no flow events — causal tracing "
                            f"is broken")
        unterminated = starts - ends
        if unterminated:
            raise GateError(f"{path}: {len(unterminated)} flow chain(s) "
                            f"without a terminator")
        report.append(f"trace {os.path.basename(path)}: "
                      f"{len(events)} events, {len(starts)} flow chains, "
                      f"all terminated")


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise GateError(f"{path}: {e}") from e


def strip_for_gate(doc, drop_per_node=False):
    """Deep-copy a pcxx-metrics-v1 doc shaped for stable comparison:
    phases of scheduling-noisy methods removed (totals kept), and
    optionally the per-node breakdowns (profiling data, not gate data)."""
    out = json.loads(json.dumps(doc))
    for table in out.get("tables", []):
        for cell in table.get("cells", []):
            for method in cell.get("methods", []):
                if method.get("method") in SCHEDULING_NOISY_METHODS:
                    method["phases"] = {}
                if drop_per_node:
                    method.pop("per_node", None)
    return out


def compare_tables(baseline_tables, candidate_path, pct, out_dir, report):
    """Gate the figure5 metrics through compare_metrics.py; return exit."""
    base_path = os.path.join(out_dir, "baseline.tables.json")
    cand_path = os.path.join(out_dir, "candidate.tables.json")
    with open(base_path, "w", encoding="utf-8") as f:
        json.dump(strip_for_gate(baseline_tables), f)
    with open(cand_path, "w", encoding="utf-8") as f:
        json.dump(strip_for_gate(load_json(candidate_path)), f)
    proc = subprocess.run(
        [sys.executable, COMPARE, base_path, cand_path,
         "--fail-on-regression", str(pct)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    log = os.path.join(out_dir, "compare_tables.log")
    with open(log, "w", encoding="utf-8") as f:
        f.write(proc.stdout)
    if proc.returncode == 0:
        report.append(f"tables: no regression beyond {pct}%")
    elif proc.returncode == GATE_EXIT_REGRESSION:
        report.append(f"tables: REGRESSION (see {log})")
        report.append(proc.stdout.rstrip())
    else:
        raise GateError(f"compare_metrics.py exited {proc.returncode}: "
                        f"{proc.stdout.strip()}")
    return proc.returncode


def compare_ablation(name, baseline_doc, candidate_doc, pct, report):
    """One-sided check over each run's merged phase timers. Returns the
    list of regression strings (empty = pass)."""
    def runs_of(doc):
        return {r.get("label"): r.get("metrics", {}).get("merged", {})
                                  .get("seconds", {})
                for r in doc.get("runs", [])}

    base_runs = runs_of(baseline_doc)
    cand_runs = runs_of(candidate_doc)
    common = set(base_runs) & set(cand_runs)
    if not common:
        raise GateError(f"{name}: baseline and candidate share no run "
                        f"labels — refresh the baseline with --update")
    for gone in sorted(set(base_runs) - set(cand_runs)):
        report.append(f"{name}: run dropped since baseline: {gone}")
    for new in sorted(set(cand_runs) - set(base_runs)):
        report.append(f"{name}: run not in baseline (ignored): {new}")

    regressions = []
    for label in sorted(common):
        base_s, cand_s = base_runs[label], cand_runs[label]
        for key in sorted(set(base_s) | set(cand_s)):
            bv = float(base_s.get(key, 0.0))
            cv = float(cand_s.get(key, 0.0))
            if bv == 0.0:
                grown = cv > 1e-6
            else:
                grown = (cv - bv) / bv * 100.0 > pct
            if grown:
                regressions.append(
                    f"{name} | {label} | {key}: {bv:.6g}s -> {cv:.6g}s")
    if regressions:
        report.append(f"{name}: REGRESSION in {len(regressions)} timer(s)")
        report.extend("  " + r for r in regressions)
    else:
        report.append(f"{name}: no regression beyond {pct}%")
    return regressions


def inflate_tables(doc, factor):
    """Deep-copy a pcxx-metrics-v1 doc with all times scaled by factor."""
    out = json.loads(json.dumps(doc))
    for table in out.get("tables", []):
        for cell in table.get("cells", []):
            for method in cell.get("methods", []):
                method["total_seconds"] = \
                    method.get("total_seconds", 0.0) * factor
                phases = method.get("phases", {})
                for k in phases:
                    phases[k] = phases[k] * factor
    return out


def self_test(fresh_tables_path, pct, out_dir, report):
    """The gate must reject a 20% synthetic regression and accept the
    unmodified metrics. Returns True on success."""
    fresh = load_json(fresh_tables_path)
    inflated_path = os.path.join(out_dir, "selftest.inflated.json")
    with open(inflated_path, "w", encoding="utf-8") as f:
        json.dump(inflate_tables(fresh, 1.2), f)

    def run(base, cand):
        return subprocess.run(
            [sys.executable, COMPARE, base, cand,
             "--fail-on-regression", str(pct)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL).returncode

    ok = True
    rc = run(fresh_tables_path, inflated_path)
    if rc != GATE_EXIT_REGRESSION:
        report.append(f"self-test: FAILED — synthetic +20% regression "
                      f"exited {rc}, expected {GATE_EXIT_REGRESSION}")
        ok = False
    rc = run(fresh_tables_path, fresh_tables_path)
    if rc != 0:
        report.append(f"self-test: FAILED — identical metrics exited {rc}, "
                      f"expected 0")
        ok = False
    if ok:
        report.append("self-test: gate rejects +20% and accepts identity")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree with the bench binaries")
    ap.add_argument("--baseline",
                    default=os.path.join(BENCH_DIR, "BENCH_7.json"),
                    help="checked-in baseline document")
    ap.add_argument("--out-dir", default=None,
                    help="artifact directory (default: BUILD_DIR/perf)")
    ap.add_argument("--fail-on-regression", type=float, default=5.0,
                    metavar="PCT",
                    help="allowed growth per total/phase (default: 5)")
    ap.add_argument("--update", action="store_true",
                    help="write the baseline from this run instead of "
                         "comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="also verify the gate catches a synthetic +20% "
                         "regression")
    args = ap.parse_args()

    out_dir = args.out_dir or os.path.join(args.build_dir, "perf")
    os.makedirs(out_dir, exist_ok=True)
    report = []
    status = 0
    try:
        paths = run_bench(args.build_dir, out_dir, report)
        validate_traces(paths["trace_base"], report)

        if args.self_test:
            if not self_test(paths["tables"], args.fail_on_regression,
                             out_dir, report):
                status = max(status, 1)

        if args.update:
            # Per-node breakdowns are profiling data (pcxx-prof reads them
            # from the fresh artifacts); the checked-in baseline keeps only
            # what the gate compares, so it stays reviewably small.
            def slim_ablation(doc):
                out = json.loads(json.dumps(doc))
                for run in out.get("runs", []):
                    run.get("metrics", {}).pop("per_node", None)
                return out

            baseline = {
                "schema": "pcxx-bench-baseline-v1",
                "tables": strip_for_gate(load_json(paths["tables"]),
                                         drop_per_node=True),
                "ablations": {
                    "ablation_redist":
                        slim_ablation(load_json(paths["ablation_redist"])),
                    "ablation_overlap":
                        slim_ablation(load_json(paths["ablation_overlap"])),
                    "ablation_index":
                        slim_ablation(load_json(paths["ablation_index"])),
                    "ablation_codec":
                        slim_ablation(load_json(paths["ablation_codec"])),
                },
            }
            with open(args.baseline, "w", encoding="utf-8") as f:
                json.dump(baseline, f, indent=1, sort_keys=True)
                f.write("\n")
            report.append(f"baseline updated: {args.baseline}")
        else:
            baseline = load_json(args.baseline)
            if baseline.get("schema") != "pcxx-bench-baseline-v1":
                raise GateError(f"{args.baseline}: not a "
                                f"pcxx-bench-baseline-v1 document")
            rc = compare_tables(baseline["tables"], paths["tables"],
                                args.fail_on_regression, out_dir, report)
            if rc == GATE_EXIT_REGRESSION:
                status = max(status, GATE_EXIT_REGRESSION)
            for name in ("ablation_redist", "ablation_overlap",
                         "ablation_index", "ablation_codec"):
                base_doc = baseline.get("ablations", {}).get(name)
                if base_doc is None:
                    raise GateError(f"{args.baseline}: no {name} ablation "
                                    f"baseline — refresh with --update")
                if compare_ablation(name, base_doc, load_json(paths[name]),
                                    args.fail_on_regression, report):
                    status = max(status, GATE_EXIT_REGRESSION)
    except GateError as e:
        report.append(f"error: {e}")
        status = 2

    report_path = os.path.join(out_dir, "gate_report.txt")
    verdict = {0: "PASS", 1: "SELF-TEST FAILURE", 2: "ERROR",
               3: "REGRESSION"}[status]
    lines = [f"pcxx perf gate: {verdict}",
             f"threshold: {args.fail_on_regression}% one-sided", ""]
    lines += report
    text = "\n".join(lines) + "\n"
    with open(report_path, "w", encoding="utf-8") as f:
        f.write(text)
    print(text, end="")
    return status


if __name__ == "__main__":
    sys.exit(main())
