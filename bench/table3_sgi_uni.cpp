// Reproduces Table 3 of the paper (see src/scf/harness.h).
#include <cstdio>

#include "src/scf/harness.h"
#include "src/util/options.h"

int main(int argc, char** argv) {
  pcxx::Options opts("table3_sgi_uni", "Paper Table 3 reproduction");
  opts.addFlag("real", "measure wall-clock on the host instead of the model");
  opts.addFlag("sorted", "use read() for input instead of the paper's "
                         "unsortedRead()");
  if (!opts.parse(argc, argv)) return 0;

  pcxx::scf::BenchConfig cfg = pcxx::scf::table3SgiUni();
  if (opts.getFlag("real")) cfg.platform = "none";
  cfg.sortedRead = opts.getFlag("sorted");
  const auto result = pcxx::scf::runBenchTable(cfg);
  pcxx::scf::printWithPaperComparison(3, result);
  return 0;
}
