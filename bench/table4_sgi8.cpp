// Reproduces Table 4 of the paper (see src/scf/harness.h).
#include <cstdio>

#include "src/scf/harness.h"
#include "src/util/options.h"

int main(int argc, char** argv) {
  pcxx::Options opts("table4_sgi8", "Paper Table 4 reproduction");
  opts.addFlag("real", "measure wall-clock on the host instead of the model");
  opts.addFlag("sorted", "use read() for input instead of the paper's "
                         "unsortedRead()");
  if (!opts.parse(argc, argv)) return 0;

  pcxx::scf::BenchConfig cfg = pcxx::scf::table4Sgi8();
  if (opts.getFlag("real")) cfg.platform = "none";
  cfg.sortedRead = opts.getFlag("sorted");
  const auto result = pcxx::scf::runBenchTable(cfg);
  pcxx::scf::printWithPaperComparison(4, result);
  return 0;
}
