// Reproduces Table 4 of the paper (see src/scf/harness.h).
#include <cstdio>

#include "src/scf/harness.h"
#include "src/scf/metrics_json.h"
#include "src/util/options.h"

int main(int argc, char** argv) {
  pcxx::Options opts("table4_sgi8", "Paper Table 4 reproduction");
  opts.addFlag("real", "measure wall-clock on the host instead of the model");
  opts.addFlag("sorted", "use read() for input instead of the paper's "
                         "unsortedRead()");
  opts.add("metrics-json", "",
           "write a pcxx-metrics-v1 phase-breakdown JSON to this path");
  opts.add("trace-json", "",
           "write a Chrome trace_event JSON (pC++/streams at the largest "
           "size) to this path");
  if (!opts.parse(argc, argv)) return 0;

  pcxx::scf::BenchConfig cfg = pcxx::scf::table4Sgi8();
  if (opts.getFlag("real")) cfg.platform = "none";
  cfg.sortedRead = opts.getFlag("sorted");
  cfg.collectMetrics = !opts.get("metrics-json").empty();
  cfg.traceJsonPath = opts.get("trace-json");
  const auto result = pcxx::scf::runBenchTable(cfg);
  pcxx::scf::printWithPaperComparison(4, result);
  if (cfg.collectMetrics) {
    pcxx::scf::writeMetricsJson(opts.get("metrics-json"), {result});
  }
  return 0;
}
