# Benchmark binaries. Included from the top-level CMakeLists (not via
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench contains ONLY the bench
# executables and `for b in build/bench/*; do $b; done` runs them all.
function(pcxx_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    pcxx_scf pcxx_ds pcxx_coll pcxx_pfs pcxx_rt pcxx_obs pcxx_util
    benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pcxx_add_bench(table1_paragon4)
pcxx_add_bench(table2_paragon8)
pcxx_add_bench(table3_sgi_uni)
pcxx_add_bench(table4_sgi8)
pcxx_add_bench(figure5_all)
pcxx_add_bench(ablation_read_vs_unsorted)
pcxx_add_bench(ablation_header_strategy)
pcxx_add_bench(ablation_redistribution)
pcxx_add_bench(ablation_redist)
pcxx_add_bench(ablation_interleave)
pcxx_add_bench(ablation_stripe_sweep)
pcxx_add_bench(micro_benchmarks)
pcxx_add_bench(ablation_checksum)
pcxx_add_bench(ablation_overlap)
pcxx_add_bench(ablation_index)
pcxx_add_bench(ablation_codec)
