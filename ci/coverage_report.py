#!/usr/bin/env python3
"""Aggregate gcov line coverage for the library sources (src/**).

Usage: coverage_report.py <build-dir> [--threshold-file ci/coverage_threshold.txt]

Walks the build tree for .gcda files (written by the instrumented test
binaries; see PCXX_COVERAGE in the top-level CMakeLists), runs `gcov -n`
per object directory, and parses the

    File '<path>'
    Lines executed:<pct>% of <total>

pairs. Only files under the repository's src/ directory count; tests,
examples, and system/third-party headers are excluded. When one source is
exercised from several translation units the best-covered report wins (a
header constexpr helper unused by one TU should not dilute the number).

Exits 1 when total line coverage falls below the checked-in threshold, so
the CI coverage leg catches regressions. Uses only the Python standard
library.
"""
import argparse
import os
import re
import subprocess
import sys

FILE_RE = re.compile(r"^File '(.*)'$")
LINES_RE = re.compile(r"^Lines executed:([0-9.]+)% of (\d+)$")


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for f in files:
            if f.endswith(".gcda"):
                yield os.path.join(root, f)


def parse_gcov_output(text, repo_src, best):
    """Fold `gcov -n` stdout into best: path -> (covered_lines, total_lines)."""
    current = None
    for line in text.splitlines():
        m = FILE_RE.match(line.strip())
        if m:
            path = os.path.realpath(m.group(1))
            current = path if path.startswith(repo_src + os.sep) else None
            continue
        m = LINES_RE.match(line.strip())
        if m and current is not None:
            pct, total = float(m.group(1)), int(m.group(2))
            covered = int(round(pct / 100.0 * total))
            prev = best.get(current)
            if prev is None or covered > prev[0]:
                best[current] = (covered, total)
            current = None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--threshold-file", default=None,
                    help="file holding the minimum total line coverage in %%")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = ap.parse_args()

    repo_root = os.path.realpath(os.path.join(os.path.dirname(__file__), ".."))
    repo_src = os.path.join(repo_root, "src")
    build_dir = os.path.realpath(args.build_dir)

    # Group the data files by object directory: one gcov run per directory
    # keeps the invocation count (and wall time) reasonable.
    by_dir = {}
    for gcda in find_gcda(build_dir):
        by_dir.setdefault(os.path.dirname(gcda), []).append(gcda)
    if not by_dir:
        print("coverage_report: no .gcda files under", build_dir,
              "(build with -DPCXX_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        return 1

    best = {}
    for objdir, gcdas in sorted(by_dir.items()):
        proc = subprocess.run(
            [args.gcov, "-n", "-o", objdir] + sorted(gcdas),
            capture_output=True, text=True, cwd=build_dir, check=False)
        parse_gcov_output(proc.stdout, repo_src, best)

    if not best:
        print("coverage_report: gcov reported no src/ files", file=sys.stderr)
        return 1

    covered = sum(c for c, _t in best.values())
    total = sum(t for _c, t in best.values())
    overall = 100.0 * covered / total if total else 0.0

    width = max(len(os.path.relpath(p, repo_root)) for p in best)
    for path in sorted(best):
        c, t = best[path]
        print("%-*s %7.2f%%  (%d/%d lines)"
              % (width, os.path.relpath(path, repo_root),
                 100.0 * c / t if t else 0.0, c, t))
    print("-" * (width + 30))
    print("%-*s %7.2f%%  (%d/%d lines)" % (width, "TOTAL", overall,
                                           covered, total))

    if args.threshold_file:
        with open(args.threshold_file) as f:
            threshold = float(f.read().strip())
        if overall < threshold:
            print("coverage_report: total %.2f%% is below the %.2f%% "
                  "threshold (%s)" % (overall, threshold, args.threshold_file),
                  file=sys.stderr)
            return 1
        print("coverage_report: total %.2f%% meets the %.2f%% threshold"
              % (overall, threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
