# Runs dslint in SARIF mode over the library, examples, and headers, and
# writes the report to OUTPUT. Separate -P script because add_custom_target
# COMMANDs cannot redirect stdout portably.
#
#   cmake -DDSLINT=<dslint-exe> -DREPO_ROOT=<repo> -DOUTPUT=<file> \
#         -P ci/dslint_sarif.cmake
#
# Fails (so the `lint` target fails) when dslint reports diagnostics or
# cannot run; the SARIF file is written either way so CI can upload it.
if(NOT DSLINT OR NOT REPO_ROOT OR NOT OUTPUT)
  message(FATAL_ERROR "usage: cmake -DDSLINT=... -DREPO_ROOT=... -DOUTPUT=... -P ci/dslint_sarif.cmake")
endif()

file(GLOB_RECURSE srcs
     ${REPO_ROOT}/src/*.cpp ${REPO_ROOT}/src/*.h
     ${REPO_ROOT}/examples/*.cpp ${REPO_ROOT}/examples/*.h)

execute_process(
  COMMAND ${DSLINT} --format=sarif ${srcs}
  OUTPUT_FILE ${OUTPUT}
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dslint exited ${rc}; report written to ${OUTPUT}")
endif()
message(STATUS "dslint: clean; SARIF report at ${OUTPUT}")
