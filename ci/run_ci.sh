#!/usr/bin/env bash
# CI driver: build + test the repository in one of three configurations.
#
#   ci/run_ci.sh default     plain RelWithDebInfo build
#   ci/run_ci.sh asan        AddressSanitizer + UBSan (PCXX_SANITIZE=ON)
#   ci/run_ci.sh tsan        ThreadSanitizer         (PCXX_TSAN=ON)
#   ci/run_ci.sh obs-off     instrumentation compiled out (PCXX_OBS=OFF)
#   ci/run_ci.sh aio-off     overlap pipelines compiled out (PCXX_AIO=OFF)
#   ci/run_ci.sh fault       ASan build, fault-tolerance suite only
#   ci/run_ci.sh chaos       ASan build, runtime chaos/watchdog suite only
#   ci/run_ci.sh codec       full suite under PCXX_CODEC=lz + off-switch
#                            byte-identity + codec ablation smoke
#   ci/run_ci.sh coverage    gcov-instrumented build + line-coverage gate
#   ci/run_ci.sh perf        perf-regression gate vs bench/BENCH_7.json
#   ci/run_ci.sh all         all of the above, sequentially
#
# Each configuration builds into build-ci-<name>/, runs the full ctest
# suite, and (default config only) runs the dslint lint target so protocol
# or symmetry regressions in client code fail CI; the default leg also
# gates on the SARIF report (valid JSON, good fixtures clean, bad fixtures
# caught) and leaves *.sarif in the build tree for CI to archive. Sanitizer configurations
# are separate build trees because PCXX_SANITIZE and PCXX_TSAN are
# mutually exclusive at configure time. Test suites carry ctest labels
# (unit | fault | stress | roundtrip | chaos; see tests/CMakeLists.txt), so
# legs select by label: the fault and chaos legs reuse the asan build tree
# and re-run `ctest -L fault` / `ctest -L chaos` as their own CI rows; the
# codec leg reuses the default tree and re-runs the full suite with
# PCXX_CODEC=lz exported. The coverage leg builds with
# PCXX_COVERAGE=ON, runs the tests, and gates total src/ line coverage
# (ci/coverage_report.py) against the checked-in ci/coverage_threshold.txt.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [ "${name}" = "default" ]; then
    echo "=== [${name}] lint ==="
    cmake --build "${build_dir}" --target lint
    # dslint gate: the SARIF report over src/ + examples/ (written by the
    # lint-sarif target above) must be loadable JSON, every good fixture
    # must stay clean, and every bad fixture must still be caught — the
    # fixture corpus doubles as the analyzer's end-to-end regression net.
    echo "=== [${name}] dslint sarif gate ==="
    local dslint_bin="${build_dir}/src/dslint/dslint"
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
      "${build_dir}/dslint.sarif"
    "${dslint_bin}" --format=sarif \
      "${repo_root}"/tests/dslint/fixtures/*_good.cpp \
      > "${build_dir}/dslint-fixtures.sarif"
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
      "${build_dir}/dslint-fixtures.sarif"
    for f in "${repo_root}"/tests/dslint/fixtures/*_bad.cpp; do
      if "${dslint_bin}" "${f}" > /dev/null; then
        echo "dslint gate: expected diagnostics in ${f}" >&2
        return 1
      fi
    done
    # Redistribution-engine smoke: plan vs legacy byte-identity plus a
    # nonzero plan-cache hit count (the binary exits 1 on either failure).
    echo "=== [${name}] redist ablation smoke ==="
    "${build_dir}/bench/ablation_redist" \
      --segments 600 --particles 6 --records 2 --repeats 2
    # Index-footer smoke: indexed seeks vs chain replay stay byte-identical
    # and the footer actually backs the seeks (the binary exits 1 on
    # either failure).
    echo "=== [${name}] index ablation smoke ==="
    "${build_dir}/bench/ablation_index" \
      --elements 256 --max-records 16 --repeats 2
  fi
  echo "=== [${name}] OK ==="
}

# Fault-tolerance leg: build under ASan (heap misuse in recovery paths is
# the realistic failure mode) and run only the fault-labeled suites.
run_fault() {
  local build_dir="${repo_root}/build-ci-asan"
  echo "=== [fault] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPCXX_SANITIZE=ON
  echo "=== [fault] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [fault] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L fault
  echo "=== [fault] OK ==="
}

# Chaos leg: the seeded rt::ChaosPlan x pfs::FaultPlan soak sweep plus the
# watchdog/abort suites, under ASan — the no-leak half of the no-hang/
# no-leak guarantee. Reuses (or creates) the asan build tree.
run_chaos() {
  local build_dir="${repo_root}/build-ci-asan"
  echo "=== [chaos] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPCXX_SANITIZE=ON
  echo "=== [chaos] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [chaos] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L chaos
  echo "=== [chaos] OK ==="
}

# Coverage leg: Debug-ish gcov instrumentation, full test run, then the
# aggregate line-coverage gate over src/.
run_coverage() {
  local build_dir="${repo_root}/build-ci-coverage"
  echo "=== [coverage] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug -DPCXX_COVERAGE=ON
  echo "=== [coverage] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [coverage] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  echo "=== [coverage] report ==="
  python3 "${repo_root}/ci/coverage_report.py" "${build_dir}" \
    --threshold-file "${repo_root}/ci/coverage_threshold.txt"
  echo "=== [coverage] OK ==="
}

# Codec leg: the whole test battery must pass with the pfs chunk codec
# force-enabled (PCXX_CODEC=lz frames every stream any test writes), and
# the off switch must be a true no-op: PCXX_CODEC=off output is compared
# byte-for-byte against an unset environment (the pre-codec format), while
# PCXX_CODEC=lz output must actually carry the codec magic. Reuses (or
# creates) the default build tree, then runs the codec ablation smoke
# (compression + dedup + virtual-time identity; the binary exits 1 on any
# failure).
run_codec() {
  local build_dir="${repo_root}/build-ci-default"
  echo "=== [codec] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "=== [codec] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [codec] test (PCXX_CODEC=lz) ==="
  PCXX_CODEC=lz ctest --test-dir "${build_dir}" --output-on-failure \
    -j "${jobs}"
  echo "=== [codec] off-switch byte identity ==="
  local probe_dir="${build_dir}/codec-identity"
  rm -rf "${probe_dir}"
  mkdir -p "${probe_dir}/off" "${probe_dir}/unset" "${probe_dir}/lz"
  PCXX_CODEC=off "${build_dir}/examples/quickstart" \
    --dir "${probe_dir}/off" > /dev/null
  env -u PCXX_CODEC "${build_dir}/examples/quickstart" \
    --dir "${probe_dir}/unset" > /dev/null
  PCXX_CODEC=lz "${build_dir}/examples/quickstart" \
    --dir "${probe_dir}/lz" > /dev/null
  cmp "${probe_dir}/off/wholeGridFile" "${probe_dir}/unset/wholeGridFile"
  if [ "$(head -c 8 "${probe_dir}/lz/wholeGridFile")" != "PCXXCDC1" ]; then
    echo "codec gate: PCXX_CODEC=lz did not frame the output file" >&2
    return 1
  fi
  echo "=== [codec] ablation smoke ==="
  "${build_dir}/bench/ablation_codec" --elements 8192 --chunk-kib 8
  echo "=== [codec] OK ==="
}

# Perf leg: release build (no test run — the other legs own correctness),
# then the perf-regression gate: run the virtual-time benches, validate
# the causal-trace artifacts, self-test the gate against a synthetic +20%
# regression, and compare against the checked-in baseline
# (bench/BENCH_7.json). The simulation is deterministic, so any growth
# beyond the threshold is a genuine model regression. Artifacts (traces,
# metrics, gate_report.txt) are left in build-ci-perf/perf/ for CI to
# archive.
run_perf() {
  local build_dir="${repo_root}/build-ci-perf"
  echo "=== [perf] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  echo "=== [perf] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [perf] gate ==="
  python3 "${repo_root}/bench/perf_gate.py" --build-dir "${build_dir}" \
    --self-test
  echo "=== [perf] OK ==="
}

case "${1:-all}" in
  default)  run_config default ;;
  asan)     run_config asan -DPCXX_SANITIZE=ON ;;
  tsan)     run_config tsan -DPCXX_TSAN=ON ;;
  obs-off)  run_config obs-off -DPCXX_OBS=OFF ;;
  aio-off)  run_config aio-off -DPCXX_AIO=OFF ;;
  fault)    run_fault ;;
  chaos)    run_chaos ;;
  codec)    run_codec ;;
  coverage) run_coverage ;;
  perf)     run_perf ;;
  all)
    run_config default
    run_config asan -DPCXX_SANITIZE=ON
    run_config tsan -DPCXX_TSAN=ON
    run_config obs-off -DPCXX_OBS=OFF
    run_config aio-off -DPCXX_AIO=OFF
    run_fault
    run_chaos
    run_codec
    run_coverage
    run_perf
    ;;
  *)
    echo "usage: $0 [default|asan|tsan|obs-off|aio-off|fault|chaos|codec|coverage|perf|all]" >&2
    exit 2
    ;;
esac
