#!/usr/bin/env bash
# CI driver: build + test the repository in one of three configurations.
#
#   ci/run_ci.sh default     plain RelWithDebInfo build
#   ci/run_ci.sh asan        AddressSanitizer + UBSan (PCXX_SANITIZE=ON)
#   ci/run_ci.sh tsan        ThreadSanitizer         (PCXX_TSAN=ON)
#   ci/run_ci.sh obs-off     instrumentation compiled out (PCXX_OBS=OFF)
#   ci/run_ci.sh all         the four above, sequentially
#
# Each configuration builds into build-ci-<name>/, runs the full ctest
# suite, and (default config only) runs the dslint lint target so protocol
# or symmetry regressions in client code fail CI. Sanitizer configurations
# are separate build trees because PCXX_SANITIZE and PCXX_TSAN are
# mutually exclusive at configure time.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [ "${name}" = "default" ]; then
    echo "=== [${name}] lint ==="
    cmake --build "${build_dir}" --target lint
  fi
  echo "=== [${name}] OK ==="
}

case "${1:-all}" in
  default) run_config default ;;
  asan)    run_config asan -DPCXX_SANITIZE=ON ;;
  tsan)    run_config tsan -DPCXX_TSAN=ON ;;
  obs-off) run_config obs-off -DPCXX_OBS=OFF ;;
  all)
    run_config default
    run_config asan -DPCXX_SANITIZE=ON
    run_config tsan -DPCXX_TSAN=ON
    run_config obs-off -DPCXX_OBS=OFF
    ;;
  *)
    echo "usage: $0 [default|asan|tsan|obs-off|all]" >&2
    exit 2
    ;;
esac
