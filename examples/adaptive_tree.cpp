// Adaptive data structure example.
//
// The paper motivates d/streams with "adaptive parallel applications using
// dynamic distributed data structures of variable-sized elements (e.g.
// distributed grids of variable density)". Here each element of a
// distributed collection is an adaptively refined QUADTREE (cells split
// where a density field is steep), so element sizes vary wildly across the
// array. The whole structure round-trips through one d/stream write/read
// using a recursive insertion function — "recursively structured data
// types such as trees can be output naturally using recursive insertion
// functions" (paper §4.1).
//
//   ./adaptive_tree [--patches N] [--maxdepth N]
#include <atomic>
#include <cmath>
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/util/options.h"

using namespace pcxx;

namespace adaptive {

struct QuadNode {
  double density = 0.0;
  QuadNode* child[4] = {nullptr, nullptr, nullptr, nullptr};

  ~QuadNode() {
    for (QuadNode* c : child) delete c;
  }
  bool isLeaf() const { return child[0] == nullptr; }
  std::int64_t nodeCount() const {
    std::int64_t n = 1;
    for (const QuadNode* c : child) {
      if (c != nullptr) n += c->nodeCount();
    }
    return n;
  }
};

// Recursive insertion/extraction: a presence byte per child, then the
// subtree (what stream-gen generates for recursive pointers).
declareStreamInserter(QuadNode& n) {
  s << n.density;
  for (int i = 0; i < 4; ++i) {
    s << static_cast<std::uint8_t>(n.child[i] != nullptr);
    if (n.child[i] != nullptr) s << *n.child[i];
  }
}
declareStreamExtractor(QuadNode& n) {
  s >> n.density;
  for (int i = 0; i < 4; ++i) {
    std::uint8_t present = 0;
    s >> present;
    if (present != 0) {
      if (n.child[i] == nullptr) n.child[i] = new QuadNode();
      s >> *n.child[i];
    }
  }
}

/// A patch of the domain owning one adaptive quadtree.
struct Patch {
  QuadNode root;
};
declareStreamInserter(Patch& p) { s << p.root; }
declareStreamExtractor(Patch& p) { s >> p.root; }

/// The field driving refinement: a sharp ring.
double field(double x, double y) {
  const double r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5));
  return std::exp(-120.0 * (r - 0.3) * (r - 0.3));
}

void refine(QuadNode& n, double x0, double y0, double size, int depth,
            int maxDepth) {
  n.density = field(x0 + size / 2, y0 + size / 2);
  if (depth >= maxDepth) return;
  // Split where the field varies across the cell.
  const double c00 = field(x0, y0);
  const double c11 = field(x0 + size, y0 + size);
  const double c01 = field(x0, y0 + size);
  const double c10 = field(x0 + size, y0);
  const double spread = std::max({c00, c01, c10, c11}) -
                        std::min({c00, c01, c10, c11});
  if (spread < 0.05) return;
  const double h = size / 2;
  const double xs[4] = {x0, x0 + h, x0, x0 + h};
  const double ys[4] = {y0, y0, y0 + h, y0 + h};
  for (int i = 0; i < 4; ++i) {
    n.child[i] = new QuadNode();
    refine(*n.child[i], xs[i], ys[i], h, depth + 1, maxDepth);
  }
}

bool treesEqual(const QuadNode& a, const QuadNode& b) {
  if (a.density != b.density) return false;
  for (int i = 0; i < 4; ++i) {
    if ((a.child[i] == nullptr) != (b.child[i] == nullptr)) return false;
    if (a.child[i] != nullptr && !treesEqual(*a.child[i], *b.child[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace adaptive

using adaptive::Patch;

int main(int argc, char** argv) {
  Options opts("adaptive_tree",
               "round-trip a distributed array of adaptively refined "
               "quadtrees (variable-sized elements)");
  opts.add("patches", "16", "total grid patches (ideally a perfect square)");
  opts.add("maxdepth", "6", "maximum refinement depth");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t patches = opts.getInt("patches");
  const int maxDepth = static_cast<int>(opts.getInt("maxdepth"));

  pfs::Pfs fs{pfs::PfsConfig{}};
  rt::Machine machine(4);

  std::atomic<std::uint64_t> mismatches{0};
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(patches, &P, coll::DistKind::Cyclic);
    coll::Collection<Patch> grid(&d);

    // Each patch covers a strip of the unit square; refinement depth (and
    // so element size) depends on how much of the ring crosses it.
    const auto side =
        static_cast<std::int64_t>(std::llround(std::sqrt(
            static_cast<double>(patches))));
    std::int64_t localNodes = 0;
    grid.forEachLocal([&](Patch& p, std::int64_t g) {
      const double cell = 1.0 / static_cast<double>(side);
      const double x0 = static_cast<double>(g % side) * cell;
      const double y0 = static_cast<double>(g / side) * cell;
      adaptive::refine(p.root, x0, y0, cell, 0, maxDepth);
      localNodes += p.root.nodeCount();
    });
    const auto total =
        node.allreduceSumU64(static_cast<std::uint64_t>(localNodes));
    rt::rio::printf(node, "built %lld patches holding %llu tree nodes "
                          "(element sizes vary with refinement)\n",
                    static_cast<long long>(patches),
                    static_cast<unsigned long long>(total));

    ds::OStream out(fs, &d, "adaptiveGrid");
    out << grid;
    out.write();

    coll::Collection<Patch> back(&d);
    ds::IStream in(fs, &d, "adaptiveGrid");
    in.read();
    in >> back;

    std::int64_t localBad = 0;
    back.forEachLocal([&](Patch& p, std::int64_t g) {
      if (!adaptive::treesEqual(p.root, grid.at(g).root)) ++localBad;
    });
    const auto bad = node.allreduceSumU64(static_cast<std::uint64_t>(localBad));
    if (node.id() == 0) mismatches.store(bad);
    rt::rio::printf(node, "round-trip: %llu mismatching patches%s\n",
                    static_cast<unsigned long long>(bad),
                    bad == 0 ? " — trees identical" : "");
  });
  return mismatches.load() == 0 ? 0 : 1;
}
