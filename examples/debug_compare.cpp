// Debugging example (one of the paper's motivating tasks).
//
// "During the parallelization process application developers often need to
// compare results of parallel and sequential runs on the same problem, to
// confirm that parallelization has not introduced bugs." (paper §2)
//
// The same N-body problem is run twice — sequentially (1 node) and in
// parallel (4 nodes, different distribution) — and each run writes its
// final state to its own d/stream file. A comparison pass then reads BOTH
// files on the parallel machine (the sequential file needs read()'s
// redistribution, since it was written from one node) and reports the
// maximum element-wise deviation.
//
//   ./debug_compare [--segments N] [--particles N] [--steps N]
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/scf/physics.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"

using namespace pcxx;

namespace {

void runAndDump(pfs::Pfs& fs, int nodes, coll::DistKind dist,
                std::int64_t segments, int particles, int steps,
                const std::string& file) {
  rt::Machine machine(nodes);
  scf::NBodyStepper stepper(scf::StepperConfig{});
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, dist);
    coll::Collection<scf::Segment> bodies(&d);
    scf::fillPlummer(bodies, particles, /*seed=*/7);
    for (int i = 0; i < steps; ++i) stepper.step(node, bodies);
    ds::OStream out(fs, &d, file);
    out << bodies;
    out.write();
    (void)node;
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("debug_compare",
               "compare a sequential and a parallel run of the same N-body "
               "problem via d/stream dumps");
  opts.add("segments", "6", "number of segments");
  opts.add("particles", "24", "particles per segment");
  opts.add("steps", "5", "simulation steps");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  const int steps = static_cast<int>(opts.getInt("steps"));

  pfs::Pfs fs{pfs::PfsConfig{}};

  std::printf("sequential run (1 node)...\n");
  runAndDump(fs, 1, coll::DistKind::Block, segments, particles, steps,
             "seq_dump");
  std::printf("parallel run (4 nodes, CYCLIC)...\n");
  runAndDump(fs, 4, coll::DistKind::Cyclic, segments, particles, steps,
             "par_dump");

  std::printf("comparing on 4 nodes...\n");
  rt::Machine machine(4);
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> seq(&d);
    coll::Collection<scf::Segment> par(&d);

    // Both files were written under OTHER layouts (1-node block; 4-node
    // cyclic); read() redistributes each into this block layout, elements
    // aligned by global index.
    ds::IStream sIn(fs, &d, "seq_dump");
    sIn.read();
    sIn >> seq;
    ds::IStream pIn(fs, &d, "par_dump");
    pIn.read();
    pIn >> par;

    double localMax = 0.0;
    seq.forEachLocal([&](scf::Segment& a, std::int64_t g) {
      const scf::Segment& b = par.at(g);
      for (int k = 0; k < a.numberOfParticles; ++k) {
        localMax = std::max(localMax, std::abs(a.x[k] - b.x[k]));
        localMax = std::max(localMax, std::abs(a.y[k] - b.y[k]));
        localMax = std::max(localMax, std::abs(a.z[k] - b.z[k]));
        localMax = std::max(localMax, std::abs(a.vx[k] - b.vx[k]));
      }
    });
    const double maxDiff = node.allreduceMax(localMax);
    rt::rio::printf(node,
                    "max |sequential - parallel| over all particles: %.3e\n",
                    maxDiff);
    rt::rio::printf(node, "%s\n",
                    maxDiff < 1e-9
                        ? "PASS: parallelization preserved the trajectory"
                        : "note: deviation above 1e-9 (floating-point "
                          "summation order differs across node counts)");
  });
  return 0;
}
