// Producer/consumer pipeline (the paper's "communicating partial and final
// results to other applications and to tools", §2).
//
// Phase 1 — the SIMULATION: an N-body run appends one record per output
// interval to a single d/stream file (a time series of frames).
//
// Phase 2 — the ANALYSIS TOOL: a separate "application" (different machine,
// different node count) opens the same file, uses skipRecord() to seek
// cheaply, and extracts only every k-th frame to compute the cluster's
// radius over time — the kind of downstream consumer the paper's
// visualization/communication use case describes.
//
//   ./pipeline_analysis [--segments N] [--particles N] [--frames N]
#include <cmath>
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/scf/physics.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"

using namespace pcxx;

int main(int argc, char** argv) {
  Options opts("pipeline_analysis",
               "simulation producing a frame series; analysis tool "
               "consuming selected frames");
  opts.add("segments", "6", "number of segments");
  opts.add("particles", "24", "particles per segment");
  opts.add("frames", "8", "frames written by the simulation");
  opts.add("analyze-every", "2", "analysis reads every k-th frame");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  const int frames = static_cast<int>(opts.getInt("frames"));
  const int every = static_cast<int>(opts.getInt("analyze-every"));

  pfs::Pfs fs{pfs::PfsConfig{}};

  // ---- Phase 1: the simulation (4 nodes) -----------------------------------
  std::printf("simulation: %d frames of %lld segments x %d particles\n",
              frames, static_cast<long long>(segments), particles);
  {
    rt::Machine sim(4);
    scf::NBodyStepper stepper(scf::StepperConfig{5e-3, 0.05, 1.0});
    sim.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> bodies(&d);
      scf::fillPlummer(bodies, particles, /*seed=*/2026);
      ds::OStream out(fs, &d, "frames");
      for (int f = 0; f < frames; ++f) {
        for (int step = 0; step < 3; ++step) stepper.step(node, bodies);
        out << bodies;   // one record per frame, appended to one file
        out.write();
      }
      rt::rio::printf(node, "simulation: wrote %d frames to 'frames'\n",
                      frames);
    });
  }

  // ---- Phase 2: the analysis tool (2 nodes, a different application) -------
  std::printf("analysis tool: reading every %d-th frame on 2 nodes\n",
              every);
  rt::Machine tool(2);
  tool.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Cyclic);
    coll::Collection<scf::Segment> frame(&d);
    ds::IStream in(fs, &d, "frames");
    int index = 0;
    while (!in.atEnd()) {
      if (index % every != 0) {
        in.skipRecord();  // cheap: header only, no element data moves
        ++index;
        continue;
      }
      in.read();
      in >> frame;
      // RMS radius of the cluster in this frame.
      double sumR2 = 0.0;
      std::int64_t count = 0;
      frame.forEachLocal([&](scf::Segment& seg, std::int64_t) {
        for (int k = 0; k < seg.numberOfParticles; ++k) {
          sumR2 += seg.x[k] * seg.x[k] + seg.y[k] * seg.y[k] +
                   seg.z[k] * seg.z[k];
          ++count;
        }
      });
      const double totalR2 = node.allreduceSum(sumR2);
      const auto totalN = node.allreduceSumU64(
          static_cast<std::uint64_t>(count));
      rt::rio::printf(node, "  frame %2d: rms radius %.4f (%llu particles)\n",
                      index, std::sqrt(totalR2 /
                                       static_cast<double>(totalN)),
                      static_cast<unsigned long long>(totalN));
      ++index;
    }
    rt::rio::printf(node, "analysis tool: processed %d frames (skipped the "
                          "rest without reading their data)\n",
                    (index + every - 1) / every);
  });
  return 0;
}
