// Quickstart: the paper's Figure 3, as one runnable program.
//
// An "output program" writes a distributed grid of ParticleList objects
// (variable-sized per element) to a d/stream file, and an "input program"
// reads it back — here both run in one process on a simulated 4-node
// machine, with the file stored on the real file system so you can inspect
// it afterwards.
//
//   ./quickstart [--nodes N] [--elements N] [--dir PATH]
#include <atomic>
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/util/options.h"

using namespace pcxx;

namespace quickstart {

struct Position {
  double x, y, z;
};

struct ParticleList {
  int numberOfParticles = 0;
  double* mass = nullptr;        // variable sized
  Position* position = nullptr;  // arrays
  ~ParticleList() {
    delete[] mass;
    delete[] position;
  }
};

// Insertion/extraction functions (paper §4.1) — what stream-gen generates.
declareStreamInserter(ParticleList& p) {
  s << p.numberOfParticles;
  s << ds::array(p.mass, p.numberOfParticles);
  s << ds::array(p.position, p.numberOfParticles);
}
declareStreamExtractor(ParticleList& p) {
  s >> p.numberOfParticles;
  s >> ds::array(p.mass, p.numberOfParticles);
  s >> ds::array(p.position, p.numberOfParticles);
}

}  // namespace quickstart

using quickstart::ParticleList;
using quickstart::Position;

int main(int argc, char** argv) {
  Options opts("quickstart", "paper Figure 3: write and read a distributed "
                             "grid of particle lists");
  opts.add("nodes", "4", "simulated node count");
  opts.add("elements", "12", "grid size");
  opts.add("dir", ".", "directory for the d/stream file");
  if (!opts.parse(argc, argv)) return 0;
  const int nodes = static_cast<int>(opts.getInt("nodes"));
  const std::int64_t elements = opts.getInt("elements");

  // A parallel file system over real files, no performance model.
  pfs::PfsConfig fsConfig;
  fsConfig.backend = pfs::PfsConfig::Backend::Posix;
  fsConfig.dir = opts.get("dir");
  pfs::Pfs fs(fsConfig);
  ds::setDefaultPfs(&fs);

  rt::Machine machine(nodes);

  // ---- Output program (Figure 3, left) ------------------------------------
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Align a(elements, "[ALIGN(dummy[i], d[i])]");

    // defining a distributed grid of ParticleLists g
    coll::Collection<ParticleList> g(&d, &a);
    g.forEachLocal([](ParticleList& p, std::int64_t i) {
      p.numberOfParticles = static_cast<int>(1 + i % 4);
      p.mass = new double[static_cast<size_t>(p.numberOfParticles)];
      p.position = new Position[static_cast<size_t>(p.numberOfParticles)];
      for (int k = 0; k < p.numberOfParticles; ++k) {
        p.mass[k] = 1.0 / (1.0 + static_cast<double>(k));
        p.position[k] = Position{static_cast<double>(i), 0.0,
                                 static_cast<double>(k)};
      }
    });

    // defining an output d/stream s:
    ds::oStream s(&d, &a, "wholeGridFile");
    // to insert the entire collection g:
    s << g;
    // to insert only the numberOfParticles field from each element:
    s << g.field(&ParticleList::numberOfParticles);
    s.write();

    rt::rio::printf(node, "output program: wrote %lld elements from %d "
                          "nodes to wholeGridFile\n",
                    static_cast<long long>(elements), node.nprocs());
  });

  // ---- Input program (Figure 3, right) -------------------------------------
  std::atomic<std::uint64_t> mismatches{0};
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Align a(elements, "[ALIGN(dummy[i], d[i])]");
    coll::Collection<ParticleList> g(&d, &a);
    coll::Collection<ParticleList> counts(&d, &a);

    // defining an input d/stream s:
    ds::iStream s(&d, &a, "wholeGridFile");
    s.read();
    // extracting the entire collection g:
    s >> g;
    // extracting only the numberOfParticles field into each element:
    s >> counts.field(&ParticleList::numberOfParticles);

    // Verify and report.
    std::int64_t localBad = 0;
    std::int64_t localParticles = 0;
    g.forEachLocal([&](ParticleList& p, std::int64_t i) {
      localParticles += p.numberOfParticles;
      if (p.numberOfParticles != static_cast<int>(1 + i % 4)) ++localBad;
      for (int k = 0; k < p.numberOfParticles; ++k) {
        if (p.position[k].x != static_cast<double>(i)) ++localBad;
      }
    });
    const auto bad = node.allreduceSumU64(static_cast<std::uint64_t>(localBad));
    const auto particles =
        node.allreduceSumU64(static_cast<std::uint64_t>(localParticles));
    if (node.id() == 0) mismatches.store(bad);
    rt::rio::printf(node, "input program: read back %llu particles, "
                          "%llu mismatches\n",
                    static_cast<unsigned long long>(particles),
                    static_cast<unsigned long long>(bad));
  });

  std::printf("done; inspect '%s/wholeGridFile'\n", opts.get("dir").c_str());
  return mismatches.load() == 0 ? 0 : 1;
}
