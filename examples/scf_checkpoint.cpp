// Checkpointing example (one of the paper's three motivating tasks).
//
// Runs the SCF-style N-body simulation, checkpointing the particle state
// every few steps with pC++/streams. Midway the program simulates a crash:
// the machine is torn down and the run resumes FROM THE CHECKPOINT on a
// DIFFERENT node count — possible because d/stream files are
// self-describing (the distribution is stored ahead of the data) and
// read() redistributes to the new owners. Energy is tracked across the
// restart to show the trajectory continues seamlessly.
//
//   ./scf_checkpoint [--segments N] [--particles N] [--steps N]
#include <algorithm>
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/scf/physics.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "src/util/options.h"

using namespace pcxx;

namespace {

void simulate(pfs::Pfs& fs, int nodes, std::int64_t segments, int particles,
              int firstStep, int lastStep, int checkpointEvery,
              bool restoreFirst) {
  rt::Machine machine(nodes);
  scf::NBodyStepper stepper(scf::StepperConfig{});

  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Block);
    coll::Collection<scf::Segment> bodies(&d);

    if (restoreFirst) {
      // Restore: read() sorts the data back to the (new) owners even though
      // the checkpoint was written on a different node count.
      ds::IStream in(fs, &d, "scf_checkpoint");
      in.read();
      in >> bodies;
      rt::rio::printf(node, "  restored checkpoint on %d nodes\n",
                      node.nprocs());
    } else {
      scf::fillPlummer(bodies, particles, /*seed=*/42);
    }

    for (int step = firstStep; step < lastStep; ++step) {
      stepper.step(node, bodies);
      if ((step + 1) % checkpointEvery == 0) {
        ds::StreamOptions so;
        so.syncOnWrite = true;  // durability is the point of a checkpoint
        ds::OStream out(fs, &d, "scf_checkpoint", so);
        out << bodies;
        out.write();
        const double energy = stepper.totalEnergy(node, bodies);
        rt::rio::printf(node,
                        "  step %3d: checkpoint written (E = %+.6f)\n",
                        step + 1, energy);
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("scf_checkpoint",
               "N-body run with d/stream checkpoints and a cross-node-count "
               "restart");
  opts.add("segments", "8", "number of segments");
  opts.add("particles", "32", "particles per segment");
  opts.add("steps", "12", "total simulation steps");
  opts.add("every", "3", "checkpoint interval (steps)");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t segments = opts.getInt("segments");
  const int particles = static_cast<int>(opts.getInt("particles"));
  const int steps = static_cast<int>(opts.getInt("steps"));
  const int every = static_cast<int>(opts.getInt("every"));

  pfs::Pfs fs{pfs::PfsConfig{}};

  // Crash at a checkpoint boundary, after at least one checkpoint exists.
  int half = steps / 2 / every * every;
  if (half == 0) half = std::min(every, steps);
  std::printf("phase 1: %d nodes, steps 0..%d\n", 4, half);
  simulate(fs, 4, segments, particles, 0, half, every,
           /*restoreFirst=*/false);

  std::printf("simulated crash; restarting from checkpoint on 2 nodes\n");
  std::printf("phase 2: %d nodes, steps %d..%d\n", 2, half, steps);
  simulate(fs, 2, segments, particles, half, steps, every,
           /*restoreFirst=*/true);

  std::printf("done: the run continued from the checkpoint under a "
              "different node count\n");
  return 0;
}
