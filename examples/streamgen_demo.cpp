// stream-gen end-to-end example: the insertion/extraction functions for
// sgdemo::Sample are NOT written by hand — the build invokes the streamgen
// tool on streamgen_types.h and this program includes the generated header
// (paper §4.2: "compiler support can be used to ease the coding of I/O").
#include <atomic>
#include <cstdio>

#include "src/dstream/dstream.h"
#include "src/util/options.h"

// Generated into the build tree by the streamgen tool.
#include "streamgen_types_streams.h"

using namespace pcxx;
using sgdemo::Sample;

int main(int argc, char** argv) {
  Options opts("streamgen_demo",
               "round-trip a collection using tool-generated inserters");
  opts.add("elements", "10", "collection size");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t elements = opts.getInt("elements");

  pfs::Pfs fs{pfs::PfsConfig{}};
  rt::Machine machine(3);

  std::atomic<std::uint64_t> mismatches{0};
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Collection<Sample> samples(&d);
    samples.forEachLocal([](Sample& smp, std::int64_t i) {
      smp.count = static_cast<int>(2 + i % 3);
      smp.readings = new double[static_cast<size_t>(smp.count)];
      for (int k = 0; k < smp.count; ++k) {
        smp.readings[k] = 0.1 * static_cast<double>(i) + k;
      }
      smp.flags = {static_cast<int>(i), 42};
      smp.station = "station-" + std::to_string(i);
      smp.calibration[0] = 2.0;
      smp.calibration[1] = static_cast<double>(i);
    });

    ds::OStream out(fs, &d, "samples");
    out << samples;
    out.write();

    coll::Collection<Sample> back(&d);
    ds::IStream in(fs, &d, "samples");
    in.read();
    in >> back;

    std::int64_t bad = 0;
    back.forEachLocal([&](Sample& smp, std::int64_t i) {
      if (smp.station != "station-" + std::to_string(i)) ++bad;
      if (smp.flags.size() != 2 || smp.flags[1] != 42) ++bad;
      if (smp.calibration[1] != static_cast<double>(i)) ++bad;
      for (int k = 0; k < smp.count; ++k) {
        if (smp.readings[k] != 0.1 * static_cast<double>(i) + k) ++bad;
      }
    });
    const auto total = node.allreduceSumU64(static_cast<std::uint64_t>(bad));
    if (node.id() == 0) mismatches.store(total);
    rt::rio::printf(node,
                    "round-trip with tool-generated inserters: %llu "
                    "mismatches across %lld elements\n",
                    static_cast<unsigned long long>(total),
                    static_cast<long long>(elements));
  });
  return mismatches.load() == 0 ? 0 : 1;
}
