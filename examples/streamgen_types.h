// Types for the stream-gen example. The build runs
//   streamgen streamgen_types.h -o streamgen_types_streams.h
// to generate the d/stream insertion/extraction functions for these types
// (see examples/CMakeLists.txt); streamgen_demo.cpp includes the generated
// header and round-trips a collection.
#pragma once

#include <string>
#include <vector>

namespace sgdemo {

struct Sample {
  int count = 0;
  double* readings = nullptr;  // pcxx:size(count)
  std::vector<int> flags;
  std::string station;
  double calibration[2] = {1.0, 0.0};
  void* scratch = nullptr;  // pcxx:skip

  ~Sample() { delete[] readings; }
};

}  // namespace sgdemo
