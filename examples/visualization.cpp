// Visualization output example (one of the paper's motivating tasks).
//
// "Interleaving ... is useful for writing files for communication with many
// visualization tools which require related data to be written
// contiguously" (paper §4.1). A distributed reaction-diffusion grid holds
// two aligned collections (density and temperature). Inserting both fields
// before one write() interleaves them, so each element's (density,
// temperature) pair is contiguous in the file — and this program then acts
// as the downstream "visualization tool": it re-reads the raw file bytes
// (not through the library) and renders an ASCII heat map, proving a
// format-aware consumer can use the data directly.
//
//   ./visualization [--width N] [--height N]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/util/options.h"

using namespace pcxx;

namespace {

struct Cell {
  double density = 0.0;
  double temperature = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("visualization",
               "interleaved field output for a visualization consumer");
  opts.add("width", "32", "grid width");
  opts.add("height", "12", "grid height");
  opts.add("dir", ".", "directory for the output file");
  if (!opts.parse(argc, argv)) return 0;
  const std::int64_t width = opts.getInt("width");
  const std::int64_t height = opts.getInt("height");
  const std::int64_t cells = width * height;

  pfs::PfsConfig fsConfig;
  fsConfig.backend = pfs::PfsConfig::Backend::Posix;
  fsConfig.dir = opts.get("dir");
  pfs::Pfs fs(fsConfig);

  rt::Machine machine(4);
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(cells, &P, coll::DistKind::Block);
    coll::Collection<Cell> grid(&d);
    coll::Collection<Cell> grid2(&d);  // an aligned second collection

    grid.forEachLocal([&](Cell& c, std::int64_t i) {
      const double x = static_cast<double>(i % width) /
                       static_cast<double>(width);
      const double y = static_cast<double>(i / width) /
                       static_cast<double>(height);
      c.density = std::exp(-8.0 * ((x - 0.3) * (x - 0.3) +
                                   (y - 0.5) * (y - 0.5)));
    });
    grid2.forEachLocal([&](Cell& c, std::int64_t i) {
      const double x = static_cast<double>(i % width) /
                       static_cast<double>(width);
      const double y = static_cast<double>(i / width) /
                       static_cast<double>(height);
      c.temperature = std::exp(-10.0 * ((x - 0.7) * (x - 0.7) +
                                        (y - 0.4) * (y - 0.4)));
    });

    // Interleaving: two field inserts, ONE write — corresponding values
    // land contiguously per element. The file is consumed below by a plain
    // std::ifstream, so it must stay unframed even when the environment
    // default-enables the pfs chunk codec.
    ds::StreamOptions so;
    so.codec = "none";
    ds::OStream s(fs, &d, "vizFile", so);
    s << grid.field(&Cell::density);
    s << grid2.field(&Cell::temperature);
    s.write();
    rt::rio::printf(node, "wrote %lld interleaved (density, temperature) "
                          "pairs to vizFile\n",
                    static_cast<long long>(cells));
  });

  // ---- The "visualization tool": consume the raw file ----------------------
  // Skip the file header + record header + size table, then read pairs of
  // doubles straight out of the data section.
  const std::string path = opts.get("dir") + "/vizFile";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
    return 1;
  }
  // File header (16) then record header prefix to learn its length.
  in.seekg(static_cast<std::streamoff>(ds::kFileHeaderBytes));
  Byte prefix[8];
  in.read(reinterpret_cast<char*>(prefix), 8);
  const std::uint64_t headerLen = ds::RecordHeader::encodedLength(prefix);
  const std::uint64_t dataStart = ds::kFileHeaderBytes + headerLen +
                                  8ull * static_cast<std::uint64_t>(cells);
  in.seekg(static_cast<std::streamoff>(dataStart));

  std::vector<double> pairs(static_cast<size_t>(cells) * 2);
  in.read(reinterpret_cast<char*>(pairs.data()),
          static_cast<std::streamsize>(pairs.size() * sizeof(double)));
  if (!in) {
    std::fprintf(stderr, "short read of interleaved data\n");
    return 1;
  }

  static const char kShades[] = " .:-=+*#%@";
  std::printf("\ncombined field (density + temperature), read directly from "
              "the interleaved bytes:\n");
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const size_t i = static_cast<size_t>(y * width + x);
      const double v = pairs[2 * i] + pairs[2 * i + 1];
      const int shade = std::min(9, static_cast<int>(v * 9.99));
      std::putchar(kShades[shade]);
    }
    std::putchar('\n');
  }
  return 0;
}
