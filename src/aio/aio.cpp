#include "aio/aio.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "util/error.h"

namespace pcxx::aio {

namespace {

void addStats(pfs::BgIoStats& into, const pfs::BgIoStats& delta) {
  into.writeOps += delta.writeOps;
  into.readOps += delta.readOps;
  into.bytesWritten += delta.bytesWritten;
  into.bytesRead += delta.bytesRead;
  into.retries += delta.retries;
  into.giveUps += delta.giveUps;
  into.backoffSeconds += delta.backoffSeconds;
  into.codecRawBytes += delta.codecRawBytes;
  into.codecStoredBytes += delta.codecStoredBytes;
  into.codecDedupHits += delta.codecDedupHits;
  into.codecDamagedChunks += delta.codecDamagedChunks;
  into.codecSeconds += delta.codecSeconds;
}

pfs::BgIoStats subStats(const pfs::BgIoStats& a, const pfs::BgIoStats& b) {
  pfs::BgIoStats d;
  d.writeOps = a.writeOps - b.writeOps;
  d.readOps = a.readOps - b.readOps;
  d.bytesWritten = a.bytesWritten - b.bytesWritten;
  d.bytesRead = a.bytesRead - b.bytesRead;
  d.retries = a.retries - b.retries;
  d.giveUps = a.giveUps - b.giveUps;
  d.backoffSeconds = a.backoffSeconds - b.backoffSeconds;
  d.codecRawBytes = a.codecRawBytes - b.codecRawBytes;
  d.codecStoredBytes = a.codecStoredBytes - b.codecStoredBytes;
  d.codecDedupHits = a.codecDedupHits - b.codecDedupHits;
  d.codecDamagedChunks = a.codecDamagedChunks - b.codecDamagedChunks;
  d.codecSeconds = a.codecSeconds - b.codecSeconds;
  return d;
}

constexpr const char* kAioAbortMessage =
    "machine aborted while a node was waiting on its aio pipeline";

/// Wait on `cv` until pred() holds. The caller must have registered
/// (lk's mutex, cv) with `machine` via AbortWaiterGuard BEFORE locking, so
/// Machine::abort() delivers an O(1) wake here; an abort rethrows the
/// machine's typed abort error. Returns false when `deadlineSeconds` of
/// wall time elapse first.
template <typename Pred>
bool boundedWait(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lk, double deadlineSeconds,
                 rt::Machine* machine, Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadlineSeconds));
  while (!pred()) {
    if (machine != nullptr && machine->aborted()) {
      machine->throwAbortError(kAioAbortMessage);
    }
    if (cv.wait_until(lk, deadline) == std::cv_status::timeout) {
      if (pred()) return true;
      if (machine != nullptr && machine->aborted()) {
        machine->throwAbortError(kAioAbortMessage);
      }
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(int capacity) : capacity_(capacity) {
  PCXX_REQUIRE(capacity >= 1, "BufferPool needs at least one buffer");
}

ByteBuffer BufferPool::acquire(double deadlineSeconds, rt::Machine* machine) {
  // Register with the abort registry before taking mu_ (lock order:
  // registry mutex, then the wait mutex).
  std::optional<rt::AbortWaiterGuard> guard;
  if (machine != nullptr) guard.emplace(*machine, mu_, cv_);
  std::unique_lock<std::mutex> lk(mu_);
  if (free_.empty() && created_ < capacity_) {
    ++created_;
    return ByteBuffer{};
  }
  if (!boundedWait(cv_, lk, deadlineSeconds, machine,
                   [&] { return !free_.empty(); })) {
    throw IoError("aio: staging-buffer pool exhausted past the drain "
                  "deadline (flusher stuck?)");
  }
  ByteBuffer buf = std::move(free_.front());
  free_.pop_front();
  return buf;
}

void BufferPool::release(ByteBuffer&& buf) {
  buf.clear();  // keeps capacity: steady state allocates nothing
  {
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(std::move(buf));
  }
  cv_.notify_one();
}

int BufferPool::allocations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return created_;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Writer::Writer(rt::Node& node, pfs::ParallelFilePtr file, Options opts)
    : node_(node),
      file_(std::move(file)),
      opts_(opts),
      pool_(opts.poolBuffers > 0 ? opts.poolBuffers : opts.queueDepth + 2) {
  PCXX_REQUIRE(opts_.queueDepth >= 1, "aio::Writer queue depth must be >= 1");
  PCXX_REQUIRE(file_ != nullptr, "aio::Writer needs an open file");
  flusher_ = std::thread([this] { flusherLoop(); });
}

Writer::~Writer() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cvFlusher_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // A failure still pending here was never observed by the node (close()
  // not called / unwound early). The file keeps its durable prefix; the
  // error cannot be thrown from a destructor.
}

ByteBuffer Writer::acquireBuffer() {
  return pool_.acquire(opts_.drainDeadlineSeconds, &node_.machine());
}

void Writer::submit(std::uint64_t offset, ByteBuffer&& buf,
                    double transferSeconds, bool syncAfter,
                    std::uint64_t flowId) {
  rethrowPending();
  obs::NodeObs* o = node_.obs();
#if !PCXX_OBS_ENABLED
  (void)o;
  (void)flowId;
#endif
  rt::VirtualClock& clock = node_.clock();

  // Modeled overlap timeline (deterministic; real scheduling irrelevant):
  // the flusher starts this block when it finishes the previous one, and
  // the producer stalls only when all queueDepth modeled slots are busy.
  const double now = clock.now();
  while (!completions_.empty() && completions_.front() <= now) {
    completions_.pop_front();
  }
  if (static_cast<int>(completions_.size()) >= opts_.queueDepth) {
    const double readyAt = completions_.front();
    completions_.pop_front();
    if (readyAt > now) {
      PCXX_OBS_SECONDS(o, AioStallSeconds, readyAt - now);
      clock.stallTo(readyAt);
    }
  }
  const double start = std::max(flusherReady_, clock.now());
  const double end = start + transferSeconds;
  flusherReady_ = end;
  completions_.push_back(end);
#if PCXX_OBS_ENABLED
  if (o != nullptr && o->trace != nullptr && !o->wallTime) {
    const int track = o->trace->flusherTrack(o->nodeId);
    o->trace->begin(track, "aio.flush", start);
    if (flowId != 0) {
      // Terminate the record's flow chain inside the modeled flush span:
      // the arrow lands on the background write that carried its bytes.
      o->trace->flowEnd(track, "ds.record", start, flowId);
    }
    o->trace->end(track, "aio.flush", end);
  }
#endif
  PCXX_OBS_COUNT(o, AioSubmits, 1);

  // Real handoff: bounded queue gives wall-clock backpressure. Whatever
  // way the wait ends short of enqueueing — deadline, abort, pending
  // background failure — `buf` goes back to the pool first, so a failed
  // submit never strands a staging-pool slot.
  {
    rt::AbortWaiterGuard guard(node_.machine(), mu_, cvProducer_);
    std::unique_lock<std::mutex> lk(mu_);
    const auto outstanding = [&] {
      return queue_.size() + (busy_ ? 1u : 0u);
    };
    bool queueReady = false;
    try {
      queueReady = boundedWait(cvProducer_, lk, opts_.drainDeadlineSeconds,
                               &node_.machine(), [&] {
                                 return error_ != nullptr ||
                                        outstanding() <
                                            static_cast<size_t>(
                                                opts_.queueDepth);
                               });
    } catch (...) {
      lk.unlock();
      pool_.release(std::move(buf));
      throw;
    }
    if (!queueReady) {
      lk.unlock();
      pool_.release(std::move(buf));
      throw IoError("aio: write-behind queue full past the drain deadline "
                    "(flusher stuck?)");
    }
    if (error_ != nullptr) {
      pool_.release(std::move(buf));
      std::rethrow_exception(error_);
    }
    queue_.push_back(Job{offset, std::move(buf), syncAfter});
    PCXX_OBS_HIST(o, AioQueueDepth, outstanding());
  }
  cvFlusher_.notify_one();
}

void Writer::drain() {
  obs::NodeObs* o = node_.obs();
#if !PCXX_OBS_ENABLED
  (void)o;
#endif
  PCXX_OBS_COUNT(o, AioDrains, 1);
  rt::VirtualClock& clock = node_.clock();
  if (flusherReady_ > clock.now()) {
    PCXX_OBS_SECONDS(o, AioDrainSeconds, flusherReady_ - clock.now());
    // stallTo, not syncTo: drain time is already charged to
    // aio.drain_seconds; routing the jump through waitedSeconds() would
    // double-count it in the collective wait timers too.
    clock.stallTo(flusherReady_);
  }
  completions_.clear();
  {
    rt::AbortWaiterGuard guard(node_.machine(), mu_, cvProducer_);
    std::unique_lock<std::mutex> lk(mu_);
    if (!boundedWait(cvProducer_, lk, opts_.drainDeadlineSeconds,
                     &node_.machine(),
                     [&] { return queue_.empty() && !busy_; })) {
      throw IoError(
          "aio: write-behind drain exceeded its deadline (flusher stuck?)");
    }
    foldStatsLocked();
  }
  rethrowPending();
}

void Writer::rethrowPending() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(mu_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

bool Writer::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return error_ != nullptr;
}

void Writer::foldStatsLocked() {
  const pfs::BgIoStats d = subStats(stats_, folded_);
  folded_ = stats_;
  obs::NodeObs* o = node_.obs();
  PCXX_OBS_COUNT(o, PfsRetries, d.retries);
  PCXX_OBS_COUNT(o, PfsGiveUps, d.giveUps);
  PCXX_OBS_SECONDS(o, PfsBackoffSeconds, d.backoffSeconds);
  PCXX_OBS_COUNT(o, AioBgWriteBytes, d.bytesWritten);
  PCXX_OBS_COUNT(o, PfsCodecRawBytes, d.codecRawBytes);
  PCXX_OBS_COUNT(o, PfsCodecStoredBytes, d.codecStoredBytes);
  PCXX_OBS_COUNT(o, PfsCodecDedupHits, d.codecDedupHits);
  PCXX_OBS_COUNT(o, PfsCodecDamagedChunks, d.codecDamagedChunks);
  PCXX_OBS_SECONDS(o, PfsCodecSeconds, d.codecSeconds);
#if !PCXX_OBS_ENABLED
  (void)o;
  (void)d;
#endif
}

void Writer::flusherLoop() {
  const int nodeId = node_.id();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cvFlusher_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // best-effort drain done
      continue;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    const bool drop = (error_ != nullptr);
    lk.unlock();

    pfs::BgIoStats delta;
    std::exception_ptr err;
    if (!drop) {
      // After a failure the remaining jobs are dropped, not written: the
      // file keeps its durable prefix exactly like a synchronous torn
      // write, and producers blocked on the pool wake up promptly.
      try {
        file_->writeAtBackground(nodeId, job.offset,
                                 std::span<const Byte>(job.buf), delta);
        if (job.syncAfter) file_->syncStorage();
      } catch (...) {
        err = std::current_exception();
      }
    }
    pool_.release(std::move(job.buf));

    lk.lock();
    addStats(stats_, delta);
    if (err && error_ == nullptr) error_ = err;
    busy_ = false;
    cvProducer_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Prefetcher
// ---------------------------------------------------------------------------

Prefetcher::Prefetcher(rt::Machine& machine, PlanFn plan, Options opts)
    : machine_(machine), plan_(std::move(plan)), opts_(opts) {
  PCXX_REQUIRE(opts_.depth >= 1, "aio::Prefetcher depth must be >= 1");
  PCXX_REQUIRE(plan_ != nullptr, "aio::Prefetcher needs a plan function");
  fetcher_ = std::thread([this] { fetchLoop(); });
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    ++generation_;  // discard an in-flight fetch
  }
  cv_.notify_all();
  if (fetcher_.joinable()) fetcher_.join();
}

void Prefetcher::start(std::uint64_t offset) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_.clear();
    nextOffset_ = offset;
    active_ = true;
    ++generation_;
  }
  cv_.notify_all();
}

void Prefetcher::invalidate() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_.clear();
    active_ = false;
    ++generation_;
  }
  cv_.notify_all();
}

std::optional<PrefetchedRecord> Prefetcher::consume(std::uint64_t offset) {
  rt::AbortWaiterGuard guard(machine_, mu_, cv_);
  std::unique_lock<std::mutex> lk(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts_.waitDeadlineSeconds));
  for (;;) {
    if (error_ != nullptr) {
      // A background failure (e.g. an injected crash surviving the retry
      // policy) belongs to the node thread; it must not be downgraded to
      // a silent miss.
      std::exception_ptr err = error_;
      error_ = nullptr;
      slots_.clear();
      active_ = false;
      ++generation_;
      std::rethrow_exception(err);
    }
    if (!slots_.empty()) {
      if (slots_.front().start == offset) {
        PrefetchedRecord rec = std::move(slots_.front());
        slots_.pop_front();
        cv_.notify_all();  // a slot freed: the chain may extend
        return rec;
      }
      break;  // chain points elsewhere (seek/rewind without invalidate)
    }
    // Wait while the fetch thread is working on (or has not yet picked up)
    // exactly this offset; anything else is a definitive miss.
    if (!(active_ &&
          (fetchingValid_ ? fetching_ == offset : nextOffset_ == offset))) {
      break;  // idle (EOF) or fetching a different chain
    }
    if (machine_.aborted()) {
      machine_.throwAbortError(kAioAbortMessage);
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    // The fetch thread notifies on every state change and abort() notifies
    // via the abort-waiter registration above, so a bare bounded wait
    // (no 50 ms polling) cannot miss a wake-up.
    cv_.wait_until(lk, deadline);
  }
  // Miss: stop the chain; the caller reads synchronously and restarts it.
  slots_.clear();
  active_ = false;
  ++generation_;
  return std::nullopt;
}

pfs::BgIoStats Prefetcher::takeStatsDelta() {
  std::lock_guard<std::mutex> lk(mu_);
  const pfs::BgIoStats d = subStats(stats_, folded_);
  folded_ = stats_;
  return d;
}

void Prefetcher::fetchLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] {
      return stop_ || (active_ && error_ == nullptr &&
                       slots_.size() < static_cast<size_t>(opts_.depth));
    });
    if (stop_) return;
    const std::uint64_t off = nextOffset_;
    const std::uint64_t gen = generation_;
    fetching_ = off;
    fetchingValid_ = true;
    lk.unlock();

    PrefetchedRecord rec;
    pfs::BgIoStats delta;
    std::exception_ptr err;
    bool ok = false;
    try {
      ok = plan_(off, rec, delta);
    } catch (...) {
      err = std::current_exception();
    }

    lk.lock();
    addStats(stats_, delta);
    fetchingValid_ = false;
    if (gen == generation_) {
      if (err != nullptr) {
        if (error_ == nullptr) error_ = err;
        active_ = false;
      } else if (!ok) {
        active_ = false;  // EOF / no complete record: chain parks here
      } else {
        nextOffset_ = rec.next;
        slots_.push_back(std::move(rec));
      }
    }
    cv_.notify_all();
  }
}

}  // namespace pcxx::aio
