// pcxx::aio — per-node asynchronous I/O pipelines.
//
// The d/stream layer is collective and synchronous by construction: every
// record write is a header + a node-order collective transfer. This module
// adds overlap without changing the file format or the collective
// discipline. The split is:
//
//   * Everything *collective* (header exchange, cursor reservation, size
//     allgathers) stays synchronous on the node thread — see
//     pfs::ParallelFile::reserveOrdered, which advances the shared cursor
//     exactly like writeOrdered but performs no storage I/O.
//
//   * Everything *positional* (this node's block landing at its reserved
//     offset, the next record's chunks being fetched ahead of time) moves
//     to a per-node helper thread that uses only the thread-safe
//     pfs background entry points (writeAtBackground / readAtBackground).
//
// Timing is modeled deterministically: the helper threads never touch a
// VirtualClock. Instead the owning node maintains a modeled flusher
// timeline (Writer) from the transfer durations reserveOrdered returns,
// stalling its own clock only when the modeled queue is full — so
// simulated overlap results are identical regardless of how the OS
// schedules the real threads. Real (wall-clock) backpressure is separate:
// the bounded job queue blocks the producer when full. Every such wait
// registers with the machine's abort-waiter registry (AbortWaiterGuard),
// so Machine::abort() wakes it in O(1) and the wait rethrows the
// machine's typed abort error — no polling, no deadlock.
//
// Failure semantics: a background flush failure is captured and rethrown
// on the node thread at the next submit() or at drain()/close() — never
// swallowed. After a failure the remaining queued jobs are dropped (the
// file keeps its durable prefix, matching the synchronous torn-write
// story). Thread-ownership rules are in runtime/machine.h.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "pfs/parallel_file.h"
#include "runtime/machine.h"
#include "util/bytes.h"

namespace pcxx::aio {

/// Fixed-capacity staging-buffer pool. acquire() hands out an empty
/// ByteBuffer, allocating only until `capacity` buffers exist; after that it
/// blocks until release() returns one. Released buffers are cleared but keep
/// their heap allocation, so steady-state operation allocates nothing.
///
/// Chunk-codec note: staged buffers always hold LOGICAL record bytes — the
/// pfs codec stage compresses below the storage op, on this pipeline's own
/// background thread, into scratch space of its own — so codec settings
/// never change the pool's sizing or the steady-state-allocation-zero
/// property.
class BufferPool {
 public:
  explicit BufferPool(int capacity);

  /// Take a buffer, blocking up to `deadlineSeconds` (wall time) when the
  /// pool is exhausted; throws IoError when the deadline passes. When
  /// `machine` is non-null the wait registers as an abort-waiter: an abort
  /// wakes it immediately and rethrows the machine's typed abort error.
  ByteBuffer acquire(double deadlineSeconds, rt::Machine* machine);

  /// Return a buffer (cleared, capacity kept). Thread-safe.
  void release(ByteBuffer&& buf);

  /// Buffers ever allocated (for the steady-state-allocation-zero tests).
  int allocations() const;
  int capacity() const { return capacity_; }

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ByteBuffer> free_;
  int created_ = 0;
};

/// Write-behind pipeline for one node of one open file.
///
/// The owning node thread is the only caller of every public member; the
/// internal flusher thread touches only the job queue, the pool, and the
/// pfs background entry points. Lifecycle: construct with the stream's
/// file, submit() filled buffers at their reserved offsets, drain() at
/// close/collective points, destroy (the destructor drains best-effort and
/// never throws — call drain() first to observe failures).
class Writer {
 public:
  struct Options {
    int queueDepth = 1;       ///< max buffers in flight (>= 1)
    int poolBuffers = 0;      ///< staging buffers (0 => queueDepth + 2)
    double drainDeadlineSeconds = 30.0;  ///< wall-clock bound on waits
  };

  Writer(rt::Node& node, pfs::ParallelFilePtr file, Options opts);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Take a staging buffer from the pool (blocks when all are in flight).
  ByteBuffer acquireBuffer();

  /// Hand back a buffer that will not be submitted after all.
  void releaseBuffer(ByteBuffer&& buf) { pool_.release(std::move(buf)); }

  /// Queue `buf` (obtained from acquireBuffer) for a background positional
  /// write at `offset`. `transferSeconds` is the modeled duration of this
  /// block's share of the transfer (OrderedReservation::transferSeconds or
  /// an independent-op estimate); it drives the modeled overlap timeline.
  /// `syncAfter` flushes the storage backend after this block lands
  /// (StreamOptions::syncOnWrite). A nonzero `flowId` terminates that trace
  /// flow chain inside the modeled flush span on the flusher track, linking
  /// the record's node-track span to its background write. Rethrows a
  /// pending background failure.
  void submit(std::uint64_t offset, ByteBuffer&& buf, double transferSeconds,
              bool syncAfter = false, std::uint64_t flowId = 0);

  /// Wait until every queued block is durable in storage; advance the
  /// node's virtual clock to the modeled flusher-idle time; fold the
  /// background accounting into the node's metrics; rethrow any captured
  /// failure. Collective callers must drain *before* their collective.
  void drain();

  /// Rethrow a captured background failure, if any (sticky).
  void rethrowPending();

  /// True once a background flush has failed (subsequent jobs are dropped).
  bool failed() const;

  /// Modeled time at which the flusher goes idle (virtual-time mode only).
  double modeledReadySeconds() const { return flusherReady_; }

  int bufferAllocations() const { return pool_.allocations(); }

 private:
  struct Job {
    std::uint64_t offset = 0;
    ByteBuffer buf;
    bool syncAfter = false;
  };

  void flusherLoop();
  void foldStatsLocked();  // caller holds mu_; node thread only

  rt::Node& node_;
  pfs::ParallelFilePtr file_;
  const Options opts_;
  BufferPool pool_;

  // Modeled flusher timeline — node thread only, no locking.
  double flusherReady_ = 0.0;
  std::deque<double> completions_;  // modeled end time per in-flight job

  // Real queue shared with the flusher thread.
  mutable std::mutex mu_;
  std::condition_variable cvProducer_;
  std::condition_variable cvFlusher_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  pfs::BgIoStats stats_;       // written by flusher under mu_
  pfs::BgIoStats folded_;      // portion already folded into node metrics
  std::thread flusher_;
};

/// One prefetched record: the raw sections a stream read needs, fetched by
/// the background thread. `start`/`next` are file offsets delimiting the
/// record (trailer included); the buffers hold the full encoded header and
/// this node's size-table and data chunks.
struct PrefetchedRecord {
  std::uint64_t start = 0;
  std::uint64_t next = 0;
  ByteBuffer headerBytes;
  ByteBuffer sizeChunk;
  ByteBuffer dataChunk;
  std::uint64_t bytesRead = 0;  ///< background bytes fetched
  int readOps = 0;              ///< background read ops issued
};

/// Parses-and-fetches one record starting at `offset` into `out` using only
/// thread-safe operations (readAtBackground + pure header decoding).
/// Returns false when no complete record starts there (EOF, damage): the
/// chain stops and the stream falls back to its synchronous path. Must not
/// touch any Node. Supplied by ds::IStream so aio stays below dstream.
using PlanFn = std::function<bool(std::uint64_t offset, PrefetchedRecord& out,
                                  pfs::BgIoStats& stats)>;

/// Read-ahead pipeline for one node of one open stream.
///
/// The background thread speculatively chains up to `depth` records from
/// the last start()/consume() point. consume(offset) returns the record at
/// `offset` when the chain has it (waiting briefly if the fetch is in
/// flight), or nullopt — a miss — when the chain is elsewhere; the caller
/// then reads synchronously and restarts the chain with start().
class Prefetcher {
 public:
  struct Options {
    int depth = 1;  ///< records fetched ahead (>= 1)
    double waitDeadlineSeconds = 30.0;  ///< wall-clock bound on waits
  };

  Prefetcher(rt::Machine& machine, PlanFn plan, Options opts);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// (Re)start the chain at `offset`, discarding other prefetched state.
  void start(std::uint64_t offset);

  /// Take the record at `offset` if prefetched (or actively being fetched,
  /// in which case this waits). nullopt = miss; the chain is stopped and
  /// must be restarted with start(). Rethrows a background failure (e.g.
  /// an injected crash) captured by the fetch thread.
  std::optional<PrefetchedRecord> consume(std::uint64_t offset);

  /// Stop the chain and discard prefetched records (rewind/skip/salvage).
  void invalidate();

  /// Background accounting accrued since the previous call (node thread).
  pfs::BgIoStats takeStatsDelta();

 private:
  void fetchLoop();

  rt::Machine& machine_;
  PlanFn plan_;
  const Options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PrefetchedRecord> slots_;
  bool active_ = false;           ///< chain running (stops at EOF/miss)
  std::uint64_t nextOffset_ = 0;  ///< next record start to fetch
  std::uint64_t fetching_ = 0;    ///< offset the fetch thread is working on
  bool fetchingValid_ = false;
  std::uint64_t generation_ = 0;  ///< bumped by start()/invalidate()
  bool stop_ = false;
  std::exception_ptr error_;
  pfs::BgIoStats stats_;
  pfs::BgIoStats folded_;
  std::thread fetcher_;
};

}  // namespace pcxx::aio
