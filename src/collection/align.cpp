#include "collection/align.h"

#include <cctype>
#include <cstdlib>

#include "util/error.h"

namespace pcxx::coll {
namespace {

/// Parse the bracketed expression of the template side of an ALIGN spec:
/// "i", "2*i", "i+3", "2*i-1", "i-1", ... into (stride, offset).
void parseAffine(const std::string& expr, std::int64_t& stride,
                 std::int64_t& offset) {
  stride = 1;
  offset = 0;
  std::string s;
  for (char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  }
  PCXX_REQUIRE(!s.empty(), "empty ALIGN index expression");

  const size_t iPos = s.find('i');
  PCXX_REQUIRE(iPos != std::string::npos,
               "ALIGN index expression must reference 'i'");

  // Coefficient: "<k>*" before 'i', optionally signed.
  std::string coef = s.substr(0, iPos);
  if (!coef.empty()) {
    PCXX_REQUIRE(coef.back() == '*',
                 "ALIGN index expression: expected '<k>*i'");
    coef.pop_back();
    PCXX_REQUIRE(!coef.empty(), "ALIGN index expression: missing coefficient");
    char* end = nullptr;
    stride = std::strtoll(coef.c_str(), &end, 10);
    PCXX_REQUIRE(end != nullptr && *end == '\0',
                 "ALIGN index expression: bad coefficient '" + coef + "'");
  }

  // Offset: "+<b>" or "-<b>" after 'i'.
  std::string rest = s.substr(iPos + 1);
  if (!rest.empty()) {
    PCXX_REQUIRE(rest[0] == '+' || rest[0] == '-',
                 "ALIGN index expression: expected '+<b>' or '-<b>' after i");
    char* end = nullptr;
    offset = std::strtoll(rest.c_str(), &end, 10);
    PCXX_REQUIRE(end != nullptr && *end == '\0',
                 "ALIGN index expression: bad offset '" + rest + "'");
  }
}

}  // namespace

Align::Align(std::int64_t size, std::int64_t stride, std::int64_t offset)
    : size_(size), stride_(stride), offset_(offset) {
  PCXX_REQUIRE(size >= 0, "Align size must be non-negative");
  PCXX_REQUIRE(stride != 0, "Align stride must be non-zero");
}

Align::Align(std::int64_t size, const std::string& spec) : size_(size) {
  PCXX_REQUIRE(size >= 0, "Align size must be non-negative");
  // Expected form: [ALIGN( lhs[i] , tmpl[<expr>] )]
  const size_t alignPos = spec.find("ALIGN");
  PCXX_REQUIRE(alignPos != std::string::npos,
               "alignment spec must contain ALIGN(...): '" + spec + "'");
  const size_t comma = spec.find(',', alignPos);
  PCXX_REQUIRE(comma != std::string::npos,
               "alignment spec missing ',': '" + spec + "'");
  const size_t lb = spec.find('[', comma);
  const size_t rb = spec.find(']', lb == std::string::npos ? comma : lb);
  PCXX_REQUIRE(lb != std::string::npos && rb != std::string::npos && rb > lb,
               "alignment spec missing template index: '" + spec + "'");
  parseAffine(spec.substr(lb + 1, rb - lb - 1), stride_, offset_);
  PCXX_REQUIRE(stride_ != 0, "Align stride must be non-zero");
}

void Align::encode(ByteWriter& w) const {
  w.i64(size_);
  w.i64(stride_);
  w.i64(offset_);
}

Align Align::decode(ByteReader& r) {
  const std::int64_t size = r.i64();
  const std::int64_t stride = r.i64();
  const std::int64_t offset = r.i64();
  if (size < 0 || stride == 0) {
    throw FormatError("bad alignment parameters in file");
  }
  return Align(size, stride, offset);
}

}  // namespace pcxx::coll
