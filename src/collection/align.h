// HPF-style alignment of a collection onto a distribution template.
//
// Mirrors the pC++ `Align a(12, "[ALIGN(dummy[i], d[i])]");` declaration
// (paper Figure 3). An alignment maps collection index i to distribution
// template index stride*i + offset; the owner of collection element i is
// then Distribution::ownerOf(align.map(i)). The identity alignment is the
// common case. The pC++ spec-string syntax is parsed for fidelity with the
// paper's examples; the affine form can also be given directly.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace pcxx::coll {

class Align {
 public:
  /// Affine alignment: collection index i maps to stride*i + offset.
  explicit Align(std::int64_t size, std::int64_t stride = 1,
                 std::int64_t offset = 0);

  /// Parse a pC++ alignment spec such as "[ALIGN(dummy[i], d[i])]",
  /// "[ALIGN(x[i], d[2*i+1])]", or "[ALIGN(x[i], d[i-1])]".
  Align(std::int64_t size, const std::string& spec);

  std::int64_t size() const { return size_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t offset() const { return offset_; }

  /// Template index of collection index `i`.
  std::int64_t map(std::int64_t i) const { return stride_ * i + offset_; }

  bool identity() const { return stride_ == 1 && offset_ == 0; }

  bool operator==(const Align& other) const {
    return size_ == other.size_ && stride_ == other.stride_ &&
           offset_ == other.offset_;
  }
  bool operator!=(const Align& other) const { return !(*this == other); }

  /// Stable on-disk encoding (part of every d/stream record header).
  void encode(ByteWriter& w) const;
  static Align decode(ByteReader& r);

 private:
  std::int64_t size_;
  std::int64_t stride_;
  std::int64_t offset_;
};

}  // namespace pcxx::coll
