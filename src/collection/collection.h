// Collection<T>: a distributed array of objects (the pC++ collection model).
//
// pC++ programs are SPMD: every node executes Processor_Main, so every node
// constructs the same Collection object and holds only its local elements.
// Element ownership follows the collection's Layout (Distribution + Align);
// local elements are stored in ascending global-index order. Object-parallel
// operations are expressed with forEachLocal, which applies a function to
// every local element concurrently across nodes — the SPMD rendering of
// pC++'s "concurrent application of a function to the elements".
//
// Example (paper Figure 3):
//
//   Processors P;
//   Distribution d(12, &P, DistKind::Cyclic);
//   Align a(12, "[ALIGN(dummy[i], d[i])]");
//   Collection<ParticleList> g(&d, &a);
//   g.forEachLocal([](ParticleList& p, std::int64_t i) { ... });
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "collection/layout.h"
#include "runtime/machine.h"
#include "util/error.h"

namespace pcxx::coll {

template <typename T, typename M>
class FieldRef;

template <typename T>
class Collection {
 public:
  using ElementType = T;

  /// Construct with a distribution and alignment (both non-owning; must
  /// outlive the collection). Must be called inside Machine::run().
  Collection(const Distribution* d, const Align* a)
      : node_(&rt::thisNode()), layout_(*requireNonNull(d), *requireAlign(a)) {
    init();
  }

  /// Identity alignment over the distribution's index space.
  explicit Collection(const Distribution* d)
      : node_(&rt::thisNode()), layout_(*requireNonNull(d)) {
    init();
  }

  /// Construct directly from a Layout.
  explicit Collection(Layout layout)
      : node_(&rt::thisNode()), layout_(std::move(layout)) {
    init();
  }

  rt::Node& node() const { return *node_; }
  const Layout& layout() const { return layout_; }
  const Distribution& distribution() const { return layout_.distribution(); }
  const Align& align() const { return layout_.align(); }

  /// Total number of elements across all nodes.
  std::int64_t size() const { return layout_.size(); }

  /// Number of elements on this node.
  std::int64_t localCount() const {
    return static_cast<std::int64_t>(local_.size());
  }

  /// The j-th local element (ascending global-index order).
  T& local(std::int64_t j) {
    PCXX_REQUIRE(j >= 0 && j < localCount(), "local element index range");
    return local_[static_cast<size_t>(j)];
  }
  const T& local(std::int64_t j) const {
    PCXX_REQUIRE(j >= 0 && j < localCount(), "local element index range");
    return local_[static_cast<size_t>(j)];
  }

  /// Global index of the j-th local element.
  std::int64_t globalIndexOf(std::int64_t j) const {
    PCXX_REQUIRE(j >= 0 && j < localCount(), "local element index range");
    return localGlobals_[static_cast<size_t>(j)];
  }

  /// Does this node own global element `g`?
  bool owns(std::int64_t g) const {
    return layout_.ownerOf(g) == node_->id();
  }

  /// Access a global element; must be owned by this node.
  T& at(std::int64_t g) {
    PCXX_REQUIRE(g >= 0 && g < size(), "global element index range");
    PCXX_REQUIRE(owns(g), "at(): element not local to this node");
    // Local elements are in ascending global order; binary search.
    const auto it =
        std::lower_bound(localGlobals_.begin(), localGlobals_.end(), g);
    PCXX_CHECK(it != localGlobals_.end() && *it == g);
    return local_[static_cast<size_t>(it - localGlobals_.begin())];
  }

  /// Apply fn(T&, globalIndex) to every local element. Combined with the
  /// SPMD execution of all nodes this is the object-parallel apply.
  template <typename F>
  void forEachLocal(F&& fn) {
    for (size_t j = 0; j < local_.size(); ++j) {
      fn(local_[j], localGlobals_[j]);
    }
  }

  template <typename F>
  void forEachLocal(F&& fn) const {
    for (size_t j = 0; j < local_.size(); ++j) {
      fn(local_[j], localGlobals_[j]);
    }
  }

  /// A reference to one field of every element, for single-field d/stream
  /// insertion/extraction: `s << g.field(&ParticleList::numberOfParticles)`
  /// renders the paper's `s << g.numberOfParticles`. (U is always T; it is
  /// a deduced parameter so the declaration stays valid for non-class T.)
  template <typename M, typename U = T>
  FieldRef<U, M> field(M U::*member) {
    static_assert(std::is_same_v<U, T>);
    return FieldRef<U, M>(this, member);
  }

 private:
  static const Distribution* requireNonNull(const Distribution* d) {
    PCXX_REQUIRE(d != nullptr, "Collection requires a Distribution");
    return d;
  }
  static const Align* requireAlign(const Align* a) {
    PCXX_REQUIRE(a != nullptr, "Collection requires an Align");
    return a;
  }

  void init() {
    localGlobals_ = layout_.localElements(node_->id());
    // Deque, not vector: elements need only be default-constructible
    // (pointer-owning element classes are typically neither copyable nor
    // movable), references stay stable, and deque<bool> — unlike
    // vector<bool> — yields real bool& references.
    local_ = std::deque<T>(localGlobals_.size());
  }

  rt::Node* node_;
  Layout layout_;
  std::deque<T> local_;
  std::vector<std::int64_t> localGlobals_;
};

/// One field of every element of a collection (see Collection::field).
template <typename T, typename M>
class FieldRef {
 public:
  FieldRef(Collection<T>* c, M T::*member) : collection_(c), member_(member) {}

  Collection<T>& collection() const { return *collection_; }
  M T::*member() const { return member_; }

  M& of(T& element) const { return element.*member_; }
  const M& of(const T& element) const { return element.*member_; }

 private:
  Collection<T>* collection_;
  M T::*member_;
};

}  // namespace pcxx::coll
