#include "collection/distribution.h"

#include <algorithm>

#include "util/error.h"

namespace pcxx::coll {

const char* distKindName(DistKind kind) {
  switch (kind) {
    case DistKind::Block: return "BLOCK";
    case DistKind::Cyclic: return "CYCLIC";
    case DistKind::BlockCyclic: return "BLOCK_CYCLIC";
  }
  return "?";
}

Distribution::Distribution(std::int64_t size, const Processors* procs,
                           DistKind kind, std::int64_t blockSize)
    : Distribution(size, procs != nullptr ? procs->count() : 1, kind,
                   blockSize) {
  PCXX_REQUIRE(procs != nullptr, "Distribution requires a Processors object");
}

Distribution::Distribution(std::int64_t size, int nprocs, DistKind kind,
                           std::int64_t blockSize)
    : size_(size), nprocs_(nprocs), kind_(kind), blockSize_(blockSize) {
  PCXX_REQUIRE(size >= 0, "Distribution size must be non-negative");
  PCXX_REQUIRE(nprocs >= 1, "Distribution requires at least one node");
  PCXX_REQUIRE(kind != DistKind::BlockCyclic || blockSize >= 1,
               "BLOCK_CYCLIC requires a positive block size");
  blockWidth_ = (size + nprocs - 1) / nprocs;
  if (blockWidth_ == 0) blockWidth_ = 1;
}

int Distribution::ownerOf(std::int64_t g) const {
  PCXX_REQUIRE(g >= 0 && g < size_, "ownerOf: index out of range");
  switch (kind_) {
    case DistKind::Block:
      return static_cast<int>(g / blockWidth_);
    case DistKind::Cyclic:
      return static_cast<int>(g % nprocs_);
    case DistKind::BlockCyclic:
      return static_cast<int>((g / blockSize_) % nprocs_);
  }
  throw InternalError("bad DistKind");
}

std::int64_t Distribution::localCount(int proc) const {
  PCXX_REQUIRE(proc >= 0 && proc < nprocs_, "localCount: bad node");
  switch (kind_) {
    case DistKind::Block: {
      const std::int64_t begin = std::min<std::int64_t>(
          static_cast<std::int64_t>(proc) * blockWidth_, size_);
      const std::int64_t end = std::min<std::int64_t>(
          (static_cast<std::int64_t>(proc) + 1) * blockWidth_, size_);
      return end - begin;
    }
    case DistKind::Cyclic: {
      const std::int64_t full = size_ / nprocs_;
      const std::int64_t rem = size_ % nprocs_;
      return full + (proc < rem ? 1 : 0);
    }
    case DistKind::BlockCyclic: {
      // Count indices g with (g / blockSize_) % nprocs_ == proc: full blocks
      // owned, minus the truncation of the overall last block if owned.
      if (size_ == 0) return 0;
      const std::int64_t nBlocks = (size_ + blockSize_ - 1) / blockSize_;
      const std::int64_t fullRounds = nBlocks / nprocs_;
      const std::int64_t remBlocks = nBlocks % nprocs_;
      const std::int64_t owned = fullRounds + (proc < remBlocks ? 1 : 0);
      const int lastOwner = static_cast<int>((nBlocks - 1) % nprocs_);
      const std::int64_t truncation = nBlocks * blockSize_ - size_;
      return owned * blockSize_ - (proc == lastOwner ? truncation : 0);
    }
  }
  throw InternalError("bad DistKind");
}

std::int64_t Distribution::globalToLocal(std::int64_t g) const {
  PCXX_REQUIRE(g >= 0 && g < size_, "globalToLocal: index out of range");
  switch (kind_) {
    case DistKind::Block:
      return g % blockWidth_;
    case DistKind::Cyclic:
      return g / nprocs_;
    case DistKind::BlockCyclic: {
      const std::int64_t blockIdx = g / blockSize_;
      const std::int64_t round = blockIdx / nprocs_;
      return round * blockSize_ + g % blockSize_;
    }
  }
  throw InternalError("bad DistKind");
}

std::int64_t Distribution::localToGlobal(int proc, std::int64_t local) const {
  PCXX_REQUIRE(proc >= 0 && proc < nprocs_, "localToGlobal: bad node");
  PCXX_REQUIRE(local >= 0 && local < localCount(proc),
               "localToGlobal: local index out of range");
  switch (kind_) {
    case DistKind::Block:
      return static_cast<std::int64_t>(proc) * blockWidth_ + local;
    case DistKind::Cyclic:
      return local * nprocs_ + proc;
    case DistKind::BlockCyclic: {
      const std::int64_t round = local / blockSize_;
      const std::int64_t blockIdx =
          round * nprocs_ + static_cast<std::int64_t>(proc);
      return blockIdx * blockSize_ + local % blockSize_;
    }
  }
  throw InternalError("bad DistKind");
}

bool Distribution::operator==(const Distribution& other) const {
  if (size_ != other.size_ || nprocs_ != other.nprocs_ ||
      kind_ != other.kind_) {
    return false;
  }
  if (kind_ == DistKind::BlockCyclic && blockSize_ != other.blockSize_) {
    return false;
  }
  return true;
}

void Distribution::encode(ByteWriter& w) const {
  w.i64(size_);
  w.u32(static_cast<std::uint32_t>(nprocs_));
  w.u8(static_cast<std::uint8_t>(kind_));
  w.i64(blockSize_);
}

Distribution Distribution::decode(ByteReader& r) {
  const std::int64_t size = r.i64();
  const int nprocs = static_cast<int>(r.u32());
  const std::uint8_t kindRaw = r.u8();
  const std::int64_t blockSize = r.i64();
  if (kindRaw > static_cast<std::uint8_t>(DistKind::BlockCyclic)) {
    throw FormatError("bad distribution kind in file: " +
                      std::to_string(kindRaw));
  }
  if (nprocs < 1 || size < 0 ||
      (static_cast<DistKind>(kindRaw) == DistKind::BlockCyclic &&
       blockSize < 1)) {
    throw FormatError("bad distribution parameters in file");
  }
  return Distribution(size, nprocs, static_cast<DistKind>(kindRaw),
                      blockSize);
}

}  // namespace pcxx::coll
