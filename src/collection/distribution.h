// HPF-style distributions of a one-dimensional index space over nodes.
//
// Mirrors the pC++ `Distribution d(12, &P, CYCLIC);` declaration (paper
// Figure 3). A Distribution is pure index math — it maps global element
// indices to (owner node, local index) and back — plus a stable on-disk
// encoding, because d/stream files store the writing distribution ahead of
// the data (paper §4.1 step 1) so readers can redistribute.
#pragma once

#include <cstdint>

#include "collection/processors.h"
#include "util/bytes.h"

namespace pcxx::coll {

enum class DistKind : std::uint8_t {
  Block = 0,        ///< contiguous blocks of ceil(size/nprocs)
  Cyclic = 1,       ///< element i on node i % nprocs
  BlockCyclic = 2,  ///< blocks of `blockSize` dealt round-robin
};

const char* distKindName(DistKind kind);

class Distribution {
 public:
  /// Distribute `size` indices over `procs` with the given layout.
  /// `blockSize` applies to BlockCyclic only.
  Distribution(std::int64_t size, const Processors* procs, DistKind kind,
               std::int64_t blockSize = 1);

  /// Construct from raw parameters (used when decoding from a file; does
  /// not require a machine context).
  Distribution(std::int64_t size, int nprocs, DistKind kind,
               std::int64_t blockSize);

  std::int64_t size() const { return size_; }
  int nprocs() const { return nprocs_; }
  DistKind kind() const { return kind_; }
  std::int64_t blockSize() const { return blockSize_; }

  /// Owning node of global index `g`.
  int ownerOf(std::int64_t g) const;

  /// Number of elements local to node `proc`.
  std::int64_t localCount(int proc) const;

  /// Position of global index `g` within its owner's local element array.
  std::int64_t globalToLocal(std::int64_t g) const;

  /// Global index of node `proc`'s `local`-th element.
  std::int64_t localToGlobal(int proc, std::int64_t local) const;

  bool operator==(const Distribution& other) const;
  bool operator!=(const Distribution& other) const { return !(*this == other); }

  /// Stable on-disk encoding (part of every d/stream record header).
  void encode(ByteWriter& w) const;
  static Distribution decode(ByteReader& r);

 private:
  std::int64_t size_;
  int nprocs_;
  DistKind kind_;
  std::int64_t blockSize_;     // BlockCyclic block; for Block, derived block
  std::int64_t blockWidth_;    // Block layout: ceil(size / nprocs)
};

}  // namespace pcxx::coll
