// Grid2D<T>: a two-dimensional distributed grid with variable-density rows.
//
// The paper motivates d/streams with "distributed grids of variable
// density". Grid2D renders that data structure over the 1-D collection
// base exactly the way pC++ builds complex structures over distributed
// arrays (§4: "a distributed array of objects with additional
// infrastructure supporting the implementation of arbitrary distributed
// data structures over the distributed array base"): the grid is a
// collection of Row objects distributed by row, and each row holds a
// dynamically sized strip of cells — so rows may be refined independently
// (variable density) and the whole grid streams through OStream/IStream
// like any collection.
#pragma once

#include <cstdint>
#include <vector>

#include "collection/collection.h"
#include "dstream/element_io.h"

namespace pcxx::coll {

/// One grid row: a variable-length strip of cells.
template <typename T>
struct GridRow {
  std::vector<T> cells;
};

template <typename T>
void pcxx_ds_insert(ds::ElementInserter& s, const GridRow<T>& row) {
  s << row.cells;
}

template <typename T>
void pcxx_ds_extract(ds::ElementExtractor& s, GridRow<T>& row) {
  s >> row.cells;
}

/// A 2-D grid distributed by rows. Rows start at `cols` cells each and can
/// be refined (resized) independently.
template <typename T>
class Grid2D {
 public:
  /// Distribute `rows` rows over the machine with `kind`; each row starts
  /// with `cols` default-constructed cells.
  Grid2D(std::int64_t rows, std::int64_t cols, const Processors* procs,
         DistKind kind = DistKind::Block)
      : rows_(rows),
        cols_(cols),
        dist_(rows, procs, kind),
        data_(&dist_) {
    PCXX_REQUIRE(rows >= 0 && cols >= 0, "Grid2D dimensions must be >= 0");
    data_.forEachLocal([cols](GridRow<T>& row, std::int64_t) {
      row.cells.resize(static_cast<size_t>(cols));
    });
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t initialCols() const { return cols_; }

  /// The underlying collection (for streaming: `s << grid.collection()`).
  Collection<GridRow<T>>& collection() { return data_; }
  const Distribution& distribution() const { return dist_; }

  /// Does this node own row `i`?
  bool ownsRow(std::int64_t i) const { return data_.owns(i); }

  /// Cells of a locally owned row (resizable: variable density).
  std::vector<T>& row(std::int64_t i) { return data_.at(i).cells; }

  /// Cell access on a locally owned row; bounds-checked against the row's
  /// CURRENT width.
  T& at(std::int64_t i, std::int64_t j) {
    std::vector<T>& r = row(i);
    PCXX_REQUIRE(j >= 0 && j < static_cast<std::int64_t>(r.size()),
                 "Grid2D column index out of range for this row's density");
    return r[static_cast<size_t>(j)];
  }

  /// Apply fn(rowIndex, cells) to every local row.
  template <typename F>
  void forEachLocalRow(F&& fn) {
    data_.forEachLocal([&fn](GridRow<T>& r, std::int64_t i) {
      fn(i, r.cells);
    });
  }

  /// Total cells on this node (varies with refinement).
  std::int64_t localCellCount() const {
    std::int64_t n = 0;
    data_.forEachLocal([&n](const GridRow<T>& r, std::int64_t) {
      n += static_cast<std::int64_t>(r.cells.size());
    });
    return n;
  }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  Distribution dist_;
  Collection<GridRow<T>> data_;
};

}  // namespace pcxx::coll
