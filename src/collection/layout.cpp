#include "collection/layout.h"

#include "util/error.h"

namespace pcxx::coll {

Layout::Layout(Distribution dist, Align align)
    : dist_(std::move(dist)), align_(std::move(align)) {
  // Every collection element must map inside the distribution's index
  // space. The affine map stride*i + offset is monotone in exact
  // arithmetic, so in-range endpoints bound every intermediate index —
  // but only if the endpoints themselves are computed without wraparound.
  // A crafted (or bit-flipped) stride can overflow int64 for intermediate
  // i while map(0) and map(size-1) both land back in range, which would
  // alias distinct elements onto one template index; compute the last
  // endpoint overflow-checked so that route is closed.
  if (align_.size() > 0) {
    const std::int64_t first = align_.map(0);
    std::int64_t last = 0;
    const bool overflow =
        __builtin_mul_overflow(align_.stride(), align_.size() - 1, &last) ||
        __builtin_add_overflow(last, align_.offset(), &last);
    PCXX_REQUIRE(!overflow && first >= 0 && first < dist_.size() &&
                     last >= 0 && last < dist_.size(),
                 "alignment maps elements outside the distribution");
  }
}

Layout::Layout(Distribution dist)
    : Layout(dist, Align(dist.size())) {}

bool Layout::closedForm() const {
  return align_.identity() && align_.size() == dist_.size();
}

std::int64_t Layout::localCount(int proc) const {
  PCXX_REQUIRE(proc >= 0, "localCount: bad node");
  // Nodes beyond the distribution's Processors set own nothing. This is
  // what lets a collection live on a SUBSET of the machine (the paper's
  // `Processors P` need not span all nodes) while d/stream operations stay
  // machine-collective.
  if (proc >= dist_.nprocs()) return 0;
  if (closedForm()) return dist_.localCount(proc);
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    if (ownerOf(i) == proc) ++count;
  }
  return count;
}

std::vector<std::int64_t> Layout::localElements(int proc) const {
  PCXX_REQUIRE(proc >= 0, "localElements: bad node");
  if (proc >= dist_.nprocs()) return {};
  std::vector<std::int64_t> out;
  if (closedForm()) {
    // Identity alignment: local order is the distribution's own, and
    // localToGlobal enumerates it ascending in O(1) per element.
    const std::int64_t n = dist_.localCount(proc);
    out.reserve(static_cast<size_t>(n));
    for (std::int64_t l = 0; l < n; ++l) {
      out.push_back(dist_.localToGlobal(proc, l));
    }
    return out;
  }
  out.reserve(static_cast<size_t>(localCount(proc)));
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    if (ownerOf(i) == proc) out.push_back(i);
  }
  return out;
}

std::vector<int> Layout::ownerTable() const {
  std::vector<int> owners(static_cast<size_t>(align_.size()));
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    owners[static_cast<size_t>(i)] = ownerOf(i);
  }
  return owners;
}

void Layout::encode(ByteWriter& w) const {
  dist_.encode(w);
  align_.encode(w);
}

Layout Layout::decode(ByteReader& r) {
  Distribution dist = Distribution::decode(r);
  Align align = Align::decode(r);
  try {
    return Layout(std::move(dist), std::move(align));
  } catch (const Error& e) {
    // The individual pieces decoded but cannot be combined into a layout:
    // the file's header is inconsistent. Reclassify so readers (and
    // salvage mode) see the malformed-file error type, not a caller bug.
    throw FormatError(std::string("record header layout is inconsistent: ") +
                      e.what());
  }
}

}  // namespace pcxx::coll
