#include "collection/layout.h"

#include "util/error.h"

namespace pcxx::coll {

Layout::Layout(Distribution dist, Align align)
    : dist_(std::move(dist)), align_(std::move(align)) {
  // Every collection element must map inside the distribution's index space.
  if (align_.size() > 0) {
    const std::int64_t first = align_.map(0);
    const std::int64_t last = align_.map(align_.size() - 1);
    PCXX_REQUIRE(first >= 0 && first < dist_.size() && last >= 0 &&
                     last < dist_.size(),
                 "alignment maps elements outside the distribution");
  }
}

Layout::Layout(Distribution dist)
    : Layout(dist, Align(dist.size())) {}

bool Layout::identityFastPath() const {
  return align_.identity() && align_.size() == dist_.size();
}

std::int64_t Layout::localCount(int proc) const {
  PCXX_REQUIRE(proc >= 0, "localCount: bad node");
  // Nodes beyond the distribution's Processors set own nothing. This is
  // what lets a collection live on a SUBSET of the machine (the paper's
  // `Processors P` need not span all nodes) while d/stream operations stay
  // machine-collective.
  if (proc >= dist_.nprocs()) return 0;
  if (identityFastPath()) return dist_.localCount(proc);
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    if (ownerOf(i) == proc) ++count;
  }
  return count;
}

std::vector<std::int64_t> Layout::localElements(int proc) const {
  PCXX_REQUIRE(proc >= 0, "localElements: bad node");
  if (proc >= dist_.nprocs()) return {};
  std::vector<std::int64_t> out;
  out.reserve(static_cast<size_t>(localCount(proc)));
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    if (ownerOf(i) == proc) out.push_back(i);
  }
  return out;
}

std::vector<int> Layout::ownerTable() const {
  std::vector<int> owners(static_cast<size_t>(align_.size()));
  for (std::int64_t i = 0; i < align_.size(); ++i) {
    owners[static_cast<size_t>(i)] = ownerOf(i);
  }
  return owners;
}

void Layout::encode(ByteWriter& w) const {
  dist_.encode(w);
  align_.encode(w);
}

Layout Layout::decode(ByteReader& r) {
  Distribution dist = Distribution::decode(r);
  Align align = Align::decode(r);
  return Layout(std::move(dist), std::move(align));
}

}  // namespace pcxx::coll
