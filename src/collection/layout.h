// Element-ownership layout of an aligned, distributed collection.
//
// A Layout combines a Distribution and an Align into the questions every
// layer above needs answered: which node owns collection element i, how
// many elements are local to a node, and the ascending-global-index order
// of a node's local elements. The d/stream record header stores the layout
// of the writing collection so a reader under a different node count or
// distribution can compute both sides and redistribute (paper §4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "collection/align.h"
#include "collection/distribution.h"
#include "util/bytes.h"

namespace pcxx::coll {

class Layout {
 public:
  Layout(Distribution dist, Align align);

  /// Identity-aligned layout over the distribution's own index space.
  explicit Layout(Distribution dist);

  const Distribution& distribution() const { return dist_; }
  const Align& align() const { return align_; }

  /// Number of collection elements.
  std::int64_t size() const { return align_.size(); }
  int nprocs() const { return dist_.nprocs(); }

  /// Owning node of collection element `i`.
  int ownerOf(std::int64_t i) const { return dist_.ownerOf(align_.map(i)); }

  /// True when per-element questions reduce to the Distribution's O(1)
  /// closed forms (identity alignment over the template's full index
  /// space). The redistribution planner keys its O(local) fast path on
  /// this; non-closed-form layouts fall back to one O(size) enumeration.
  bool closedForm() const;

  /// Number of elements local to `proc` (O(size) for non-closed-form
  /// layouts; O(1) for the closed-form fast path).
  std::int64_t localCount(int proc) const;

  /// Global indices owned by `proc`, ascending (defines local order).
  /// O(local) for closed-form layouts, O(size) otherwise.
  std::vector<std::int64_t> localElements(int proc) const;

  /// Owner of every element, indexed by global element index.
  std::vector<int> ownerTable() const;

  bool operator==(const Layout& other) const {
    return dist_ == other.dist_ && align_ == other.align_;
  }
  bool operator!=(const Layout& other) const { return !(*this == other); }

  void encode(ByteWriter& w) const;
  /// Decode a layout from its on-disk form. Parameter combinations that
  /// cannot describe a valid layout (alignment escaping the distribution's
  /// index space, affine overflow) throw FormatError — file bytes passed
  /// header framing checks but still lie, which is a format problem, not a
  /// caller bug.
  static Layout decode(ByteReader& r);

 private:
  Distribution dist_;
  Align align_;
};

}  // namespace pcxx::coll
