// Processors: the set of nodes a collection is distributed over.
//
// Mirrors the pC++ `Processors P;` declaration from the paper's Figure 3.
// In this reproduction a Processors object names the first `count` nodes of
// the current machine (the whole machine by default). It is a value type;
// every node of the SPMD program constructs an identical copy.
#pragma once

#include "runtime/machine.h"
#include "util/error.h"

namespace pcxx::coll {

class Processors {
 public:
  /// All nodes of the current machine (must be called inside Machine::run).
  Processors() : count_(rt::thisNode().nprocs()) {}

  /// The first `count` nodes of the current machine.
  explicit Processors(int count) : count_(count) {
    PCXX_REQUIRE(count >= 1, "Processors requires a positive count");
    PCXX_REQUIRE(count <= rt::thisNode().nprocs(),
                 "Processors count exceeds machine size");
  }

  int count() const { return count_; }

 private:
  int count_;
};

}  // namespace pcxx::coll
