#include "dsindex/dsindex.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"
#include "util/error.h"
#include "util/strfmt.h"

namespace pcxx::dsindex {
namespace {

/// Fixed prelude of the body before the entry list: magic + version +
/// flags + recordCount.
constexpr std::uint64_t kBodyPreludeBytes = 8 + 4 + 4 + 8;
/// Fixed part of one encoded entry (extents excluded).
constexpr std::uint64_t kEntryFixedBytes = 8 + 4 + 1 + 8 + 8 + 4 + 4;

bool magicMatches(std::span<const Byte> got, const char (&want)[9]) {
  return got.size() >= 8 && std::memcmp(got.data(), want, 8) == 0;
}

}  // namespace

ByteBuffer FileIndex::encodeBody() const {
  ByteBuffer out;
  ByteWriter w(out);
  w.bytes(std::span<const Byte>(
      reinterpret_cast<const Byte*>(kBodyMagic), 8));
  w.u32(kIndexVersion);
  w.u32(0);  // indexFlags, reserved
  w.u64(entries.size());
  for (const IndexEntry& e : entries) {
    w.u64(e.offset);
    w.u32(e.headerBytes);
    w.u8(e.recordFlags);
    w.u64(e.recordBytes);
    w.u64(e.dataBytes);
    w.u32(e.layoutDigest);
    w.u32(static_cast<std::uint32_t>(e.extents.size()));
    for (std::uint64_t x : e.extents) w.u64(x);
  }
  w.u32(crc32(std::span<const Byte>(out.data(), out.size())));
  return out;
}

ByteBuffer FileIndex::encodeFooter(std::uint64_t footerOffset) const {
  ByteBuffer out = encodeBody();
  const std::uint64_t bodyBytes = out.size();
  ByteBuffer tail;
  ByteWriter t(tail);
  t.u64(footerOffset);
  t.u64(bodyBytes);
  t.bytes(std::span<const Byte>(
      reinterpret_cast<const Byte*>(kTrailerMagic), 8));
  const std::uint32_t trailerCrc =
      crc32(std::span<const Byte>(tail.data(), tail.size()));
  ByteWriter w(out);
  w.u32(trailerCrc);
  w.bytes(std::span<const Byte>(tail.data(), tail.size()));
  return out;
}

FileIndex FileIndex::decodeBody(std::span<const Byte> body) {
  if (body.size() < kBodyPreludeBytes + 4) {
    throw FormatError("index body truncated");
  }
  if (!magicMatches(body, kBodyMagic)) {
    throw FormatError("index body magic mismatch");
  }
  const std::uint32_t storedCrc = decodeU32(body.data() + body.size() - 4);
  const std::uint32_t computed = crc32(body.subspan(0, body.size() - 4));
  if (storedCrc != computed) {
    throw FormatError(strfmt("index body checksum mismatch: stored %08x "
                             "computed %08x",
                             storedCrc, computed));
  }
  ByteReader r(body.subspan(0, body.size() - 4));
  r.skip(8);  // magic, checked above
  const std::uint32_t version = r.u32();
  if (version != kIndexVersion) {
    throw FormatError(strfmt("unsupported index version %u", version));
  }
  const std::uint32_t flags = r.u32();
  if (flags != 0) {
    throw FormatError(strfmt("unknown index flags 0x%x", flags));
  }
  const std::uint64_t count = r.u64();
  if (count > kMaxIndexRecords) {
    throw FormatError(strfmt("index record count %llu out of bounds",
                             static_cast<unsigned long long>(count)));
  }
  FileIndex index;
  index.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    IndexEntry e;
    e.offset = r.u64();
    e.headerBytes = r.u32();
    e.recordFlags = r.u8();
    e.recordBytes = r.u64();
    e.dataBytes = r.u64();
    e.layoutDigest = r.u32();
    const std::uint32_t nodes = r.u32();
    if (nodes > kMaxIndexWriterNodes) {
      throw FormatError(strfmt("index extent count %u out of bounds", nodes));
    }
    e.extents.reserve(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) e.extents.push_back(r.u64());
    index.entries.push_back(std::move(e));
  }
  if (r.remaining() != 0) {
    throw FormatError("index body has trailing bytes");
  }
  return index;
}

std::string validateIndex(const FileIndex& index, std::uint64_t dataStart,
                          std::uint64_t footerOffset) {
  std::uint64_t pos = dataStart;
  for (std::size_t i = 0; i < index.entries.size(); ++i) {
    const IndexEntry& e = index.entries[i];
    if (e.offset != pos) {
      return strfmt("entry %zu offset %llu does not continue the chain at "
                    "%llu",
                    i, static_cast<unsigned long long>(e.offset),
                    static_cast<unsigned long long>(pos));
    }
    if (e.headerBytes < 12) {
      // magic + length + crc is the floor of any encoded RecordHeader;
      // readers size buffers (and an 8-byte prefix span) from this field.
      return strfmt("entry %zu header length %u too small for a record "
                    "header",
                    i, e.headerBytes);
    }
    if (e.recordBytes < e.headerBytes ||
        e.recordBytes - e.headerBytes < e.dataBytes) {
      return strfmt("entry %zu record length %llu too small for header and "
                    "data",
                    i, static_cast<unsigned long long>(e.recordBytes));
    }
    std::uint64_t sum = 0;
    for (std::uint64_t x : e.extents) sum += x;
    if (sum != e.dataBytes) {
      return strfmt("entry %zu extents sum to %llu, dataBytes is %llu", i,
                    static_cast<unsigned long long>(sum),
                    static_cast<unsigned long long>(e.dataBytes));
    }
    if (e.recordBytes == 0 || e.end() < e.offset) {
      return strfmt("entry %zu has degenerate extent", i);
    }
    pos = e.end();
    if (pos > footerOffset) {
      return strfmt("entry %zu runs past the footer at %llu", i,
                    static_cast<unsigned long long>(footerOffset));
    }
  }
  if (pos != footerOffset) {
    return strfmt("index covers [%llu, %llu) but the footer starts at %llu",
                  static_cast<unsigned long long>(dataStart),
                  static_cast<unsigned long long>(pos),
                  static_cast<unsigned long long>(footerOffset));
  }
  return {};
}

ProbeResult probeFooter(const ReadFn& read, std::uint64_t fileSize,
                        std::uint64_t dataStart) {
  ProbeResult out;
  if (fileSize < dataStart + kTrailerBytes) {
    out.status = ProbeStatus::Absent;
    out.reason = "file too small to carry an index footer";
    return out;
  }
  ByteBuffer trailer(static_cast<std::size_t>(kTrailerBytes));
  const std::uint64_t got =
      read(fileSize - kTrailerBytes, std::span<Byte>(trailer));
  if (got != kTrailerBytes) {
    out.status = ProbeStatus::Absent;
    out.reason = "short read at end of file";
    return out;
  }
  std::span<const Byte> t(trailer);
  if (!magicMatches(t.subspan(20), kTrailerMagic)) {
    out.status = ProbeStatus::Absent;
    out.reason = "no index trailer magic at end of file";
    return out;
  }
  const std::uint32_t storedCrc = decodeU32(t.data());
  const std::uint32_t computed = crc32(t.subspan(4));
  if (storedCrc != computed) {
    out.status = ProbeStatus::Corrupt;
    out.reason = strfmt("index trailer checksum mismatch: stored %08x "
                        "computed %08x",
                        storedCrc, computed);
    return out;
  }
  const std::uint64_t footerOffset = decodeU64(t.data() + 4);
  const std::uint64_t bodyBytes = decodeU64(t.data() + 12);
  if (footerOffset < dataStart ||
      bodyBytes > fileSize - kTrailerBytes ||
      footerOffset != fileSize - kTrailerBytes - bodyBytes) {
    out.status = ProbeStatus::Corrupt;
    out.reason = strfmt("index trailer geometry out of bounds: footer at "
                        "%llu, body %llu bytes, file %llu bytes",
                        static_cast<unsigned long long>(footerOffset),
                        static_cast<unsigned long long>(bodyBytes),
                        static_cast<unsigned long long>(fileSize));
    return out;
  }
  // From here the trailer is self-consistent: footerOffset marks the exact
  // end of the record chain even if the body below fails.
  out.haveFooterOffset = true;
  out.footerOffset = footerOffset;
  ByteBuffer body(static_cast<std::size_t>(bodyBytes));
  const std::uint64_t bodyGot = read(footerOffset, std::span<Byte>(body));
  if (bodyGot != bodyBytes) {
    out.status = ProbeStatus::Corrupt;
    out.reason = "short read of index body";
    return out;
  }
  try {
    out.index = FileIndex::decodeBody(std::span<const Byte>(body));
  } catch (const FormatError& e) {
    out.status = ProbeStatus::Corrupt;
    out.reason = e.what();
    return out;
  }
  const std::string geometry = validateIndex(out.index, dataStart,
                                             footerOffset);
  if (!geometry.empty()) {
    out.status = ProbeStatus::Corrupt;
    out.reason = geometry;
    out.index = FileIndex{};
    return out;
  }
  out.status = ProbeStatus::Valid;
  return out;
}

}  // namespace pcxx::dsindex
