// pcxx::dsindex — the d/stream index footer (record table-of-contents).
//
// A d/stream file is a replay-only record chain: locating record k means
// walking k headers. The index footer turns checkpoint files into
// queryable datasets: on OStream::close() the writer appends a
// self-describing footer — per-record offsets and byte lengths, per-node
// extent tables, a layout digest and a record count, CRC-protected —
// terminated by a fixed-size trailer a reader finds by seeking to EOF.
//
// The footer is an ACCELERATOR, never a format break: readers that find no
// footer (every pre-footer file), or whose footer fails validation, fall
// back to the chain replay that has always worked. The record chain's bytes
// are untouched; `formatVersion` stays 1 (docs/FORMAT.md, "Index footer").
//
// Byte layout (all little-endian):
//
//   Body (at footerOffset):
//     u8[8]  bodyMagic     "PCXXDIDX"
//     u32    indexVersion  1
//     u32    indexFlags    0 (reserved; unknown bits reject the footer)
//     u64    recordCount
//     recordCount x Entry:
//       u64  offset        file offset of the record header
//       u32  headerBytes   encoded RecordHeader length
//       u8   recordFlags   the record's flag byte (trailer presence)
//       u64  recordBytes   header + size table + data + trailer
//       u64  dataBytes     the record's Data section length
//       u32  layoutDigest  CRC-32 of the encoded writer Layout
//       u32  writerNodes   extent count
//       writerNodes x u64  per-writer-node data bytes, node order
//     u32    bodyCrc       CRC-32 of every preceding body byte
//
//   Trailer (last 28 bytes of the file):
//     u32    trailerCrc    CRC-32 of the following 24 bytes
//     u64    footerOffset  file offset of the body
//     u64    bodyBytes     body length (crc included)
//     u8[8]  trailerMagic  "PCXXDIXT"
//
// The trailer is self-checksummed so a reader can trust `footerOffset` (=
// the exact end of the record chain) even when the body was damaged: a
// corrupt-footer file still reads its records cleanly, and only a damaged
// *trailer* degrades end-of-chain detection to "end of file".
//
// This module is storage-agnostic: probeFooter() takes a read callback, so
// the same validation serves IStream (pfs::ParallelFile), the offline
// inspector (pfs::StorageBackend), and tests fuzzing raw buffers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace pcxx::dsindex {

inline constexpr std::uint32_t kIndexVersion = 1;
inline constexpr std::uint64_t kTrailerBytes = 28;
inline constexpr char kBodyMagic[9] = "PCXXDIDX";
inline constexpr char kTrailerMagic[9] = "PCXXDIXT";

/// Sanity bounds rejecting garbage early (mirrors the record header's
/// bounded decode): no real footer exceeds them.
inline constexpr std::uint64_t kMaxIndexRecords = 1ull << 24;
inline constexpr std::uint32_t kMaxIndexWriterNodes = 1u << 20;

/// One record's index entry.
struct IndexEntry {
  std::uint64_t offset = 0;       ///< file offset of the record header
  std::uint32_t headerBytes = 0;  ///< encoded RecordHeader length
  std::uint8_t recordFlags = 0;   ///< the record's flag byte
  std::uint64_t recordBytes = 0;  ///< header + size table + data + trailer
  std::uint64_t dataBytes = 0;    ///< Data section length
  std::uint32_t layoutDigest = 0; ///< CRC-32 of the encoded writer Layout
  std::vector<std::uint64_t> extents;  ///< per-writer-node data bytes

  std::uint64_t end() const { return offset + recordBytes; }
  bool operator==(const IndexEntry&) const = default;
};

/// The decoded footer body: one entry per record, in file order.
struct FileIndex {
  std::vector<IndexEntry> entries;

  /// Encode the footer body (magic .. bodyCrc).
  ByteBuffer encodeBody() const;

  /// Encode body + trailer, ready to append at `footerOffset`.
  ByteBuffer encodeFooter(std::uint64_t footerOffset) const;

  /// Decode + CRC-verify a footer body. Throws FormatError on any damage
  /// (bad magic, unknown version/flags, bounds, checksum).
  static FileIndex decodeBody(std::span<const Byte> body);

  bool operator==(const FileIndex&) const = default;
};

enum class ProbeStatus {
  Valid,   ///< footer present and fully verified
  Absent,  ///< no footer (pre-footer file, or file too small)
  Corrupt, ///< footer bytes present but failed validation
};

/// Result of probing a file's tail for an index footer.
struct ProbeResult {
  ProbeStatus status = ProbeStatus::Absent;
  std::string reason;  ///< why the footer was rejected (Corrupt/Absent)
  /// True when the self-checksummed trailer was intact and its offsets are
  /// in bounds: `footerOffset` is then the exact end of the record chain
  /// even if the body itself is damaged.
  bool haveFooterOffset = false;
  std::uint64_t footerOffset = 0;
  FileIndex index;  ///< populated only when status == Valid
};

/// Positional read callback: fill `out` from `offset`, return bytes read
/// (fewer than requested only at end of file).
using ReadFn =
    std::function<std::uint64_t(std::uint64_t offset, std::span<Byte> out)>;

/// Probe a file of `fileSize` bytes for an index footer. `dataStart` is the
/// first possible record offset (kFileHeaderBytes for d/stream files).
/// Never throws on damaged footer bytes — damage is a ProbeResult, because
/// every consumer must be able to fall back to chain replay.
ProbeResult probeFooter(const ReadFn& read, std::uint64_t fileSize,
                        std::uint64_t dataStart);

/// Structural validation of a decoded index against the chain geometry:
/// entries contiguous from `dataStart`, last entry ending exactly at
/// `footerOffset`, extents summing to each entry's dataBytes. Returns an
/// empty string when consistent, else the first violation.
std::string validateIndex(const FileIndex& index, std::uint64_t dataStart,
                          std::uint64_t footerOffset);

}  // namespace pcxx::dsindex
