#include "dslint/analyzer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dslint/protocol.h"
#include "dslint/symmetry.h"
#include "streamgen/lexer.h"
#include "streamgen/parser.h"
#include "util/error.h"

namespace pcxx::dslint {
namespace {

/// Positions in a FormatError already lead with "file:line:col:" (the
/// stream-gen front end formats them via util/srcpos.h); strip the error
/// class tag so DS001 messages do not read "format error: file:...".
std::string stripErrorTag(const std::string& what) {
  static const std::string kTag = "format error: ";
  if (what.rfind(kTag, 0) == 0) return what.substr(kTag.size());
  return what;
}

/// D3: unannotated pointer fields in streamed types.
///
/// streamgen itself only emits a TODO comment for these (paper §4.2: the
/// generator produces "comment statements allowing the programmer to
/// specify exactly how the pointers should be handled"). Here the silence
/// becomes a diagnostic — but only for types that are demonstrably
/// streamed: the TU declares an inserter or extractor for them and the
/// hand-written bodies never touch the field. With --all-types every
/// unannotated pointer in every struct is reported (header mode, where the
/// stream functions live in generated code).
void checkPointerFields(const sg::ParsedUnit& unit,
                        const std::map<std::string, StreamFns>& fns,
                        const AnalyzerOptions& options,
                        DiagnosticEngine& diags) {
  for (const sg::StructDef& def : unit.structs) {
    const StreamFns* sf = nullptr;
    if (auto it = fns.find(def.name); it != fns.end()) sf = &it->second;
    const bool streamed = sf && (sf->hasInserter || sf->hasExtractor);
    if (!options.allTypes && !streamed) continue;
    for (const sg::Field& f : def.fields) {
      if (f.category != sg::FieldCategory::UnknownPointer) continue;
      if (sf && sf->referencedFields.count(f.name)) continue;
      std::string msg = "pointer field '" + f.name + "' of streamed type '" +
                        def.name +
                        "' has no pcxx:size/pcxx:skip annotation";
      if (streamed) {
        msg += " and is not handled by the hand-written stream functions";
      }
      msg += "; it would be streamed as a raw address";
      diags.error("DS301", unit.file, f.line, f.col, msg);
    }
  }
}

}  // namespace

void analyzeSource(const std::string& source, const std::string& file,
                   const AnalyzerOptions& options, DiagnosticEngine& diags) {
  sg::TokenStream tokens;
  try {
    tokens = sg::lex(source, file);
  } catch (const FormatError& e) {
    diags.error("DS001", file, 1, 1,
                "cannot lex translation unit: " + stripErrorTag(e.what()));
    return;
  }

  // D1 + D4 + D5 (and the interprocedural summary layer) need only the
  // token stream.
  ProtocolOptions protoOpts;
  protoOpts.strict = options.strict;
  analyzeProtocol(tokens, diags, protoOpts);

  // D2 and the referenced-field set for D3.
  const std::map<std::string, StreamFns> fns = collectStreamFns(tokens);
  checkSymmetry(fns, file, diags);

  // D3 needs struct definitions. The parser skips unknown constructs, so
  // full client TUs normally parse; if one does not, report it rather than
  // silently skipping the pointer check.
  try {
    const sg::ParsedUnit unit = sg::parse(tokens);
    checkPointerFields(unit, fns, options, diags);
  } catch (const FormatError& e) {
    diags.warning("DS001", file, 1, 1,
                  "pointer-annotation check skipped, cannot parse "
                  "translation unit: " +
                      stripErrorTag(e.what()));
  }
}

bool analyzeFile(const std::string& path, const AnalyzerOptions& options,
                 DiagnosticEngine& diags) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    diags.error("DS001", path, 1, 1, "is a directory, not a source file");
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diags.error("DS001", path, 1, 1, "cannot open file");
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    diags.error("DS001", path, 1, 1, "cannot read file");
    return false;
  }
  analyzeSource(buf.str(), path, options, diags);
  return true;
}

}  // namespace pcxx::dslint
