// dslint: static protocol and inserter-symmetry analysis for d/stream
// client code (the compiler support the paper delegates to Sage++ in §4.2,
// rebuilt as a standalone pass over this repo's stream-gen front end).
//
// One call analyzes one translation unit and appends diagnostics:
//   D1 (DS101..DS107)  d/stream protocol violations   — protocol.h
//   D2 (DS201..DS203)  inserter/extractor asymmetry   — symmetry.h
//   D3 (DS301)         unannotated pointer fields in streamed types
//   D4 (DS401, DS402)  interleave / alignment misuse  — protocol.h
//   D5 (DS501..DS503)  collective divergence          — protocol.h
//   DS108/DS109        interprocedural summaries      — summary.h
#pragma once

#include <string>

#include "dslint/diagnostics.h"

namespace pcxx::dslint {

struct AnalyzerOptions {
  /// Report DS301 for every struct with unannotated pointer fields, not
  /// just those with a visible inserter/extractor. For header analysis,
  /// where the stream functions live in a generated file.
  bool allTypes = false;
  /// Emit DS109 notes where a d/stream escapes to unanalyzed code and
  /// protocol tracking is dropped (--strict).
  bool strict = false;
};

/// Analyze one translation unit. `file` names the source in diagnostics.
/// Never throws on malformed input: unparseable sources produce a DS001
/// diagnostic instead.
void analyzeSource(const std::string& source, const std::string& file,
                   const AnalyzerOptions& options, DiagnosticEngine& diags);

/// Convenience: read `path` and analyze it. Returns false (with a DS001
/// diagnostic) when the file cannot be read.
bool analyzeFile(const std::string& path, const AnalyzerOptions& options,
                 DiagnosticEngine& diags);

}  // namespace pcxx::dslint
