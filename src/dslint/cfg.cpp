#include "dslint/cfg.h"

#include <algorithm>

namespace pcxx::dslint {

using sg::TokKind;
using sg::Token;

bool isReadModeEvent(EventKind e) {
  return e == EventKind::Read || e == EventKind::UnsortedRead ||
         e == EventKind::SkipRecord || e == EventKind::Rewind ||
         e == EventKind::Seek || e == EventKind::Extract;
}

bool isWriteModeEvent(EventKind e) {
  return e == EventKind::Insert || e == EventKind::Write;
}

bool isCollectiveEvent(EventKind e) {
  switch (e) {
    case EventKind::Write:
    case EventKind::Read:
    case EventKind::UnsortedRead:
    case EventKind::SkipRecord:
    case EventKind::Rewind:
    case EventKind::Seek:
    case EventKind::Close:
      return true;
    case EventKind::Insert:
    case EventKind::Extract:
    case EventKind::Use:
      return false;
  }
  return false;
}

const char* eventName(EventKind e) {
  switch (e) {
    case EventKind::Insert: return "<<";
    case EventKind::Write: return "write()";
    case EventKind::Read: return "read()";
    case EventKind::UnsortedRead: return "unsortedRead()";
    case EventKind::SkipRecord: return "skipRecord()";
    case EventKind::Rewind: return "rewind()";
    case EventKind::Seek: return "seekRecord()";
    case EventKind::Extract: return ">>";
    case EventKind::Close: return "close()";
    case EventKind::Use: return "use";
  }
  return "?";
}

namespace {

/// Identifiers that denote node identity by convention (paper §2: `this`
/// inside an element, exposed here as the runtime's node handle).
bool isNodeIdentityIdent(const std::string& s) {
  return s == "thisNode" || s == "myNode" || s == "myRank" ||
         s == "nodeId" || s == "node_id" || s == "rank";
}

// -- the parser ---------------------------------------------------------------

class Parser {
 public:
  Parser(const sg::TokenStream& ts, const std::set<std::string>& helpers,
         const std::vector<PreStream>& params, size_t begin, size_t end)
      : toks_(ts.tokens), helpers_(helpers), pos_(begin),
        end_(std::min(end, ts.tokens.size())) {
    scopes_.emplace_back();
    for (const PreStream& p : params) {
      scopes_.back().streams.insert(p.name);
      // No declOrder entry: parameters have no ScopeEnd (the caller owns
      // the stream) and no StreamDecl (their state is symbolic).
    }
  }

  std::unique_ptr<Stmt> run() {
    auto root = std::make_unique<Stmt>();
    root->kind = Stmt::Kind::Seq;
    while (!atEnd()) {
      if (cur().isSymbol("}")) {
        advance();  // stray; keep walking
        continue;
      }
      parseStatement(*root);
    }
    emitScopeEnds(*root, lastToken());
    scopes_.pop_back();
    return root;
  }

 private:
  struct Scope {
    std::set<std::string> streams;
    std::set<std::string> colls;
    std::vector<std::string> declOrder;  ///< streams declared here, for ~
  };

  // -- token helpers ----------------------------------------------------------

  const Token& cur() const { return toks_[std::min(pos_, end_ - 1)]; }
  const Token& peek(size_t ahead = 1) const {
    return toks_[std::min(pos_ + ahead, end_ - 1)];
  }
  const Token& lastToken() const { return toks_[end_ - 1]; }
  void advance() {
    if (pos_ + 1 < end_) ++pos_;
    else pos_ = end_;
  }
  bool atEnd() const {
    return pos_ >= end_ || toks_[pos_].is(TokKind::EndOfFile);
  }

  /// True at a `<<` / `>>` operator: the lexer emits two adjacent one-char
  /// symbol tokens (only "::" is fused).
  bool atShiftOp(char c) const {
    const std::string s(1, c);
    return cur().isSymbol(s) && peek().isSymbol(s) &&
           peek().line == cur().line && peek().col == cur().col + 1;
  }

  void skipAngles() {
    advance();  // '<'
    int depth = 1;
    while (depth > 0 && !atEnd()) {
      if (cur().isSymbol("<")) ++depth;
      if (cur().isSymbol(">")) --depth;
      advance();
    }
  }

  // -- scope helpers ----------------------------------------------------------

  bool isStream(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->streams.count(name)) return true;
    }
    return false;
  }
  bool isColl(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->colls.count(name)) return true;
    }
    return false;
  }

  /// Append an action to the trailing Actions stmt of `parent` (creating
  /// one as needed).
  void emit(Stmt& parent, Action a) {
    if (parent.children.empty() ||
        parent.children.back()->kind != Stmt::Kind::Actions) {
      auto run = std::make_unique<Stmt>();
      run->kind = Stmt::Kind::Actions;
      run->line = a.line;
      run->col = a.col;
      parent.children.push_back(std::move(run));
    }
    parent.children.back()->actions.push_back(std::move(a));
  }

  void emitScopeEnds(Stmt& parent, const Token& at) {
    Scope& s = scopes_.back();
    for (auto it = s.declOrder.rbegin(); it != s.declOrder.rend(); ++it) {
      Action a;
      a.kind = Action::Kind::ScopeEnd;
      a.name = *it;
      a.line = at.line;
      a.col = at.col;
      emit(parent, std::move(a));
    }
  }

  // -- statements -------------------------------------------------------------

  /// cur() == '{': parse the compound statement into a new Seq child.
  void parseBlock(Stmt& parent) {
    auto seq = std::make_unique<Stmt>();
    seq->kind = Stmt::Kind::Seq;
    seq->line = cur().line;
    seq->col = cur().col;
    scopes_.emplace_back();
    advance();  // '{'
    while (!atEnd() && !cur().isSymbol("}")) {
      parseStatement(*seq);
    }
    const Token closing = cur();
    if (cur().isSymbol("}")) advance();
    emitScopeEnds(*seq, closing);
    scopes_.pop_back();
    parent.children.push_back(std::move(seq));
  }

  /// A control-flow arm: a compound statement or one statement; either way
  /// variables it declares die at its end. Returns the arm as a Seq.
  std::unique_ptr<Stmt> parseControlled() {
    auto holder = std::make_unique<Stmt>();
    holder->kind = Stmt::Kind::Seq;
    holder->line = cur().line;
    holder->col = cur().col;
    if (cur().isSymbol("{")) {
      parseBlock(*holder);
      return holder;
    }
    scopes_.emplace_back();
    parseStatement(*holder);
    emitScopeEnds(*holder, toks_[pos_ == 0 ? 0 : pos_ - 1]);
    scopes_.pop_back();
    return holder;
  }

  void parseStatement(Stmt& parent) {
    if (cur().isSymbol("{")) {
      parseBlock(parent);
      return;
    }
    if (cur().isSymbol(";")) {
      advance();
      return;
    }
    if (cur().is(TokKind::Identifier)) {
      const std::string& kw = cur().text;
      if (kw == "if") {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::If;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        if (cur().isIdent("constexpr")) advance();
        if (cur().isSymbol("(")) parseCondRegion(*s);
        s->children.push_back(parseControlled());
        if (cur().isIdent("else")) {
          advance();
          s->children.push_back(parseControlled());
        }
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "for" || kw == "while") {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Loop;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        if (cur().isSymbol("(")) parseCondRegion(*s);
        s->children.push_back(parseControlled());
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "do") {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::DoLoop;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        s->children.push_back(parseControlled());
        if (cur().isIdent("while")) {
          advance();
          if (cur().isSymbol("(")) parseCondRegion(*s);
          if (cur().isSymbol(";")) advance();
        }
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "switch") {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Switch;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        if (cur().isSymbol("(")) parseCondRegion(*s);
        s->children.push_back(parseControlled());
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "try") {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Try;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        s->children.push_back(parseControlled());
        while (cur().isIdent("catch")) {
          advance();
          if (cur().isSymbol("(")) skipParens();
          s->children.push_back(parseControlled());
        }
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "return" || kw == "throw") {
        const Token at = cur();
        advance();
        scanSimple(parent);  // the return expression may touch streams
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Return;
        s->line = at.line;
        s->col = at.col;
        Action a;
        a.kind = Action::Kind::EarlyExit;
        a.line = at.line;
        a.col = at.col;
        s->actions.push_back(std::move(a));
        parent.children.push_back(std::move(s));
        return;
      }
      if (kw == "break" || kw == "continue") {
        auto s = std::make_unique<Stmt>();
        s->kind = kw == "break" ? Stmt::Kind::Break : Stmt::Kind::Continue;
        s->line = cur().line;
        s->col = cur().col;
        advance();
        if (cur().isSymbol(";")) advance();
        parent.children.push_back(std::move(s));
        return;
      }
    }
    scanSimple(parent);
  }

  // -- region scanning --------------------------------------------------------

  /// Scan one simple statement: until ';' at depth 0 (consumed) or '}' at
  /// depth 0 (left for the caller). Emits actions; descends into any '{'
  /// (lambda bodies, nested blocks) as a full scope.
  void scanSimple(Stmt& parent) {
    int depth = 0;  // () and [] nesting
    bool first = true;
    while (!atEnd()) {
      if (depth == 0 && cur().isSymbol(";")) {
        advance();
        return;
      }
      if (depth == 0 && cur().isSymbol("}")) return;
      if (cur().isSymbol("(") || cur().isSymbol("[")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]")) {
        if (depth > 0) --depth;
        advance();
        continue;
      }
      if (cur().isSymbol("{")) {
        parseBlock(parent);
        continue;
      }
      if (cur().is(TokKind::Identifier)) {
        if (depth == 0 && first &&
            (matchStreamDecl(parent) || matchCollectionDecl(parent))) {
          first = false;
          continue;
        }
        if (matchHelperCall(parent)) {
          first = false;
          continue;
        }
        if (isStream(cur().text)) {
          scanStreamUse(parent);
          first = false;
          continue;
        }
        // `opts.salvage = true;` marks an options variable whose streams
        // open in salvage mode (flow-insensitive, as a lint heuristic).
        if (peek().isSymbol(".") && peek(2).isIdent("salvage") &&
            peek(3).isSymbol("=") && peek(4).isIdent("true")) {
          salvageOpts_.insert(cur().text);
        }
      }
      first = false;
      advance();
    }
  }

  /// Parse a condition region into `out.cond`, detecting node-identity
  /// dependence. cur() == '('.
  void parseCondRegion(Stmt& out) {
    advance();  // '('
    int depth = 1;
    // cond stmts are appended to a scratch Seq then moved.
    Stmt scratch;
    scratch.kind = Stmt::Kind::Seq;
    while (!atEnd() && depth > 0) {
      if (cur().isSymbol("(")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")")) {
        --depth;
        advance();
        continue;
      }
      if (cur().isSymbol("{")) {
        parseBlock(scratch);  // lambda body inside the condition/args
        continue;
      }
      if (cur().is(TokKind::Identifier)) {
        if (isNodeIdentityIdent(cur().text)) out.nodeDependent = true;
        if ((cur().isIdent("node") || cur().isIdent("machine")) &&
            peek().isSymbol(".") &&
            (peek(2).isIdent("id") || peek(2).isIdent("nodeId") ||
             peek(2).isIdent("rank"))) {
          out.nodeDependent = true;
        }
        if (matchHelperCall(scratch)) continue;
        if (isStream(cur().text)) {
          scanStreamUse(scratch);
          continue;
        }
      }
      advance();
    }
    out.cond = std::move(scratch.children);
  }

  /// Skip a balanced parenthesized region without scanning (catch
  /// parameter declarations). cur() == '('.
  void skipParens() {
    advance();
    int depth = 1;
    while (!atEnd() && depth > 0) {
      if (cur().isSymbol("(")) ++depth;
      if (cur().isSymbol(")")) --depth;
      advance();
    }
  }

  // -- declarations -----------------------------------------------------------

  struct CtorArgs {
    std::vector<std::string> refs;
    bool simple = true;
    bool salvage = false;
  };

  /// Collect constructor arguments: the `&ident` reference args in order
  /// and whether every `&...` arg was a simple `&ident` (an opaque layout
  /// argument such as `&layout.distribution()` makes the layout unknown
  /// and disables D4 checks). Also notes the `salvage` stream option,
  /// inline or via an options variable. cur() == '('.
  CtorArgs scanCtorArgs() {
    CtorArgs out;
    advance();  // '('
    int depth = 1;
    while (!atEnd() && depth > 0) {
      if (cur().isSymbol("(")) ++depth;
      if (cur().isSymbol(")")) {
        --depth;
        advance();
        continue;
      }
      if (cur().is(TokKind::Identifier) &&
          (cur().text == "salvage" || salvageOpts_.count(cur().text))) {
        out.salvage = true;
      }
      if (depth == 1 && cur().isSymbol("&")) {
        if (peek().is(TokKind::Identifier) &&
            (peek(2).isSymbol(",") || peek(2).isSymbol(")"))) {
          out.refs.push_back(peek().text);
        } else {
          out.simple = false;
        }
      }
      advance();
    }
    return out;
  }

  /// ds::OStream name(args); (also pcxx::ds::, bare, and the oStream /
  /// iStream aliases). Emits a StreamDecl and registers the name.
  bool matchStreamDecl(Stmt& parent) {
    const size_t save = pos_;
    if (cur().isIdent("pcxx") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (cur().isIdent("ds") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    Dir dir;
    if (cur().isIdent("OStream") || cur().isIdent("oStream")) {
      dir = Dir::Out;
    } else if (cur().isIdent("IStream") || cur().isIdent("iStream")) {
      dir = Dir::In;
    } else {
      pos_ = save;
      return false;
    }
    advance();
    if (!cur().is(TokKind::Identifier) || !peek().isSymbol("(")) {
      pos_ = save;
      return false;
    }
    Action a;
    a.kind = Action::Kind::StreamDecl;
    a.dir = dir;
    a.name = cur().text;
    a.line = cur().line;
    a.col = cur().col;
    advance();  // name; cur() == '('
    const CtorArgs args = scanCtorArgs();
    a.layoutKnown = args.simple && !args.refs.empty();
    if (!args.refs.empty()) a.distVar = args.refs[0];
    if (args.refs.size() > 1) a.alignVar = args.refs[1];
    a.salvage = args.salvage && dir == Dir::In;
    Scope& scope = scopes_.back();
    if (!scope.streams.count(a.name)) scope.declOrder.push_back(a.name);
    scope.streams.insert(a.name);
    emit(parent, std::move(a));
    return true;
  }

  /// coll::Collection<T> name(args); — tracked for D4 layout comparison.
  bool matchCollectionDecl(Stmt& parent) {
    const size_t save = pos_;
    if (cur().isIdent("pcxx") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (cur().isIdent("coll") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (!cur().isIdent("Collection") || !peek().isSymbol("<")) {
      pos_ = save;
      return false;
    }
    advance();  // Collection; cur() == '<'
    skipAngles();
    if (!cur().is(TokKind::Identifier) || !peek().isSymbol("(")) {
      pos_ = save;
      return false;
    }
    Action a;
    a.kind = Action::Kind::CollDecl;
    a.name = cur().text;
    a.line = cur().line;
    a.col = cur().col;
    advance();  // name; cur() == '('
    const CtorArgs args = scanCtorArgs();
    a.layoutKnown = args.simple && !args.refs.empty();
    if (!args.refs.empty()) a.distVar = args.refs[0];
    if (args.refs.size() > 1) a.alignVar = args.refs[1];
    scopes_.back().colls.insert(a.name);
    emit(parent, std::move(a));
    return true;
  }

  // -- helper calls -----------------------------------------------------------

  /// `helper(out, ...)`: a call to a function with a protocol summary.
  /// Bare stream arguments become Call bindings; streams buried in more
  /// complex argument expressions escape (conservative).
  bool matchHelperCall(Stmt& parent) {
    if (!helpers_.count(cur().text) || !peek().isSymbol("(")) return false;
    // Method calls through an object are not summary applications (the
    // summary names a free function); do not misbind `obj.helper(...)`.
    if (pos_ > 0 && toks_[pos_ - 1].isSymbol(".")) return false;
    Action call;
    call.kind = Action::Kind::Call;
    call.callee = cur().text;
    call.line = cur().line;
    call.col = cur().col;
    advance();  // name
    advance();  // '('
    int depth = 1;
    int argIndex = 0;
    bool argStart = true;
    while (!atEnd() && depth > 0) {
      if (cur().isSymbol("(") || cur().isSymbol("[")) {
        ++depth;
        argStart = false;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]")) {
        --depth;
        advance();
        continue;
      }
      if (cur().isSymbol("{")) {
        parseBlock(parent);  // lambda argument
        argStart = false;
        continue;
      }
      if (depth == 1 && cur().isSymbol(",")) {
        ++argIndex;
        argStart = true;
        advance();
        continue;
      }
      if (cur().is(TokKind::Identifier) && isStream(cur().text)) {
        const bool bare =
            (argStart ||
             (pos_ > 0 && toks_[pos_ - 1].isSymbol("&") && depth == 1)) &&
            (peek().isSymbol(",") || (peek().isSymbol(")") && depth == 1));
        if (bare) {
          call.callArgs.emplace_back(cur().text, argIndex);
        } else {
          Action esc;
          esc.kind = Action::Kind::Escape;
          esc.name = cur().text;
          esc.line = cur().line;
          esc.col = cur().col;
          emit(parent, std::move(esc));
        }
        argStart = false;
        advance();
        continue;
      }
      if (!cur().isSymbol("&")) argStart = false;
      advance();
    }
    if (!call.callArgs.empty()) emit(parent, std::move(call));
    return true;
  }

  // -- stream uses ------------------------------------------------------------

  /// cur() is an identifier naming an in-scope stream. Classify the use.
  void scanStreamUse(Stmt& parent) {
    const Token nameTok = cur();
    const std::string name = nameTok.text;
    advance();
    if (cur().isSymbol(".") && peek().is(TokKind::Identifier) &&
        peek(2).isSymbol("(")) {
      const Token methodTok = peek();
      const std::string& m = methodTok.text;
      advance();  // '.'
      advance();  // method; cur() == '(' — scanned by the caller for events
      EventKind e = EventKind::Use;
      if (m == "write") e = EventKind::Write;
      else if (m == "read") e = EventKind::Read;
      // readRecord/readRecords are seek-plus-read compounds: for the
      // protocol FSM they land the stream on a recovered record, exactly
      // like read().
      else if (m == "readRecord") e = EventKind::Read;
      else if (m == "readRecords") e = EventKind::Read;
      else if (m == "unsortedRead") e = EventKind::UnsortedRead;
      else if (m == "skipRecord") e = EventKind::SkipRecord;
      else if (m == "rewind") e = EventKind::Rewind;
      else if (m == "seekRecord") e = EventKind::Seek;
      else if (m == "close") e = EventKind::Close;
      Action a;
      a.kind = Action::Kind::Event;
      a.name = name;
      a.event = e;
      a.line = methodTok.line;
      a.col = methodTok.col;
      emit(parent, std::move(a));
      return;
    }
    if (atShiftOp('<') || atShiftOp('>')) {
      const bool insert = atShiftOp('<');
      while (atShiftOp(insert ? '<' : '>')) {
        const Token opTok = cur();
        advance();  // first '<' / '>'
        advance();  // second
        Action a;
        a.kind = Action::Kind::Event;
        a.name = name;
        a.event = insert ? EventKind::Insert : EventKind::Extract;
        a.operand = scanOperand();
        a.line = opTok.line;
        a.col = opTok.col;
        emit(parent, std::move(a));
      }
      return;
    }
    // The stream is named in some other context (passed by reference, its
    // address taken, ...). Conservative: the stream escapes.
    Action a;
    a.kind = Action::Kind::Escape;
    a.name = name;
    a.line = nameTok.line;
    a.col = nameTok.col;
    emit(parent, std::move(a));
  }

  /// Scan one `<<`/`>>` operand; returns the collection variable name when
  /// the operand is `g` or `g.field(...)` for a tracked collection.
  std::string scanOperand() {
    std::string collName;
    if (cur().is(TokKind::Identifier) && isColl(cur().text)) {
      collName = cur().text;
    }
    int depth = 0;
    while (!atEnd()) {
      if (depth == 0 &&
          (cur().isSymbol(";") || cur().isSymbol(",") || atShiftOp('<') ||
           atShiftOp('>') || cur().isSymbol("}"))) {
        break;
      }
      if (depth == 0 && cur().isSymbol(")")) break;
      if (cur().isSymbol("(") || cur().isSymbol("[") || cur().isSymbol("{")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]") || cur().isSymbol("}")) {
        --depth;
        advance();
        continue;
      }
      advance();
    }
    return collName;
  }

  const std::vector<Token>& toks_;
  const std::set<std::string>& helpers_;
  size_t pos_;
  size_t end_;
  std::vector<Scope> scopes_;
  /// Names of StreamOptions variables observed with `.salvage = true`.
  std::set<std::string> salvageOpts_;
};

// -- CFG construction ---------------------------------------------------------

class CfgBuilder {
 public:
  Cfg build(const Stmt& root) {
    cfg_.entry = newBlock();
    int cur = buildSeq(root.children, cfg_.entry);
    cfg_.exit = newBlock();
    if (cur >= 0) edge(cur, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  int newBlock() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }

  void edge(int from, int to, bool back = false) {
    cfg_.blocks[static_cast<size_t>(from)].succs.push_back(to);
    cfg_.blocks[static_cast<size_t>(to)].preds.push_back(from);
    if (back) {
      cfg_.blocks[static_cast<size_t>(to)].backedgePreds.push_back(from);
    }
  }

  /// Build a statement list starting in block `cur`. Returns the live
  /// block at the end, or -1 when every path left the list. Statements
  /// after a dead end build into orphan blocks (no predecessors), so the
  /// dataflow never visits them — the old engine's `env.dead` semantics.
  int buildSeq(const std::vector<std::unique_ptr<Stmt>>& stmts, int cur) {
    for (const auto& s : stmts) {
      if (cur < 0) cur = newBlock();  // unreachable continuation
      cur = buildStmt(*s, cur);
    }
    return cur;
  }

  int buildStmt(const Stmt& s, int cur) {
    switch (s.kind) {
      case Stmt::Kind::Seq:
        return buildSeq(s.children, cur);
      case Stmt::Kind::Actions: {
        auto& blk = cfg_.blocks[static_cast<size_t>(cur)];
        blk.actions.insert(blk.actions.end(), s.actions.begin(),
                           s.actions.end());
        return cur;
      }
      case Stmt::Kind::If: {
        cur = buildSeq(s.cond, cur);
        if (cur < 0) cur = newBlock();
        const int thenEntry = newBlock();
        edge(cur, thenEntry);
        int thenEnd = s.children.empty()
                          ? thenEntry
                          : buildStmt(*s.children[0], thenEntry);
        int elseEnd = cur;  // implicit fall-through
        if (s.children.size() > 1) {
          const int elseEntry = newBlock();
          edge(cur, elseEntry);
          elseEnd = buildStmt(*s.children[1], elseEntry);
        }
        if (thenEnd < 0 && elseEnd < 0) return -1;
        const int merge = newBlock();
        if (thenEnd >= 0) edge(thenEnd, merge);
        if (elseEnd >= 0) {
          if (s.children.size() > 1) edge(elseEnd, merge);
          else edge(cur, merge);
        }
        return merge;
      }
      case Stmt::Kind::Loop: {
        const int head = newBlock();
        edge(cur, head);
        int headEnd = buildSeq(s.cond, head);
        if (headEnd < 0) headEnd = head;
        const int body = newBlock();
        const int exit = newBlock();
        edge(headEnd, body);
        edge(headEnd, exit);
        breakTargets_.push_back(exit);
        continueTargets_.push_back(head);
        const int bodyEnd =
            s.children.empty() ? body : buildStmt(*s.children[0], body);
        breakTargets_.pop_back();
        continueTargets_.pop_back();
        if (bodyEnd >= 0) edge(bodyEnd, head, /*back=*/true);
        return exit;
      }
      case Stmt::Kind::DoLoop: {
        const int body = newBlock();
        edge(cur, body);
        const int exit = newBlock();
        const int condBlk = newBlock();
        breakTargets_.push_back(exit);
        continueTargets_.push_back(condBlk);
        const int bodyEnd =
            s.children.empty() ? body : buildStmt(*s.children[0], body);
        breakTargets_.pop_back();
        continueTargets_.pop_back();
        if (bodyEnd >= 0) edge(bodyEnd, condBlk);
        int condEnd = buildSeq(s.cond, condBlk);
        if (condEnd < 0) condEnd = condBlk;
        edge(condEnd, body, /*back=*/true);
        edge(condEnd, exit);
        return exit;
      }
      case Stmt::Kind::Switch: {
        cur = buildSeq(s.cond, cur);
        if (cur < 0) cur = newBlock();
        const int body = newBlock();
        const int exit = newBlock();
        edge(cur, body);
        edge(cur, exit);  // no-default fall-through
        breakTargets_.push_back(exit);
        const int bodyEnd =
            s.children.empty() ? body : buildStmt(*s.children[0], body);
        breakTargets_.pop_back();
        if (bodyEnd >= 0) edge(bodyEnd, exit);
        return exit;
      }
      case Stmt::Kind::Try: {
        const int bodyEnd =
            s.children.empty() ? cur : buildStmt(*s.children[0], cur);
        if (bodyEnd < 0) return -1;
        const int merge = newBlock();
        edge(bodyEnd, merge);
        for (size_t i = 1; i < s.children.size(); ++i) {
          const int hEntry = newBlock();
          edge(bodyEnd, hEntry);
          const int hEnd = buildStmt(*s.children[i], hEntry);
          if (hEnd >= 0) edge(hEnd, merge);
        }
        return merge;
      }
      case Stmt::Kind::Return: {
        auto& blk = cfg_.blocks[static_cast<size_t>(cur)];
        blk.actions.insert(blk.actions.end(), s.actions.begin(),
                           s.actions.end());
        return -1;
      }
      case Stmt::Kind::Break: {
        if (!breakTargets_.empty()) edge(cur, breakTargets_.back());
        return -1;
      }
      case Stmt::Kind::Continue: {
        if (!continueTargets_.empty()) {
          // A continue edge re-enters the loop, so it is a back edge for
          // while/for heads (the head dominates the body).
          const int target = continueTargets_.back();
          const bool back = !cfg_.blocks[static_cast<size_t>(target)]
                                 .preds.empty();
          edge(cur, target, back);
        }
        return -1;
      }
    }
    return cur;
  }

  Cfg cfg_;
  std::vector<int> breakTargets_;
  std::vector<int> continueTargets_;
};

}  // namespace

std::unique_ptr<Stmt> parseStatements(const sg::TokenStream& ts,
                                      const std::set<std::string>& helpers,
                                      const std::vector<PreStream>& params,
                                      size_t beginTok, size_t endTok) {
  if (ts.tokens.empty()) {
    auto root = std::make_unique<Stmt>();
    root->kind = Stmt::Kind::Seq;
    return root;
  }
  return Parser(ts, helpers, params, beginTok, endTok).run();
}

std::unique_ptr<Stmt> parseUnit(const sg::TokenStream& ts,
                                const std::set<std::string>& helpers) {
  return parseStatements(ts, helpers, {}, 0, ts.tokens.size());
}

Cfg buildCfg(const Stmt& root) { return CfgBuilder().build(root); }

}  // namespace pcxx::dslint
