// dslint v2 front half: token stream -> statement tree -> control-flow
// graph.
//
// The statement tree is a faithful, scope-aware parse of the constructs
// the protocol analysis cares about: stream/collection declarations,
// stream operations (classified into events), helper calls that receive a
// stream argument, escapes to unknown code, and structured control flow
// (if/else, for/while/do, switch, try/catch, return/break/continue,
// lambda bodies inline). Conditions are parsed as statement lists of
// their own (a condition can contain stream events, e.g.
// `while (!in.atEnd())`) and are tagged when they depend on node
// identity (`node.id()`, `machine.nodeId()`, `rank`, `thisNode`, ...),
// which feeds the DS5xx collective-divergence checks.
//
// The CFG flattens the tree into basic blocks of actions with explicit
// edges: loop back edges are marked so the dataflow engine (dataflow.h)
// can iterate bodies to a fixpoint and run the loop-carried
// "second iteration" analysis.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "streamgen/token.h"

namespace pcxx::dslint {

enum class Dir { Out, In };

/// Stream operations the protocol FSM interprets.
enum class EventKind {
  Insert,        // s << ...
  Write,         // s.write()
  Read,          // s.read()
  UnsortedRead,  // s.unsortedRead()
  SkipRecord,    // s.skipRecord()
  Rewind,        // s.rewind()
  Seek,          // s.seekRecord(k)
  Extract,       // s >> ...
  Close,         // s.close()
  Use,           // any other method call (atEnd(), layout(), ...)
};

bool isReadModeEvent(EventKind e);
bool isWriteModeEvent(EventKind e);
/// Collective operations (paper §4.2: every node must execute them in the
/// same order). Insert/Extract/Use are node-local.
bool isCollectiveEvent(EventKind e);
/// Human-readable operation name for diagnostics ("write()", "open", ...).
const char* eventName(EventKind e);

/// One primitive the dataflow engine interprets.
struct Action {
  enum class Kind {
    StreamDecl,  // ds::OStream name(args) — also the "open" collective
    CollDecl,    // coll::Collection<T> name(args)
    Event,       // an EventKind applied to stream `name`
    Call,        // call of a known helper passing streams as arguments
    Escape,      // stream `name` leaks to unanalyzed code
    ScopeEnd,    // destructor for `name` at the end of its scope
    EarlyExit,   // return/throw: destructor semantics for all live streams
  };
  Kind kind = Kind::Event;
  std::string name;  ///< stream or collection variable
  EventKind event = EventKind::Use;
  // StreamDecl / CollDecl payload.
  Dir dir = Dir::Out;
  bool layoutKnown = false;
  bool salvage = false;
  std::string distVar, alignVar;
  // Event payload: collection operand of an Insert/Extract, "" if none.
  std::string operand;
  // Call payload: callee name plus (stream variable, argument index).
  std::string callee;
  std::vector<std::pair<std::string, int>> callArgs;
  int line = 0, col = 0;
};

/// Statement tree node.
struct Stmt {
  enum class Kind {
    Seq,      // { ... } or a virtual scope around a controlled statement
    Actions,  // a run of primitive actions
    If,       // children: [then, else?]
    Loop,     // for/while; children: [body]
    DoLoop,   // do/while;  children: [body]
    Switch,   // children: [body]; break exits, no back edge
    Try,      // children: [body, handler...]
    Return,   // also throw; actions may carry an EarlyExit
    Break,
    Continue,
  };
  Kind kind = Kind::Actions;
  int line = 0, col = 0;
  /// If/Loop/DoLoop/Switch: condition mentions node identity.
  bool nodeDependent = false;
  std::vector<Action> actions;                  // Kind::Actions / Return
  std::vector<std::unique_ptr<Stmt>> cond;      // condition-region stmts
  std::vector<std::unique_ptr<Stmt>> children;  // structure, see Kind
};

/// A stream name pre-registered in the root scope (helper parameters).
struct PreStream {
  std::string name;
  Dir dir = Dir::Out;
  int declLine = 0;  ///< parameter's source line, for diagnostics
};

/// Parse tokens [beginTok, endTok) into a statement tree. `helpers` names
/// functions with protocol summaries so their call sites become
/// Action::Kind::Call instead of escapes; `params` pre-registers stream
/// variables (no StreamDecl action, no ScopeEnd at the root).
std::unique_ptr<Stmt> parseStatements(const sg::TokenStream& ts,
                                      const std::set<std::string>& helpers,
                                      const std::vector<PreStream>& params,
                                      size_t beginTok, size_t endTok);

/// Whole translation unit.
std::unique_ptr<Stmt> parseUnit(const sg::TokenStream& ts,
                                const std::set<std::string>& helpers);

// -- control-flow graph -------------------------------------------------------

struct BasicBlock {
  std::vector<Action> actions;
  std::vector<int> succs;
  std::vector<int> preds;
  /// Subset of preds whose edge is a loop back edge (latch -> this head).
  std::vector<int> backedgePreds;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 0;
};

Cfg buildCfg(const Stmt& root);

}  // namespace pcxx::dslint
