#include "dslint/dataflow.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

namespace pcxx::dslint {

unsigned initialState(Dir dir) {
  return dir == Dir::Out ? kOEmpty0 : kINoRec;
}

unsigned stateUniverse(Dir dir) {
  if (dir == Dir::Out) {
    return kOEmpty0 | kOPend0 | kOEmpty1 | kOPend1 | kClosed;
  }
  return kINoRec | kIHasRec | kClosed;
}

namespace {

// -- abstract domain ----------------------------------------------------------

struct CollVar {
  std::string distVar, alignVar;
  bool layoutKnown = false;
  bool operator==(const CollVar& o) const {
    return distVar == o.distVar && alignVar == o.alignVar &&
           layoutKnown == o.layoutKnown;
  }
};

struct StreamVar {
  Dir dir = Dir::Out;
  int declLine = 0;
  unsigned states = 0;
  bool escaped = false;
  bool layoutKnown = false;
  /// Input stream opened with StreamOptions::salvage: read() may consume
  /// damage to end-of-file and yield no record, so extraction legality is
  /// a runtime hasRecord() question the FSM must not second-guess.
  bool salvage = false;
  /// Helper parameter: the caller owns the stream, so destructor checks
  /// (scope end, early exit) do not apply.
  bool fromParam = false;
  std::string distVar, alignVar;
  /// Collections inserted since the last write: layout key -> first line.
  std::map<std::string, int> pendingKeys;
  bool operator==(const StreamVar& o) const {
    return dir == o.dir && declLine == o.declLine && states == o.states &&
           escaped == o.escaped && layoutKnown == o.layoutKnown &&
           salvage == o.salvage && fromParam == o.fromParam &&
           distVar == o.distVar && alignVar == o.alignVar &&
           pendingKeys == o.pendingKeys;
  }
};

struct Env {
  std::map<std::string, StreamVar> streams;
  std::map<std::string, CollVar> colls;
  bool operator==(const Env& o) const {
    return streams == o.streams && colls == o.colls;
  }
};

void joinInto(Env& a, const Env& b) {
  for (const auto& [name, sv] : b.streams) {
    auto it = a.streams.find(name);
    if (it == a.streams.end()) {
      a.streams.emplace(name, sv);
      continue;
    }
    StreamVar& av = it->second;
    av.states |= sv.states;
    av.escaped = av.escaped || sv.escaped;
    av.salvage = av.salvage || sv.salvage;
    for (const auto& [key, line] : sv.pendingKeys) {
      av.pendingKeys.emplace(key, line);
    }
  }
  for (const auto& [name, cv] : b.colls) a.colls.emplace(name, cv);
}

// -- the protocol FSM ---------------------------------------------------------

/// One state's reaction to an event.
struct Outcome {
  const char* id = nullptr;  ///< diagnostic ID, nullptr when legal
  Severity sev = Severity::Error;
  unsigned next = 0;
};

Outcome transition(unsigned state, EventKind e) {
  if (state == kClosed) {
    if (e == EventKind::Close) return {"DS104", Severity::Error, kClosed};
    return {"DS105", Severity::Error, kClosed};
  }
  switch (e) {
    case EventKind::Insert:
      if (state == kOEmpty0 || state == kOPend0)
        return {nullptr, Severity::Error, kOPend0};
      return {nullptr, Severity::Error, kOPend1};
    case EventKind::Write:
      if (state == kOEmpty0 || state == kOEmpty1)
        return {"DS102", Severity::Error, kOEmpty1};
      return {nullptr, Severity::Error, kOEmpty1};
    case EventKind::Read:
    case EventKind::UnsortedRead:
      return {nullptr, Severity::Error, kIHasRec};
    case EventKind::SkipRecord:
    case EventKind::Rewind:
    case EventKind::Seek:
      // Repositioning discards the current record; extraction before the
      // next read() is the DS103 pattern again.
      return {nullptr, Severity::Error, kINoRec};
    case EventKind::Extract:
      if (state == kINoRec) return {"DS103", Severity::Error, kIHasRec};
      return {nullptr, Severity::Error, kIHasRec};
    case EventKind::Close:
      if (state == kOPend0 || state == kOPend1)
        return {"DS106", Severity::Error, kClosed};
      if (state == kOEmpty0) return {"DS107", Severity::Warning, kClosed};
      return {nullptr, Severity::Error, kClosed};
    case EventKind::Use:
      return {nullptr, Severity::Error, state};
  }
  return {nullptr, Severity::Error, state};
}

/// Destructor semantics at the end of the declaring scope: the stream stays
/// in its state (the variable just dies), but definite data loss and
/// never-written streams are reported.
Outcome scopeEndOutcome(unsigned state) {
  if (state == kOPend0 || state == kOPend1)
    return {"DS106", Severity::Error, state};
  if (state == kOEmpty0) return {"DS107", Severity::Warning, state};
  return {nullptr, Severity::Error, state};
}

std::string describe(const std::string& id, const std::string& name,
                     const StreamVar& v) {
  if (id == "DS102") {
    return "write() on d/stream '" + name +
           "' with nothing inserted since the last record boundary";
  }
  if (id == "DS103") {
    return "extraction from d/stream '" + name +
           "' before read() or unsortedRead()";
  }
  if (id == "DS104") return "double close of d/stream '" + name + "'";
  if (id == "DS105") {
    return "use of d/stream '" + name + "' after close (declared line " +
           std::to_string(v.declLine) + ")";
  }
  if (id == "DS106") {
    return "close of d/stream '" + name +
           "' discards pending inserts that were never written";
  }
  if (id == "DS107") {
    return "output d/stream '" + name + "' never writes a record";
  }
  return "d/stream protocol violation on '" + name + "'";
}

std::string layoutKey(const std::string& dist, const std::string& align) {
  return align.empty() ? dist : dist + ", " + align;
}

// -- transfer -----------------------------------------------------------------

/// Reporting callback. The dataflow runs transfer functions both silently
/// (fixpoint iteration) and with a sink (reporting walks); the sink also
/// carries the acting stream's name so the summary probe can attribute
/// diagnostics to the helper parameter under study.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void report(const std::string& id, Severity sev, int line, int col,
                      const std::string& msg, const std::string& stream) = 0;
};

class Transfer {
 public:
  Transfer(const DataflowOptions& opts) : opts_(opts) {}

  void apply(Env& env, const Action& a, Sink* sink) const {
    switch (a.kind) {
      case Action::Kind::StreamDecl: {
        StreamVar sv;
        sv.dir = a.dir;
        sv.declLine = a.line;
        sv.states = initialState(a.dir);
        sv.layoutKnown = a.layoutKnown;
        sv.salvage = a.salvage;
        sv.distVar = a.distVar;
        sv.alignVar = a.alignVar;
        env.streams[a.name] = sv;  // shadowing redeclaration replaces
        return;
      }
      case Action::Kind::CollDecl: {
        CollVar cv;
        cv.layoutKnown = a.layoutKnown;
        cv.distVar = a.distVar;
        cv.alignVar = a.alignVar;
        env.colls[a.name] = cv;
        return;
      }
      case Action::Kind::Event:
        applyEvent(env, a, sink);
        return;
      case Action::Kind::Call:
        applyCall(env, a, sink);
        return;
      case Action::Kind::Escape: {
        auto it = env.streams.find(a.name);
        if (it == env.streams.end()) return;
        StreamVar& v = it->second;
        if (v.escaped || v.states == 0) return;
        if (opts_.strict && sink != nullptr) {
          sink->report("DS109", Severity::Note, a.line, a.col,
                       "d/stream '" + a.name +
                           "' escapes to unanalyzed code; protocol tracking "
                           "stops here",
                       a.name);
        }
        v.escaped = true;
        return;
      }
      case Action::Kind::ScopeEnd: {
        auto it = env.streams.find(a.name);
        if (it == env.streams.end()) return;
        const StreamVar v = it->second;
        env.streams.erase(it);
        if (v.escaped || v.states == 0 || v.fromParam) return;
        applyScopeEnd(v, a, sink);
        return;
      }
      case Action::Kind::EarlyExit: {
        for (auto& [name, v] : env.streams) {
          if (v.escaped || v.states == 0 || v.fromParam) continue;
          // Only the definite data-loss check fires on early exits (a
          // return before write is usually an error path, not a bug).
          const unsigned pend = kOPend0 | kOPend1;
          if ((v.states & pend) != 0 && (v.states & ~pend) == 0 &&
              sink != nullptr) {
            sink->report("DS106", Severity::Error, a.line, a.col,
                         "d/stream '" + name +
                             "' destroyed with pending inserts never written "
                             "(declared line " +
                             std::to_string(v.declLine) + ")",
                         name);
          }
          v.escaped = true;  // do not re-report at the enclosing scope end
        }
        return;
      }
    }
  }

 private:
  void applyEvent(Env& env, const Action& a, Sink* sink) const {
    auto it = env.streams.find(a.name);
    if (it == env.streams.end()) return;
    StreamVar& v = it->second;
    if (v.escaped || v.states == 0) return;

    // Direction errors are definite regardless of protocol state (D1:
    // mixing write-mode and read-mode calls).
    if (v.dir == Dir::Out && isReadModeEvent(a.event)) {
      if (sink != nullptr) {
        sink->report("DS101", Severity::Error, a.line, a.col,
                     "read-mode operation on output d/stream '" + a.name +
                         "' (declared line " + std::to_string(v.declLine) +
                         ")",
                     a.name);
      }
      return;
    }
    if (v.dir == Dir::In && isWriteModeEvent(a.event)) {
      if (sink != nullptr) {
        sink->report("DS101", Severity::Error, a.line, a.col,
                     "write-mode operation on input d/stream '" + a.name +
                         "' (declared line " + std::to_string(v.declLine) +
                         ")",
                     a.name);
      }
      return;
    }

    // Per-state transition with must-error reporting: diagnose only if
    // the event misbehaves in EVERY possible state.
    unsigned next = 0;
    const char* commonId = nullptr;
    Severity commonSev = Severity::Error;
    bool allError = true;
    bool any = false;
    for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
      if (!(v.states & bit)) continue;
      const Outcome o = transition(bit, a.event);
      next |= o.next;
      if (!any) {
        commonId = o.id;
        commonSev = o.sev;
        any = true;
      } else if (o.id == nullptr || commonId == nullptr ||
                 std::string(o.id) != commonId) {
        allError = false;
      }
      if (o.id == nullptr) allError = false;
    }
    if (any && allError && commonId != nullptr && sink != nullptr) {
      sink->report(commonId, commonSev, a.line, a.col,
                   describe(commonId, a.name, v), a.name);
    }
    v.states = next;
    // Salvage-mode read() may land at end-of-file with no record; keep the
    // no-record state live so later extractions (guarded by hasRecord() at
    // runtime) are not flagged as definite DS103 errors.
    if (v.salvage &&
        (a.event == EventKind::Read || a.event == EventKind::UnsortedRead)) {
      v.states |= kINoRec;
    }

    // D4 bookkeeping.
    if (a.event == EventKind::Write) v.pendingKeys.clear();
    const CollVar* cv = nullptr;
    if (!a.operand.empty()) {
      auto cIt = env.colls.find(a.operand);
      if (cIt != env.colls.end()) cv = &cIt->second;
    }
    if ((a.event == EventKind::Insert || a.event == EventKind::Extract) &&
        cv != nullptr && cv->layoutKnown) {
      const std::string cKey = layoutKey(cv->distVar, cv->alignVar);
      if (v.layoutKnown) {
        const std::string sKey = layoutKey(v.distVar, v.alignVar);
        if (sKey != cKey && sink != nullptr) {
          sink->report("DS402", Severity::Error, a.line, a.col,
                       "collection '" + a.operand + "' is laid out over (" +
                           cKey + ") but d/stream '" + a.name +
                           "' was declared over (" + sKey +
                           "); layouts must match",
                       a.name);
        }
      }
      if (a.event == EventKind::Insert) {
        for (const auto& [key, line] : v.pendingKeys) {
          if (key != cKey) {
            if (sink != nullptr) {
              sink->report(
                  "DS401", Severity::Error, a.line, a.col,
                  "collection '" + a.operand + "' over (" + cKey +
                      ") interleaved with an insert over (" + key +
                      ") from line " + std::to_string(line) +
                      "; interleaved inserts require aligned collections",
                  a.name);
            }
            break;
          }
        }
        v.pendingKeys.emplace(cKey, a.line);
      }
    }
  }

  void applyCall(Env& env, const Action& a, Sink* sink) const {
    const FnSummary* fn = nullptr;
    if (opts_.summaries != nullptr) {
      auto it = opts_.summaries->find(a.callee);
      if (it != opts_.summaries->end()) fn = &it->second;
    }
    for (const auto& [argName, idx] : a.callArgs) {
      auto it = env.streams.find(argName);
      if (it == env.streams.end()) continue;
      StreamVar& v = it->second;
      if (v.escaped || v.states == 0) continue;
      const ParamSummary* ps = nullptr;
      if (fn != nullptr) {
        for (const ParamSummary& p : fn->params) {
          if (p.index == idx) ps = &p;
        }
      }
      if (ps == nullptr) {
        // No summary for this argument position: back to the conservative
        // escape.
        if (opts_.strict && sink != nullptr) {
          sink->report("DS109", Severity::Note, a.line, a.col,
                       "d/stream '" + argName +
                           "' escapes into '" + a.callee +
                           "' at an unanalyzed parameter position; protocol "
                           "tracking stops here",
                       argName);
        }
        v.escaped = true;
        continue;
      }
      if (ps->dir != v.dir) {
        if (sink != nullptr) {
          sink->report("DS108", Severity::Error, a.line, a.col,
                       "call to '" + a.callee + "' passes " +
                           (v.dir == Dir::Out ? "output" : "input") +
                           " d/stream '" + argName + "' to parameter '" +
                           ps->name + "', which the helper (line " +
                           std::to_string(fn->line) + ") uses as an " +
                           (ps->dir == Dir::Out ? "output" : "input") +
                           " stream",
                       argName);
        }
        v.escaped = true;
        continue;
      }
      // Must-error across every state reaching the call: the helper body
      // definitely violates the protocol for this call context.
      unsigned next = 0;
      std::string commonId;
      std::string commonMsg;
      int commonLine = fn->line;
      bool allError = true;
      bool any = false;
      for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
        if (!(v.states & bit)) continue;
        std::string id;
        if (auto eIt = ps->errorId.find(bit); eIt != ps->errorId.end()) {
          id = eIt->second;
        }
        if (!any) {
          commonId = id;
          if (auto mIt = ps->errorMsg.find(bit); mIt != ps->errorMsg.end()) {
            commonMsg = mIt->second;
          }
          if (auto lIt = ps->errorLine.find(bit); lIt != ps->errorLine.end()) {
            commonLine = lIt->second;
          }
          any = true;
        } else if (id != commonId) {
          allError = false;
        }
        if (id.empty()) allError = false;
        if (auto oIt = ps->out.find(bit); oIt != ps->out.end()) {
          next |= oIt->second;
        } else {
          next |= bit;
        }
      }
      if (any && allError && !commonId.empty() && sink != nullptr) {
        sink->report("DS108", Severity::Error, a.line, a.col,
                     "call to '" + a.callee +
                         "' violates the d/stream protocol on '" + argName +
                         "' in every state reaching this call: " + commonMsg +
                         " (" + commonId + " inside the helper, line " +
                         std::to_string(commonLine) + ")",
                     argName);
      }
      if (next != 0) v.states = next;
      if (ps->escapes) {
        if (opts_.strict && sink != nullptr) {
          sink->report("DS109", Severity::Note, a.line, a.col,
                       "d/stream '" + argName + "' escapes inside '" +
                           a.callee +
                           "'; protocol tracking stops after this call",
                       argName);
        }
        v.escaped = true;
      }
      // The helper may have written; stale interleave keys would be
      // spurious.
      v.pendingKeys.clear();
    }
  }

  void applyScopeEnd(const StreamVar& v, const Action& a, Sink* sink) const {
    unsigned dummy = 0;
    const char* commonId = nullptr;
    Severity commonSev = Severity::Error;
    bool allError = true;
    bool any = false;
    for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
      if (!(v.states & bit)) continue;
      const Outcome o = scopeEndOutcome(bit);
      dummy |= o.next;
      if (!any) {
        commonId = o.id;
        commonSev = o.sev;
        any = true;
      } else if (o.id == nullptr || commonId == nullptr ||
                 std::string(o.id) != commonId) {
        allError = false;
      }
      if (o.id == nullptr) allError = false;
    }
    if (any && allError && commonId != nullptr && sink != nullptr) {
      const std::string msg =
          std::string(commonId) == "DS106"
              ? "d/stream '" + a.name +
                    "' destroyed with pending inserts never written "
                    "(declared line " +
                    std::to_string(v.declLine) + ")"
              : "output d/stream '" + a.name +
                    "' never writes a record (declared line " +
                    std::to_string(v.declLine) + ")";
      sink->report(commonId, commonSev, a.line, a.col, msg, a.name);
    }
  }

  const DataflowOptions& opts_;
};

// -- the engine ---------------------------------------------------------------

class Engine {
 public:
  Engine(const Cfg& cfg, const std::vector<PreStream>& params,
         const std::map<std::string, unsigned>& paramStates,
         const DataflowOptions& opts)
      : cfg_(cfg), transfer_(opts) {
    for (const PreStream& p : params) {
      StreamVar sv;
      sv.dir = p.dir;
      sv.declLine = p.declLine;
      sv.fromParam = true;
      sv.states = stateUniverse(p.dir);
      if (auto it = paramStates.find(p.name); it != paramStates.end()) {
        sv.states = it->second;
      }
      seed_.streams[p.name] = sv;
    }
  }

  /// Worklist fixpoint: IN[b] = join over pred OUTs; the lattice is finite
  /// (state bitmask + monotone flags + bounded key sets), so this
  /// terminates; a generous step budget backstops it regardless.
  void solve() {
    const size_t n = cfg_.blocks.size();
    in_.clear();
    in_.resize(n);
    out_.clear();
    out_.resize(n);
    std::deque<int> wl;
    std::vector<char> queued(n, 0);
    wl.push_back(cfg_.entry);
    queued[static_cast<size_t>(cfg_.entry)] = 1;
    size_t budget = (n + 1) * 512;
    while (!wl.empty() && budget-- > 0) {
      const int b = wl.front();
      wl.pop_front();
      queued[static_cast<size_t>(b)] = 0;
      std::unique_ptr<Env> newIn = computeIn(b);
      if (newIn == nullptr) continue;
      if (out_[static_cast<size_t>(b)] != nullptr &&
          in_[static_cast<size_t>(b)] != nullptr &&
          *in_[static_cast<size_t>(b)] == *newIn) {
        continue;
      }
      Env e = *newIn;
      in_[static_cast<size_t>(b)] = std::move(newIn);
      for (const Action& a : cfg_.blocks[static_cast<size_t>(b)].actions) {
        transfer_.apply(e, a, nullptr);
      }
      if (out_[static_cast<size_t>(b)] == nullptr ||
          !(*out_[static_cast<size_t>(b)] == e)) {
        out_[static_cast<size_t>(b)] = std::make_unique<Env>(std::move(e));
        for (int s : cfg_.blocks[static_cast<size_t>(b)].succs) {
          if (!queued[static_cast<size_t>(s)]) {
            queued[static_cast<size_t>(s)] = 1;
            wl.push_back(s);
          }
        }
      }
    }
  }

  /// The three reporting walks (see dataflow.h).
  void reportAll(Sink& sink) {
    for (size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (in_[b] == nullptr) continue;
      Env e = *in_[b];
      for (const Action& a : cfg_.blocks[b].actions) {
        transfer_.apply(e, a, &sink);
      }
    }
    for (size_t h = 0; h < cfg_.blocks.size(); ++h) {
      const BasicBlock& head = cfg_.blocks[h];
      if (head.backedgePreds.empty() || in_[h] == nullptr) continue;
      const std::set<int> region = loopRegion(static_cast<int>(h));
      // Iteration >= 2 view: only the states carried around a back edge.
      std::unique_ptr<Env> carried;
      for (int latch : head.backedgePreds) {
        accumulate(carried, out_[static_cast<size_t>(latch)].get());
      }
      if (carried != nullptr) {
        regionalReport(static_cast<int>(h), region, *carried, sink);
      }
      // Iteration 1 view: only the states on the entry edges.
      std::unique_ptr<Env> first;
      for (int p : head.preds) {
        const auto& be = head.backedgePreds;
        if (std::find(be.begin(), be.end(), p) != be.end()) continue;
        accumulate(first, out_[static_cast<size_t>(p)].get());
      }
      if (first != nullptr) {
        regionalReport(static_cast<int>(h), region, *first, sink);
      }
    }
  }

  /// Union of the streams' states over all terminal blocks (function exit
  /// plus return blocks) — the summary probe's "what can the caller see".
  void exitView(const std::string& name, unsigned& states,
                bool& escaped) const {
    states = 0;
    escaped = false;
    bool any = false;
    for (size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (out_[b] == nullptr || !cfg_.blocks[b].succs.empty()) continue;
      auto it = out_[b]->streams.find(name);
      if (it == out_[b]->streams.end()) continue;
      states |= it->second.states;
      escaped = escaped || it->second.escaped;
      any = true;
    }
    if (!any) {
      // Never reached an exit with the stream live (e.g. an infinite
      // loop); fall back to the union over every block.
      for (size_t b = 0; b < cfg_.blocks.size(); ++b) {
        if (out_[b] == nullptr) continue;
        auto it = out_[b]->streams.find(name);
        if (it == out_[b]->streams.end()) continue;
        states |= it->second.states;
        escaped = escaped || it->second.escaped;
      }
    }
  }

 private:
  std::unique_ptr<Env> computeIn(int b) const {
    std::unique_ptr<Env> je;
    if (b == cfg_.entry) {
      je = std::make_unique<Env>(seed_);
    }
    for (int p : cfg_.blocks[static_cast<size_t>(b)].preds) {
      accumulate(je, out_[static_cast<size_t>(p)].get());
    }
    return je;
  }

  static void accumulate(std::unique_ptr<Env>& into, const Env* from) {
    if (from == nullptr) return;
    if (into == nullptr) {
      into = std::make_unique<Env>(*from);
    } else {
      joinInto(*into, *from);
    }
  }

  /// Natural loop region of head `h`: h plus everything reverse-reachable
  /// from its latches without passing through h.
  std::set<int> loopRegion(int h) const {
    std::set<int> region{h};
    std::vector<int> stack(cfg_.blocks[static_cast<size_t>(h)].backedgePreds);
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      if (region.count(b)) continue;
      region.insert(b);
      for (int p : cfg_.blocks[static_cast<size_t>(b)].preds) {
        stack.push_back(p);
      }
    }
    return region;
  }

  /// Propagate `seed` from the loop head through the region (head IN held
  /// fixed — the seed is already a post-fixpoint of the back edges) and
  /// report must-errors under those states. Deduplication in the
  /// diagnostic engine merges overlap with the main walk.
  void regionalReport(int h, const std::set<int>& region, const Env& seed,
                      Sink& sink) {
    std::map<int, std::unique_ptr<Env>> rin, rout;
    rin[h] = std::make_unique<Env>(seed);
    std::deque<int> wl{h};
    std::set<int> queued{h};
    size_t budget = (region.size() + 1) * 512;
    while (!wl.empty() && budget-- > 0) {
      const int b = wl.front();
      wl.pop_front();
      queued.erase(b);
      std::unique_ptr<Env> newIn;
      if (b == h) {
        newIn = std::make_unique<Env>(seed);
      } else {
        for (int p : cfg_.blocks[static_cast<size_t>(b)].preds) {
          if (!region.count(p)) continue;
          auto it = rout.find(p);
          if (it != rout.end()) accumulate(newIn, it->second.get());
        }
      }
      if (newIn == nullptr) continue;
      auto rIt = rin.find(b);
      if (rout.count(b) && rIt != rin.end() && *rIt->second == *newIn) {
        continue;
      }
      Env e = *newIn;
      rin[b] = std::move(newIn);
      for (const Action& a : cfg_.blocks[static_cast<size_t>(b)].actions) {
        transfer_.apply(e, a, nullptr);
      }
      auto oIt = rout.find(b);
      if (oIt == rout.end() || !(*oIt->second == e)) {
        rout[b] = std::make_unique<Env>(std::move(e));
        for (int s : cfg_.blocks[static_cast<size_t>(b)].succs) {
          if (s != h && region.count(s) && !queued.count(s)) {
            queued.insert(s);
            wl.push_back(s);
          }
        }
      }
    }
    for (int b : region) {
      auto it = rin.find(b);
      if (it == rin.end()) continue;
      Env e = *it->second;
      for (const Action& a : cfg_.blocks[static_cast<size_t>(b)].actions) {
        transfer_.apply(e, a, &sink);
      }
    }
  }

  const Cfg& cfg_;
  Transfer transfer_;
  Env seed_;
  std::vector<std::unique_ptr<Env>> in_, out_;
};

class DiagSink : public Sink {
 public:
  DiagSink(const std::string& file, DiagnosticEngine& diags)
      : file_(file), diags_(diags) {}
  void report(const std::string& id, Severity sev, int line, int col,
              const std::string& msg, const std::string& stream) override {
    (void)stream;
    diags_.add(id, sev, file_, line, col, msg);
  }

 private:
  const std::string file_;
  DiagnosticEngine& diags_;
};

/// Collects the first error-severity diagnostic attributed to one stream
/// (the probed helper parameter).
class ProbeSink : public Sink {
 public:
  explicit ProbeSink(std::string stream) : stream_(std::move(stream)) {}
  void report(const std::string& id, Severity sev, int line, int col,
              const std::string& msg, const std::string& stream) override {
    if (stream != stream_ || sev != Severity::Error) return;
    if (!result.errorId.empty() &&
        (result.errorLine < line ||
         (result.errorLine == line && result.errorCol <= col))) {
      return;
    }
    result.errorId = id;
    result.errorMsg = msg;
    result.errorLine = line;
    result.errorCol = col;
  }
  ProbeResult result;

 private:
  const std::string stream_;
};

}  // namespace

void runDataflow(const Cfg& cfg, const std::vector<PreStream>& params,
                 const std::map<std::string, unsigned>& paramStates,
                 const std::string& file, const DataflowOptions& opts,
                 DiagnosticEngine& diags) {
  Engine engine(cfg, params, paramStates, opts);
  engine.solve();
  DiagSink sink(file, diags);
  engine.reportAll(sink);
}

ProbeResult probeHelper(const Cfg& cfg, const std::vector<PreStream>& params,
                        const std::string& probeParam, unsigned seedState,
                        const SummaryMap& summaries) {
  DataflowOptions opts;
  opts.summaries = &summaries;
  std::map<std::string, unsigned> paramStates;
  paramStates[probeParam] = seedState;
  Engine engine(cfg, params, paramStates, opts);
  engine.solve();
  ProbeSink sink(probeParam);
  engine.reportAll(sink);
  engine.exitView(probeParam, sink.result.outStates, sink.result.escaped);
  return sink.result;
}

}  // namespace pcxx::dslint
