// dslint v2 back half: worklist fixpoint dataflow over the CFG (cfg.h).
//
// The abstract domain is the old single-pass engine's, unchanged: every
// tracked d/stream variable carries a SET of protocol states (a bitmask
// over the Figure 2 FSM), and a diagnostic is reported only when an
// operation is invalid in EVERY possible state (must-error), so joins
// never produce false positives. What changed is the control flow: block
// IN states are joined over all predecessors and iterated to a fixpoint,
// so loop bodies see the states carried around the back edge instead of
// only the first iteration.
//
// Reporting runs in three passes over the converged solution:
//   1. every reachable block from its fixpoint IN (sound joined states);
//   2. per loop: the body from the join of the latch OUT states only
//      (the "iteration >= 2" view) — catches bugs that only appear with
//      loop-carried state, e.g. close() inside a loop, which the joined
//      view reports as may-error;
//   3. per loop: the body from the entry-edge states only (the
//      "iteration 1" view) — catches first-iteration bugs the join with
//      the latch masks.
// The diagnostic engine deduplicates (file, line, col, id), so a bug
// visible in several views is reported once.
//
// Helper summaries (summary.h) are applied at Call actions: the callee's
// per-state transfer updates the argument stream and a call that violates
// the protocol in every incoming state is DS108. Escapes end tracking as
// before; --strict surfaces them as DS109 notes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dslint/cfg.h"
#include "dslint/diagnostics.h"

namespace pcxx::dslint {

/// Protocol states, as a bitmask so a variable can be in a SET of states
/// after a control-flow join.
enum : unsigned {
  kOEmpty0 = 1u << 0,  ///< output: open, nothing pending, never wrote
  kOPend0 = 1u << 1,   ///< output: pending inserts, never wrote
  kOEmpty1 = 1u << 2,  ///< output: nothing pending, has written
  kOPend1 = 1u << 3,   ///< output: pending inserts, has written
  kINoRec = 1u << 4,   ///< input: open, no current record
  kIHasRec = 1u << 5,  ///< input: record read, extraction allowed
  kClosed = 1u << 6,   ///< closed (either direction)
};

/// State a freshly opened stream starts in.
unsigned initialState(Dir dir);
/// All states a stream of this direction can ever inhabit (the summary
/// seed universe for helper parameters, whose call context is unknown).
unsigned stateUniverse(Dir dir);

/// Per-parameter protocol effect of one helper function (computed by
/// summary.cpp, applied by the dataflow at Call actions).
struct ParamSummary {
  std::string name;  ///< parameter name inside the helper
  int index = 0;     ///< zero-based argument position
  Dir dir = Dir::Out;
  bool escapes = false;     ///< helper leaks the stream to unknown code
  bool collective = false;  ///< helper performs collectives on the stream
  /// Per initial state bit: the states the stream can be in on return.
  std::map<unsigned, unsigned> out;
  /// Per initial state bit: the diagnostic the helper body definitely
  /// trips when entered in that state ("" when the state is fine).
  /// Warnings are not recorded — only error-severity must-errors.
  std::map<unsigned, std::string> errorId;
  std::map<unsigned, std::string> errorMsg;
  /// Line of the violating statement inside the helper body.
  std::map<unsigned, int> errorLine;
};

struct FnSummary {
  std::string name;
  int line = 0;  ///< definition line (for DS108 messages)
  std::vector<ParamSummary> params;
  /// Any stream parameter sees a collective in the body (DS5xx treats a
  /// call to such a helper as a collective operation).
  bool collective = false;
};

using SummaryMap = std::map<std::string, FnSummary>;

struct DataflowOptions {
  bool strict = false;  ///< DS109 notes where tracking is dropped
  const SummaryMap* summaries = nullptr;
};

/// Run the fixpoint and the reporting passes over one CFG. `params` seeds
/// stream variables in the entry state (helper parameters during summary
/// probing; empty for a translation unit). `paramStates` optionally
/// overrides the seeded state per parameter name (defaults to the
/// direction's full universe).
void runDataflow(const Cfg& cfg, const std::vector<PreStream>& params,
                 const std::map<std::string, unsigned>& paramStates,
                 const std::string& file, const DataflowOptions& opts,
                 DiagnosticEngine& diags);

/// Summary probe: run the dataflow over a helper body with `probeParam`
/// seeded to exactly `seedState` (other parameters get their universe) and
/// report nothing; instead collect what happens to the probed stream.
struct ProbeResult {
  unsigned outStates = 0;   ///< states at the (normal) exit
  bool escaped = false;     ///< leaked to unknown code on some path
  std::string errorId;      ///< first definite error on the param, "" none
  std::string errorMsg;
  int errorLine = 0, errorCol = 0;
};
ProbeResult probeHelper(const Cfg& cfg, const std::vector<PreStream>& params,
                        const std::string& probeParam, unsigned seedState,
                        const SummaryMap& summaries);

}  // namespace pcxx::dslint
