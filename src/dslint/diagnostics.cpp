#include "dslint/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace pcxx::dslint {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

std::string Diagnostic::render() const {
  return formatDiagnostic(file, line, col, severityName(severity),
                          message + " [" + id + "]");
}

const std::vector<RuleInfo>& ruleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      {"DS001", "analyzer could not read or parse the translation unit"},
      {"DS101", "read-mode call on an output stream or vice versa"},
      {"DS102", "write() with nothing inserted since the last write"},
      {"DS103", "extraction (>>) before read()/unsortedRead()"},
      {"DS104", "double close of a d/stream"},
      {"DS105", "use of a d/stream after close()"},
      {"DS106", "pending inserts discarded without a write"},
      {"DS107", "output d/stream never writes a record"},
      {"DS108", "call violates the d/stream protocol inside the helper"},
      {"DS109", "d/stream escapes to unanalyzed code (tracking dropped)"},
      {"DS201", "field order differs between inserter and extractor"},
      {"DS202", "field count differs between inserter and extractor"},
      {"DS203", "operation or size expression differs for the same field"},
      {"DS301", "unannotated pointer field in a streamed type"},
      {"DS401", "interleaved inserts of collections with differing layouts"},
      {"DS402", "collection layout differs from the stream's layout"},
      {"DS501", "collective executed by a node-dependent subset of nodes"},
      {"DS502", "node-dependent branches order collectives differently"},
      {"DS503", "collective inside a loop with node-dependent trip count"},
  };
  return kRules;
}

void DiagnosticEngine::add(std::string id, Severity sev, std::string file,
                           int line, int col, std::string message) {
  std::string key = id;
  key.append("|").append(file).append("|").append(std::to_string(line))
      .append("|").append(std::to_string(col));
  if (!seen_.insert(std::move(key)).second) return;
  diags_.push_back(Diagnostic{std::move(id), sev, std::move(file), line, col,
                              std::move(message)});
}

void DiagnosticEngine::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.id < b.id;
                   });
}

std::string DiagnosticEngine::renderText() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

std::string DiagnosticEngine::renderJson() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) os << ",";
    os << "{\"file\":\"" << jsonEscape(d.file) << "\",\"line\":" << d.line
       << ",\"col\":" << d.col << ",\"id\":\"" << d.id << "\",\"severity\":\""
       << severityName(d.severity) << "\",\"message\":\""
       << jsonEscape(d.message) << "\"}";
  }
  os << "],\"count\":" << diags_.size() << "}\n";
  return os.str();
}

std::string DiagnosticEngine::renderSarif() const {
  std::ostringstream os;
  os << "{\"version\":\"2.1.0\",\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{";
  os << "\"tool\":{\"driver\":{\"name\":\"dslint\","
        "\"informationUri\":\"docs/DSLINT.md\",\"rules\":[";
  const auto& rules = ruleCatalog();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) os << ",";
    os << "{\"id\":\"" << rules[i].id << "\",\"shortDescription\":{\"text\":\""
       << jsonEscape(rules[i].shortDescription) << "\"}}";
  }
  os << "]}},\"results\":[";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) os << ",";
    const char* level = "error";
    if (d.severity == Severity::Warning) level = "warning";
    if (d.severity == Severity::Note) level = "note";
    os << "{\"ruleId\":\"" << jsonEscape(d.id) << "\",\"level\":\"" << level
       << "\",\"message\":{\"text\":\"" << jsonEscape(d.message)
       << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
          "{\"uri\":\""
       << jsonEscape(d.file) << "\"},\"region\":{\"startLine\":" << d.line
       << ",\"startColumn\":" << d.col << "}}}]}";
  }
  os << "]}]}\n";
  return os.str();
}

size_t DiagnosticEngine::applyBaseline(const std::string& baselineText) {
  // Entries: "DSxxx path:line" (one per line; '#' starts a comment; the
  // path is matched as a suffix, so baselines survive checkout roots).
  struct Entry {
    std::string id, path;
    int line = 0;
  };
  std::vector<Entry> entries;
  std::istringstream in(baselineText);
  std::string lineText;
  while (std::getline(in, lineText)) {
    const size_t hash = lineText.find('#');
    if (hash != std::string::npos) lineText.resize(hash);
    std::istringstream ls(lineText);
    std::string id, loc;
    if (!(ls >> id >> loc)) continue;
    const size_t colon = loc.rfind(':');
    if (colon == std::string::npos) continue;
    Entry e;
    e.id = id;
    e.path = loc.substr(0, colon);
    e.line = std::atoi(loc.c_str() + colon + 1);
    entries.push_back(std::move(e));
  }
  const auto suppressed = [&](const Diagnostic& d) {
    for (const Entry& e : entries) {
      if (e.id != d.id || e.line != d.line) continue;
      if (d.file == e.path) return true;
      if (d.file.size() > e.path.size() &&
          d.file.compare(d.file.size() - e.path.size(), e.path.size(),
                         e.path) == 0 &&
          d.file[d.file.size() - e.path.size() - 1] == '/') {
        return true;
      }
    }
    return false;
  };
  const size_t before = diags_.size();
  diags_.erase(std::remove_if(diags_.begin(), diags_.end(), suppressed),
               diags_.end());
  return before - diags_.size();
}

}  // namespace pcxx::dslint
