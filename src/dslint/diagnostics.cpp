#include "dslint/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace pcxx::dslint {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

std::string Diagnostic::render() const {
  return formatDiagnostic(file, line, col, severityName(severity),
                          message + " [" + id + "]");
}

void DiagnosticEngine::add(std::string id, Severity sev, std::string file,
                           int line, int col, std::string message) {
  diags_.push_back(Diagnostic{std::move(id), sev, std::move(file), line, col,
                              std::move(message)});
}

void DiagnosticEngine::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.id < b.id;
                   });
}

std::string DiagnosticEngine::renderText() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

std::string DiagnosticEngine::renderJson() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) os << ",";
    os << "{\"file\":\"" << jsonEscape(d.file) << "\",\"line\":" << d.line
       << ",\"col\":" << d.col << ",\"id\":\"" << d.id << "\",\"severity\":\""
       << severityName(d.severity) << "\",\"message\":\""
       << jsonEscape(d.message) << "\"}";
  }
  os << "],\"count\":" << diags_.size() << "}\n";
  return os.str();
}

}  // namespace pcxx::dslint
