// Diagnostic engine for dslint (and shared position formatting with the
// stream-gen front end, via util/srcpos.h).
//
// Every diagnostic has a stable ID (catalogued in docs/DSLINT.md):
//
//   D1 — d/stream protocol (Figure 2 state machine):
//     DS101  read-mode call on an output stream / write-mode call on an
//            input stream
//     DS102  write() with nothing inserted since the last write
//     DS103  extraction (>>) before read()/unsortedRead()
//     DS104  double close
//     DS105  use of a stream after close()
//     DS106  pending inserts discarded (close or end of scope before write)
//     DS107  output stream never writes a record
//   D2 — inserter/extractor symmetry:
//     DS201  field order differs between inserter and extractor
//     DS202  field count differs between inserter and extractor
//     DS203  operation or size expression differs for the same field
//   D3 — pointer annotations:
//     DS301  unannotated pointer field in a streamed type
//   D4 — interleave / alignment:
//     DS401  interleaved inserts of collections with differing layouts
//     DS402  collection layout differs from the stream's declared layout
//   D5 — collective divergence (deadlock):
//     DS501  collective executed by a node-dependent subset of nodes
//     DS502  node-dependent branches order collectives differently
//     DS503  collective inside a loop with node-dependent trip count
//   Interprocedural:
//     DS108  call violates the d/stream protocol inside the helper
//     DS109  stream escapes to unanalyzed code (--strict note)
//   DS001  analyzer could not parse the translation unit
#pragma once

#include <set>
#include <string>
#include <vector>

#include "util/srcpos.h"

namespace pcxx::dslint {

enum class Severity { Note, Warning, Error };

const char* severityName(Severity s);

struct Diagnostic {
  std::string id;  ///< "DS104"
  Severity severity = Severity::Error;
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;

  /// "file:line:col: error: message [DS104]"
  std::string render() const;
};

/// One entry of the rule catalog (stable IDs and short descriptions, used
/// by the SARIF writer and docs).
struct RuleInfo {
  const char* id;
  const char* shortDescription;
};

/// Every diagnostic ID the analyzer can emit, sorted by ID.
const std::vector<RuleInfo>& ruleCatalog();

/// Collects diagnostics for one run (possibly over several files).
///
/// Adding is idempotent per (id, file, line, col): the v2 engine walks
/// loop bodies under several state views (joined, first-iteration,
/// loop-carried), so the same must-error can surface more than once —
/// duplicates are dropped at insertion.
class DiagnosticEngine {
 public:
  void add(std::string id, Severity sev, std::string file, int line, int col,
           std::string message);

  void error(const std::string& id, const std::string& file, int line, int col,
             const std::string& message) {
    add(id, Severity::Error, file, line, col, message);
  }
  void warning(const std::string& id, const std::string& file, int line,
               int col, const std::string& message) {
    add(id, Severity::Warning, file, line, col, message);
  }

  /// Sort by (file, line, col, id) for stable golden output.
  void sort();

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t count() const { return diags_.size(); }

  /// One GCC-style line per diagnostic, newline-terminated.
  std::string renderText() const;

  /// Machine-readable output for CI:
  /// {"diagnostics":[{"file":...,"line":...,"col":...,"id":...,
  ///   "severity":...,"message":...}],"count":N}
  std::string renderJson() const;

  /// SARIF 2.1.0 (one run, tool "dslint", the full rule catalog, one
  /// result per diagnostic with a physicalLocation region).
  std::string renderSarif() const;

  /// Remove diagnostics suppressed by a baseline file: one `DSxxx
  /// path:line` entry per line, `#` comments, path matched by suffix.
  /// Returns the number removed.
  size_t applyBaseline(const std::string& baselineText);

 private:
  std::vector<Diagnostic> diags_;
  std::set<std::string> seen_;  ///< "id|file|line|col" dedup keys
};

}  // namespace pcxx::dslint
