// dslint — static protocol & symmetry analyzer for d/stream client code.
//
//   dslint [--format=text|json|sarif] [--baseline FILE] [--strict]
//          [--all-types] file.cpp [file2.cpp ...]
//
// Generated .json artifacts (obs traces, --metrics-json reports, perf-gate
// baselines) and .sarif reports are skipped, so globbing a directory that
// benches or the lint targets have written into does not produce bogus
// diagnostics or I/O errors.
//
// --baseline FILE suppresses known findings ("DSxxx path:line" per line,
// '#' comments); --strict adds DS109 notes where a stream escapes to
// unanalyzed code. --json is kept as an alias for --format=json.
//
// Exit status: 0 when every file is clean (after baseline suppression),
// 1 when diagnostics were reported, 2 on usage or I/O errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "dslint/analyzer.h"
#include "util/error.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace pcxx;

  Options opts("dslint",
               "Static analyzer for d/stream client code: protocol (DS1xx), "
               "inserter/extractor symmetry (DS2xx), pointer annotations "
               "(DS301), interleave layout (DS4xx), and collective "
               "divergence (DS5xx) checks.");
  opts.add("format", "text", "output format: text, json, or sarif");
  opts.add("baseline", "",
           "suppress diagnostics listed in FILE (one 'DSxxx path:line' "
           "entry per line, '#' comments)");
  opts.addFlag("json", "alias for --format=json (kept for CI scripts)");
  opts.addFlag("strict",
               "emit DS109 notes where a d/stream escapes to unanalyzed "
               "code and tracking is dropped");
  opts.addFlag("all-types",
               "report unannotated pointer fields in every struct, not just "
               "types with visible stream functions");

  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const UsageError& e) {
    std::cerr << "dslint: " << e.what() << "\n";
    return 2;
  }
  if (opts.positional().empty()) {
    std::cerr << "dslint: no input files\n" << opts.usage();
    return 2;
  }

  std::string format = opts.get("format");
  if (opts.getFlag("json")) format = "json";
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "dslint: unknown --format '" << format
              << "' (expected text, json, or sarif)\n";
    return 2;
  }

  std::string baselineText;
  if (!opts.get("baseline").empty()) {
    std::ifstream in(opts.get("baseline"), std::ios::binary);
    if (!in) {
      std::cerr << "dslint: cannot open baseline file '"
                << opts.get("baseline") << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    baselineText = buf.str();
  }

  dslint::AnalyzerOptions analyzerOpts;
  analyzerOpts.allTypes = opts.getFlag("all-types");
  analyzerOpts.strict = opts.getFlag("strict");

  auto isJsonArtifact = [](const std::string& path) {
    const auto endsWith = [&path](const char* suffix) {
      const std::string s(suffix);
      return path.size() >= s.size() &&
             path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return endsWith(".json") || endsWith(".sarif");
  };

  dslint::DiagnosticEngine diags;
  bool ioError = false;
  bool analyzedAny = false;
  for (const std::string& path : opts.positional()) {
    if (isJsonArtifact(path)) continue;  // generated trace/metrics output
    analyzedAny = true;
    if (!dslint::analyzeFile(path, analyzerOpts, diags)) ioError = true;
  }
  if (!analyzedAny) {
    std::cerr << "dslint: no source files among the inputs "
                 "(.json and .sarif artifacts are skipped)\n";
    return 2;
  }
  if (!baselineText.empty()) diags.applyBaseline(baselineText);
  diags.sort();

  if (format == "json") {
    std::cout << diags.renderJson() << "\n";
  } else if (format == "sarif") {
    std::cout << diags.renderSarif();
  } else {
    std::cout << diags.renderText();
  }
  if (ioError) return 2;
  return diags.empty() ? 0 : 1;
}
