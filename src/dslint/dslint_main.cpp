// dslint — static protocol & symmetry analyzer for d/stream client code.
//
//   dslint [--json] [--all-types] file.cpp [file2.cpp ...]
//
// Generated .json artifacts (obs traces, --metrics-json reports) are
// skipped, so globbing a directory that benches have written into does not
// produce bogus diagnostics or I/O errors.
//
// Exit status: 0 when every file is clean, 1 when diagnostics were
// reported, 2 on usage or I/O errors.

#include <cstdio>
#include <iostream>

#include "dslint/analyzer.h"
#include "util/error.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace pcxx;

  Options opts("dslint",
               "Static analyzer for d/stream client code: protocol (DS1xx), "
               "inserter/extractor symmetry (DS2xx), pointer annotations "
               "(DS301), and interleave layout (DS4xx) checks.");
  opts.addFlag("json", "emit diagnostics as JSON (for CI)");
  opts.addFlag("all-types",
               "report unannotated pointer fields in every struct, not just "
               "types with visible stream functions");

  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const UsageError& e) {
    std::cerr << "dslint: " << e.what() << "\n";
    return 2;
  }
  if (opts.positional().empty()) {
    std::cerr << "dslint: no input files\n" << opts.usage();
    return 2;
  }

  dslint::AnalyzerOptions analyzerOpts;
  analyzerOpts.allTypes = opts.getFlag("all-types");

  auto isJsonArtifact = [](const std::string& path) {
    return path.size() >= 5 &&
           path.compare(path.size() - 5, 5, ".json") == 0;
  };

  dslint::DiagnosticEngine diags;
  bool ioError = false;
  bool analyzedAny = false;
  for (const std::string& path : opts.positional()) {
    if (isJsonArtifact(path)) continue;  // generated trace/metrics output
    analyzedAny = true;
    if (!dslint::analyzeFile(path, analyzerOpts, diags)) ioError = true;
  }
  if (!analyzedAny) {
    std::cerr << "dslint: no source files among the inputs "
                 "(.json artifacts are skipped)\n";
    return 2;
  }
  diags.sort();

  if (opts.getFlag("json")) {
    std::cout << diags.renderJson() << "\n";
  } else {
    std::cout << diags.renderText();
  }
  if (ioError) return 2;
  return diags.empty() ? 0 : 1;
}
