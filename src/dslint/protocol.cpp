#include "dslint/protocol.h"

#include <map>
#include <set>
#include <vector>

namespace pcxx::dslint {
namespace {

using sg::TokKind;
using sg::Token;

// -- abstract domain ----------------------------------------------------------

/// Protocol states, as a bitmask so a variable can be in a SET of states
/// after a control-flow join.
enum : unsigned {
  kOEmpty0 = 1u << 0,  ///< output: open, nothing pending, never wrote
  kOPend0 = 1u << 1,   ///< output: pending inserts, never wrote
  kOEmpty1 = 1u << 2,  ///< output: nothing pending, has written
  kOPend1 = 1u << 3,   ///< output: pending inserts, has written
  kINoRec = 1u << 4,   ///< input: open, no current record
  kIHasRec = 1u << 5,  ///< input: record read, extraction allowed
  kClosed = 1u << 6,   ///< closed (either direction)
};

enum class Dir { Out, In };

enum class Event {
  Insert,        // s << ...
  Write,         // s.write()
  Read,          // s.read()
  UnsortedRead,  // s.unsortedRead()
  SkipRecord,    // s.skipRecord()
  Rewind,        // s.rewind()
  Extract,       // s >> ...
  Close,         // s.close()
  Use,           // any other method call (atEnd(), layout(), ...)
  ScopeEnd,      // destructor at end of the declaring scope
};

bool isReadMode(Event e) {
  return e == Event::Read || e == Event::UnsortedRead ||
         e == Event::SkipRecord || e == Event::Rewind || e == Event::Extract;
}
bool isWriteMode(Event e) { return e == Event::Insert || e == Event::Write; }

struct CollectionVar {
  std::string distVar;   ///< "&d" constructor argument, "" if none
  std::string alignVar;  ///< "&a" constructor argument, "" if none
  bool layoutKnown = false;
};

struct StreamVar {
  Dir dir = Dir::Out;
  int declLine = 0;
  unsigned states = 0;
  bool escaped = false;
  bool layoutKnown = false;
  /// Input stream opened with StreamOptions::salvage: read() may consume
  /// damage to end-of-file and yield no record, so extraction legality is a
  /// runtime hasRecord() question the FSM must not second-guess.
  bool salvageMode = false;
  std::string distVar, alignVar;
  /// Collections inserted since the last write: (layout key, first line).
  std::vector<std::pair<std::string, int>> pendingKeys;
};

struct Env {
  std::map<std::string, StreamVar> streams;
  std::map<std::string, CollectionVar> colls;
  bool dead = false;  ///< path ended in return/throw/break/continue
};

Env join(Env a, const Env& b) {
  if (a.dead) return b;
  if (b.dead) return a;
  for (const auto& [name, sv] : b.streams) {
    auto it = a.streams.find(name);
    if (it == a.streams.end()) {
      a.streams.emplace(name, sv);
      continue;
    }
    StreamVar& av = it->second;
    av.states |= sv.states;
    av.escaped = av.escaped || sv.escaped;
    av.salvageMode = av.salvageMode || sv.salvageMode;
    for (const auto& key : sv.pendingKeys) {
      bool have = false;
      for (const auto& k : av.pendingKeys) have = have || k.first == key.first;
      if (!have) av.pendingKeys.push_back(key);
    }
  }
  for (const auto& [name, cv] : b.colls) a.colls.emplace(name, cv);
  return a;
}

/// One state's reaction to an event.
struct Outcome {
  const char* id = nullptr;  ///< diagnostic ID, nullptr when legal
  Severity sev = Severity::Error;
  unsigned next = 0;
};

Outcome transition(unsigned state, Event e) {
  if (state == kClosed) {
    if (e == Event::Close) return {"DS104", Severity::Error, kClosed};
    if (e == Event::ScopeEnd) return {nullptr, Severity::Error, kClosed};
    return {"DS105", Severity::Error, kClosed};
  }
  switch (e) {
    case Event::Insert:
      if (state == kOEmpty0 || state == kOPend0)
        return {nullptr, Severity::Error, kOPend0};
      return {nullptr, Severity::Error, kOPend1};
    case Event::Write:
      if (state == kOEmpty0 || state == kOEmpty1)
        return {"DS102", Severity::Error, kOEmpty1};
      return {nullptr, Severity::Error, kOEmpty1};
    case Event::Read:
    case Event::UnsortedRead:
      return {nullptr, Severity::Error, kIHasRec};
    case Event::SkipRecord:
    case Event::Rewind:
      return {nullptr, Severity::Error, kINoRec};
    case Event::Extract:
      if (state == kINoRec) return {"DS103", Severity::Error, kIHasRec};
      return {nullptr, Severity::Error, kIHasRec};
    case Event::Close:
      if (state == kOPend0 || state == kOPend1)
        return {"DS106", Severity::Error, kClosed};
      if (state == kOEmpty0) return {"DS107", Severity::Warning, kClosed};
      return {nullptr, Severity::Error, kClosed};
    case Event::ScopeEnd:
      if (state == kOPend0 || state == kOPend1)
        return {"DS106", Severity::Error, state};
      if (state == kOEmpty0) return {"DS107", Severity::Warning, state};
      return {nullptr, Severity::Error, state};
    case Event::Use:
      return {nullptr, Severity::Error, state};
  }
  return {nullptr, Severity::Error, state};
}

// -- the walker ---------------------------------------------------------------

class Walker {
 public:
  Walker(const sg::TokenStream& stream, DiagnosticEngine& diags)
      : file_(stream.file), toks_(stream.tokens), diags_(diags) {}

  void run() {
    Env env;
    while (!atEof()) {
      if (cur().isSymbol("}")) {
        advance();  // stray; keep walking
        continue;
      }
      walkStatement(env);
    }
    destroyNewStreams(env, /*outer=*/{}, lastToken());
  }

 private:
  // -- token helpers ----------------------------------------------------------

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  const Token& lastToken() const { return toks_[toks_.size() - 1]; }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
    else pos_ = toks_.size() - 1;
  }
  bool atEof() const { return cur().is(TokKind::EndOfFile); }

  /// True at a `<<` / `>>` operator: the lexer emits two adjacent one-char
  /// symbol tokens (only "::" is fused).
  bool atShiftOp(char c) const {
    const std::string s(1, c);
    return cur().isSymbol(s) && peek().isSymbol(s) &&
           peek().line == cur().line && peek().col == cur().col + 1;
  }

  /// Skip a balanced template argument list starting at '<'.
  void skipAngles() {
    advance();  // '<'
    int depth = 1;
    while (depth > 0 && !atEof()) {
      if (cur().isSymbol("<")) ++depth;
      if (cur().isSymbol(">")) --depth;
      advance();
    }
  }

  // -- scopes and control flow ------------------------------------------------

  std::set<std::string> streamNames(const Env& env) const {
    std::set<std::string> names;
    for (const auto& [name, sv] : env.streams) names.insert(name);
    return names;
  }

  /// Run destructor checks for streams declared inside the exited scope and
  /// drop them (and same-scope collections are dropped by the caller's copy
  /// semantics; collections have no destructor diagnostics).
  void destroyNewStreams(Env& env, const std::set<std::string>& outer,
                         const Token& at) {
    for (auto it = env.streams.begin(); it != env.streams.end();) {
      if (outer.count(it->first)) {
        ++it;
        continue;
      }
      if (!env.dead) applyScopeEnd(env, it->first, it->second, at);
      it = env.streams.erase(it);
    }
  }

  /// cur() == '{': walk the compound statement, destroying inner streams at
  /// the closing brace.
  void walkScope(Env& env) {
    const std::set<std::string> outer = streamNames(env);
    advance();  // '{'
    while (!atEof() && !cur().isSymbol("}")) {
      walkStatement(env);
    }
    const Token closing = cur();
    if (cur().isSymbol("}")) advance();
    destroyNewStreams(env, outer, closing);
  }

  /// A control-flow arm: either a compound statement or one statement.
  /// Either way, variables it declares die at its end.
  void walkControlled(Env& env) {
    if (cur().isSymbol("{")) {
      walkScope(env);
      return;
    }
    const std::set<std::string> outer = streamNames(env);
    walkStatement(env);
    destroyNewStreams(env, outer, toks_[pos_ == 0 ? 0 : pos_ - 1]);
  }

  void walkStatement(Env& env) {
    if (cur().isSymbol("{")) {
      walkScope(env);
      return;
    }
    if (cur().isSymbol(";")) {
      advance();
      return;
    }
    if (cur().is(TokKind::Identifier)) {
      const std::string& kw = cur().text;
      if (kw == "if") {
        advance();
        if (cur().isIdent("constexpr")) advance();
        if (cur().isSymbol("(")) scanParens(env);
        Env thenEnv = env;
        walkControlled(thenEnv);
        if (cur().isIdent("else")) {
          advance();
          Env elseEnv = env;
          walkControlled(elseEnv);
          env = join(std::move(thenEnv), elseEnv);
        } else {
          env = join(std::move(env), thenEnv);
        }
        return;
      }
      if (kw == "for" || kw == "while") {
        advance();
        if (cur().isSymbol("(")) scanParens(env);
        Env bodyEnv = env;
        walkControlled(bodyEnv);
        env = join(std::move(env), bodyEnv);
        return;
      }
      if (kw == "do") {
        advance();
        walkControlled(env);  // body runs at least once
        if (cur().isIdent("while")) {
          advance();
          if (cur().isSymbol("(")) scanParens(env);
          if (cur().isSymbol(";")) advance();
        }
        return;
      }
      if (kw == "switch") {
        advance();
        if (cur().isSymbol("(")) scanParens(env);
        Env bodyEnv = env;
        walkControlled(bodyEnv);
        env = join(std::move(env), bodyEnv);
        return;
      }
      if (kw == "try") {
        advance();
        walkControlled(env);
        while (cur().isIdent("catch")) {
          advance();
          if (cur().isSymbol("(")) scanParens(env);
          Env handler = env;
          walkControlled(handler);
          env = join(std::move(env), handler);
        }
        return;
      }
      if (kw == "return" || kw == "throw") {
        advance();
        scanStatement(env);
        // Leaving the function: local streams are destroyed here. Only the
        // definite data-loss check fires on early exits (a return before
        // write is usually an error path, not a protocol bug).
        if (!env.dead) {
          for (auto& [name, sv] : env.streams) {
            applyEarlyExit(env, name, sv, toks_[pos_ == 0 ? 0 : pos_ - 1]);
          }
        }
        env.dead = true;
        return;
      }
      if (kw == "break" || kw == "continue") {
        advance();
        if (cur().isSymbol(";")) advance();
        env.dead = true;
        return;
      }
    }
    scanStatement(env);
  }

  // -- statement scanning -----------------------------------------------------

  /// Scan one statement: until ';' at depth 0 (consumed) or '}' at depth 0
  /// (left for the caller). Detects declarations and stream events;
  /// descends into any '{' (lambda bodies, nested blocks) as a scope.
  void scanStatement(Env& env) {
    int depth = 0;  // () and [] nesting
    bool first = true;
    while (!atEof()) {
      if (depth == 0 && cur().isSymbol(";")) {
        advance();
        return;
      }
      if (depth == 0 && cur().isSymbol("}")) return;
      if (cur().isSymbol("(") || cur().isSymbol("[")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]")) {
        if (depth > 0) --depth;
        advance();
        continue;
      }
      if (cur().isSymbol("{")) {
        walkScope(env);
        continue;
      }
      if (cur().is(TokKind::Identifier)) {
        if (depth == 0 && first &&
            (matchStreamDecl(env) || matchCollectionDecl(env))) {
          first = false;
          continue;
        }
        if (env.streams.count(cur().text)) {
          handleStreamUse(env);
          first = false;
          continue;
        }
        // `opts.salvage = true;` marks an options variable whose streams
        // open in salvage mode.
        if (peek().isSymbol(".") && peek(2).isIdent("salvage") &&
            peek(3).isSymbol("=") && peek(4).isIdent("true")) {
          salvageOpts_.insert(cur().text);
        }
      }
      first = false;
      advance();
    }
  }

  /// Scan a balanced parenthesized region (condition, call args) for stream
  /// events; cur() == '('.
  void scanParens(Env& env) {
    advance();  // '('
    int depth = 1;
    while (!atEof() && depth > 0) {
      if (cur().isSymbol("(")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")")) {
        --depth;
        advance();
        continue;
      }
      if (cur().isSymbol("{")) {
        walkScope(env);  // lambda body used inside the condition/args
        continue;
      }
      if (cur().is(TokKind::Identifier) && env.streams.count(cur().text)) {
        handleStreamUse(env);
        continue;
      }
      advance();
    }
  }

  // -- declarations -----------------------------------------------------------

  struct CtorArgs {
    std::vector<std::string> refs;
    bool simple = true;
    bool salvage = false;
  };

  /// Collect constructor arguments: returns the `&ident` reference args in
  /// order and whether every `&...` arg was a simple `&ident` (an opaque
  /// layout argument such as `&layout.distribution()` makes the stream's
  /// layout unknown and disables D4 checks). Also notes whether the args
  /// mention the `salvage` stream option, either inline
  /// (`StreamOptions{.salvage = true}`) or via an options variable that had
  /// `.salvage = true` assigned earlier. cur() == '('.
  CtorArgs scanCtorArgs() {
    CtorArgs out;
    advance();  // '('
    int depth = 1;
    while (!atEof() && depth > 0) {
      if (cur().isSymbol("(")) ++depth;
      if (cur().isSymbol(")")) {
        --depth;
        advance();
        continue;
      }
      if (cur().is(TokKind::Identifier) &&
          (cur().text == "salvage" || salvageOpts_.count(cur().text))) {
        out.salvage = true;
      }
      if (depth == 1 && cur().isSymbol("&")) {
        if (peek().is(TokKind::Identifier) &&
            (peek(2).isSymbol(",") || peek(2).isSymbol(")"))) {
          out.refs.push_back(peek().text);
        } else {
          out.simple = false;
        }
      }
      advance();
    }
    return out;
  }

  /// ds::OStream name(args); (also pcxx::ds::, bare, and the oStream /
  /// iStream aliases). Registers the stream variable.
  bool matchStreamDecl(Env& env) {
    const size_t save = pos_;
    if (cur().isIdent("pcxx") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (cur().isIdent("ds") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    Dir dir;
    if (cur().isIdent("OStream") || cur().isIdent("oStream")) {
      dir = Dir::Out;
    } else if (cur().isIdent("IStream") || cur().isIdent("iStream")) {
      dir = Dir::In;
    } else {
      pos_ = save;
      return false;
    }
    advance();
    if (!cur().is(TokKind::Identifier) || !peek().isSymbol("(")) {
      pos_ = save;
      return false;
    }
    StreamVar sv;
    sv.dir = dir;
    sv.declLine = cur().line;
    const std::string name = cur().text;
    advance();  // name; cur() == '('
    const CtorArgs args = scanCtorArgs();
    sv.layoutKnown = args.simple && !args.refs.empty();
    if (!args.refs.empty()) sv.distVar = args.refs[0];
    if (args.refs.size() > 1) sv.alignVar = args.refs[1];
    sv.salvageMode = args.salvage && dir == Dir::In;
    sv.states = dir == Dir::Out ? kOEmpty0 : kINoRec;
    env.streams[name] = sv;  // shadowing redeclaration replaces
    return true;
  }

  /// coll::Collection<T> name(args); — tracked for D4 layout comparison.
  bool matchCollectionDecl(Env& env) {
    const size_t save = pos_;
    if (cur().isIdent("pcxx") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (cur().isIdent("coll") && peek().isSymbol("::")) {
      advance();
      advance();
    }
    if (!cur().isIdent("Collection") || !peek().isSymbol("<")) {
      pos_ = save;
      return false;
    }
    advance();  // Collection; cur() == '<'
    skipAngles();
    if (!cur().is(TokKind::Identifier) || !peek().isSymbol("(")) {
      pos_ = save;
      return false;
    }
    const std::string name = cur().text;
    advance();  // name; cur() == '('
    const CtorArgs args = scanCtorArgs();
    CollectionVar cv;
    cv.layoutKnown = args.simple && !args.refs.empty();
    if (!args.refs.empty()) cv.distVar = args.refs[0];
    if (args.refs.size() > 1) cv.alignVar = args.refs[1];
    env.colls[name] = cv;
    return true;
  }

  // -- stream uses ------------------------------------------------------------

  static std::string layoutKey(const std::string& dist,
                               const std::string& align) {
    return align.empty() ? dist : dist + ", " + align;
  }

  /// cur() is an identifier naming a tracked stream. Classify the use.
  void handleStreamUse(Env& env) {
    const std::string name = cur().text;
    const Token nameTok = cur();
    advance();
    if (cur().isSymbol(".") && peek().is(TokKind::Identifier) &&
        peek(2).isSymbol("(")) {
      const Token methodTok = peek();
      const std::string& m = methodTok.text;
      advance();  // '.'
      advance();  // method; cur() == '(' — scanned by the caller for events
      Event e = Event::Use;
      if (m == "write") e = Event::Write;
      else if (m == "read") e = Event::Read;
      else if (m == "unsortedRead") e = Event::UnsortedRead;
      else if (m == "skipRecord") e = Event::SkipRecord;
      else if (m == "rewind") e = Event::Rewind;
      else if (m == "close") e = Event::Close;
      applyEvent(env, name, e, methodTok, nullptr, "");
      return;
    }
    if (atShiftOp('<') || atShiftOp('>')) {
      const bool insert = atShiftOp('<');
      while (atShiftOp(insert ? '<' : '>')) {
        const Token opTok = cur();
        advance();  // first '<' / '>'
        advance();  // second
        std::string collName = scanOperand(env);
        const CollectionVar* cv = nullptr;
        auto it = env.colls.find(collName);
        if (it != env.colls.end()) cv = &it->second;
        applyEvent(env, name, insert ? Event::Insert : Event::Extract, opTok,
                   cv, collName);
      }
      return;
    }
    // The stream is named in some other context (passed by reference, its
    // address taken, ...). Be conservative: stop diagnosing it.
    auto it = env.streams.find(name);
    if (it != env.streams.end()) it->second.escaped = true;
    (void)nameTok;
  }

  /// Scan one `<<`/`>>` operand; returns the collection variable name when
  /// the operand is `g` or `g.field(...)` for a tracked collection.
  std::string scanOperand(Env& env) {
    std::string collName;
    if (cur().is(TokKind::Identifier) && env.colls.count(cur().text)) {
      collName = cur().text;
    }
    int depth = 0;
    while (!atEof()) {
      if (depth == 0 &&
          (cur().isSymbol(";") || cur().isSymbol(",") || atShiftOp('<') ||
           atShiftOp('>') || cur().isSymbol("}"))) {
        break;
      }
      if (depth == 0 && cur().isSymbol(")")) break;
      if (cur().isSymbol("(") || cur().isSymbol("[") || cur().isSymbol("{")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]") || cur().isSymbol("}")) {
        --depth;
        advance();
        continue;
      }
      advance();
    }
    return collName;
  }

  // -- event application ------------------------------------------------------

  void report(const char* id, Severity sev, const Token& at,
              const std::string& message) {
    diags_.add(id, sev, file_, at.line, at.col, message);
  }

  void applyEvent(Env& env, const std::string& name, Event e, const Token& at,
                  const CollectionVar* cv, const std::string& collName) {
    auto it = env.streams.find(name);
    if (it == env.streams.end()) return;
    StreamVar& v = it->second;
    if (env.dead || v.escaped || v.states == 0) return;

    // Direction errors are definite regardless of protocol state (D1: mixing
    // write-mode and read-mode calls).
    if (v.dir == Dir::Out && isReadMode(e)) {
      report("DS101", Severity::Error, at,
             "read-mode operation on output d/stream '" + name +
                 "' (declared line " + std::to_string(v.declLine) + ")");
      return;
    }
    if (v.dir == Dir::In && isWriteMode(e)) {
      report("DS101", Severity::Error, at,
             "write-mode operation on input d/stream '" + name +
                 "' (declared line " + std::to_string(v.declLine) + ")");
      return;
    }

    // Per-state transition with must-error reporting: diagnose only if the
    // event misbehaves in EVERY possible state.
    unsigned next = 0;
    const char* commonId = nullptr;
    Severity commonSev = Severity::Error;
    bool allError = true;
    bool any = false;
    for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
      if (!(v.states & bit)) continue;
      const Outcome o = transition(bit, e);
      next |= o.next;
      if (!any) {
        commonId = o.id;
        commonSev = o.sev;
        any = true;
      } else if (o.id == nullptr || commonId == nullptr ||
                 std::string(o.id) != commonId) {
        allError = false;
      }
      if (o.id == nullptr) allError = false;
    }
    if (any && allError && commonId != nullptr) {
      report(commonId, commonSev, at, describe(commonId, e, name, v));
    }
    v.states = next;
    // Salvage-mode read() may land at end-of-file with no record; keep the
    // no-record state live so later extractions (guarded by hasRecord() at
    // runtime) are not flagged as definite DS103 errors.
    if (v.salvageMode && (e == Event::Read || e == Event::UnsortedRead)) {
      v.states |= kINoRec;
    }

    // D4 bookkeeping.
    if (e == Event::Write) v.pendingKeys.clear();
    if ((e == Event::Insert || e == Event::Extract) && cv != nullptr &&
        cv->layoutKnown) {
      if (v.layoutKnown) {
        const std::string sKey = layoutKey(v.distVar, v.alignVar);
        const std::string cKey = layoutKey(cv->distVar, cv->alignVar);
        if (sKey != cKey) {
          report("DS402", Severity::Error, at,
                 "collection '" + collName + "' is laid out over (" + cKey +
                     ") but d/stream '" + name + "' was declared over (" +
                     sKey + "); layouts must match");
        }
      }
      if (e == Event::Insert) {
        const std::string cKey = layoutKey(cv->distVar, cv->alignVar);
        for (const auto& [key, line] : v.pendingKeys) {
          if (key != cKey) {
            report("DS401", Severity::Error, at,
                   "collection '" + collName + "' over (" + cKey +
                       ") interleaved with an insert over (" + key +
                       ") from line " + std::to_string(line) +
                       "; interleaved inserts require aligned collections");
            break;
          }
        }
        bool have = false;
        for (const auto& [key, line] : v.pendingKeys) {
          have = have || key == cKey;
        }
        if (!have) v.pendingKeys.emplace_back(cKey, at.line);
      }
    }
  }

  std::string describe(const std::string& id, Event e, const std::string& name,
                       const StreamVar& v) const {
    (void)e;
    if (id == "DS102") {
      return "write() on d/stream '" + name +
             "' with nothing inserted since the last record boundary";
    }
    if (id == "DS103") {
      return "extraction from d/stream '" + name +
             "' before read() or unsortedRead()";
    }
    if (id == "DS104") return "double close of d/stream '" + name + "'";
    if (id == "DS105") {
      return "use of d/stream '" + name + "' after close (declared line " +
             std::to_string(v.declLine) + ")";
    }
    if (id == "DS106") {
      return "close of d/stream '" + name +
             "' discards pending inserts that were never written";
    }
    if (id == "DS107") {
      return "output d/stream '" + name + "' never writes a record";
    }
    return "d/stream protocol violation on '" + name + "'";
  }

  void applyScopeEnd(Env& env, const std::string& name, StreamVar& v,
                     const Token& at) {
    if (v.escaped || v.states == 0 || env.dead) return;
    unsigned next = 0;
    const char* commonId = nullptr;
    Severity commonSev = Severity::Error;
    bool allError = true;
    bool any = false;
    for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
      if (!(v.states & bit)) continue;
      const Outcome o = transition(bit, Event::ScopeEnd);
      next |= o.next;
      if (!any) {
        commonId = o.id;
        commonSev = o.sev;
        any = true;
      } else if (o.id == nullptr || commonId == nullptr ||
                 std::string(o.id) != commonId) {
        allError = false;
      }
      if (o.id == nullptr) allError = false;
    }
    if (any && allError && commonId != nullptr) {
      std::string msg =
          std::string(commonId) == "DS106"
              ? "d/stream '" + name +
                    "' destroyed with pending inserts never written "
                    "(declared line " +
                    std::to_string(v.declLine) + ")"
              : "output d/stream '" + name +
                    "' never writes a record (declared line " +
                    std::to_string(v.declLine) + ")";
      report(commonId, commonSev, at, msg);
    }
  }

  /// Destructor semantics on return/throw: only the definite data-loss
  /// check (pending inserts on every path) fires.
  void applyEarlyExit(Env& env, const std::string& name, StreamVar& v,
                      const Token& at) {
    (void)env;
    if (v.escaped || v.states == 0) return;
    const unsigned pend = kOPend0 | kOPend1;
    if ((v.states & pend) != 0 && (v.states & ~pend) == 0) {
      report("DS106", Severity::Error, at,
             "d/stream '" + name +
                 "' destroyed with pending inserts never written "
                 "(declared line " +
                 std::to_string(v.declLine) + ")");
    }
    v.escaped = true;  // do not re-report at the enclosing scope end
  }

  const std::string file_;
  const std::vector<Token>& toks_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  /// Names of StreamOptions variables observed with `.salvage = true`
  /// (flow-insensitive — fine for a lint heuristic).
  std::set<std::string> salvageOpts_;
};

}  // namespace

void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags) {
  Walker(stream, diags).run();
}

}  // namespace pcxx::dslint
