#include "dslint/protocol.h"

#include <set>
#include <vector>

#include "dslint/cfg.h"
#include "dslint/dataflow.h"
#include "dslint/summary.h"

namespace pcxx::dslint {
namespace {

// -- DS5xx: collective divergence ---------------------------------------------
//
// Paper §4.2: d/stream operations are collective — every node must
// execute open/read/write/close in the same order or the runtime
// deadlocks waiting for the missing participants. The dataflow's
// statement tree keeps conditions tagged with node-identity dependence
// (`node.id()`, `thisNode`, `myRank`, ...), so divergence is a structural
// property: a collective whose execution (or execution count, or order)
// depends on which node is evaluating the condition.

struct CollEvent {
  std::string desc;  ///< comparison key and message fragment
  int line = 0, col = 0;
};

bool sameSeq(const std::vector<CollEvent>& a, const std::vector<CollEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].desc != b[i].desc) return false;
  }
  return true;
}

std::string listSeq(const std::vector<CollEvent>& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i) out += ", ";
    out += seq[i].desc;
  }
  return out;
}

/// True when every path through the statement leaves the enclosing
/// region (return/throw/break/continue at the statement level).
bool definitelyExits(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Return:
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return true;
    case Stmt::Kind::Seq:
      for (const auto& c : s.children) {
        if (definitelyExits(*c)) return true;
      }
      return false;
    default:
      return false;
  }
}

/// One arm of a node-dependent branch exits (returns/breaks) while the
/// other falls through: everything after the branch runs on a
/// node-dependent subset of nodes.
bool exitAsymmetric(const Stmt& ifStmt) {
  const bool thenExits =
      !ifStmt.children.empty() && definitelyExits(*ifStmt.children[0]);
  const bool elseExits =
      ifStmt.children.size() > 1 && definitelyExits(*ifStmt.children[1]);
  return thenExits != elseExits;
}

class CollectiveChecker {
 public:
  CollectiveChecker(const SummaryMap& summaries, const std::string& file,
                    DiagnosticEngine& diags)
      : summaries_(summaries), file_(file), diags_(diags) {}

  void run(const Stmt& root) { walk(root); }

 private:
  /// Returns the sequence of collectives this subtree executes on the
  /// nodes that reach it, reporting divergence along the way.
  std::vector<CollEvent> walk(const Stmt& s) {
    std::vector<CollEvent> seq;
    switch (s.kind) {
      case Stmt::Kind::Actions:
        collectActions(s, seq);
        return seq;
      case Stmt::Kind::Seq: {
        bool divergedExit = false;
        int divergeLine = 0;
        for (const auto& child : s.children) {
          std::vector<CollEvent> sub = walk(*child);
          if (divergedExit && !sub.empty()) {
            diags_.error("DS501", file_, sub[0].line, sub[0].col,
                         sub[0].desc +
                             " is reached only by a node-identity-dependent "
                             "subset of nodes (the branch at line " +
                             std::to_string(divergeLine) +
                             " exits early on some nodes); collectives must "
                             "run on every node in the same order");
            divergedExit = false;  // one report per divergence point
          }
          append(seq, sub);
          if (child->kind == Stmt::Kind::If && child->nodeDependent &&
              exitAsymmetric(*child)) {
            divergedExit = true;
            divergeLine = child->line;
          }
        }
        return seq;
      }
      case Stmt::Kind::If: {
        std::vector<CollEvent> condSeq = walkList(s.cond);
        std::vector<CollEvent> thenSeq =
            s.children.empty() ? std::vector<CollEvent>{}
                               : walk(*s.children[0]);
        std::vector<CollEvent> elseSeq =
            s.children.size() > 1 ? walk(*s.children[1])
                                  : std::vector<CollEvent>{};
        if (s.nodeDependent && !sameSeq(thenSeq, elseSeq)) {
          if (thenSeq.empty() || elseSeq.empty()) {
            const std::vector<CollEvent>& div =
                thenSeq.empty() ? elseSeq : thenSeq;
            diags_.error(
                "DS501", file_, div[0].line, div[0].col,
                div[0].desc +
                    " is executed only when a node-identity-dependent "
                    "condition (line " +
                    std::to_string(s.line) +
                    ") holds; collectives must run on every node in the "
                    "same order");
          } else {
            diags_.error("DS502", file_, s.line, s.col,
                         "node-dependent branches execute collectives in "
                         "different orders: one branch runs [" +
                             listSeq(thenSeq) + "], the other [" +
                             listSeq(elseSeq) + "]");
          }
        }
        append(condSeq, thenSeq);
        if (!sameSeq(thenSeq, elseSeq)) append(condSeq, elseSeq);
        return condSeq;
      }
      case Stmt::Kind::Loop:
      case Stmt::Kind::DoLoop: {
        std::vector<CollEvent> condSeq = walkList(s.cond);
        std::vector<CollEvent> bodySeq =
            s.children.empty() ? std::vector<CollEvent>{}
                               : walk(*s.children[0]);
        if (s.nodeDependent && !(condSeq.empty() && bodySeq.empty())) {
          const CollEvent& first =
              bodySeq.empty() ? condSeq[0] : bodySeq[0];
          diags_.error("DS503", file_, first.line, first.col,
                       first.desc +
                           " executes inside a loop whose trip count "
                           "depends on node identity (line " +
                           std::to_string(s.line) +
                           "); nodes would issue different numbers of "
                           "collectives");
        }
        append(condSeq, bodySeq);
        return condSeq;
      }
      case Stmt::Kind::Switch: {
        std::vector<CollEvent> condSeq = walkList(s.cond);
        std::vector<CollEvent> bodySeq =
            s.children.empty() ? std::vector<CollEvent>{}
                               : walk(*s.children[0]);
        if (s.nodeDependent && !bodySeq.empty()) {
          diags_.error("DS501", file_, bodySeq[0].line, bodySeq[0].col,
                       bodySeq[0].desc +
                           " is executed under a node-identity-dependent "
                           "switch (line " +
                           std::to_string(s.line) +
                           "); collectives must run on every node in the "
                           "same order");
        }
        append(condSeq, bodySeq);
        return condSeq;
      }
      case Stmt::Kind::Try: {
        for (const auto& c : s.children) append(seq, walk(*c));
        return seq;
      }
      case Stmt::Kind::Return:
      case Stmt::Kind::Break:
      case Stmt::Kind::Continue:
        return seq;
    }
    return seq;
  }

  std::vector<CollEvent> walkList(
      const std::vector<std::unique_ptr<Stmt>>& stmts) {
    std::vector<CollEvent> seq;
    for (const auto& s : stmts) append(seq, walk(*s));
    return seq;
  }

  void collectActions(const Stmt& s, std::vector<CollEvent>& seq) const {
    for (const Action& a : s.actions) {
      if (a.kind == Action::Kind::StreamDecl) {
        seq.push_back(CollEvent{
            "collective open of d/stream '" + a.name + "'", a.line, a.col});
      } else if (a.kind == Action::Kind::Event &&
                 isCollectiveEvent(a.event)) {
        seq.push_back(
            CollEvent{"collective " + std::string(eventName(a.event)) +
                          " on d/stream '" + a.name + "'",
                      a.line, a.col});
      } else if (a.kind == Action::Kind::Call) {
        auto it = summaries_.find(a.callee);
        if (it != summaries_.end() && it->second.collective) {
          seq.push_back(CollEvent{"collective-performing call to '" +
                                      a.callee + "'",
                                  a.line, a.col});
        }
      }
    }
  }

  static void append(std::vector<CollEvent>& into,
                     const std::vector<CollEvent>& from) {
    into.insert(into.end(), from.begin(), from.end());
  }

  const SummaryMap& summaries_;
  const std::string file_;
  DiagnosticEngine& diags_;
};

}  // namespace

void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags) {
  analyzeProtocol(stream, diags, ProtocolOptions{});
}

void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags,
                     const ProtocolOptions& options) {
  if (stream.tokens.empty()) return;
  // Interprocedural layer first: helper summaries (reports violations a
  // helper trips in every call context at their body location).
  const SummaryMap summaries = computeSummaries(stream, diags);
  std::set<std::string> helperNames;
  for (const auto& [name, fn] : summaries) {
    (void)fn;
    helperNames.insert(name);
  }
  const std::unique_ptr<Stmt> root = parseUnit(stream, helperNames);
  const Cfg cfg = buildCfg(*root);
  DataflowOptions dfOpts;
  dfOpts.strict = options.strict;
  dfOpts.summaries = &summaries;
  runDataflow(cfg, {}, {}, stream.file, dfOpts, diags);
  CollectiveChecker(summaries, stream.file, diags).run(*root);
}

}  // namespace pcxx::dslint
