// D1/D4/D5: static checking of the d/stream protocol (the paper's
// Figure 2 state machine) and of collective discipline (§4.2) over client
// C++ code.
//
// v2 engine: the token stream is parsed into a scope-aware statement tree
// and lowered to a control-flow graph (cfg.h); a worklist fixpoint
// dataflow (dataflow.h) tracks every d/stream variable as a SET of
// protocol states, iterating loop bodies until the loop-carried states
// converge instead of analyzing them once. Helper functions and named
// lambdas taking ds::OStream&/ds::IStream& parameters get protocol-effect
// summaries (summary.h) applied at their call sites (DS108) instead of
// ending tracking. A diagnostic is reported only when the operation is
// invalid in EVERY possible state (must-error), so joins never produce
// false positives; loops additionally get a first-iteration view and a
// carried-state ("iteration >= 2") view so bugs that only materialize
// with loop-carried state are still definite.
//
// On top of the dataflow, a structural pass checks collective discipline:
// every node must execute stream collectives (open/read/write/close/...)
// in the same order, so a collective reachable only under a
// node-identity-dependent condition is a guaranteed deadlock:
//   DS501  collective executed by a node-dependent subset of nodes
//   DS502  node-dependent branches order collectives differently
//   DS503  collective inside a loop with node-dependent trip count
//
// Collection variables (coll::Collection<T> g(&d, &a)) are tracked too:
// inserting collections with differing (distribution, alignment) into one
// stream between writes is the paper's interleave-misalignment error (D4).
#pragma once

#include <string>

#include "dslint/diagnostics.h"
#include "streamgen/token.h"

namespace pcxx::dslint {

struct ProtocolOptions {
  /// Emit DS109 notes where a stream escapes to unanalyzed code and
  /// protocol tracking is dropped (opt-in: --strict).
  bool strict = false;
};

/// Run the protocol analysis over one translation unit's tokens.
void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags);
void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags,
                     const ProtocolOptions& options);

}  // namespace pcxx::dslint
