// D1/D4: static checking of the d/stream protocol (the paper's Figure 2
// state machine) over client C++ code.
//
// The analysis is a conservative intraprocedural abstract interpretation
// over the token stream: every local variable declared as a d/stream
// (ds::OStream / ds::IStream / the paper-style oStream / iStream aliases)
// is tracked through the statement sequence as a SET of possible protocol
// states. Control flow is approximated:
//
//   * if/else, switch:  both arms analyzed, states joined (set union)
//   * for/while/do:     body analyzed once, joined with the zero-trip state
//   * return/break/continue: the path is dead afterwards
//   * lambdas:          bodies analyzed inline (they run under machine.run)
//   * escapes:          a stream passed by reference/address to unknown
//                       code is no longer diagnosed
//
// A diagnostic is reported only when the operation is invalid in EVERY
// possible state (must-error), so joins never produce false positives.
//
// Collection variables (coll::Collection<T> g(&d, &a)) are tracked too:
// inserting collections with differing (distribution, alignment) into one
// stream between writes is the paper's interleave-misalignment error (D4).
#pragma once

#include <string>

#include "dslint/diagnostics.h"
#include "streamgen/token.h"

namespace pcxx::dslint {

/// Run the protocol analysis over one translation unit's tokens.
void analyzeProtocol(const sg::TokenStream& stream, DiagnosticEngine& diags);

}  // namespace pcxx::dslint
