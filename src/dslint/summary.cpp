#include "dslint/summary.h"

#include <set>
#include <vector>

namespace pcxx::dslint {
namespace {

using sg::TokKind;
using sg::Token;

struct StreamParam {
  std::string name;
  Dir dir = Dir::Out;
  int index = 0;
  int line = 0;
};

struct Candidate {
  std::string name;
  int line = 0;
  std::vector<StreamParam> params;
  size_t bodyBegin = 0, bodyEnd = 0;  ///< token range between the braces
};

bool isDeclKeyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
      "throw",  "do",     "else",   "operator", "case",   "goto",
      "declareStreamInserter", "declareStreamExtractor",
  };
  return kKw.count(s) != 0;
}

/// Match `[const] [pcxx::] [ds::] OStream & name` at t[i...end). On
/// success fills the outputs and advances i to the parameter name.
bool matchStreamParam(const std::vector<Token>& t, size_t& i, size_t end,
                      Dir& dir, std::string& name, int& line) {
  size_t j = i;
  auto at = [&](size_t k) -> const Token& {
    return t[std::min(k, end - 1)];
  };
  if (j >= end) return false;
  if (at(j).isIdent("const")) ++j;
  if (at(j).isIdent("pcxx") && at(j + 1).isSymbol("::")) j += 2;
  if (at(j).isIdent("ds") && at(j + 1).isSymbol("::")) j += 2;
  Dir d;
  if (at(j).isIdent("OStream") || at(j).isIdent("oStream")) {
    d = Dir::Out;
  } else if (at(j).isIdent("IStream") || at(j).isIdent("iStream")) {
    d = Dir::In;
  } else {
    return false;
  }
  ++j;
  if (!at(j).isSymbol("&")) return false;
  ++j;
  if (!at(j).is(TokKind::Identifier) || j >= end) return false;
  dir = d;
  name = at(j).text;
  line = at(j).line;
  i = j;
  return true;
}

/// Parse a parameter list starting at the '(' token index. Returns the
/// index of the matching ')' (or end on imbalance) and fills the stream
/// parameters with their zero-based argument positions.
size_t scanParamList(const std::vector<Token>& t, size_t open, size_t end,
                     std::vector<StreamParam>& params) {
  size_t i = open + 1;
  int depth = 1;
  int angles = 0;
  int argIndex = 0;
  bool argStart = true;
  while (i < end && depth > 0) {
    const Token& tok = t[i];
    if (tok.isSymbol("(")) {
      ++depth;
      argStart = false;
      ++i;
      continue;
    }
    if (tok.isSymbol(")")) {
      --depth;
      if (depth == 0) return i;
      ++i;
      continue;
    }
    // Template arguments inside a parameter type must not advance the
    // argument index (`std::map<int, int>& m`).
    if (tok.isSymbol("<") && i > 0 && t[i - 1].is(TokKind::Identifier)) {
      ++angles;
      ++i;
      continue;
    }
    if (tok.isSymbol(">") && angles > 0) {
      --angles;
      ++i;
      continue;
    }
    if (tok.isSymbol(",") && depth == 1 && angles == 0) {
      ++argIndex;
      argStart = true;
      ++i;
      continue;
    }
    if (argStart && tok.is(TokKind::Identifier)) {
      Dir dir;
      std::string name;
      int line = 0;
      size_t j = i;
      if (matchStreamParam(t, j, end, dir, name, line)) {
        params.push_back(StreamParam{name, dir, argIndex, line});
        i = j + 1;
        argStart = false;
        continue;
      }
      argStart = false;
    } else if (!tok.isSymbol("&") && !tok.isSymbol("*")) {
      argStart = false;
    }
    ++i;
  }
  return end;
}

/// Index of the '}' matching the '{' at `open`, or end on imbalance.
size_t matchBrace(const std::vector<Token>& t, size_t open, size_t end) {
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (t[i].isSymbol("{")) ++depth;
    if (t[i].isSymbol("}")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return end;
}

std::vector<Candidate> findCandidates(const std::vector<Token>& t) {
  std::vector<Candidate> out;
  const size_t n = t.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    // `auto name = [..](params) .. { body }` — a named lambda.
    if (t[i].isIdent("auto") && t[i + 1].is(TokKind::Identifier) &&
        i + 3 < n && t[i + 2].isSymbol("=") && t[i + 3].isSymbol("[")) {
      size_t j = i + 3;
      int depth = 0;
      while (j < n) {
        if (t[j].isSymbol("[")) ++depth;
        if (t[j].isSymbol("]")) {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      if (j + 1 >= n || !t[j + 1].isSymbol("(")) continue;
      Candidate c;
      c.name = t[i + 1].text;
      c.line = t[i + 1].line;
      const size_t close = scanParamList(t, j + 1, n, c.params);
      if (close >= n || c.params.empty()) continue;
      size_t b = close + 1;
      while (b < n && !t[b].isSymbol("{") && !t[b].isSymbol(";")) ++b;
      if (b >= n || !t[b].isSymbol("{")) continue;
      const size_t endBrace = matchBrace(t, b, n);
      if (endBrace >= n) continue;
      c.bodyBegin = b + 1;
      c.bodyEnd = endBrace;
      out.push_back(std::move(c));
      continue;
    }
    // `Type name(params) [const|noexcept] { body }` — a free function.
    if (!t[i].is(TokKind::Identifier) || isDeclKeyword(t[i].text) ||
        !t[i + 1].isSymbol("(")) {
      continue;
    }
    if (i == 0) continue;
    const Token& prev = t[i - 1];
    const bool typeBefore =
        (prev.is(TokKind::Identifier) && !isDeclKeyword(prev.text)) ||
        prev.isSymbol(">") || prev.isSymbol("&") || prev.isSymbol("*");
    if (!typeBefore) continue;
    // `Class::method` definitions are skipped: call sites use the bare
    // name only inside the class, where `this` context is unknown.
    if (i >= 2 && t[i - 1].is(TokKind::Identifier) &&
        t[i - 2].isSymbol("::")) {
      continue;
    }
    Candidate c;
    c.name = t[i].text;
    c.line = t[i].line;
    const size_t close = scanParamList(t, i + 1, n, c.params);
    if (close >= n || c.params.empty()) continue;
    size_t b = close + 1;
    while (b < n &&
           (t[b].isIdent("const") || t[b].isIdent("noexcept") ||
            t[b].isIdent("override") || t[b].isIdent("final"))) {
      ++b;
    }
    if (b >= n || !t[b].isSymbol("{")) continue;
    const size_t endBrace = matchBrace(t, b, n);
    if (endBrace >= n) continue;
    c.bodyBegin = b + 1;
    c.bodyEnd = endBrace;
    out.push_back(std::move(c));
  }
  return out;
}

/// Collect collective usage in a helper body: which stream variables see
/// a collective operation, and whether the body performs any collective
/// at all (including opening its own streams — `open` is collective).
void scanCollectives(const Stmt& s, const SummaryMap& known,
                     std::set<std::string>& streams, bool& any) {
  for (const Action& a : s.actions) {
    if (a.kind == Action::Kind::StreamDecl) any = true;
    if (a.kind == Action::Kind::Event && isCollectiveEvent(a.event)) {
      streams.insert(a.name);
      any = true;
    }
    if (a.kind == Action::Kind::Call) {
      auto it = known.find(a.callee);
      if (it != known.end() && it->second.collective) {
        any = true;
        for (const auto& [arg, idx] : a.callArgs) {
          (void)idx;
          streams.insert(arg);
        }
      }
    }
  }
  for (const auto& c : s.cond) scanCollectives(*c, known, streams, any);
  for (const auto& c : s.children) scanCollectives(*c, known, streams, any);
}

}  // namespace

SummaryMap computeSummaries(const sg::TokenStream& stream,
                            DiagnosticEngine& diags) {
  SummaryMap out;
  if (stream.tokens.empty()) return out;
  const std::vector<Candidate> candidates = findCandidates(stream.tokens);
  std::set<std::string> names;
  std::set<std::string> dups;
  for (const Candidate& c : candidates) {
    if (!names.insert(c.name).second) dups.insert(c.name);
  }
  for (const Candidate& c : candidates) {
    // Overload sets are ambiguous at bare-name call sites; stay
    // conservative and keep the escape semantics for them.
    if (dups.count(c.name) || out.count(c.name)) continue;
    std::vector<PreStream> params;
    for (const StreamParam& p : c.params) {
      params.push_back(PreStream{p.name, p.dir, p.line});
    }
    const std::unique_ptr<Stmt> root =
        parseStatements(stream, names, params, c.bodyBegin, c.bodyEnd);
    const Cfg cfg = buildCfg(*root);
    FnSummary fn;
    fn.name = c.name;
    fn.line = c.line;
    std::set<std::string> collectiveStreams;
    bool anyCollective = false;
    scanCollectives(*root, out, collectiveStreams, anyCollective);
    fn.collective = anyCollective;
    for (const StreamParam& p : c.params) {
      ParamSummary ps;
      ps.name = p.name;
      ps.index = p.index;
      ps.dir = p.dir;
      ps.collective = collectiveStreams.count(p.name) != 0;
      // A violation tripped in EVERY initial state is unconditional —
      // report it at the body location once. State-dependent ones go into
      // the summary and surface as DS108 at call sites.
      bool universal = true;
      bool firstSeed = true;
      std::string uid, umsg;
      int uline = 0, ucol = 0;
      for (unsigned bit = 1; bit <= kClosed; bit <<= 1) {
        if (!(stateUniverse(p.dir) & bit)) continue;
        const ProbeResult r =
            probeHelper(cfg, params, p.name, bit, out);
        ps.out[bit] = r.outStates;
        ps.escapes = ps.escapes || r.escaped;
        if (!r.errorId.empty()) {
          ps.errorId[bit] = r.errorId;
          ps.errorMsg[bit] = r.errorMsg;
          ps.errorLine[bit] = r.errorLine;
        }
        if (firstSeed) {
          uid = r.errorId;
          umsg = r.errorMsg;
          uline = r.errorLine;
          ucol = r.errorCol;
          firstSeed = false;
        } else if (r.errorId != uid || r.errorLine != uline ||
                   r.errorCol != ucol) {
          universal = false;
        }
      }
      if (universal && !uid.empty()) {
        diags.error(uid, stream.file, uline, ucol,
                    umsg + " (in '" + c.name + "', for every call context)");
        // The defect is the helper's alone — do not re-report it as DS108
        // at every call site.
        ps.errorId.clear();
        ps.errorMsg.clear();
        ps.errorLine.clear();
      }
      fn.params.push_back(std::move(ps));
    }
    out[c.name] = std::move(fn);
  }
  for (const std::string& d : dups) out.erase(d);
  return out;
}

}  // namespace pcxx::dslint
