// dslint v2 interprocedural layer: protocol-effect summaries for helper
// functions and named lambdas that take `ds::OStream&` / `ds::IStream&`
// parameters.
//
// For every such definition in the translation unit the body is parsed
// (cfg.h) and probed once per possible initial protocol state of each
// stream parameter (dataflow.h probeHelper). The result per parameter is
// a transfer function over the state bitmask — what states the stream can
// be in when the helper returns — plus, per initial state, the diagnostic
// the body definitely trips when entered in that state. Call sites apply
// the transfer and report DS108 when every state reaching the call is an
// erroring one; violations the body trips in EVERY initial state are
// reported directly at their location inside the body.
//
// Scope: free functions and `auto name = [..](..) {..}` lambdas called by
// their bare name with the stream passed as a bare argument. Method
// calls, overload sets, and recursion are out of scope — those call sites
// keep the conservative escape semantics (DS109 under --strict).
#pragma once

#include "dslint/dataflow.h"
#include "dslint/diagnostics.h"
#include "streamgen/token.h"

namespace pcxx::dslint {

/// Scan one translation unit for helper definitions and compute their
/// summaries. Diagnostics for violations a body trips in every call
/// context are reported here, attributed to the body location.
SummaryMap computeSummaries(const sg::TokenStream& stream,
                            DiagnosticEngine& diags);

}  // namespace pcxx::dslint
