#include "dslint/symmetry.h"

#include <algorithm>

namespace pcxx::dslint {
namespace {

using sg::TokKind;
using sg::Token;

class BodyScanner {
 public:
  BodyScanner(const std::vector<Token>& toks, size_t pos,
              const std::string& param)
      : toks_(toks), pos_(pos), param_(param) {}

  /// Scan the function body; cur() == '{'. Returns position after the
  /// matching '}'.
  size_t scan(std::vector<StreamOp>& ops, std::set<std::string>& referenced) {
    int depth = 0;
    do {
      const Token& t = cur();
      if (t.is(TokKind::EndOfFile)) break;
      if (t.isSymbol("{")) {
        ++depth;
        advance();
        continue;
      }
      if (t.isSymbol("}")) {
        --depth;
        advance();
        continue;
      }
      // Any `v.member` mention counts as referencing that field.
      if (t.isIdent(param_) && peek().isSymbol(".") &&
          peek(2).is(TokKind::Identifier)) {
        referenced.insert(peek(2).text);
      }
      // `s <<` / `s >>` — the stream parameter of the macro is always `s`.
      if (t.isIdent("s") && (nextIsShift('<') || nextIsShift('>'))) {
        const bool insert = nextIsShift('<');
        advance();  // s; cur() is now the first shift character
        while (curShift(insert ? '<' : '>')) {
          advance();  // first op char
          advance();  // second
          ops.push_back(scanOperand(referenced));
        }
        continue;
      }
      advance();
    } while (depth > 0);
    return pos_;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  /// True when the token after cur() starts a `<<` / `>>` operator.
  bool nextIsShift(char c) const {
    const std::string s(1, c);
    return peek().isSymbol(s) && peek(2).isSymbol(s) &&
           peek(2).line == peek().line && peek(2).col == peek().col + 1;
  }
  bool curShift(char c) const {
    const std::string s(1, c);
    return cur().isSymbol(s) && peek().isSymbol(s) &&
           peek().line == cur().line && peek().col == cur().col + 1;
  }

  /// Normalize one operand. Recognized forms (with any number of leading
  /// '*'):
  ///   v.field, v.field[i]...           -> Field
  ///   [pcxx::][ds::]array(v.field, e)  -> Array(field, normalized e)
  /// anything else                      -> Opaque
  StreamOp scanOperand(std::set<std::string>& referenced) {
    StreamOp op;
    op.line = cur().line;
    op.col = cur().col;

    // Try the array(...) form.
    {
      const size_t save = pos_;
      if (cur().isIdent("pcxx") && peek().isSymbol("::")) {
        advance();
        advance();
      }
      if (cur().isIdent("ds") && peek().isSymbol("::")) {
        advance();
        advance();
      }
      if (cur().isIdent("array") && peek().isSymbol("(")) {
        advance();  // array
        advance();  // '('
        std::string field = matchParamField(referenced);
        if (!field.empty() && cur().isSymbol(",")) {
          advance();
          std::string size;
          int depth = 0;
          while (!cur().is(TokKind::EndOfFile)) {
            if (depth == 0 && cur().isSymbol(")")) break;
            if (cur().isSymbol("(")) ++depth;
            if (cur().isSymbol(")")) --depth;
            // Normalize the parameter name away so `p.n` == `q.n`.
            if (cur().isIdent(param_)) size += "@";
            else size += cur().text;
            advance();
          }
          if (cur().isSymbol(")")) advance();
          op.kind = StreamOp::Kind::Array;
          op.field = field;
          op.sizeExpr = size;
          skipRestOfOperand();
          return op;
        }
      }
      pos_ = save;
    }

    // Try the plain field form, with leading dereferences.
    {
      const size_t save = pos_;
      while (cur().isSymbol("*")) advance();
      std::string field = matchParamField(referenced);
      if (!field.empty()) {
        op.kind = StreamOp::Kind::Field;
        op.field = field;
        skipRestOfOperand();
        return op;
      }
      pos_ = save;
    }

    op.kind = StreamOp::Kind::Opaque;
    skipRestOfOperand();
    return op;
  }

  /// Match `param.member` (plus trailing [..] indices / nested members,
  /// which are skipped); returns the first member name or "".
  std::string matchParamField(std::set<std::string>& referenced) {
    if (!cur().isIdent(param_) || !peek().isSymbol(".") ||
        !peek(2).is(TokKind::Identifier)) {
      return "";
    }
    const std::string field = peek(2).text;
    referenced.insert(field);
    advance();  // param
    advance();  // '.'
    advance();  // member
    for (;;) {
      if (cur().isSymbol("[")) {
        int depth = 1;
        advance();
        while (depth > 0 && !cur().is(TokKind::EndOfFile)) {
          if (cur().isSymbol("[")) ++depth;
          if (cur().isSymbol("]")) --depth;
          advance();
        }
        continue;
      }
      if (cur().isSymbol(".") && peek().is(TokKind::Identifier)) {
        advance();
        advance();
        continue;
      }
      break;
    }
    return field;
  }

  /// Consume the remainder of the operand: up to ';', ',' at depth 0, the
  /// next shift op at depth 0, or an unbalanced close.
  void skipRestOfOperand() {
    int depth = 0;
    while (!cur().is(TokKind::EndOfFile)) {
      if (depth == 0 &&
          (cur().isSymbol(";") || cur().isSymbol(",") || curShift('<') ||
           curShift('>') || cur().isSymbol("}") || cur().isSymbol(")"))) {
        return;
      }
      if (cur().isSymbol("(") || cur().isSymbol("[") || cur().isSymbol("{")) {
        ++depth;
        advance();
        continue;
      }
      if (cur().isSymbol(")") || cur().isSymbol("]") || cur().isSymbol("}")) {
        --depth;
        advance();
        continue;
      }
      advance();
    }
  }

  const std::vector<Token>& toks_;
  size_t pos_;
  const std::string param_;
};

std::vector<StreamOp> filtered(const std::vector<StreamOp>& ops) {
  std::vector<StreamOp> out;
  for (const StreamOp& op : ops) {
    if (op.kind != StreamOp::Kind::Opaque) out.push_back(op);
  }
  return out;
}

}  // namespace

std::map<std::string, StreamFns> collectStreamFns(const sg::TokenStream& ts) {
  std::map<std::string, StreamFns> fns;
  const std::vector<Token>& toks = ts.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    const bool isIns = t.isIdent("declareStreamInserter");
    const bool isExt = t.isIdent("declareStreamExtractor");
    if ((!isIns && !isExt) || !toks[i + 1].isSymbol("(")) continue;
    // Signature: ( [ns::]Type & param )
    size_t j = i + 2;
    std::string typeName;
    while (j < toks.size() && (toks[j].is(TokKind::Identifier) ||
                               toks[j].isSymbol("::"))) {
      if (toks[j].is(TokKind::Identifier)) typeName = toks[j].text;
      ++j;
    }
    if (j + 2 >= toks.size() || !toks[j].isSymbol("&") ||
        !toks[j + 1].is(TokKind::Identifier) || !toks[j + 2].isSymbol(")")) {
      continue;
    }
    const std::string param = toks[j + 1].text;
    size_t bodyPos = j + 3;
    if (bodyPos >= toks.size() || !toks[bodyPos].isSymbol("{")) continue;

    StreamFns& f = fns[typeName];
    std::vector<StreamOp> ops;
    BodyScanner scanner(toks, bodyPos, param);
    const size_t end = scanner.scan(ops, f.referencedFields);
    if (isIns) {
      f.hasInserter = true;
      f.inserterLine = t.line;
      f.inserterOps = std::move(ops);
    } else {
      f.hasExtractor = true;
      f.extractorLine = t.line;
      f.extractorOps = std::move(ops);
    }
    i = end > i ? end - 1 : i;
  }
  return fns;
}

void checkSymmetry(const std::map<std::string, StreamFns>& fns,
                   const std::string& file, DiagnosticEngine& diags) {
  for (const auto& [type, f] : fns) {
    if (!f.hasInserter || !f.hasExtractor) continue;
    // When the two bodies stream the same number of operands, compare them
    // pairwise with Opaque as a wildcard: `s >> n` into a local lines up
    // with `s << v.count` (the allocate-then-fill extractor idiom). Only
    // when the lengths differ are Opaque ops dropped from both sides
    // before comparing — positional alignment is lost anyway.
    const bool aligned = f.inserterOps.size() == f.extractorOps.size();
    const std::vector<StreamOp> ins =
        aligned ? f.inserterOps : filtered(f.inserterOps);
    const std::vector<StreamOp> ext =
        aligned ? f.extractorOps : filtered(f.extractorOps);
    const size_t common = std::min(ins.size(), ext.size());
    bool mismatch = false;
    for (size_t i = 0; i < common; ++i) {
      if (ins[i].kind == StreamOp::Kind::Opaque ||
          ext[i].kind == StreamOp::Kind::Opaque) {
        continue;  // wildcard slot on the equal-length path
      }
      if (ins[i].field != ext[i].field) {
        diags.error("DS201", file, ext[i].line, ext[i].col,
                    "extractor for '" + type + "' streams field '" +
                        ext[i].field + "' at position " + std::to_string(i) +
                        " where the inserter (line " +
                        std::to_string(f.inserterLine) + ") streams '" +
                        ins[i].field + "'; field order must match");
        mismatch = true;
        break;
      }
      if (ins[i].kind != ext[i].kind) {
        diags.error("DS203", file, ext[i].line, ext[i].col,
                    "extractor for '" + type + "' streams field '" +
                        ext[i].field + "' as " +
                        (ext[i].kind == StreamOp::Kind::Array ? "an array"
                                                              : "a scalar") +
                        " but the inserter (line " +
                        std::to_string(f.inserterLine) + ") streams it as " +
                        (ins[i].kind == StreamOp::Kind::Array ? "an array"
                                                              : "a scalar"));
        mismatch = true;
        break;
      }
      if (ins[i].kind == StreamOp::Kind::Array &&
          ins[i].sizeExpr != ext[i].sizeExpr) {
        diags.error("DS203", file, ext[i].line, ext[i].col,
                    "array field '" + ext[i].field + "' of '" + type +
                        "' extracted with size '" + ext[i].sizeExpr +
                        "' but inserted (line " +
                        std::to_string(f.inserterLine) + ") with size '" +
                        ins[i].sizeExpr + "'");
        mismatch = true;
        break;
      }
    }
    if (!mismatch && ins.size() != ext.size()) {
      const bool insLonger = ins.size() > ext.size();
      const StreamOp& extra = insLonger ? ins[ext.size()] : ext[ins.size()];
      diags.error("DS202", file, extra.line, extra.col,
                  "inserter for '" + type + "' streams " +
                      std::to_string(ins.size()) +
                      " fields but the extractor streams " +
                      std::to_string(ext.size()) + " (first unmatched: '" +
                      extra.field + "')");
    }
  }
}

}  // namespace pcxx::dslint
