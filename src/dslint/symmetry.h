// D2: inserter/extractor symmetry checking.
//
// The d/stream format is order-dependent: an extractor must traverse a
// type's fields in exactly the order its inserter wrote them (paper §4.1 —
// the generated functions always agree; hand-written ones can drift). This
// pass scans a translation unit for
//
//   declareStreamInserter(T& v) { s << v.a; s << pcxx::ds::array(v.p, v.n); }
//   declareStreamExtractor(T& v) { s >> v.a; s >> pcxx::ds::array(v.p, v.n); }
//
// pairs, normalizes each body to a sequence of stream operations, and
// reports order (DS201), count (DS202), and operation/size (DS203)
// mismatches. Operands that are not simple `v.field` / array(v.field, n)
// forms (casts, locals, conditionals around recursive pointers) are treated
// as opaque and skipped on both sides, so hand-written inserters with
// presence flags do not false-positive.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dslint/diagnostics.h"
#include "streamgen/token.h"

namespace pcxx::dslint {

/// One `s <<` / `s >>` operand, normalized.
struct StreamOp {
  enum class Kind { Field, Array, Opaque };
  Kind kind = Kind::Opaque;
  std::string field;     ///< member name for Field/Array ops
  std::string sizeExpr;  ///< normalized size expression for Array ops
  int line = 0;
  int col = 0;
};

/// Everything learned about one type's stream functions in a TU.
struct StreamFns {
  bool hasInserter = false;
  bool hasExtractor = false;
  int inserterLine = 0;
  int extractorLine = 0;
  std::vector<StreamOp> inserterOps;
  std::vector<StreamOp> extractorOps;
  /// Every member of the parameter referenced anywhere in either body
  /// (used by D3: a pointer field referenced by hand is "handled").
  std::set<std::string> referencedFields;
};

/// Scan a TU's tokens for declareStreamInserter/Extractor bodies.
/// Keyed by the unqualified type name.
std::map<std::string, StreamFns> collectStreamFns(const sg::TokenStream& ts);

/// Report DS201/DS202/DS203 for every type with both functions present.
void checkSymmetry(const std::map<std::string, StreamFns>& fns,
                   const std::string& file, DiagnosticEngine& diags);

}  // namespace pcxx::dslint
