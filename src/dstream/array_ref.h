// The array() wrapper for variable-sized array fields (paper §4.1).
//
// Insertion functions use it to stream a dynamically sized array whose
// length is carried by another field of the element:
//
//   s << p.numberOfParticles;
//   s << pcxx::ds::array(p.mass, p.numberOfParticles);
//
// and extraction functions use the same syntax; on extraction the target
// pointer is allocated with new[] if null (the element owns it afterwards).
// array() entries are raw bytes in the file — no embedded length — which is
// what keeps interleaved fields contiguous for visualization tools.
#pragma once

#include <cstdint>
#include <type_traits>

namespace pcxx::ds {

template <typename V>
struct ArrayRef {
  static_assert(std::is_trivially_copyable_v<V>,
                "array() elements must be trivially copyable");

  V** slot;           ///< address of the program's pointer (for extraction)
  std::int64_t count; ///< number of V elements

  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count) * sizeof(V);
  }
};

/// Wrap a pointer field + element count for insertion or extraction.
/// The pointer is taken by reference so extraction can allocate into it.
template <typename V>
ArrayRef<V> array(V*& ptr, std::int64_t count) {
  return ArrayRef<V>{&ptr, count};
}

/// Read-only variant for insertion from a const pointer.
template <typename V>
struct ConstArrayRef {
  static_assert(std::is_trivially_copyable_v<V>,
                "array() elements must be trivially copyable");
  const V* data;
  std::int64_t count;

  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count) * sizeof(V);
  }
};

template <typename V>
ConstArrayRef<V> array(const V* ptr, std::int64_t count) {
  return ConstArrayRef<V>{ptr, count};
}

}  // namespace pcxx::ds
