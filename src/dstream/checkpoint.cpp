#include "dstream/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "dstream/inspect.h"

#include "runtime/rio.h"
#include "util/log.h"
#include "util/strfmt.h"

namespace pcxx::ds {

CheckpointManager::CheckpointManager(pfs::Pfs& fs, CheckpointOptions options)
    : fs_(&fs), options_(std::move(options)) {
  PCXX_REQUIRE(options_.keepLast >= 1,
               "CheckpointManager must keep at least one epoch");
  PCXX_REQUIRE(!options_.baseName.empty(),
               "CheckpointManager requires a base name");
}

std::string CheckpointManager::epochFileName(std::uint64_t epoch) const {
  return strfmt("%s.%llu", options_.baseName.c_str(),
                static_cast<unsigned long long>(epoch));
}

std::string CheckpointManager::markerFileName() const {
  return options_.baseName + ".latest";
}

std::int64_t CheckpointManager::latestEpoch(rt::Node& node) {
  if (!fs_->exists(markerFileName())) return -1;
  auto f = fs_->open(node, markerFileName(), pfs::OpenMode::Read);
  ByteBuffer buf(8);
  std::uint64_t got = 0;
  if (node.id() == 0) {
    got = f->readAt(node, 0, buf);
  }
  ByteBuffer share;
  if (node.id() == 0 && got == 8) share = buf;
  node.broadcastBytes(0, share);
  if (share.size() != 8) return -1;
  return static_cast<std::int64_t>(decodeU64(share.data()));
}

void CheckpointManager::writeMarker(rt::Node& node, std::uint64_t epoch) {
  auto f = fs_->open(node, markerFileName(), pfs::OpenMode::Create);
  if (node.id() == 0) {
    Byte enc[8];
    encodeU64(epoch, enc);
    f->writeAt(node, 0, enc);
  }
  f->sync(node);
}

void CheckpointManager::prune(rt::Node& node, std::uint64_t latest) {
  // With cross-epoch dedup the oldest kept epoch may hold references into
  // its predecessor; retain that one extra epoch so no kept epoch ever
  // loses its reference target.
  const std::uint64_t keep =
      static_cast<std::uint64_t>(options_.keepLast) +
      (options_.dedupAcrossEpochs ? 1 : 0);
  if (latest + 1 <= keep) return;
  // Epochs are consecutive from this manager; also sweep a margin below
  // the retention window in case an earlier manager left files behind.
  const std::uint64_t firstKept = latest + 1 - keep;
  const std::uint64_t sweepFrom =
      firstKept > 8 ? firstKept - 8 : 0;
  for (std::uint64_t e = sweepFrom; e < firstKept; ++e) {
    if (fs_->exists(epochFileName(e))) {
      fs_->remove(node, epochFileName(e));
    }
  }
}

std::uint64_t CheckpointManager::saveWith(
    rt::Node& node, const coll::Layout& layout,
    const std::function<void(OStream&)>& writer) {
  // Resume epoch numbering from the marker if another manager instance
  // (e.g. a restarted process) wrote checkpoints before us.
  if (nextEpoch_ == 0) {
    const std::int64_t existing = latestEpoch(node);
    if (existing >= 0) {
      nextEpoch_ = static_cast<std::uint64_t>(existing) + 1;
    }
  }
  const std::uint64_t epoch = nextEpoch_++;

  StreamOptions so;
  so.checksumData = options_.checksumData;
  so.syncOnWrite = options_.syncOnWrite;
  so.aioQueueDepth = options_.aioQueueDepth;
  so.codec = options_.codec;
  if (options_.dedupAcrossEpochs) {
    if (so.codec.empty()) so.codec = "lz";  // dedup requires chunk framing
    if (epoch > 0 && fs_->exists(epochFileName(epoch - 1))) {
      so.codecDedupBase = epochFileName(epoch - 1);
    }
  }
  {
    OStream s(*fs_, &layout.distribution(), &layout.align(),
              epochFileName(epoch), so);
    writer(s);
    s.write();
    // Explicit close: drains the write-behind queue, so a background flush
    // failure throws here — not from the destructor — and the marker below
    // never moves to a torn epoch.
    s.close();
  }
  // Only after the epoch file is durable does the marker move; a crash
  // before this line leaves the previous epoch authoritative.
  writeMarker(node, epoch);
  prune(node, epoch);
  return epoch;
}

bool CheckpointManager::tryRestore(
    rt::Node& node, const coll::Layout& layout, std::uint64_t epoch,
    const std::function<void(IStream&)>& reader) {
  if (!fs_->exists(epochFileName(epoch))) return false;
  auto f = fs_->open(node, epochFileName(epoch), pfs::OpenMode::Read);

  // Node 0 validates the file STRUCTURE offline first (framing, header
  // CRCs, size-table consistency) so that a damaged epoch is rejected by a
  // consistent collective decision rather than by nodes failing at
  // different points inside collective reads.
  std::uint64_t ok = 0;
  if (node.id() == 0) {
    try {
      ByteBuffer all(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, all) == all.size()) {
        pfs::MemStorage image;
        image.writeAt(0, all);
        const FileInfo info = inspectFile(image);
        ok = !info.records.empty() &&
             info.records[0].header.elementCount() == layout.size();
      }
    } catch (const Error& e) {
      PCXX_LOG_WARN("checkpoint epoch %llu failed validation: %s",
                    static_cast<unsigned long long>(epoch), e.what());
      ok = 0;
    }
  }
  const std::uint64_t agreed = node.allreduceSumU64(node.id() == 0 ? ok : 0);
  if (agreed == 0) return false;

  try {
    // Remaining failure modes (data checksum mismatch) throw consistently
    // on every node, so catching here keeps the machine healthy.
    f->seekShared(node, kFileHeaderBytes);
    StreamOptions ro;
    ro.aioPrefetchDepth = options_.aioPrefetchDepth;
    IStream s(*fs_, f, coll::Layout(layout.distribution(), layout.align()),
              ro);
    s.read();
    reader(s);
    return true;
  } catch (const Error& e) {
    PCXX_LOG_WARN("checkpoint epoch %llu unreadable: %s",
                  static_cast<unsigned long long>(epoch), e.what());
    return false;
  }
}

std::vector<std::uint64_t> CheckpointManager::scanEpochs() {
  const std::string prefix = options_.baseName + ".";
  std::vector<std::uint64_t> epochs;
  for (const std::string& name : fs_->listFiles(prefix)) {
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty()) continue;
    bool digits = true;
    for (char c : suffix) {
      if (c < '0' || c > '9') { digits = false; break; }
    }
    if (!digits) continue;  // e.g. the ".latest" marker itself
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(suffix.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') continue;
    epochs.push_back(static_cast<std::uint64_t>(v));
  }
  std::sort(epochs.rbegin(), epochs.rend());
  const size_t cap = static_cast<size_t>(options_.keepLast) + 1;
  if (epochs.size() > cap) epochs.resize(cap);
  return epochs;
}

std::int64_t CheckpointManager::restoreWith(
    rt::Node& node, const coll::Layout& layout,
    const std::function<void(IStream&)>& reader) {
  const std::int64_t marked = latestEpoch(node);

  // Candidate epochs, newest first: the marker's target and the retained
  // window below it when the marker is intact; otherwise (lost or torn
  // marker — e.g. a crash between its truncation and its 8-byte write) the
  // epoch files actually on disk.
  std::vector<std::uint64_t> candidates;
  if (marked >= 0) {
    const std::uint64_t start = static_cast<std::uint64_t>(marked);
    for (std::uint64_t back = 0;
         back <= start &&
         back <= static_cast<std::uint64_t>(options_.keepLast);
         ++back) {
      candidates.push_back(start - back);
    }
  } else {
    candidates = scanEpochs();
  }
  if (candidates.empty()) return -1;

  std::vector<std::uint64_t> rejected;
  for (const std::uint64_t epoch : candidates) {
    if (tryRestore(node, layout, epoch, reader)) {
      // Resume numbering past every epoch we know about, so the next save
      // never collides with a newer-but-corrupt file still on disk.
      nextEpoch_ = candidates.front() + 1;
      return static_cast<std::int64_t>(epoch);
    }
    if (fs_->exists(epochFileName(epoch))) rejected.push_back(epoch);
  }

  // A marker that names an epoch is a promise that a checkpoint was made
  // durable; failing every candidate then is data loss and must not look
  // like "no checkpoint exists". Without a marker file, torn leftovers of
  // a first save that never completed roll back to a fresh start.
  if (fs_->exists(markerFileName())) {
    std::string list;
    for (const std::uint64_t e : rejected) {
      list += strfmt("%s%llu", list.empty() ? "" : ", ",
                     static_cast<unsigned long long>(e));
    }
    throw CheckpointError(
        strfmt("no recoverable epoch for '%s' (rejected: %s)",
               options_.baseName.c_str(),
               list.empty() ? "none on disk" : list.c_str()),
        std::move(rejected));
  }
  return -1;
}

}  // namespace pcxx::ds
