#include "dstream/checkpoint.h"

#include "dstream/inspect.h"

#include "runtime/rio.h"
#include "util/log.h"
#include "util/strfmt.h"

namespace pcxx::ds {

CheckpointManager::CheckpointManager(pfs::Pfs& fs, CheckpointOptions options)
    : fs_(&fs), options_(std::move(options)) {
  PCXX_REQUIRE(options_.keepLast >= 1,
               "CheckpointManager must keep at least one epoch");
  PCXX_REQUIRE(!options_.baseName.empty(),
               "CheckpointManager requires a base name");
}

std::string CheckpointManager::epochFileName(std::uint64_t epoch) const {
  return strfmt("%s.%llu", options_.baseName.c_str(),
                static_cast<unsigned long long>(epoch));
}

std::string CheckpointManager::markerFileName() const {
  return options_.baseName + ".latest";
}

std::int64_t CheckpointManager::latestEpoch(rt::Node& node) {
  if (!fs_->exists(markerFileName())) return -1;
  auto f = fs_->open(node, markerFileName(), pfs::OpenMode::Read);
  ByteBuffer buf(8);
  std::uint64_t got = 0;
  if (node.id() == 0) {
    got = f->readAt(node, 0, buf);
  }
  ByteBuffer share;
  if (node.id() == 0 && got == 8) share = buf;
  node.broadcastBytes(0, share);
  if (share.size() != 8) return -1;
  return static_cast<std::int64_t>(decodeU64(share.data()));
}

void CheckpointManager::writeMarker(rt::Node& node, std::uint64_t epoch) {
  auto f = fs_->open(node, markerFileName(), pfs::OpenMode::Create);
  if (node.id() == 0) {
    Byte enc[8];
    encodeU64(epoch, enc);
    f->writeAt(node, 0, enc);
  }
  f->sync(node);
}

void CheckpointManager::prune(rt::Node& node, std::uint64_t latest) {
  const std::uint64_t keep = static_cast<std::uint64_t>(options_.keepLast);
  if (latest + 1 <= keep) return;
  // Epochs are consecutive from this manager; also sweep a margin below
  // the retention window in case an earlier manager left files behind.
  const std::uint64_t firstKept = latest + 1 - keep;
  const std::uint64_t sweepFrom =
      firstKept > 8 ? firstKept - 8 : 0;
  for (std::uint64_t e = sweepFrom; e < firstKept; ++e) {
    if (fs_->exists(epochFileName(e))) {
      fs_->remove(node, epochFileName(e));
    }
  }
}

std::uint64_t CheckpointManager::saveWith(
    rt::Node& node, const coll::Layout& layout,
    const std::function<void(OStream&)>& writer) {
  // Resume epoch numbering from the marker if another manager instance
  // (e.g. a restarted process) wrote checkpoints before us.
  if (nextEpoch_ == 0) {
    const std::int64_t existing = latestEpoch(node);
    if (existing >= 0) {
      nextEpoch_ = static_cast<std::uint64_t>(existing) + 1;
    }
  }
  const std::uint64_t epoch = nextEpoch_++;

  StreamOptions so;
  so.checksumData = options_.checksumData;
  so.syncOnWrite = options_.syncOnWrite;
  {
    OStream s(*fs_, &layout.distribution(), &layout.align(),
              epochFileName(epoch), so);
    writer(s);
    s.write();
  }
  // Only after the epoch file is durable does the marker move; a crash
  // before this line leaves the previous epoch authoritative.
  writeMarker(node, epoch);
  prune(node, epoch);
  return epoch;
}

bool CheckpointManager::tryRestore(
    rt::Node& node, const coll::Layout& layout, std::uint64_t epoch,
    const std::function<void(IStream&)>& reader) {
  if (!fs_->exists(epochFileName(epoch))) return false;
  auto f = fs_->open(node, epochFileName(epoch), pfs::OpenMode::Read);

  // Node 0 validates the file STRUCTURE offline first (framing, header
  // CRCs, size-table consistency) so that a damaged epoch is rejected by a
  // consistent collective decision rather than by nodes failing at
  // different points inside collective reads.
  std::uint64_t ok = 0;
  if (node.id() == 0) {
    try {
      ByteBuffer all(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, all) == all.size()) {
        pfs::MemStorage image;
        image.writeAt(0, all);
        const FileInfo info = inspectFile(image);
        ok = !info.records.empty() &&
             info.records[0].header.elementCount() == layout.size();
      }
    } catch (const Error& e) {
      PCXX_LOG_WARN("checkpoint epoch %llu failed validation: %s",
                    static_cast<unsigned long long>(epoch), e.what());
      ok = 0;
    }
  }
  const std::uint64_t agreed = node.allreduceSumU64(node.id() == 0 ? ok : 0);
  if (agreed == 0) return false;

  try {
    // Remaining failure modes (data checksum mismatch) throw consistently
    // on every node, so catching here keeps the machine healthy.
    f->seekShared(node, kFileHeaderBytes);
    IStream s(*fs_, f, coll::Layout(layout.distribution(), layout.align()));
    s.read();
    reader(s);
    return true;
  } catch (const Error& e) {
    PCXX_LOG_WARN("checkpoint epoch %llu unreadable: %s",
                  static_cast<unsigned long long>(epoch), e.what());
    return false;
  }
}

std::int64_t CheckpointManager::restoreWith(
    rt::Node& node, const coll::Layout& layout,
    const std::function<void(IStream&)>& reader) {
  const std::int64_t marked = latestEpoch(node);
  if (marked < 0) return -1;
  // Try the marked epoch, then older retained epochs.
  const std::uint64_t start = static_cast<std::uint64_t>(marked);
  for (std::uint64_t back = 0; back <= start; ++back) {
    const std::uint64_t epoch = start - back;
    if (back >= static_cast<std::uint64_t>(options_.keepLast) + 1) break;
    if (tryRestore(node, layout, epoch, reader)) {
      nextEpoch_ = start + 1;
      return static_cast<std::int64_t>(epoch);
    }
  }
  return -1;
}

}  // namespace pcxx::ds
