// Crash-safe checkpoint management on top of d/streams.
//
// The paper names checkpointing as the library's first application
// ("save the state of complex distributed data-sets periodically so that
// computation can be resumed at a later point", §2) but leaves epoch
// management to the program. CheckpointManager supplies the standard
// discipline a long-running application needs:
//
//   * each save() writes a NEW epoch file (<base>.<epoch>), with data
//     checksums and fsync on by default;
//   * a marker file (<base>.latest) is updated only AFTER the epoch file
//     is durable, so a crash mid-checkpoint always leaves the previous
//     epoch recoverable;
//   * old epochs beyond `keepLast` are pruned after the marker moves;
//   * restoreLatest() validates the marker's target (falling back to older
//     epochs if it is missing or corrupt) and restores through read(), so
//     the node count and distribution may differ from the saving run.
//
// All methods are collective (every node of the machine calls them).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "dstream/istream.h"
#include "dstream/ostream.h"

namespace pcxx::ds {

/// Thrown by restore when the marker names a checkpoint but neither it nor
/// any retained fallback epoch could be restored — silent data loss would
/// otherwise masquerade as "no checkpoint exists". Carries the epochs that
/// were tried and rejected.
class CheckpointError : public Error {
 public:
  CheckpointError(const std::string& what,
                  std::vector<std::uint64_t> rejected)
      : Error("checkpoint error: " + what),
        rejectedEpochs(std::move(rejected)) {}

  std::vector<std::uint64_t> rejectedEpochs;
};

struct CheckpointOptions {
  std::string baseName = "checkpoint";
  /// Epoch files retained after a successful save (>= 1).
  int keepLast = 2;
  bool checksumData = true;
  bool syncOnWrite = true;
  /// Write-behind queue depth for epoch writes (StreamOptions::aioQueueDepth;
  /// 0 = synchronous). The marker-after-durable discipline is preserved:
  /// save() drains the queue and observes any flush failure BEFORE the
  /// marker moves, so a crash inside a background flush leaves the previous
  /// epoch authoritative.
  int aioQueueDepth = 0;
  /// Read-ahead depth for restores (StreamOptions::aioPrefetchDepth).
  int aioPrefetchDepth = 0;
  /// Chunk codec for epoch files (StreamOptions::codec: "" = pfs default,
  /// "none", "lz"). Restores auto-detect framing, so mixed-codec epoch
  /// chains restore fine.
  std::string codec;
  /// Store chunks identical to the PREVIOUS epoch as references instead of
  /// payload (SCF epochs overlap heavily). Forces "lz" framing when no
  /// codec was chosen, and retention keeps one extra epoch so the oldest
  /// kept epoch's reference target always outlives it (references are
  /// depth-1: an epoch only ever points at its immediate predecessor).
  bool dedupAcrossEpochs = false;
};

class CheckpointManager {
 public:
  CheckpointManager(pfs::Pfs& fs, CheckpointOptions options);

  /// Write one epoch whose single record holds `data`. Returns the epoch id.
  template <typename T>
  std::uint64_t save(coll::Collection<T>& data) {
    return saveWith(data.node(), data.layout(),
                    [&](OStream& s) { s << data; });
  }

  /// General form: `writer` inserts into the stream (one or more inserts);
  /// the manager calls write(), makes it durable, moves the marker, prunes.
  std::uint64_t saveWith(rt::Node& node, const coll::Layout& layout,
                         const std::function<void(OStream&)>& writer);

  /// Epoch the marker currently points to, or -1 when no checkpoint exists.
  std::int64_t latestEpoch(rt::Node& node);

  /// Restore the newest recoverable epoch into `data`; returns the epoch
  /// id, or -1 if no checkpoint exists. Throws CheckpointError when the
  /// marker names an epoch but nothing retained could be restored.
  template <typename T>
  std::int64_t restoreLatest(coll::Collection<T>& data) {
    return restoreWith(data.node(), data.layout(),
                       [&](IStream& s) { s >> data; });
  }

  /// General form of restoreLatest. Tries the marker's epoch first, then
  /// walks backwards over retained epochs if it is damaged. A lost or torn
  /// marker falls back to enumerating epoch files, so a crash mid-marker
  /// never hides an otherwise durable checkpoint.
  std::int64_t restoreWith(rt::Node& node, const coll::Layout& layout,
                           const std::function<void(IStream&)>& reader);

  std::string epochFileName(std::uint64_t epoch) const;
  std::string markerFileName() const;

 private:
  void writeMarker(rt::Node& node, std::uint64_t epoch);
  void prune(rt::Node& node, std::uint64_t latest);
  bool tryRestore(rt::Node& node, const coll::Layout& layout,
                  std::uint64_t epoch,
                  const std::function<void(IStream&)>& reader);
  /// Epochs with files on disk, newest first, capped at keepLast + 1 — the
  /// marker-loss fallback candidate list.
  std::vector<std::uint64_t> scanEpochs();

  pfs::Pfs* fs_;
  CheckpointOptions options_;
  std::uint64_t nextEpoch_ = 0;
};

}  // namespace pcxx::ds
