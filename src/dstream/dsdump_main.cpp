// dsdump: inspect d/stream files from the command line.
//
//   dsdump wholeGridFile             # record summary
//   dsdump -v wholeGridFile          # + insert descriptors, histograms
//   dsdump --stats wholeGridFile     # aggregate I/O statistics (statdump)
//   dsdump --element 3 file          # hex dump of one element's payload
#include <cstdio>

#include "dstream/inspect.h"
#include "pfs/backend.h"
#include "util/options.h"
#include "util/strfmt.h"

int main(int argc, char** argv) {
  try {
    pcxx::Options opts("dsdump", "inspect a d/stream file");
    opts.addFlag("v", "verbose: insert descriptors and size histograms");
    opts.addFlag("stats",
                 "aggregate statistics: data vs. metadata bytes, header "
                 "modes, size histogram, per-writer-node volumes");
    opts.add("record", "0", "record index for --element");
    opts.add("element", "-1",
             "hex-dump the payload of this file-order element");
    if (!opts.parse(argc, argv)) return 0;
    if (opts.positional().size() != 1) {
      std::fputs(opts.usage().c_str(), stderr);
      return 2;
    }

    pcxx::pfs::PosixStorage storage(opts.positional()[0]);
    const pcxx::ds::FileInfo info = pcxx::ds::inspectFile(storage);

    const std::int64_t element = opts.getInt("element");
    if (element >= 0) {
      const auto recordIdx = static_cast<size_t>(opts.getInt("record"));
      if (recordIdx >= info.records.size()) {
        std::fprintf(stderr, "no record %zu (file has %zu)\n", recordIdx,
                     info.records.size());
        return 1;
      }
      const auto data = pcxx::ds::readElementData(
          storage, info.records[recordIdx], element);
      std::printf("record %zu element %lld: %zu bytes\n", recordIdx,
                  static_cast<long long>(element), data.size());
      for (size_t i = 0; i < data.size(); i += 16) {
        std::printf("%08zx ", i);
        for (size_t k = i; k < std::min(i + 16, data.size()); ++k) {
          std::printf(" %02x", data[k]);
        }
        std::putchar('\n');
      }
      return 0;
    }

    const std::string report =
        opts.getFlag("stats")
            ? pcxx::ds::formatStatReport(info)
            : pcxx::ds::formatReport(info, opts.getFlag("v"));
    std::fputs(report.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsdump: %s\n", e.what());
    return 1;
  }
}
