// dsdump: inspect d/stream files from the command line.
//
//   dsdump wholeGridFile             # record summary
//   dsdump -v wholeGridFile          # + insert descriptors, histograms
//   dsdump --stats wholeGridFile     # aggregate I/O statistics (statdump)
//   dsdump --element 3 file          # hex dump of one element's payload
//   dsdump --verify file             # O(index) check; exit 0 clean, 3 corrupt
//   dsdump --verify --deep file      # full scan incl. data checksums
//   dsdump --repair file             # truncate to the last valid record
#include <cstdio>

#include "dstream/inspect.h"
#include "pfs/backend.h"
#include "util/options.h"
#include "util/strfmt.h"

namespace {

// Tolerant integrity scan (exit 0 clean / 3 corrupt / 1 unreadable), with
// optional repair by truncating to the longest valid record prefix.
int verifyOrRepair(const std::string& path, bool repair, bool deep) {
  pcxx::pfs::PosixStorage storage(path);
  pcxx::ds::ScanResult scan;
  try {
    // Repair always walks the whole chain before truncating anything;
    // verify takes the O(index) footer path unless --deep forces the scan.
    scan = repair ? pcxx::ds::scanFile(storage)
                  : pcxx::ds::verifyFile(storage, deep);
  } catch (const pcxx::FormatError& e) {
    // Even the 16-byte file header is damaged: corrupt, and unrepairable.
    std::fprintf(stderr, "dsdump: %s: %s\n", path.c_str(), e.what());
    return repair ? 1 : 3;
  }
  std::fputs(pcxx::ds::formatSalvageReport(scan.report).c_str(), stdout);
  if (scan.report.clean()) {
    std::printf("%s: clean\n", path.c_str());
    return 0;
  }
  if (!repair) return 3;
  storage.truncate(scan.validPrefixEnd);
  storage.sync();
  std::printf("%s: repaired, truncated to %llu bytes (%zu record(s) kept)\n",
              path.c_str(),
              static_cast<unsigned long long>(scan.validPrefixEnd),
              scan.info.records.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    pcxx::Options opts("dsdump", "inspect a d/stream file");
    opts.addFlag("v", "verbose: insert descriptors and size histograms");
    opts.addFlag("stats",
                 "aggregate statistics: data vs. metadata bytes, header "
                 "modes, size histogram, per-writer-node volumes");
    opts.addFlag("verify",
                 "tolerant integrity scan incl. data checksums; exit 0 "
                 "when clean, 3 when corrupt");
    opts.addFlag("repair",
                 "truncate the file to its longest valid record prefix "
                 "(implies --verify's scan)");
    opts.addFlag("deep",
                 "with --verify: full record scan incl. data checksums even "
                 "when a valid index footer would allow the O(index) check");
    opts.add("record", "0", "record index for --element");
    opts.add("element", "-1",
             "hex-dump the payload of this file-order element");
    if (!opts.parse(argc, argv)) return 0;
    if (opts.positional().size() != 1) {
      std::fputs(opts.usage().c_str(), stderr);
      return 2;
    }

    if (opts.getFlag("verify") || opts.getFlag("repair")) {
      return verifyOrRepair(opts.positional()[0], opts.getFlag("repair"),
                            opts.getFlag("deep"));
    }

    pcxx::pfs::PosixStorage storage(opts.positional()[0]);
    const pcxx::ds::FileInfo info = pcxx::ds::inspectFile(storage);

    const std::int64_t element = opts.getInt("element");
    if (element >= 0) {
      const auto recordIdx = static_cast<size_t>(opts.getInt("record"));
      if (recordIdx >= info.records.size()) {
        std::fprintf(stderr, "no record %zu (file has %zu)\n", recordIdx,
                     info.records.size());
        return 1;
      }
      const auto data = pcxx::ds::readElementData(
          storage, info.records[recordIdx], element);
      std::printf("record %zu element %lld: %zu bytes\n", recordIdx,
                  static_cast<long long>(element), data.size());
      for (size_t i = 0; i < data.size(); i += 16) {
        std::printf("%08zx ", i);
        for (size_t k = i; k < std::min(i + 16, data.size()); ++k) {
          std::printf(" %02x", data[k]);
        }
        std::putchar('\n');
      }
      return 0;
    }

    const std::string report =
        opts.getFlag("stats")
            ? pcxx::ds::formatStatReport(info)
            : pcxx::ds::formatReport(info, opts.getFlag("v"));
    std::fputs(report.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsdump: %s\n", e.what());
    return 1;
  }
}
