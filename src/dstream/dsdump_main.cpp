// dsdump: inspect d/stream files from the command line.
//
//   dsdump wholeGridFile             # record summary
//   dsdump -v wholeGridFile          # + insert descriptors, histograms
//   dsdump --stats wholeGridFile     # aggregate I/O statistics (statdump)
//   dsdump --element 3 file          # hex dump of one element's payload
//   dsdump --verify file             # O(index) check; exit 0 clean, 3 corrupt
//   dsdump --verify --deep file      # full scan incl. data checksums
//   dsdump --repair file             # truncate to the last valid record
#include <cstdio>

#include "dstream/inspect.h"
#include "pfs/backend.h"
#include "util/crc32.h"
#include "util/options.h"
#include "util/strfmt.h"

namespace {

// Rebuild a fresh index footer for a repaired file's surviving record
// prefix. The scan's RecordInfo carries everything an entry needs; extents
// are recovered from the stored layout the same way --stats attributes
// data bytes to writer nodes. Records the tolerant scan salvaged from
// BEHIND the first damage are excluded — truncation discards them.
pcxx::dsindex::FileIndex rebuildIndex(
    const std::vector<pcxx::ds::RecordInfo>& records,
    std::uint64_t validPrefixEnd) {
  pcxx::dsindex::FileIndex index;
  for (const pcxx::ds::RecordInfo& rec : records) {
    const std::uint64_t recordEnd =
        rec.dataOffset + rec.header.dataBytes + rec.header.trailerBytes();
    if (recordEnd > validPrefixEnd) continue;
    pcxx::dsindex::IndexEntry entry;
    entry.offset = rec.offset;
    entry.headerBytes = static_cast<std::uint32_t>(rec.headerBytes);
    entry.recordFlags = rec.header.flags;
    entry.recordBytes = recordEnd - rec.offset;
    entry.dataBytes = rec.header.dataBytes;
    pcxx::ByteBuffer enc;
    pcxx::ByteWriter w(enc);
    rec.header.layout.encode(w);
    entry.layoutDigest = pcxx::crc32(enc);
    entry.extents.assign(static_cast<size_t>(rec.header.layout.nprocs()), 0);
    size_t at = 0;
    for (int proc = 0; proc < rec.header.layout.nprocs(); ++proc) {
      const auto n = static_cast<size_t>(rec.header.layout.localCount(proc));
      for (size_t k = 0; k < n && at < rec.elementSizes.size(); ++k) {
        entry.extents[static_cast<size_t>(proc)] += rec.elementSizes[at++];
      }
    }
    index.entries.push_back(std::move(entry));
  }
  return index;
}

// Tolerant integrity scan (exit 0 clean / 3 corrupt / 1 unreadable), with
// optional repair by truncating to the longest valid record prefix.
int verifyOrRepair(const std::string& path, bool repair, bool deep) {
  const auto storage = pcxx::ds::openInspectStorage(path);
  pcxx::ds::ScanResult scan;
  try {
    // Repair always walks the whole chain before truncating anything;
    // verify takes the O(index) footer path unless --deep forces the scan.
    scan = repair ? pcxx::ds::scanFile(*storage)
                  : pcxx::ds::verifyFile(*storage, deep);
  } catch (const pcxx::FormatError& e) {
    // Even the 16-byte file header is damaged: corrupt, and unrepairable.
    std::fprintf(stderr, "dsdump: %s: %s\n", path.c_str(), e.what());
    return repair ? 1 : 3;
  }
  std::fputs(pcxx::ds::formatSalvageReport(scan.report).c_str(), stdout);
  if (scan.report.clean()) {
    std::printf("%s: clean\n", path.c_str());
    return 0;
  }
  if (!repair) return 3;
  // Truncate first, THEN append a fresh footer for the surviving records:
  // the truncate discards every byte past the valid prefix — damaged
  // records, a broken footer body, and any stale trailer — so the trailer
  // a later reader finds at EOF can only be the one appended here. Without
  // the re-append a repaired file would lose O(1) seeks and its explicit
  // end-of-chain marker even though all surviving records are intact.
  storage->truncate(scan.validPrefixEnd);
  const pcxx::dsindex::FileIndex index =
      rebuildIndex(scan.info.records, scan.validPrefixEnd);
  storage->writeAt(scan.validPrefixEnd,
                   index.encodeFooter(scan.validPrefixEnd));
  storage->sync();
  std::printf(
      "%s: repaired, truncated to %llu bytes, fresh index footer "
      "(%zu record(s) kept)\n",
      path.c_str(), static_cast<unsigned long long>(scan.validPrefixEnd),
      index.entries.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    pcxx::Options opts("dsdump", "inspect a d/stream file");
    opts.addFlag("v", "verbose: insert descriptors and size histograms");
    opts.addFlag("stats",
                 "aggregate statistics: data vs. metadata bytes, header "
                 "modes, size histogram, per-writer-node volumes");
    opts.addFlag("verify",
                 "tolerant integrity scan incl. data checksums; exit 0 "
                 "when clean, 3 when corrupt");
    opts.addFlag("repair",
                 "truncate the file to its longest valid record prefix "
                 "(implies --verify's scan)");
    opts.addFlag("deep",
                 "with --verify: full record scan incl. data checksums even "
                 "when a valid index footer would allow the O(index) check");
    opts.add("record", "0", "record index for --element");
    opts.add("element", "-1",
             "hex-dump the payload of this file-order element");
    if (!opts.parse(argc, argv)) return 0;
    if (opts.positional().size() != 1) {
      std::fputs(opts.usage().c_str(), stderr);
      return 2;
    }

    if (opts.getFlag("verify") || opts.getFlag("repair")) {
      return verifyOrRepair(opts.positional()[0], opts.getFlag("repair"),
                            opts.getFlag("deep"));
    }

    const auto storage = pcxx::ds::openInspectStorage(opts.positional()[0]);
    const pcxx::ds::FileInfo info = pcxx::ds::inspectFile(*storage);

    const std::int64_t element = opts.getInt("element");
    if (element >= 0) {
      const auto recordIdx = static_cast<size_t>(opts.getInt("record"));
      if (recordIdx >= info.records.size()) {
        std::fprintf(stderr, "no record %zu (file has %zu)\n", recordIdx,
                     info.records.size());
        return 1;
      }
      const auto data = pcxx::ds::readElementData(
          *storage, info.records[recordIdx], element);
      std::printf("record %zu element %lld: %zu bytes\n", recordIdx,
                  static_cast<long long>(element), data.size());
      for (size_t i = 0; i < data.size(); i += 16) {
        std::printf("%08zx ", i);
        for (size_t k = i; k < std::min(i + 16, data.size()); ++k) {
          std::printf(" %02x", data[k]);
        }
        std::putchar('\n');
      }
      return 0;
    }

    const std::string report =
        opts.getFlag("stats")
            ? pcxx::ds::formatStatReport(info)
            : pcxx::ds::formatReport(info, opts.getFlag("v"));
    std::fputs(report.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsdump: %s\n", e.what());
    return 1;
  }
}
