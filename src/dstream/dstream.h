// Umbrella header for the pC++/streams library.
//
// Pulls in the full public API: the runtime (Machine/Node), the collection
// model (Processors/Distribution/Align/Collection), the parallel file
// system (Pfs), and the d/stream classes (OStream/IStream) with the
// element-insertion machinery (declareStreamInserter / array / ...).
#pragma once

#include "collection/align.h"
#include "collection/collection.h"
#include "collection/distribution.h"
#include "collection/grid2d.h"
#include "collection/processors.h"
#include "dstream/array_ref.h"
#include "dstream/checkpoint.h"
#include "dstream/element_io.h"
#include "dstream/inspect.h"
#include "dstream/istream.h"
#include "dstream/ostream.h"
#include "dstream/record.h"
#include "dstream/stream_common.h"
#include "pfs/parallel_file.h"
#include "runtime/machine.h"
#include "runtime/rio.h"

namespace pcxx::ds {

/// Paper-style aliases: `oStream s(&d, &a, "file");` (Figure 3).
using oStream = OStream;
using iStream = IStream;

}  // namespace pcxx::ds
