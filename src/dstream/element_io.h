// Per-element insertion and extraction (paper §4.1, Figure 4).
//
// Inserting a collection runs the element inserter once per local element;
// each `<<` appends a (pointer, length) entry to that element's pointer
// list — data is NOT copied until write(), exactly as in the paper's
// implementation sketch. Extraction mirrors it: after read(), the element
// extractor walks the element's byte range in the per-node buffer.
//
// Programmer-defined types declare insertion/extraction functions with the
// paper's macros (found via ADL):
//
//   declareStreamInserter(ParticleList& p) {
//     s << p.numberOfParticles;
//     s << pcxx::ds::array(p.mass, p.numberOfParticles);
//     s << pcxx::ds::array(p.position, p.numberOfParticles);
//   }
//   declareStreamExtractor(ParticleList& p) {
//     s >> p.numberOfParticles;
//     s >> pcxx::ds::array(p.mass, p.numberOfParticles);
//     s >> pcxx::ds::array(p.position, p.numberOfParticles);
//   }
//
// Lifetime rule (inherent to the paper's deferred-copy design): data
// referenced by inserted entries must stay alive and unchanged until
// write() is called. Scalars inserted from temporaries are copied into an
// arena owned by the stream, so `s << computeValue()` is safe.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "dstream/array_ref.h"
#include "util/bytes.h"
#include "util/error.h"

namespace pcxx::ds {

/// One deferred-copy entry of an element's pointer list.
struct Entry {
  const void* ptr;
  std::uint64_t bytes;
};

/// Opt-in marker: stream T as raw bytes (for user structs with no pointers,
/// e.g. the paper's Position {x,y,z}). Use PCXX_STREAM_TRIVIAL(T).
template <typename T>
struct StreamAsBytes : std::false_type {};

namespace detail {

template <typename T>
constexpr bool kStreamableScalar =
    std::is_arithmetic_v<T> || std::is_enum_v<T> || StreamAsBytes<T>::value;

/// Arena of stable-address buffers owning materialized values until write().
class Arena {
 public:
  Byte* alloc(std::uint64_t n) {
    buffers_.emplace_back(n);
    return buffers_.back().data();
  }
  void clear() { buffers_.clear(); }

 private:
  std::deque<ByteBuffer> buffers_;
};

}  // namespace detail

class ElementInserter;
class ElementExtractor;

template <typename T>
concept HasAdlInserter = requires(ElementInserter& s, const T& v) {
  pcxx_ds_insert(s, v);
};

template <typename T>
concept HasAdlExtractor = requires(ElementExtractor& s, T& v) {
  pcxx_ds_extract(s, v);
};

/// Builds one element's pointer list (paper Figure 4).
class ElementInserter {
 public:
  ElementInserter(std::vector<Entry>& entries, detail::Arena& arena)
      : entries_(entries), arena_(arena) {}

  /// Record a deferred-copy entry pointing at caller-owned data.
  void rawEntry(const void* ptr, std::uint64_t bytes) {
    entries_.push_back(Entry{ptr, bytes});
  }

  /// Copy a value into the stream-owned arena and record an entry for it.
  template <typename V>
  void arenaEntry(const V& v) {
    static_assert(std::is_trivially_copyable_v<V>);
    Byte* p = arena_.alloc(sizeof(V));
    std::memcpy(p, &v, sizeof(V));
    entries_.push_back(Entry{p, sizeof(V)});
  }

  /// Scalars and opted-in trivial structs; lvalues are referenced
  /// (deferred copy), rvalues are copied into the arena immediately.
  template <typename V>
    requires detail::kStreamableScalar<std::remove_cvref_t<V>>
  ElementInserter& operator<<(V&& v) {
    using U = std::remove_cvref_t<V>;
    if constexpr (std::is_lvalue_reference_v<V&&>) {
      rawEntry(&v, sizeof(U));
    } else {
      arenaEntry(static_cast<const U&>(v));
    }
    return *this;
  }

  /// Programmer-defined types: recurse into their insertion function.
  template <typename V>
    requires(!detail::kStreamableScalar<std::remove_cvref_t<V>> &&
             HasAdlInserter<std::remove_cvref_t<V>>)
  ElementInserter& operator<<(const V& v) {
    pcxx_ds_insert(*this, v);
    return *this;
  }

  /// Variable-sized raw array (see array()).
  template <typename V>
  ElementInserter& operator<<(ArrayRef<V> a) {
    PCXX_REQUIRE(a.count >= 0, "array() count must be non-negative");
    PCXX_REQUIRE(a.count == 0 || *a.slot != nullptr,
                 "array() insertion from null pointer");
    rawEntry(*a.slot, a.bytes());
    return *this;
  }

  template <typename V>
  ElementInserter& operator<<(ConstArrayRef<V> a) {
    PCXX_REQUIRE(a.count >= 0, "array() count must be non-negative");
    PCXX_REQUIRE(a.count == 0 || a.data != nullptr,
                 "array() insertion from null pointer");
    rawEntry(a.data, a.bytes());
    return *this;
  }

  /// std::vector: self-describing (u64 length precedes the data).
  template <typename V>
  ElementInserter& operator<<(const std::vector<V>& v) {
    static_assert(std::is_trivially_copyable_v<V>,
                  "vector elements must be trivially copyable");
    arenaEntry(static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) {
      rawEntry(v.data(), v.size() * sizeof(V));
    }
    return *this;
  }

  /// std::string: self-describing (u64 length precedes the bytes).
  ElementInserter& operator<<(const std::string& s) {
    arenaEntry(static_cast<std::uint64_t>(s.size()));
    if (!s.empty()) {
      rawEntry(s.data(), s.size());
    }
    return *this;
  }

 private:
  std::vector<Entry>& entries_;
  detail::Arena& arena_;
};

/// Walks one element's byte range of the per-node buffer after read().
class ElementExtractor {
 public:
  ElementExtractor(const Byte* data, std::uint64_t size, std::uint64_t& cursor)
      : data_(data), size_(size), cursor_(cursor) {}

  /// Bounds-checked consumption of `n` bytes.
  const Byte* take(std::uint64_t n) {
    if (cursor_ + n > size_) {
      throw FormatError(
          "extract overruns element data (element has " +
          std::to_string(size_) + " bytes, extraction needs " +
          std::to_string(cursor_ + n) +
          "); the extract sequence must mirror the insert sequence");
    }
    const Byte* p = data_ + cursor_;
    cursor_ += n;
    return p;
  }

  std::uint64_t remaining() const { return size_ - cursor_; }

  template <typename V>
    requires detail::kStreamableScalar<V>
  ElementExtractor& operator>>(V& v) {
    std::memcpy(&v, take(sizeof(V)), sizeof(V));
    return *this;
  }

  template <typename V>
    requires(!detail::kStreamableScalar<V> && HasAdlExtractor<V>)
  ElementExtractor& operator>>(V& v) {
    pcxx_ds_extract(*this, v);
    return *this;
  }

  /// Variable-sized raw array; allocates *a.slot with new[] if null.
  ///
  /// CAUTION: a non-null *a.slot is assumed to hold at least a.count
  /// elements — the library cannot know a raw pointer's allocation size.
  /// When re-extracting into an element whose count may have changed,
  /// compare the incoming count and reallocate first:
  ///
  ///   int n; s >> n;
  ///   if (n != e.n) { delete[] e.data; e.data = new double[n]; e.n = n; }
  ///   s >> array(e.data, e.n);
  template <typename V>
  ElementExtractor& operator>>(ArrayRef<V> a) {
    PCXX_REQUIRE(a.count >= 0, "array() count must be non-negative");
    if (a.count == 0) return *this;
    if (*a.slot == nullptr) {
      *a.slot = new V[static_cast<size_t>(a.count)];
    }
    std::memcpy(*a.slot, take(a.bytes()), a.bytes());
    return *this;
  }

  template <typename V>
  ElementExtractor& operator>>(std::vector<V>& v) {
    static_assert(std::is_trivially_copyable_v<V>);
    std::uint64_t n = 0;
    std::memcpy(&n, take(sizeof(n)), sizeof(n));
    v.resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), take(n * sizeof(V)), n * sizeof(V));
    }
    return *this;
  }

  ElementExtractor& operator>>(std::string& s) {
    std::uint64_t n = 0;
    std::memcpy(&n, take(sizeof(n)), sizeof(n));
    s.resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(s.data(), take(n), n);
    }
    return *this;
  }

 private:
  const Byte* data_;
  std::uint64_t size_;
  std::uint64_t& cursor_;
};

/// Insert one element of type T (scalar fast path or ADL inserter).
template <typename T>
void insertElement(ElementInserter& s, const T& v) {
  if constexpr (detail::kStreamableScalar<T>) {
    s << v;
  } else {
    static_assert(HasAdlInserter<T>,
                  "no insertion function for this element type: use "
                  "declareStreamInserter(T& v) { s << ...; } or "
                  "PCXX_STREAM_TRIVIAL(T)");
    pcxx_ds_insert(s, v);
  }
}

/// Extract one element of type T (scalar fast path or ADL extractor).
template <typename T>
void extractElement(ElementExtractor& s, T& v) {
  if constexpr (detail::kStreamableScalar<T>) {
    s >> v;
  } else {
    static_assert(HasAdlExtractor<T>,
                  "no extraction function for this element type: use "
                  "declareStreamExtractor(T& v) { s >> ...; } or "
                  "PCXX_STREAM_TRIVIAL(T)");
    pcxx_ds_extract(s, v);
  }
}

}  // namespace pcxx::ds

/// Declare the insertion function for a programmer-defined type; the stream
/// is available as `s` inside the body (paper §4.1 syntax).
#define declareStreamInserter(decl) \
  inline void pcxx_ds_insert(::pcxx::ds::ElementInserter& s, const decl)

/// Declare the extraction function; the stream is available as `s`.
#define declareStreamExtractor(decl) \
  inline void pcxx_ds_extract(::pcxx::ds::ElementExtractor& s, decl)

/// Opt a pointer-free struct into raw-byte streaming (e.g. Position).
#define PCXX_STREAM_TRIVIAL(Type)                                     \
  template <>                                                         \
  struct pcxx::ds::StreamAsBytes<Type> : std::true_type {             \
    static_assert(std::is_trivially_copyable_v<Type>,                 \
                  "PCXX_STREAM_TRIVIAL requires trivially copyable"); \
  }
