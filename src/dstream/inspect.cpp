#include "dstream/inspect.h"

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <optional>
#include <sstream>

#include "collection/distribution.h"
#include "pfs/codec.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/strfmt.h"

namespace pcxx::ds {

std::uint64_t RecordInfo::minElementBytes() const {
  if (elementSizes.empty()) return 0;
  return *std::min_element(elementSizes.begin(), elementSizes.end());
}

std::uint64_t RecordInfo::maxElementBytes() const {
  if (elementSizes.empty()) return 0;
  return *std::max_element(elementSizes.begin(), elementSizes.end());
}

std::uint64_t RecordInfo::totalDataBytes() const {
  return std::accumulate(elementSizes.begin(), elementSizes.end(),
                         std::uint64_t{0});
}

namespace {

// Probe the dsindex footer through a StorageBackend (the offline analogue of
// the IStream probe through ParallelFile).
dsindex::ProbeResult probeStorage(pfs::StorageBackend& storage) {
  return dsindex::probeFooter(
      [&storage](std::uint64_t offset, std::span<Byte> out) {
        return storage.readAt(offset, out);
      },
      storage.size(), kFileHeaderBytes);
}

}  // namespace

std::shared_ptr<pfs::StorageBackend> openInspectStorage(
    const std::string& path) {
  auto raw = std::make_shared<pfs::PosixStorage>(path);
  // A framed file names its dedup base by pfs file name; offline that maps
  // to a sibling of `path` (CheckpointManager epochs live side by side).
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  return pfs::wrapCodecIfFramed(
      std::move(raw),
      [dir](const std::string& base) -> std::shared_ptr<pfs::StorageBackend> {
        const std::string basePath = dir + base;
        if (!std::filesystem::exists(basePath)) return nullptr;
        return std::make_shared<pfs::PosixStorage>(basePath);
      });
}

FileInfo inspectFile(pfs::StorageBackend& storage) {
  FileInfo info;
  info.fileBytes = storage.size();
  info.footerOffset = info.fileBytes;

  ByteBuffer fileHeader(kFileHeaderBytes);
  if (storage.readAt(0, fileHeader) != kFileHeaderBytes) {
    throw FormatError("file too short for a d/stream file header");
  }
  verifyFileHeader(fileHeader);

  // A valid footer bounds the record walk (its bytes are not records); a
  // self-checksummed trailer over a corrupt body still pins the chain end,
  // but strict inspection rejects the file outright.
  const dsindex::ProbeResult probe = probeStorage(storage);
  if (probe.status == dsindex::ProbeStatus::Corrupt) {
    throw FormatError("corrupt index footer: " + probe.reason);
  }
  if (probe.status == dsindex::ProbeStatus::Valid) {
    info.indexed = true;
    info.footerOffset = probe.footerOffset;
  }

  std::uint64_t pos = kFileHeaderBytes;
  while (pos < info.footerOffset) {
    Byte prefix[8];
    if (storage.readAt(pos, prefix) != 8) {
      throw FormatError("truncated record header prefix at offset " +
                        std::to_string(pos));
    }
    const std::uint64_t headerLen = RecordHeader::encodedLength(prefix);
    ByteBuffer headerBytes(static_cast<size_t>(headerLen));
    if (storage.readAt(pos, headerBytes) != headerLen) {
      throw FormatError("truncated record header at offset " +
                        std::to_string(pos));
    }
    RecordInfo rec{RecordHeader::decode(headerBytes), pos, headerLen, 0, {}};

    // Size table.
    const std::uint64_t tableOffset = pos + rec.headerBytes;
    const std::uint64_t tableBytes = rec.header.sizeTableBytes();
    ByteBuffer table(static_cast<size_t>(tableBytes));
    if (storage.readAt(tableOffset, table) != tableBytes) {
      throw FormatError("truncated size table at offset " +
                        std::to_string(tableOffset));
    }
    rec.elementSizes.resize(static_cast<size_t>(rec.header.elementCount()));
    for (size_t i = 0; i < rec.elementSizes.size(); ++i) {
      rec.elementSizes[i] = decodeU64(table.data() + 8 * i);
    }
    rec.dataOffset = tableOffset + tableBytes;

    // Cross-check the size table against the header's dataBytes.
    if (rec.totalDataBytes() != rec.header.dataBytes) {
      throw FormatError(strfmt(
          "record %u: size table sums to %llu bytes but header declares "
          "%llu",
          rec.header.seq,
          static_cast<unsigned long long>(rec.totalDataBytes()),
          static_cast<unsigned long long>(rec.header.dataBytes)));
    }
    const std::uint64_t recordEnd =
        rec.dataOffset + rec.header.dataBytes + rec.header.trailerBytes();
    if (recordEnd > info.footerOffset) {
      throw FormatError(strfmt(
          "record %u: data section extends past end of chain (%llu > %llu)",
          rec.header.seq, static_cast<unsigned long long>(recordEnd),
          static_cast<unsigned long long>(info.footerOffset)));
    }
    info.records.push_back(std::move(rec));
    pos = recordEnd;
  }

  // Strict mode also holds the footer to its word: every entry must agree
  // with the record actually found at its offset.
  if (info.indexed) {
    const auto& entries = probe.index.entries;
    if (entries.size() != info.records.size()) {
      throw FormatError(strfmt(
          "index footer lists %zu record(s) but the chain holds %zu",
          entries.size(), info.records.size()));
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].offset != info.records[i].offset ||
          entries[i].headerBytes != info.records[i].headerBytes ||
          entries[i].dataBytes != info.records[i].header.dataBytes) {
        throw FormatError(
            strfmt("index footer entry %zu disagrees with record %zu", i, i));
      }
    }
  }
  return info;
}

FileInfo inspectFile(const std::string& path) {
  const auto storage = openInspectStorage(path);
  return inspectFile(*storage);
}

ScanResult scanFile(pfs::StorageBackend& storage) {
  ScanResult result;
  result.info.fileBytes = storage.size();
  result.info.footerOffset = result.info.fileBytes;
  result.validPrefixEnd = kFileHeaderBytes;

  ByteBuffer fileHeader(kFileHeaderBytes);
  if (storage.readAt(0, fileHeader) != kFileHeaderBytes) {
    throw FormatError("file too short for a d/stream file header");
  }
  verifyFileHeader(fileHeader);

  // Bound the record walk at the footer when its self-checksummed trailer
  // is intact — even a corrupt footer body still pins the chain end. A
  // footer whose trailer checksum fails leaves the walk unbounded; its
  // bytes then surface as ordinary tail damage below.
  const dsindex::ProbeResult probe = probeStorage(storage);
  if (probe.haveFooterOffset) {
    result.info.footerOffset = probe.footerOffset;
    result.info.indexed = probe.status == dsindex::ProbeStatus::Valid;
  }

  const std::uint64_t fileBytes = result.info.fileBytes;
  const std::uint64_t walkEnd = result.info.footerOffset;
  bool prefixIntact = true;
  std::uint64_t pos = kFileHeaderBytes;

  // A torn tail ends the walk: without intact framing nothing behind the
  // damage can be located.
  const auto tornTail = [&](const char* reason) {
    result.report.recordsLost += 1;
    result.report.damage.push_back(
        DamagedRange{pos, walkEnd - pos, reason});
  };
  // A damaged record with intact framing is skipped; the walk continues at
  // `next`.
  const auto damagedRecord = [&](std::uint64_t next, const char* reason) {
    result.report.recordsLost += 1;
    result.report.damage.push_back(DamagedRange{pos, next - pos, reason});
    prefixIntact = false;
    pos = next;
  };

  while (pos < walkEnd) {
    Byte prefix[8];
    if (storage.readAt(pos, prefix) != 8) {
      tornTail("truncated record header prefix");
      break;
    }
    std::uint64_t headerLen = 0;
    try {
      headerLen = RecordHeader::encodedLength(prefix);
    } catch (const FormatError&) {
      tornTail("invalid record header prefix");
      break;
    }
    ByteBuffer headerBytes(static_cast<size_t>(headerLen));
    if (storage.readAt(pos, headerBytes) != headerLen) {
      tornTail("truncated record header");
      break;
    }
    std::optional<RecordHeader> header;
    try {
      header = RecordHeader::decode(headerBytes);
    } catch (const FormatError&) {
      tornTail("record header checksum mismatch");
      break;
    }

    RecordInfo rec{std::move(*header), pos, headerLen, 0, {}};
    const std::uint64_t tableOffset = pos + rec.headerBytes;
    const std::uint64_t tableBytes = rec.header.sizeTableBytes();
    rec.dataOffset = tableOffset + tableBytes;
    const std::uint64_t recordEnd =
        rec.dataOffset + rec.header.dataBytes + rec.header.trailerBytes();
    if (recordEnd > walkEnd) {
      tornTail("record extends past end of chain");
      break;
    }

    ByteBuffer table(static_cast<size_t>(tableBytes));
    if (storage.readAt(tableOffset, table) != tableBytes) {
      tornTail("truncated size table");
      break;
    }
    rec.elementSizes.resize(static_cast<size_t>(rec.header.elementCount()));
    for (size_t i = 0; i < rec.elementSizes.size(); ++i) {
      rec.elementSizes[i] = decodeU64(table.data() + 8 * i);
    }
    if (rec.totalDataBytes() != rec.header.dataBytes) {
      // The header (CRC-verified) still frames the record, so the walk can
      // continue behind it.
      damagedRecord(recordEnd, "size table inconsistent with record header");
      continue;
    }

    if (rec.header.hasDataCrc()) {
      ByteBuffer data(static_cast<size_t>(rec.header.dataBytes));
      ByteBuffer trailer(4);
      if (storage.readAt(rec.dataOffset, data) != data.size() ||
          storage.readAt(rec.dataOffset + rec.header.dataBytes, trailer) !=
              4) {
        tornTail("truncated data section");
        break;
      }
      if (crc32(data) != decodeU32(trailer.data())) {
        damagedRecord(recordEnd, "data checksum mismatch");
        continue;
      }
    }

    result.report.recordsRecovered += 1;
    result.info.records.push_back(std::move(rec));
    pos = recordEnd;
    if (prefixIntact) result.validPrefixEnd = recordEnd;
  }

  if (probe.haveFooterOffset) {
    if (probe.status == dsindex::ProbeStatus::Corrupt) {
      // The footer itself is the damage; the records before it were
      // scanned normally, and --repair truncates the broken footer away.
      result.report.damage.push_back(DamagedRange{
          walkEnd, fileBytes - walkEnd, "corrupt index footer"});
    } else if (prefixIntact && pos == walkEnd) {
      // Clean chain under a valid footer: the whole file, footer
      // included, is the valid prefix, so --repair keeps the index.
      result.validPrefixEnd = fileBytes;
    }
  }
  return result;
}

ScanResult scanFile(const std::string& path) {
  const auto storage = openInspectStorage(path);
  return scanFile(*storage);
}

ScanResult verifyFile(pfs::StorageBackend& storage, bool deep) {
  if (deep) return scanFile(storage);
  const dsindex::ProbeResult probe = probeStorage(storage);
  if (probe.status != dsindex::ProbeStatus::Valid) {
    // No usable index (or a corrupt one): the deep scan owns both the walk
    // and the damage accounting.
    return scanFile(storage);
  }

  // O(index) fast path: for each footer entry, read only the record's
  // header (CRC-verified by decode) and size table, and hold them against
  // the entry. The data payloads — virtually all of the file — stay
  // untouched. Any disagreement means the footer cannot be trusted as a
  // verification transcript, so the deep scan takes over.
  try {
    ScanResult result;
    result.info.fileBytes = storage.size();
    result.info.indexed = true;
    result.info.footerOffset = probe.footerOffset;

    ByteBuffer fileHeader(kFileHeaderBytes);
    if (storage.readAt(0, fileHeader) != kFileHeaderBytes) {
      throw FormatError("file too short for a d/stream file header");
    }
    verifyFileHeader(fileHeader);

    for (const dsindex::IndexEntry& entry : probe.index.entries) {
      // A CRC-valid footer can still lie; never size a span past the
      // buffer the entry actually bought.
      if (entry.headerBytes < 8) {
        throw FormatError("index entry header length too small");
      }
      ByteBuffer headerBytes(entry.headerBytes);
      if (storage.readAt(entry.offset, headerBytes) != entry.headerBytes) {
        throw FormatError("truncated record header");
      }
      if (RecordHeader::encodedLength(
              std::span<const Byte>(headerBytes.data(), 8)) !=
          entry.headerBytes) {
        throw FormatError("header length disagrees with index entry");
      }
      RecordInfo rec{RecordHeader::decode(headerBytes), entry.offset,
                     entry.headerBytes, 0, {}};
      if (rec.header.dataBytes != entry.dataBytes) {
        throw FormatError("record data size disagrees with index entry");
      }
      const std::uint64_t tableOffset = entry.offset + entry.headerBytes;
      const std::uint64_t tableBytes = rec.header.sizeTableBytes();
      ByteBuffer table(static_cast<size_t>(tableBytes));
      if (storage.readAt(tableOffset, table) != tableBytes) {
        throw FormatError("truncated size table");
      }
      rec.elementSizes.resize(static_cast<size_t>(rec.header.elementCount()));
      for (size_t i = 0; i < rec.elementSizes.size(); ++i) {
        rec.elementSizes[i] = decodeU64(table.data() + 8 * i);
      }
      rec.dataOffset = tableOffset + tableBytes;
      if (rec.totalDataBytes() != rec.header.dataBytes) {
        throw FormatError("size table inconsistent with record header");
      }
      const std::uint64_t recordEnd =
          rec.dataOffset + rec.header.dataBytes + rec.header.trailerBytes();
      if (recordEnd != entry.end()) {
        throw FormatError("record extent disagrees with index entry");
      }
      result.report.recordsRecovered += 1;
      result.info.records.push_back(std::move(rec));
    }
    result.validPrefixEnd = result.info.fileBytes;
    return result;
  } catch (const FormatError&) {
    return scanFile(storage);
  }
}

std::string formatSalvageReport(const SalvageReport& report) {
  std::ostringstream os;
  os << strfmt("salvage: %llu record(s) recovered, %llu lost\n",
               static_cast<unsigned long long>(report.recordsRecovered),
               static_cast<unsigned long long>(report.recordsLost));
  for (const DamagedRange& d : report.damage) {
    os << strfmt("  damaged: [%llu, +%llu) %s\n",
                 static_cast<unsigned long long>(d.offset),
                 static_cast<unsigned long long>(d.bytes), d.reason.c_str());
  }
  return os.str();
}

ByteBuffer readElementData(pfs::StorageBackend& storage,
                           const RecordInfo& record,
                           std::int64_t fileOrderIndex) {
  PCXX_REQUIRE(fileOrderIndex >= 0 &&
                   fileOrderIndex <
                       static_cast<std::int64_t>(record.elementSizes.size()),
               "element index out of range for this record");
  std::uint64_t offset = record.dataOffset;
  for (std::int64_t i = 0; i < fileOrderIndex; ++i) {
    offset += record.elementSizes[static_cast<size_t>(i)];
  }
  ByteBuffer out(static_cast<size_t>(
      record.elementSizes[static_cast<size_t>(fileOrderIndex)]));
  if (storage.readAt(offset, out) != out.size()) {
    throw FormatError("element data truncated");
  }
  return out;
}

std::string formatReport(const FileInfo& info, bool verbose) {
  std::ostringstream os;
  os << "d/stream file: " << humanBytes(info.fileBytes) << ", "
     << info.records.size() << " record(s)\n";
  for (const RecordInfo& rec : info.records) {
    const auto& h = rec.header;
    os << strfmt(
        "  record %u @ %llu: %lld elements, %s data, layout = %s x %d "
        "nodes",
        h.seq, static_cast<unsigned long long>(rec.offset),
        static_cast<long long>(h.elementCount()),
        humanBytes(h.dataBytes).c_str(),
        coll::distKindName(h.layout.distribution().kind()),
        h.layout.nprocs());
    if (!h.layout.align().identity()) {
      os << strfmt(" (aligned: %lld*i%+lld)",
                   static_cast<long long>(h.layout.align().stride()),
                   static_cast<long long>(h.layout.align().offset()));
    }
    os << strfmt(", header %s\n",
                 h.mode == HeaderMode::Gathered ? "gathered" : "parallel");
    os << strfmt("    element sizes: min %llu, max %llu bytes; %zu insert(s)\n",
                 static_cast<unsigned long long>(rec.minElementBytes()),
                 static_cast<unsigned long long>(rec.maxElementBytes()),
                 h.inserts.size());
    if (verbose) {
      for (size_t i = 0; i < h.inserts.size(); ++i) {
        const InsertDesc& d = h.inserts[i];
        os << strfmt("    insert %zu: %s, type tag %08x%s\n", i,
                     d.kind == InsertKind::Collection ? "collection"
                                                      : "field",
                     d.typeTag,
                     d.fixedPerElement != 0
                         ? strfmt(", %u bytes/element",
                                  d.fixedPerElement).c_str()
                         : " (variable)");
      }
      // Small size histogram (8 buckets between min and max).
      const std::uint64_t lo = rec.minElementBytes();
      const std::uint64_t hi = rec.maxElementBytes();
      if (hi > lo) {
        int buckets[8] = {0};
        for (std::uint64_t sz : rec.elementSizes) {
          const auto b = static_cast<size_t>((sz - lo) * 7 / (hi - lo));
          ++buckets[b];
        }
        os << "    size histogram:";
        for (int b : buckets) os << " " << b;
        os << "\n";
      }
    }
  }
  return os.str();
}

std::string formatStatReport(const FileInfo& info) {
  std::ostringstream os;
  std::uint64_t dataBytes = 0;
  std::uint64_t headerBytes = 0;
  std::uint64_t tableBytes = 0;
  std::uint64_t trailerBytes = 0;
  std::uint64_t elements = 0;
  int gathered = 0;
  int parallel = 0;
  // log2 element-size histogram: bucket 0 holds 0, bucket i holds
  // [2^(i-1), 2^i).
  constexpr int kBuckets = 33;
  std::uint64_t sizeHist[kBuckets] = {0};
  std::vector<std::uint64_t> perNodeBytes;

  for (const RecordInfo& rec : info.records) {
    const auto& h = rec.header;
    dataBytes += h.dataBytes;
    headerBytes += rec.headerBytes;
    tableBytes += h.sizeTableBytes();
    trailerBytes += h.trailerBytes();
    elements += static_cast<std::uint64_t>(h.elementCount());
    (h.mode == HeaderMode::Gathered ? gathered : parallel) += 1;
    for (std::uint64_t sz : rec.elementSizes) {
      int b = 0;
      for (std::uint64_t v = sz; v != 0; v >>= 1) ++b;
      ++sizeHist[std::min(b, kBuckets - 1)];
    }
    // File order concatenates each writer node's elements in node order,
    // so per-node data volumes are contiguous runs of the size table.
    if (static_cast<size_t>(h.layout.nprocs()) > perNodeBytes.size()) {
      perNodeBytes.resize(static_cast<size_t>(h.layout.nprocs()), 0);
    }
    size_t at = 0;
    for (int proc = 0; proc < h.layout.nprocs(); ++proc) {
      const auto n = static_cast<size_t>(h.layout.localCount(proc));
      for (size_t k = 0; k < n && at < rec.elementSizes.size(); ++k) {
        perNodeBytes[static_cast<size_t>(proc)] += rec.elementSizes[at++];
      }
    }
  }

  const std::uint64_t metaBytes =
      kFileHeaderBytes + headerBytes + tableBytes + trailerBytes;
  os << "d/stream file statistics\n";
  os << strfmt("  file:       %s (%llu bytes)\n",
               humanBytes(info.fileBytes).c_str(),
               static_cast<unsigned long long>(info.fileBytes));
  os << strfmt("  records:    %zu (%d gathered, %d parallel header)\n",
               info.records.size(), gathered, parallel);
  os << strfmt("  elements:   %llu\n",
               static_cast<unsigned long long>(elements));
  os << strfmt("  data:       %s\n", humanBytes(dataBytes).c_str());
  os << strfmt(
      "  metadata:   %s (%s headers, %s size tables, %s trailers)\n",
      humanBytes(metaBytes).c_str(), humanBytes(headerBytes).c_str(),
      humanBytes(tableBytes).c_str(), humanBytes(trailerBytes).c_str());
  if (dataBytes + metaBytes > 0) {
    os << strfmt("  overhead:   %.2f%% of file bytes are metadata\n",
                 100.0 * static_cast<double>(metaBytes) /
                     static_cast<double>(dataBytes + metaBytes));
  }
  if (elements > 0) {
    os << "  element size histogram (bytes -> count):\n";
    for (int b = 0; b < kBuckets; ++b) {
      if (sizeHist[b] == 0) continue;
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      os << strfmt("    >= %-10llu %llu\n",
                   static_cast<unsigned long long>(lo),
                   static_cast<unsigned long long>(sizeHist[b]));
    }
  }
  if (!perNodeBytes.empty()) {
    os << "  data bytes by writer node:\n";
    for (size_t p = 0; p < perNodeBytes.size(); ++p) {
      os << strfmt("    node %-4zu %s\n", p,
                   humanBytes(perNodeBytes[p]).c_str());
    }
  }
  return os.str();
}

}  // namespace pcxx::ds
