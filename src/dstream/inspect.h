// Offline inspection of d/stream files (the dsdump tool's engine).
//
// Walks a file's records using only the self-describing metadata — no
// machine, no collections — which is both a debugging aid and a standing
// proof that d/stream files carry everything a reader needs (paper §4.1:
// "no information about the distribution or size of the data to be read
// needs to be passed to the library").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsindex/dsindex.h"
#include "dstream/record.h"
#include "dstream/salvage.h"
#include "pfs/backend.h"

namespace pcxx::ds {

/// Summary of one record in a d/stream file.
struct RecordInfo {
  RecordHeader header;
  std::uint64_t offset = 0;         ///< file offset of the record header
  std::uint64_t headerBytes = 0;
  std::uint64_t dataOffset = 0;     ///< first byte of element data
  std::vector<std::uint64_t> elementSizes;  ///< per element, file order

  std::uint64_t minElementBytes() const;
  std::uint64_t maxElementBytes() const;
  std::uint64_t totalDataBytes() const;
};

/// Summary of a whole file.
struct FileInfo {
  std::uint64_t fileBytes = 0;
  /// True when a valid dsindex footer bounded the record walk.
  bool indexed = false;
  /// First byte of the index footer; == fileBytes when there is none (the
  /// record chain runs to end of file).
  std::uint64_t footerOffset = 0;
  std::vector<RecordInfo> records;
};

/// Open a d/stream file on the local file system for offline inspection,
/// transparently unwrapping pfs chunk-codec framing when present (see
/// docs/FORMAT.md, "Chunk codec") so every inspector sees logical record
/// bytes. A framed file's dedup base is resolved to a sibling path in the
/// same directory; a missing base leaves its referenced chunks reading as
/// zeros, which the tolerant scans report as ordinary record damage.
std::shared_ptr<pfs::StorageBackend> openInspectStorage(
    const std::string& path);

/// Inspect the d/stream file stored in `storage`. Throws FormatError on a
/// malformed file (bad magic, truncated record, checksum mismatch,
/// size-table/data inconsistency).
FileInfo inspectFile(pfs::StorageBackend& storage);

/// Convenience: inspect a d/stream file on the local file system.
FileInfo inspectFile(const std::string& path);

/// Result of a tolerant scan (scanFile).
struct ScanResult {
  FileInfo info;         ///< the intact records only
  SalvageReport report;  ///< what was damaged and why
  /// End offset of the longest valid record *prefix* — the truncation
  /// point `dsdump --repair` uses. At least kFileHeaderBytes. Intact
  /// records behind a damaged one do not extend it (normal readers stop at
  /// the first damage; only salvage-mode readers reach them).
  std::uint64_t validPrefixEnd = 0;
};

/// Tolerant scan: walk records like inspectFile, but record damage in the
/// report instead of throwing, and — unlike inspectFile — verify each
/// record's data CRC-32 trailer when present. Only a damaged 16-byte file
/// header still throws FormatError (there is nothing to salvage then).
ScanResult scanFile(pfs::StorageBackend& storage);

/// Convenience: tolerant scan of a d/stream file on the local file system.
ScanResult scanFile(const std::string& path);

/// Integrity verification (`dsdump --verify`). With `deep` false and a valid
/// index footer this is O(index): per record it reads only the header and
/// size table (skipping the data payloads) and cross-checks them against the
/// footer's entries; any disagreement falls back to the full scan. Files
/// without a usable footer, and `deep` mode, use scanFile directly.
ScanResult verifyFile(pfs::StorageBackend& storage, bool deep);

/// Read one element's raw payload bytes (by file-order position) from a
/// record. Bounds-checked.
ByteBuffer readElementData(pfs::StorageBackend& storage,
                           const RecordInfo& record,
                           std::int64_t fileOrderIndex);

/// Human-readable report (what `dsdump` prints). `verbose` adds per-element
/// size histograms and insert descriptors.
std::string formatReport(const FileInfo& info, bool verbose);

/// Statistics report (`dsdump --stats`, the pcxx-statdump mode): aggregate
/// I/O accounting for the file — data vs. metadata bytes and overhead,
/// header-mode usage, a log2 element-size histogram, and per-writer-node
/// data volumes recovered from the stored layouts.
std::string formatStatReport(const FileInfo& info);

}  // namespace pcxx::ds
