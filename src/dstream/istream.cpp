#include "dstream/istream.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "util/crc32.h"

#include "util/log.h"

namespace pcxx::ds {

IStream::IStream(pfs::Pfs& fs, const coll::Distribution* d,
                 const coll::Align* a, const std::string& fileName,
                 StreamOptions opts)
    : node_(&rt::thisNode()),
      fs_(&fs),
      layout_(*d, *a),
      opts_(opts),
      localCount_(0) {
  openFile(fileName);
}

IStream::IStream(pfs::Pfs& fs, const coll::Distribution* d,
                 const std::string& fileName, StreamOptions opts)
    : node_(&rt::thisNode()), fs_(&fs), layout_(*d), opts_(opts),
      localCount_(0) {
  openFile(fileName);
}

IStream::IStream(const coll::Distribution* d, const coll::Align* a,
                 const std::string& fileName, StreamOptions opts)
    : IStream(defaultPfs(), d, a, fileName, opts) {}

IStream::IStream(const coll::Distribution* d, const std::string& fileName,
                 StreamOptions opts)
    : IStream(defaultPfs(), d, fileName, opts) {}

IStream::IStream(pfs::Pfs& fs, pfs::ParallelFilePtr file, coll::Layout layout,
                 StreamOptions opts)
    : node_(&rt::thisNode()),
      fs_(&fs),
      file_(std::move(file)),
      layout_(std::move(layout)),
      opts_(opts),
      localCount_(layout_.localCount(node_->id())) {
  PCXX_REQUIRE(file_ != nullptr, "IStream requires an open file");
  // Collective-free probe: attach streams are constructed in arbitrary
  // per-file order across nodes, so each node reads the tiny footer itself.
  probeIndex(/*viaBroadcast=*/false);
  setupPrefetch();
}

void IStream::openFile(const std::string& fileName) {
  localCount_ = layout_.localCount(node_->id());
  file_ = fs_->open(*node_, fileName, pfs::OpenMode::Read);
  ByteBuffer hdr(kFileHeaderBytes);
  if (node_->id() == 0) {
    const std::uint64_t got = file_->readAt(*node_, 0, hdr);
    if (got != kFileHeaderBytes) hdr.clear();
  }
  node_->broadcastBytes(0, hdr);
  verifyFileHeader(hdr);
  probeIndex(/*viaBroadcast=*/true);
  file_->seekShared(*node_, kFileHeaderBytes);
  setupPrefetch();
}

void IStream::probeIndex(bool viaBroadcast) {
  indexValid_ = false;
  dataEndFixed_ = false;
  // The probe always runs: even with dsindexUseFooter off, the trailer must
  // pin the end of the record chain or sequential replay would walk into
  // the footer bytes. The option only gates *using* the index (and the
  // hit/fallback accounting — replay by choice is not a fallback).
  // Encoded probe verdict: [u8 status][u8 haveOffset][u64 footerOffset]
  // [body bytes when Valid]. Node 0 (or, collective-free, every node)
  // produces it; decodeBody re-verifies the CRC on each consumer.
  ByteBuffer blob;
  if (!viaBroadcast || node_->id() == 0) {
    const dsindex::ProbeResult probe = dsindex::probeFooter(
        [&](std::uint64_t off, std::span<Byte> out) {
          return file_->readAt(*node_, off, out);
        },
        file_->size(), kFileHeaderBytes);
    ByteWriter w(blob);
    w.u8(static_cast<std::uint8_t>(probe.status));
    // Chain end, pinned at open time: the footer offset when the
    // self-checksummed trailer is intact (even over a damaged body), the
    // file size otherwise. Pinning gives every node the same snapshot —
    // atEnd() must not change verdict mid-read because some other node
    // already raced ahead into a footer-appending close of its writer.
    w.u64(probe.haveFooterOffset ? probe.footerOffset : file_->size());
    if (probe.status == dsindex::ProbeStatus::Valid) {
      w.bytes(probe.index.encodeBody());
    }
  }
  if (viaBroadcast) node_->broadcastBytes(0, blob);
  ByteReader r(blob);
  const auto status = static_cast<dsindex::ProbeStatus>(r.u8());
  dataEndFixed_ = true;
  dataEnd_ = r.u64();
  if (!opts_.dsindexUseFooter) return;
  if (status == dsindex::ProbeStatus::Valid) {
    index_ = dsindex::FileIndex::decodeBody(
        std::span<const Byte>(blob).subspan(r.position()));
    indexValid_ = true;
    PCXX_OBS_COUNT(node_->obs(), DsIndexHits, 1);
  } else {
    PCXX_OBS_COUNT(node_->obs(), DsIndexFallbacks, 1);
  }
}

const dsindex::IndexEntry* IStream::indexEntryAt(std::uint64_t offset) const {
  const auto it = std::lower_bound(
      index_.entries.begin(), index_.entries.end(), offset,
      [](const dsindex::IndexEntry& e, std::uint64_t off) {
        return e.offset < off;
      });
  if (it == index_.entries.end() || it->offset != offset) return nullptr;
  return &*it;
}

IStream::~IStream() {
  state_ = State::Closed;
  prefetcher_.reset();  // before file_: the plan holds a file reference
  file_.reset();
}

void IStream::close() {
  state_ = State::Closed;
  prefetcher_.reset();  // before file_: the plan holds a file reference
  file_.reset();
}

void IStream::rewind() {
  if (state_ == State::Closed) {
    throw StateError("rewind on a closed d/stream");
  }
  file_->seekShared(*node_, kFileHeaderBytes);
  record_.reset();
  state_ = State::Ready;
  restartPrefetch();
}

bool IStream::atEnd() const {
  if (state_ == State::Closed) return true;
  return file_->sharedOffset() >= chainEnd();
}

void IStream::seekRecord(std::uint32_t k) {
  if (state_ == State::Closed) {
    throw StateError("seekRecord on a closed d/stream");
  }
  PCXX_OBS_SPAN(node_->obs(), "ds.seek");
  PCXX_OBS_COUNT(node_->obs(), DsIndexSeeks, 1);
  if (indexValid_) {
    if (k >= index_.entries.size()) {
      throw UsageError("seekRecord(" + std::to_string(k) +
                       "): the file's index has only " +
                       std::to_string(index_.entries.size()) + " record(s)");
    }
    PCXX_OBS_COUNT(node_->obs(), DsIndexHits, 1);
    file_->seekShared(*node_, index_.entries[static_cast<size_t>(k)].offset);
    record_.reset();
    state_ = State::Ready;
    restartPrefetch();
    return;
  }
  // No usable footer: replay the chain from the top with k header-only
  // skips — same result, O(k) header reads.
  PCXX_OBS_COUNT(node_->obs(), DsIndexFallbacks, 1);
  file_->seekShared(*node_, kFileHeaderBytes);
  record_.reset();
  state_ = State::Ready;
  restartPrefetch();
  for (std::uint32_t i = 0; i < k; ++i) {
    if (atEnd()) {
      throw UsageError("seekRecord(" + std::to_string(k) +
                       "): the record chain ends after " + std::to_string(i) +
                       " record(s)");
    }
    skipRecord();
  }
  // Mirror the indexed path's k >= recordCount rejection: a chain of
  // exactly k records must throw too, not silently park at end-of-chain.
  if (atEnd()) {
    throw UsageError("seekRecord(" + std::to_string(k) +
                     "): the record chain has only " + std::to_string(k) +
                     " record(s)");
  }
}

void IStream::project(std::vector<std::uint32_t> fields) {
  if (state_ == State::Closed) {
    throw StateError("project on a closed d/stream");
  }
  std::sort(fields.begin(), fields.end());
  fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
  projection_ = std::move(fields);
}

const RecordHeader& IStream::currentRecord() const {
  PCXX_REQUIRE(record_.has_value(),
               "no record has been read yet (call read() first)");
  return *record_;
}

void IStream::checkExtract(const coll::Layout& collectionLayout,
                           std::uint32_t tag, InsertKind kind) const {
  if (state_ == State::Closed) {
    throw StateError("extract on a closed d/stream");
  }
  if (state_ != State::Extracting) {
    throw StateError(
        "extract requires a preceding read() or unsortedRead() (Figure 2)");
  }
  if (collectionLayout != layout_) {
    throw UsageError(
        "extracted collection's distribution/alignment does not match the "
        "d/stream's");
  }
  const auto& inserts = record_->inserts;
  if (nextExtract_ >= inserts.size()) {
    throw UsageError(
        "more extracts than the record has inserts; every extract must have "
        "a corresponding insert");
  }
  const InsertDesc& desc = inserts[nextExtract_];
  if (desc.kind != kind) {
    throw UsageError(
        "extract kind mismatch: a whole-collection extract must correspond "
        "to a whole-collection insert (and a field to a field)");
  }
  if (desc.typeTag != tag) {
    throw UsageError(
        "extract type mismatch: the extracted element type differs from the "
        "inserted element type for this position in the record");
  }
  PCXX_OBS_COUNT(node_->obs(), DsExtracts, 1);
}

RecordHeader IStream::skipRecord() {
  if (state_ == State::Closed) {
    throw StateError("skipRecord on a closed d/stream");
  }
  PCXX_OBS_SPAN(node_->obs(), "ds.skip");
  PCXX_OBS_COUNT(node_->obs(), DsSkips, 1);
  const std::uint64_t recordStart = file_->sharedOffset();
  ByteBuffer headerBytes;
  if (node_->id() == 0) {
    Byte prefix[8];
    if (file_->readAt(*node_, recordStart, prefix) == 8) {
      try {
        const std::uint64_t len = RecordHeader::encodedLength(prefix);
        headerBytes.resize(len);
        if (file_->readAt(*node_, recordStart, headerBytes) != len) {
          headerBytes.clear();
        }
      } catch (const FormatError&) {
        headerBytes.clear();
      }
    }
  }
  node_->broadcastBytes(0, headerBytes);
  if (headerBytes.empty()) {
    throw FormatError("truncated or invalid record header at offset " +
                      std::to_string(recordStart));
  }
  RecordHeader header = RecordHeader::decode(headerBytes);
  file_->seekShared(*node_, recordStart + headerBytes.size() +
                                header.sizeTableBytes() + header.dataBytes +
                                header.trailerBytes());
  // Skipping discards any partially extracted record (Figure 2 allows
  // read -> read, and skip is a cheaper read).
  record_.reset();
  state_ = State::Ready;
  restartPrefetch();
  return header;
}

void IStream::readNext(bool sorted) {
  if (state_ == State::Closed) {
    throw StateError("read on a closed d/stream");
  }
  PCXX_OBS_PHASE(node_->obs(), "ds.read", DsReadSeconds);
  for (;;) {
    if (opts_.salvage && atEnd()) {
      // Salvage consumed the rest of the file (or it was already
      // exhausted): no record to extract, but no exception either.
      record_.reset();
      state_ = State::Ready;
      return;
    }
    const bool got = readRecordOnce(sorted);
    // A prefetch miss (or a salvage skip) parks the read-ahead chain;
    // re-aim it at the new shared cursor before the next record.
    if (prefetcher_ != nullptr && !prefetchLive_) restartPrefetch();
    if (got) return;
    // A damaged record was skipped; the cursor sits past the damage.
  }
}

bool IStream::skipDamage(std::uint64_t from, std::uint64_t to,
                         std::string reason) {
  salvage_.recordsLost += 1;
  salvage_.damage.push_back(DamagedRange{from, to - from, std::move(reason)});
  file_->seekShared(*node_, to);
  record_.reset();
  state_ = State::Ready;
  return false;
}

bool IStream::readRecordOnce(bool sorted) {
  // ---- read-ahead fast path ------------------------------------------------
  if (prefetcher_ != nullptr) {
    const int got = tryPrefetched(sorted);
    if (got >= 0) return got != 0;
    // Miss: fall through to the synchronous path, which owns all error and
    // salvage semantics.
  }

  // ---- record header (node 0 reads, then broadcast) -----------------------
  const std::uint64_t recordStart = file_->sharedOffset();

  // Record-scoped correlation id: opens a "ds.record" flow chain that the
  // ordered data read and the redistribution exchange extend, so Perfetto
  // links each record to the work that reconstructed it.
  std::uint64_t rid = 0;
#if PCXX_OBS_ENABLED
  obs::NodeObs* fobs = node_->obs();
  if (fobs != nullptr && fobs->trace != nullptr) {
    rid = node_->machine().nextFlowId();
    fobs->trace->flowStart(node_->id(), "ds.record", fobs->now(), rid);
  }
#endif

  ByteBuffer headerBytes;
  if (node_->id() == 0) {
    // Indexed fast path: the footer already knows this record's header
    // length, so one read replaces the prefix-then-header pair. Any
    // disagreement with the bytes falls back to the probing path.
    bool direct = false;
    if (indexValid_) {
      if (const dsindex::IndexEntry* entry = indexEntryAt(recordStart)) {
        headerBytes.resize(entry->headerBytes);
        if (file_->readAt(*node_, recordStart, headerBytes) ==
            entry->headerBytes) {
          try {
            direct =
                headerBytes.size() >= 8 &&
                RecordHeader::encodedLength(
                    std::span<const Byte>(headerBytes.data(), 8)) ==
                    entry->headerBytes;
          } catch (const FormatError&) {
            direct = false;
          }
        }
        if (!direct) headerBytes.clear();
      }
    }
    if (!direct) {
      Byte prefix[8];
      const std::uint64_t got = file_->readAt(*node_, recordStart, prefix);
      if (got == 8) {
        try {
          const std::uint64_t len = RecordHeader::encodedLength(prefix);
          headerBytes.resize(len);
          const std::uint64_t gotAll =
              file_->readAt(*node_, recordStart, headerBytes);
          if (gotAll != len) headerBytes.clear();
        } catch (const FormatError&) {
          headerBytes.clear();
        }
      }
    }
  }
  node_->broadcastBytes(0, headerBytes);
  if (headerBytes.empty()) {
    if (opts_.salvage) {
      // The framing itself is gone; nothing behind this point can be
      // located without it, so the rest of the record chain is the damage.
      return skipDamage(recordStart, chainEnd(),
                        "truncated or invalid record header (torn tail)");
    }
    throw FormatError("truncated or invalid record header at offset " +
                      std::to_string(recordStart) +
                      " (no further record in file?)");
  }
  std::optional<RecordHeader> decoded;
  try {
    decoded = RecordHeader::decode(headerBytes);
  } catch (const FormatError&) {
    // decode() throws identically on every node (the bytes were broadcast).
    if (opts_.salvage) {
      return skipDamage(recordStart, chainEnd(),
                        "record header checksum mismatch (torn tail)");
    }
    throw;
  }
  RecordHeader header = std::move(*decoded);
  PCXX_OBS_COUNT(node_->obs(), DsHeaderDecodes, 1);

  // Salvage pre-check: make sure the whole record extent fits the file
  // BEFORE entering the collective reads, so every node makes the same
  // skip-vs-read decision and no collective sees a short read.
  const std::uint64_t recordEnd = recordStart + headerBytes.size() +
                                  header.sizeTableBytes() + header.dataBytes +
                                  header.trailerBytes();
  if (opts_.salvage && recordEnd > chainEnd()) {
    return skipDamage(recordStart, chainEnd(),
                      "record extends past end of file (torn tail)");
  }

  if (header.elementCount() != layout_.size()) {
    throw UsageError(
        "record was written from a collection of " +
        std::to_string(header.elementCount()) +
        " elements but the reading d/stream has " +
        std::to_string(layout_.size()) +
        "; extracted arrays must have the size of the inserted arrays");
  }

  // ---- size table ----------------------------------------------------------
  // Readers partition the file-order element sequence by their own local
  // counts: node r takes file positions [sum(count_<r), +count_r). This is
  // the conforming phase-1 read; when the layouts match it already is the
  // final placement.
  file_->seekShared(*node_, recordStart + headerBytes.size());
  ByteBuffer sizeChunk(static_cast<size_t>(localCount_) * 8);
  file_->readOrdered(*node_, sizeChunk);
  std::vector<std::uint64_t> chunkSizes(static_cast<size_t>(localCount_));
  std::uint64_t myChunkBytes = 0;
  for (std::int64_t j = 0; j < localCount_; ++j) {
    chunkSizes[static_cast<size_t>(j)] =
        decodeU64(sizeChunk.data() + 8 * static_cast<size_t>(j));
    myChunkBytes += chunkSizes[static_cast<size_t>(j)];
  }
  if (opts_.salvage) {
    // A corrupted size table would send the data reads to the wrong
    // extents; cross-check its sum against the header before using it.
    // The allreduce keeps the skip decision collectively consistent.
    const std::uint64_t tableSum = node_->allreduceSumU64(myChunkBytes);
    if (tableSum != header.dataBytes) {
      return skipDamage(recordStart, recordEnd,
                        "size table inconsistent with record header");
    }
  }

  // ---- projected data (strided positional reads) ---------------------------
  if (!projection_.empty()) {
    ByteBuffer projChunk;
    if (!readProjectedChunk(header, headerBytes.size(), chunkSizes,
                            myChunkBytes, recordStart, recordEnd,
                            projChunk)) {
      return false;  // salvage skipped the record
    }
    PCXX_OBS_COUNT(node_->obs(), DsIndexProjections, 1);
    return finishRecord(sorted, std::move(header), std::move(projChunk),
                        std::move(chunkSizes), recordStart, recordEnd, rid);
  }

  // ---- data (phase 1: conforming contiguous read) --------------------------
  ByteBuffer chunk(static_cast<size_t>(myChunkBytes));
#if PCXX_OBS_ENABLED
  if (fobs != nullptr && fobs->trace != nullptr) {
    fobs->trace->flowStep(node_->id(), "ds.record", fobs->now(), rid);
  }
#endif
  file_->readOrdered(*node_, chunk);

  // ---- optional data checksum trailer ---------------------------------------
  if (!checkTrailer(header, chunk, myChunkBytes, recordStart, recordEnd)) {
    return false;
  }

  return finishRecord(sorted, std::move(header), std::move(chunk),
                      std::move(chunkSizes), recordStart, recordEnd, rid);
}

bool IStream::checkTrailer(const RecordHeader& header, const ByteBuffer& chunk,
                           std::uint64_t myChunkBytes,
                           std::uint64_t recordStart,
                           std::uint64_t recordEnd) {
  if (!header.hasDataCrc()) return true;
  const auto crcs = node_->allgatherU64(crc32(chunk));
  const auto lens = node_->allgatherU64(myChunkBytes);
  std::uint32_t dataCrc = 0;
  for (int i = 0; i < node_->nprocs(); ++i) {
    dataCrc = crc32Combine(dataCrc,
                           static_cast<std::uint32_t>(
                               crcs[static_cast<size_t>(i)]),
                           lens[static_cast<size_t>(i)]);
  }
  const std::uint64_t trailerAt = file_->sharedOffset();
  ByteBuffer trailer(4);
  if (node_->id() == 0) {
    if (file_->readAt(*node_, trailerAt, trailer) != 4) trailer.clear();
  }
  node_->broadcastBytes(0, trailer);
  if (trailer.size() != 4) {
    if (opts_.salvage) {
      return skipDamage(recordStart, chainEnd(),
                        "data checksum trailer missing (torn tail)");
    }
    throw FormatError("record data checksum trailer missing (truncated?)");
  }
  if (decodeU32(trailer.data()) != dataCrc) {
    if (opts_.salvage) {
      return skipDamage(recordStart, recordEnd, "data checksum mismatch");
    }
    throw FormatError(
        "record data checksum mismatch: the element data was corrupted");
  }
  file_->seekShared(*node_, trailerAt + 4);
  return true;
}

IStream::ProjectionMap IStream::projectionFor(
    const RecordHeader& header) const {
  ProjectionMap map;
  const auto& inserts = header.inserts;
  if (projection_.back() >= inserts.size()) {
    throw UsageError("projection names insert " +
                     std::to_string(projection_.back()) +
                     " but the record has only " +
                     std::to_string(inserts.size()) + " insert(s)");
  }
  // Within an element the inserts' fixed-size values are stored
  // contiguously in insertion order, so a projected field's offset is the
  // sum of the fixed sizes before it — which requires every insert up to
  // the last projected one to BE fixed-size (trailing variable-size
  // inserts are simply never visited).
  std::uint64_t off = 0;
  size_t next = 0;
  for (std::uint32_t i = 0;
       i < inserts.size() && next < projection_.size(); ++i) {
    const InsertDesc& desc = inserts[i];
    if (desc.fixedPerElement == 0) {
      throw UsageError(
          "field projection requires fixed-size fields: insert " +
          std::to_string(i) +
          " has a variable per-element size, so later field offsets are "
          "not stride-computable");
    }
    if (projection_[next] == i) {
      map.offsets.push_back(off);
      map.lengths.push_back(desc.fixedPerElement);
      map.descs.push_back(desc);
      map.bytesPerElement += desc.fixedPerElement;
      ++next;
    }
    off += desc.fixedPerElement;
  }
  map.coverStart = map.offsets.front();
  map.coverEnd = map.offsets.back() + map.lengths.back();
  return map;
}

bool IStream::readProjectedChunk(RecordHeader& header,
                                 std::uint64_t headerLen,
                                 std::vector<std::uint64_t>& chunkSizes,
                                 std::uint64_t myChunkBytes,
                                 std::uint64_t recordStart,
                                 std::uint64_t recordEnd, ByteBuffer& out) {
  // Throws UsageError identically on every node — the header bytes were
  // broadcast — so no vote is needed for shape violations.
  const ProjectionMap map = projectionFor(header);

  // Element j of my chunk starts at dataAt + (bytes of preceding nodes'
  // chunks) + (bytes of my preceding elements). The ordered size-table
  // read only gave each node its own slice, so exchange the chunk totals.
  const auto lens = node_->allgatherU64(myChunkBytes);
  std::uint64_t before = 0;
  for (int r = 0; r < node_->id(); ++r) {
    before += lens[static_cast<size_t>(r)];
  }

  // Every element must carry the fixed prefix the projection reads from; a
  // size table that says otherwise is node-local damage, so vote to keep
  // the skip/throw decision collectively consistent.
  std::uint64_t bad = 0;
  for (const std::uint64_t sz : chunkSizes) {
    if (sz < map.coverEnd) bad = 1;
  }
  if (node_->allreduceSumU64(bad) != 0) {
    if (opts_.salvage) {
      return skipDamage(recordStart, recordEnd,
                        "element smaller than the projected field region");
    }
    throw FormatError(
        "element smaller than the projected field region (size table "
        "inconsistent with the record's insert shapes)");
  }

  const std::uint64_t dataAt =
      recordStart + headerLen + header.sizeTableBytes();
  const std::uint64_t coverLen = map.coverEnd - map.coverStart;

  // Absolute covering span per local element, coalescing neighbours when
  // the skipped gap costs no more than the span it saves re-seeking for.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  spans.reserve(chunkSizes.size());
  std::uint64_t elemAbs = dataAt + before;
  for (const std::uint64_t sz : chunkSizes) {
    spans.emplace_back(elemAbs + map.coverStart, elemAbs + map.coverEnd);
    elemAbs += sz;
  }
  out.clear();
  out.reserve(chunkSizes.size() *
              static_cast<size_t>(map.bytesPerElement));
  ByteBuffer scratch;
  size_t j = 0;
  while (j < spans.size()) {
    size_t k = j + 1;
    std::uint64_t runEnd = spans[j].second;
    while (k < spans.size() && spans[k].first - runEnd <= coverLen) {
      runEnd = spans[k].second;
      ++k;
    }
    const std::uint64_t runStart = spans[j].first;
    scratch.resize(static_cast<size_t>(runEnd - runStart));
    if (file_->readAt(*node_, runStart, scratch) != scratch.size()) {
      throw IoError("projected read ran past end of file at offset " +
                    std::to_string(runStart));
    }
    for (size_t e = j; e < k; ++e) {
      // spans[e].first already includes coverStart, so fold it into the
      // field offset (offsets[f] >= coverStart): every intermediate
      // pointer stays inside scratch.
      const Byte* elem = scratch.data() + (spans[e].first - runStart);
      for (size_t f = 0; f < map.offsets.size(); ++f) {
        const Byte* src = elem + (map.offsets[f] - map.coverStart);
        out.insert(out.end(), src, src + map.lengths[f]);
      }
    }
    j = k;
  }

  // The record is consumed: advance the shared cursor past data + trailer
  // in one collective move (the data CRC cannot be verified — the full
  // section was never fetched).
  file_->seekShared(*node_, recordEnd);

  // Rewrite the record to its projected shape: extraction sees exactly the
  // projected fields, each element now a fixed bytesPerElement slice.
  header.inserts = map.descs;
  chunkSizes.assign(chunkSizes.size(), map.bytesPerElement);
  return true;
}

bool IStream::applyProjectionInMemory(RecordHeader& header, ByteBuffer& chunk,
                                      std::vector<std::uint64_t>& chunkSizes,
                                      std::uint64_t recordStart,
                                      std::uint64_t recordEnd) {
  const ProjectionMap map = projectionFor(header);
  std::uint64_t bad = 0;
  for (const std::uint64_t sz : chunkSizes) {
    if (sz < map.coverEnd) bad = 1;
  }
  if (node_->allreduceSumU64(bad) != 0) {
    if (opts_.salvage) {
      return skipDamage(recordStart, recordEnd,
                        "element smaller than the projected field region");
    }
    throw FormatError(
        "element smaller than the projected field region (size table "
        "inconsistent with the record's insert shapes)");
  }
  ByteBuffer proj;
  proj.reserve(chunkSizes.size() * static_cast<size_t>(map.bytesPerElement));
  std::uint64_t pos = 0;
  for (const std::uint64_t sz : chunkSizes) {
    for (size_t f = 0; f < map.offsets.size(); ++f) {
      const Byte* src = chunk.data() + pos + map.offsets[f];
      proj.insert(proj.end(), src, src + map.lengths[f]);
    }
    pos += sz;
  }
  chunk = std::move(proj);
  header.inserts = map.descs;
  chunkSizes.assign(chunkSizes.size(), map.bytesPerElement);
  return true;
}

bool IStream::finishRecord(bool sorted, RecordHeader header, ByteBuffer chunk,
                           std::vector<std::uint64_t> chunkSizes,
                           std::uint64_t recordStart, std::uint64_t recordEnd,
                           std::uint64_t flowId) {
  const bool sameLayout = header.layout == layout_;
  if (!sorted || sameLayout) {
    // unsortedRead, or a sorted read where nothing moved: phase-1 data is
    // final. (When layouts match, file order restricted to this node IS the
    // node's local order, so read() and unsortedRead() coincide — the paper's
    // "communication can be avoided" case.)
    buffer_ = std::move(chunk);
    elemSizes_ = std::move(chunkSizes);
    elemOffsets_.assign(elemSizes_.size(), 0);
    std::uint64_t off = 0;
    for (size_t j = 0; j < elemSizes_.size(); ++j) {
      elemOffsets_[j] = off;
      off += elemSizes_[j];
    }
  } else if (opts_.redistUsePlan) {
    // ---- phase 2: plan-based redistribution (paper §4.1) -------------------
    PCXX_OBS_PHASE(node_->obs(), "ds.redist", DsRedistSeconds);
    try {
      // Stream-level memo over the process-wide cache: the records of one
      // file usually share a writer layout, so repeat reads skip even the
      // cache-key encoding.
      if (plan_ != nullptr && planWriter_.has_value() &&
          *planWriter_ == header.layout) {
        PCXX_OBS_COUNT(node_->obs(), RedistPlanHits, 1);
      } else {
        plan_ = redist::planFor(header.layout, layout_, *node_);
        planWriter_ = header.layout;
      }
      redist::execute(*node_, *plan_, chunk, chunkSizes,
                      opts_.redistChunkBytes, buffer_, elemOffsets_,
                      elemSizes_, redistScratch_, flowId);
    } catch (const FormatError& e) {
      // Plan building is pure arithmetic over the broadcast header bytes,
      // so a FormatError (duplicate / out-of-range global index from a
      // corrupt header) is raised identically on every node BEFORE any
      // collective — the skip below is collectively consistent without a
      // vote.
      if (opts_.salvage) return skipDamage(recordStart, recordEnd, e.what());
      throw;
    }
  } else {
    PCXX_OBS_PHASE(node_->obs(), "ds.redist", DsRedistSeconds);
    if (!redistributeLegacy(header, chunk, chunkSizes, recordStart,
                            recordEnd, flowId)) {
      return false;
    }
  }

  fs_->model().chargeBookkeeping(*node_,
                                 static_cast<std::uint64_t>(localCount_));

  record_ = std::move(header);
  extractCursors_.assign(static_cast<size_t>(localCount_), 0);
  nextExtract_ = 0;
  state_ = State::Extracting;
  // A record only counts as *recovered* when salvage mode is actually
  // scanning past damage; clean reads must report a clean SalvageReport.
  if (opts_.salvage) salvage_.recordsRecovered += 1;
  if (sorted) {
    PCXX_OBS_COUNT(node_->obs(), DsReads, 1);
  } else {
    PCXX_OBS_COUNT(node_->obs(), DsUnsortedReads, 1);
  }
#if PCXX_OBS_ENABLED
  // Terminate the record's flow chain: the record is fully assembled in
  // local order. "bp":"e" binds the arrow into the enclosing ds.read span.
  if (obs::NodeObs* o = node_->obs();
      flowId != 0 && o != nullptr && o->trace != nullptr) {
    o->trace->flowEnd(node_->id(), "ds.record", o->now(), flowId);
  }
#endif
  return true;
}

bool IStream::redistributeLegacy(const RecordHeader& header,
                                 const ByteBuffer& chunk,
                                 const std::vector<std::uint64_t>& chunkSizes,
                                 std::uint64_t recordStart,
                                 std::uint64_t recordEnd,
                                 std::uint64_t flowId) {
#if !PCXX_OBS_ENABLED
  (void)flowId;
#endif
  // ---- phase 2, seed path: sort + send to owner nodes (paper §4.1) --------
  // Format problems found here are NODE-LOCAL (each node sees only its own
  // chunk and its own arriving elements), so nothing may throw before the
  // collectives: errors are captured in `error` and, in salvage mode,
  // resolved by a vote after the exchange so every node skips together.
  std::string error;
  // Global indices of elements in file order, from the WRITER's layout.
  std::vector<std::int64_t> fileOrderGlobals;
  fileOrderGlobals.reserve(static_cast<size_t>(header.elementCount()));
  for (int proc = 0; proc < header.layout.nprocs(); ++proc) {
    const auto locals = header.layout.localElements(proc);
    fileOrderGlobals.insert(fileOrderGlobals.end(), locals.begin(),
                            locals.end());
  }
  // My chunk covers file positions [chunkStart, chunkStart + localCount_).
  std::int64_t chunkStart = 0;
  for (int r = 0; r < node_->id(); ++r) {
    chunkStart += layout_.localCount(r);
  }
  // Route each element of my chunk to its reading owner.
  std::vector<ByteBuffer> sendTo(static_cast<size_t>(node_->nprocs()));
  std::uint64_t off = 0;
  for (std::int64_t k = 0; k < localCount_; ++k) {
    const std::int64_t g =
        fileOrderGlobals[static_cast<size_t>(chunkStart + k)];
    const std::uint64_t bytes = chunkSizes[static_cast<size_t>(k)];
    off += bytes;
    if (g < 0 || g >= layout_.size()) {
      if (error.empty()) {
        error = "record header routes global index " + std::to_string(g) +
                " outside the collection during redistribution";
      }
      continue;
    }
    const int owner = layout_.ownerOf(g);
    ByteBuffer& out = sendTo[static_cast<size_t>(owner)];
    ByteWriter w(out);
    w.i64(g);
    w.u64(bytes);
    w.bytes({chunk.data() + (off - bytes), static_cast<size_t>(bytes)});
    if (owner != node_->id()) {
      PCXX_OBS_COUNT(node_->obs(), RedistElementsMoved, 1);
    }
  }
  for (int peer = 0; peer < node_->nprocs(); ++peer) {
    const auto& buf = sendTo[static_cast<size_t>(peer)];
    if (peer == node_->id() || buf.empty()) continue;
    PCXX_OBS_COUNT(node_->obs(), RedistBytesSent, buf.size());
    PCXX_OBS_COUNT(node_->obs(), RedistMessagesSent, 1);
    PCXX_OBS_PEER_BYTES(node_->obs(), peer, buf.size());
  }
  [[maybe_unused]] const double waitedBefore = node_->clock().waitedSeconds();
#if PCXX_OBS_ENABLED
  if (obs::NodeObs* o = node_->obs();
      flowId != 0 && o != nullptr && o->trace != nullptr) {
    o->trace->flowStep(node_->id(), "ds.record", o->now(), flowId);
  }
#endif
  const auto received = node_->alltoallv(sendTo);
  PCXX_OBS_SECONDS(node_->obs(), RedistWaitSeconds,
                   node_->clock().waitedSeconds() - waitedBefore);

  // Collect my owned elements, then order them by ascending global index
  // (= local order).
  std::map<std::int64_t, std::pair<const Byte*, std::uint64_t>> byGlobal;
  for (const ByteBuffer& buf : received) {
    ByteReader r(buf);
    while (r.remaining() > 0) {
      const std::int64_t g = r.i64();
      const std::uint64_t bytes = r.u64();
      const auto span = r.bytes(static_cast<size_t>(bytes));
      const auto [it, inserted] =
          byGlobal.emplace(g, std::make_pair(span.data(), bytes));
      if (!inserted && error.empty()) {
        // A corrupt header listed the same global index under two writer
        // positions; the map would silently keep one copy and a later
        // "missing element" error would point at the wrong index.
        error = "duplicate delivery for global index " + std::to_string(g) +
                " during redistribution — the record header's element "
                "mapping is corrupt";
      }
    }
  }
  const auto myGlobals = layout_.localElements(node_->id());
  if (error.empty() &&
      static_cast<std::int64_t>(byGlobal.size()) != localCount_) {
    error =
        "redistribution did not deliver exactly the local element set "
        "(file layout inconsistent with its header)";
  }
  if (error.empty()) {
    buffer_.clear();
    elemOffsets_.assign(myGlobals.size(), 0);
    elemSizes_.assign(myGlobals.size(), 0);
    std::uint64_t pos = 0;
    for (size_t j = 0; j < myGlobals.size(); ++j) {
      const auto it = byGlobal.find(myGlobals[j]);
      if (it == byGlobal.end()) {
        error = "redistribution missing element " +
                std::to_string(myGlobals[j]);
        break;
      }
      elemOffsets_[j] = pos;
      elemSizes_[j] = it->second.second;
      buffer_.insert(buffer_.end(), it->second.first,
                     it->second.first + it->second.second);
      pos += it->second.second;
    }
  }
  if (opts_.salvage) {
    // One node's corrupt chunk is invisible to the others; vote so the
    // whole machine skips the record together.
    const std::uint64_t bad =
        node_->allreduceSumU64(error.empty() ? 0 : 1);
    if (bad != 0) {
      return skipDamage(recordStart, recordEnd,
                        error.empty()
                            ? "a peer node detected inconsistent "
                              "redistribution routing"
                            : error);
    }
  } else if (!error.empty()) {
    throw FormatError(error);
  }
  return true;
}

void IStream::setupPrefetch() {
#if PCXX_AIO_ENABLED
  if (opts_.aioPrefetchDepth <= 0) return;
  // The plan runs on the prefetch thread: thread-safe pfs entry points and
  // pure decoding only, never a Node. Everything it needs is captured by
  // value. Anything the synchronous path would reject or salvage makes the
  // plan return false — a miss — so the node thread keeps ownership of all
  // error and salvage semantics.
  pfs::ParallelFilePtr file = file_;
  const int nodeId = node_->id();
  const std::int64_t localCount = localCount_;
  std::int64_t chunkStartElems = 0;
  for (int r = 0; r < nodeId; ++r) chunkStartElems += layout_.localCount(r);
  const std::int64_t layoutSize = layout_.size();
  auto plan = [file, nodeId, localCount, chunkStartElems, layoutSize](
                  std::uint64_t offset, aio::PrefetchedRecord& out,
                  pfs::BgIoStats& stats) -> bool {
    Byte prefix[8];
    if (file->readAtBackground(nodeId, offset, prefix, stats) != 8) {
      return false;
    }
    std::uint64_t hdrLen = 0;
    try {
      hdrLen = RecordHeader::encodedLength(prefix);
    } catch (const FormatError&) {
      return false;
    }
    out.headerBytes.resize(static_cast<size_t>(hdrLen));
    if (file->readAtBackground(nodeId, offset, out.headerBytes, stats) !=
        hdrLen) {
      return false;
    }
    std::optional<RecordHeader> hdr;
    try {
      hdr = RecordHeader::decode(out.headerBytes);
    } catch (const FormatError&) {
      return false;
    }
    if (hdr->elementCount() != layoutSize) return false;
    const std::uint64_t tableAt = offset + hdrLen;
    const std::uint64_t tableBytes = hdr->sizeTableBytes();
    const std::uint64_t recordEnd =
        tableAt + tableBytes + hdr->dataBytes + hdr->trailerBytes();
    if (recordEnd > file->size()) return false;
    // A node cannot locate its phase-1 block without every preceding
    // node's chunk size, so the plan fetches the whole size table (there
    // are no collectives off the node thread).
    ByteBuffer table(static_cast<size_t>(tableBytes));
    if (file->readAtBackground(nodeId, tableAt, table, stats) != tableBytes) {
      return false;
    }
    std::uint64_t before = 0;
    std::uint64_t mine = 0;
    std::uint64_t all = 0;
    const std::int64_t total = hdr->elementCount();
    for (std::int64_t j = 0; j < total; ++j) {
      const std::uint64_t sz =
          decodeU64(table.data() + 8 * static_cast<size_t>(j));
      if (j < chunkStartElems) {
        before += sz;
      } else if (j < chunkStartElems + localCount) {
        mine += sz;
      }
      all += sz;
    }
    if (all != hdr->dataBytes) return false;  // damaged size table
    out.dataChunk.resize(static_cast<size_t>(mine));
    if (mine > 0 &&
        file->readAtBackground(nodeId, tableAt + tableBytes + before,
                               out.dataChunk, stats) != mine) {
      return false;
    }
    const auto sliceFrom =
        table.begin() + static_cast<std::ptrdiff_t>(8 * chunkStartElems);
    out.sizeChunk.assign(
        sliceFrom, sliceFrom + static_cast<std::ptrdiff_t>(8 * localCount));
    out.start = offset;
    out.next = recordEnd;
    out.bytesRead = 8 + hdrLen + tableBytes + mine;
    out.readOps = mine > 0 ? 4 : 3;
    return true;
  };
  aio::Prefetcher::Options po;
  po.depth = opts_.aioPrefetchDepth;
  po.waitDeadlineSeconds = opts_.aioDrainDeadlineSeconds;
  prefetcher_ =
      std::make_unique<aio::Prefetcher>(node_->machine(), std::move(plan), po);
  restartPrefetch();
#endif
}

void IStream::restartPrefetch() {
  if (prefetcher_ == nullptr) return;
  prefetcher_->start(file_->sharedOffset());
  prefetchLive_ = true;
  prefetchEpoch_ = node_->clock().now();
  prefetchPrevReady_ = prefetchEpoch_;
  prefetchConsumedAt_.clear();
}

int IStream::tryPrefetched(bool sorted) {
  const std::uint64_t recordStart = file_->sharedOffset();
  std::optional<aio::PrefetchedRecord> rec;
  if (prefetchLive_) rec = prefetcher_->consume(recordStart);
  // Background accounting accrues whether or not the record is usable.
  const pfs::BgIoStats bg = prefetcher_->takeStatsDelta();
  PCXX_OBS_COUNT(node_->obs(), PfsRetries, bg.retries);
  PCXX_OBS_COUNT(node_->obs(), PfsGiveUps, bg.giveUps);
  PCXX_OBS_SECONDS(node_->obs(), PfsBackoffSeconds, bg.backoffSeconds);
  PCXX_OBS_COUNT(node_->obs(), AioBgReadBytes, bg.bytesRead);
  PCXX_OBS_COUNT(node_->obs(), PfsCodecRawBytes, bg.codecRawBytes);
  PCXX_OBS_COUNT(node_->obs(), PfsCodecStoredBytes, bg.codecStoredBytes);
  PCXX_OBS_COUNT(node_->obs(), PfsCodecDedupHits, bg.codecDedupHits);
  PCXX_OBS_COUNT(node_->obs(), PfsCodecDamagedChunks, bg.codecDamagedChunks);
  PCXX_OBS_SECONDS(node_->obs(), PfsCodecSeconds, bg.codecSeconds);
#if !PCXX_OBS_ENABLED
  (void)bg;
#endif

  // The collective reads below must be entered by every node together, so
  // the fast path is all-or-nothing: one miss anywhere makes this record
  // synchronous everywhere.
  const std::uint64_t myHit = rec.has_value() ? 1 : 0;
  if (node_->allreduceSumU64(myHit) !=
      static_cast<std::uint64_t>(node_->nprocs())) {
    prefetchLive_ = false;  // readRecord re-aims the chain after the record
    PCXX_OBS_COUNT(node_->obs(), AioPrefetchMisses, 1);
    return -1;
  }

  aio::PrefetchedRecord r = std::move(*rec);
  // Modeled fetch timeline, maintained on the node thread so the simulated
  // overlap is independent of real scheduling: fetch k starts once fetch
  // k-1 finished AND its slot was free (record k-depth consumed); the
  // reader stalls only until this fetch's modeled completion.
  rt::VirtualClock& clock = node_->clock();
  const double fetchSeconds = fs_->model().backgroundOpSeconds(
      node_->nprocs(), r.readOps, r.bytesRead, file_->size(),
      /*isWrite=*/false);
  const size_t idx = prefetchConsumedAt_.size();
  const size_t depth = static_cast<size_t>(opts_.aioPrefetchDepth);
  const double gate =
      idx < depth ? prefetchEpoch_ : prefetchConsumedAt_[idx - depth];
  const double fetchStart = std::max(prefetchPrevReady_, gate);
  const double ready = fetchStart + fetchSeconds;
  prefetchPrevReady_ = ready;
  if (ready > clock.now()) {
    PCXX_OBS_SECONDS(node_->obs(), AioStallSeconds, ready - clock.now());
    // stallTo: prefetch catch-up is a local pipeline stall, already charged
    // to aio.stall_seconds — keep it out of the sync-wait bucket.
    clock.stallTo(ready);
  }
  prefetchConsumedAt_.push_back(clock.now());
  std::uint64_t rid = 0;
#if PCXX_OBS_ENABLED
  {
    obs::NodeObs* o = node_->obs();
    if (o != nullptr && o->trace != nullptr && !o->wallTime) {
      // The record's flow chain starts inside the modeled prefetch span:
      // the background fetch is where the bytes came from, and the step on
      // the node track marks where they were consumed.
      rid = node_->machine().nextFlowId();
      const int track = o->trace->prefetchTrack(o->nodeId);
      o->trace->begin(track, "aio.prefetch", fetchStart);
      o->trace->flowStart(track, "ds.record", fetchStart, rid);
      o->trace->end(track, "aio.prefetch", ready);
      o->trace->flowStep(o->nodeId, "ds.record", o->now(), rid);
    }
  }
#endif
  PCXX_OBS_COUNT(node_->obs(), AioPrefetchHits, 1);

  // The plan decoded these exact bytes, so this cannot throw; every node
  // holds an identical copy (no broadcast needed).
  RecordHeader header = RecordHeader::decode(r.headerBytes);
  PCXX_OBS_COUNT(node_->obs(), DsHeaderDecodes, 1);

  std::vector<std::uint64_t> chunkSizes(static_cast<size_t>(localCount_));
  std::uint64_t myChunkBytes = 0;
  for (std::int64_t j = 0; j < localCount_; ++j) {
    chunkSizes[static_cast<size_t>(j)] =
        decodeU64(r.sizeChunk.data() + 8 * static_cast<size_t>(j));
    myChunkBytes += chunkSizes[static_cast<size_t>(j)];
  }
  if (opts_.salvage) {
    // Mirror the synchronous path's collective cross-check (the plan
    // already validated the table against the header, so this passes on
    // every node that voted hit).
    const std::uint64_t tableSum = node_->allreduceSumU64(myChunkBytes);
    if (tableSum != header.dataBytes) {
      skipDamage(recordStart, r.next,
                 "size table inconsistent with record header");
      restartPrefetch();
      return 0;
    }
  }
  // The chunks were fetched positionally; advance the shared cursor past
  // the data section (collective) so the stream sits exactly where the
  // synchronous path would before its trailer check.
  file_->seekShared(*node_, r.next - header.trailerBytes());
  if (!checkTrailer(header, r.dataChunk, myChunkBytes, recordStart, r.next)) {
    restartPrefetch();
    return 0;
  }
  if (!projection_.empty()) {
    // The full chunk is already in memory (and CRC-verified above), so the
    // projection is a stride copy rather than a strided read.
    if (!applyProjectionInMemory(header, r.dataChunk, chunkSizes, recordStart,
                                 r.next)) {
      restartPrefetch();
      return 0;
    }
    PCXX_OBS_COUNT(node_->obs(), DsIndexProjections, 1);
  }
  if (!finishRecord(sorted, std::move(header), std::move(r.dataChunk),
                    std::move(chunkSizes), recordStart, r.next, rid)) {
    // Salvage skipped a record whose header routes a corrupt element set;
    // the shared cursor moved past it.
    restartPrefetch();
    return 0;
  }
  return 1;
}

}  // namespace pcxx::ds
