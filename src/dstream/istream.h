// IStream: the input d/stream (paper §3, §4.1).
//
//   IStream s(&d, &a, "wholeGridFile");
//   s.read();            // or s.unsortedRead();
//   s >> g;              // extract the whole collection
//   s >> g.field(&ParticleList::numberOfParticles);
//
// read() first reads the record header (distribution + size information,
// stored ahead of the data), then the per-element size table, then the
// data — the reader needs no external metadata, and the record can be read
// under a different node count or distribution than it was written with:
// in that case read() performs the two-phase redistribution (a conforming
// contiguous read followed by an all-to-all exchange to the owner nodes;
// the PASSION-style strategy the paper cites). unsortedRead() skips the
// exchange entirely: element data is handed to local elements in arbitrary
// order, for workloads where element indices carry no meaning (paper §3).
// All methods are collective.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "aio/aio.h"
#include "collection/collection.h"
#include "dsindex/dsindex.h"
#include "dstream/element_io.h"
#include "dstream/record.h"
#include "dstream/salvage.h"
#include "dstream/stream_common.h"
#include "dstream/typetag.h"
#include "pfs/parallel_file.h"
#include "redist/redist.h"
#include "runtime/machine.h"

namespace pcxx::ds {

class IStream {
 public:
  /// Open `fileName` on `fs` for reading into collections distributed by
  /// (d, a). Verifies the d/stream file header.
  IStream(pfs::Pfs& fs, const coll::Distribution* d, const coll::Align* a,
          const std::string& fileName, StreamOptions opts = {});

  /// Same, with identity alignment.
  IStream(pfs::Pfs& fs, const coll::Distribution* d,
          const std::string& fileName, StreamOptions opts = {});

  /// Paper-style constructors using the process-default file system.
  IStream(const coll::Distribution* d, const coll::Align* a,
          const std::string& fileName, StreamOptions opts = {});
  IStream(const coll::Distribution* d, const std::string& fileName,
          StreamOptions opts = {});

  /// Attach to an already-open shared file.
  IStream(pfs::Pfs& fs, pfs::ParallelFilePtr file, coll::Layout layout,
          StreamOptions opts = {});

  ~IStream();
  IStream(const IStream&) = delete;
  IStream& operator=(const IStream&) = delete;

  /// Read the next record; extracted arrays preserve element order even if
  /// the node count or distribution changed since the write.
  void read() { readNext(/*sorted=*/true); }

  /// Read the next record without the order guarantee (and without the
  /// interprocessor communication).
  void unsortedRead() { readNext(/*sorted=*/false); }

  /// Position the stream at record `k` (collective). On a file with a valid
  /// index footer this is a single cursor move — no I/O; without one the
  /// chain is replayed with k header-only skips (and `dsindex.fallbacks`
  /// counts the degradation). Throws UsageError when the file has fewer
  /// than k+1 records.
  void seekRecord(std::uint32_t k);

  /// seekRecord(k) followed by a sorted read: random access to one record
  /// in O(1) pfs read ops on an indexed file. Collective.
  void readRecord(std::uint32_t k) {
    seekRecord(k);
    read();
  }

  /// Read an arbitrary subset of records: for each index k (in the given
  /// order) the record is seeked, read, and handed to `extract(k)` for
  /// extraction. Only the selected records' bytes are fetched; each read
  /// reuses the stream's redistribution plans as usual. Collective.
  template <typename Fn>
  void readRecords(std::span<const std::uint32_t> indices, Fn&& extract) {
    for (const std::uint32_t k : indices) {
      readRecord(k);
      extract(k);
    }
  }
  template <typename Fn>
  void readRecords(const std::vector<std::uint32_t>& indices, Fn&& extract) {
    readRecords(std::span<const std::uint32_t>(indices),
                std::forward<Fn>(extract));
  }

  /// Field projection: restrict subsequent reads to the given insert
  /// positions ("fields") of each record, in ascending order. The
  /// interleave format stores an element's fixed-size fields contiguously,
  /// so a projected read fetches only those byte ranges (a strided read)
  /// instead of the whole data section; currentRecord().inserts and the
  /// extract sequence then see exactly the projected fields. Every
  /// projected insert — and every insert before it — must have a fixed
  /// per-element size (trailing variable-size inserts may be skipped);
  /// violations surface as UsageError at the next read. Projected reads
  /// skip data-CRC verification (the full section is never fetched). An
  /// empty list clears the projection. Node-local configuration: call it
  /// identically on every node before the next collective read.
  void project(std::vector<std::uint32_t> fields);

  /// Skip the next record without reading its element data (only the
  /// header is read to learn the extent). Returns the skipped record's
  /// header. Collective.
  RecordHeader skipRecord();

  /// Extract into a whole collection (mirrors the corresponding insert).
  template <typename T>
  IStream& operator>>(coll::Collection<T>& g) {
    checkExtract(g.layout(), typeTag<T>(), InsertKind::Collection);
    const std::int64_t n = g.localCount();
    for (std::int64_t j = 0; j < n; ++j) {
      ElementExtractor ex(elementData(j), elementSize(j), extractCursor(j));
      extractElement(ex, g.local(j));
    }
    ++nextExtract_;
    return *this;
  }

  /// Extract one field of every element.
  template <typename T, typename M>
  IStream& operator>>(coll::FieldRef<T, M> f) {
    coll::Collection<T>& g = f.collection();
    checkExtract(g.layout(), typeTag<M>(), InsertKind::Field);
    const std::int64_t n = g.localCount();
    for (std::int64_t j = 0; j < n; ++j) {
      ElementExtractor ex(elementData(j), elementSize(j), extractCursor(j));
      ex >> f.of(g.local(j));
    }
    ++nextExtract_;
    return *this;
  }

  /// True when the shared cursor has reached the end of the file (no more
  /// records).
  bool atEnd() const;

  /// Reposition at the first record (collective), so the file can be read
  /// again — e.g. a second analysis pass over a frame series.
  void rewind();

  void close();

  const coll::Layout& layout() const { return layout_; }

  /// Header of the record currently being extracted (after read()).
  const RecordHeader& currentRecord() const;

  /// True when a read() actually produced a record to extract. In salvage
  /// mode a read() that reached a torn tail (or end of file) leaves no
  /// record; without salvage this is equivalent to "a read() succeeded and
  /// extraction has not been invalidated".
  bool hasRecord() const { return state_ == State::Extracting; }

  /// What salvage-mode reads recovered and skipped so far (records and
  /// damaged byte ranges). Meaningful once StreamOptions::salvage is set.
  const SalvageReport& salvageReport() const { return salvage_; }

  /// True when read-ahead prefetch is active for this stream.
  bool asyncActive() const { return prefetcher_ != nullptr; }

  /// True when a valid index footer is driving this stream (seeks are O(1)).
  bool indexed() const { return indexValid_; }

  /// Record count per the index footer; nullopt without a valid footer.
  std::optional<std::uint64_t> indexedRecordCount() const {
    if (!indexValid_) return std::nullopt;
    return index_.entries.size();
  }

 private:
  enum class State { Ready, Extracting, Closed };

  /// Within-element geometry of an active projection against one record's
  /// insert list: where each projected field lives inside the fixed-size
  /// prefix every element carries.
  struct ProjectionMap {
    std::vector<std::uint64_t> offsets;   // within-element, per projected field
    std::vector<std::uint32_t> lengths;   // bytes per element, per field
    std::vector<InsertDesc> descs;        // the projected insert descriptors
    std::uint64_t bytesPerElement = 0;    // sum of lengths
    std::uint64_t coverStart = 0;         // first projected byte
    std::uint64_t coverEnd = 0;           // one past the last projected byte
  };

  void openFile(const std::string& fileName);
  /// Probe the file tail for an index footer and adopt it (or record the
  /// fallback). With `viaBroadcast` node 0 probes and broadcasts the result
  /// (the named-open constructors); otherwise every node reads the tiny
  /// footer itself — the attach constructor must stay collective-free.
  void probeIndex(bool viaBroadcast);
  const dsindex::IndexEntry* indexEntryAt(std::uint64_t offset) const;
  void setupPrefetch();
  /// (Re)point the read-ahead chain at the shared cursor.
  void restartPrefetch();
  void readNext(bool sorted);
  ProjectionMap projectionFor(const RecordHeader& header) const;
  /// Synchronous-path projected data fetch: strided positional reads of
  /// only the projected byte ranges, then rewrite of header/chunkSizes to
  /// the projected shape and a collective seek past the record. False =
  /// salvage skipped the record.
  bool readProjectedChunk(RecordHeader& header, std::uint64_t headerLen,
                          std::vector<std::uint64_t>& chunkSizes,
                          std::uint64_t myChunkBytes,
                          std::uint64_t recordStart, std::uint64_t recordEnd,
                          ByteBuffer& out);
  /// Prefetch-path projection: stride-copy the projected fields out of the
  /// already-fetched full chunk (byte-identical to the strided read).
  /// False = salvage skipped the record.
  bool applyProjectionInMemory(RecordHeader& header, ByteBuffer& chunk,
                               std::vector<std::uint64_t>& chunkSizes,
                               std::uint64_t recordStart,
                               std::uint64_t recordEnd);
  /// One record-read attempt. True: a record is ready for extraction.
  /// False (salvage mode only): damage was skipped — the shared cursor has
  /// advanced past it and the caller should retry or stop at end of file.
  bool readRecordOnce(bool sorted);
  /// Consume a prefetched record if every node has it. Returns 1 (record
  /// ready), 0 (salvage skipped damage), or -1 (miss — take the
  /// synchronous path). Collective.
  int tryPrefetched(bool sorted);
  /// Verify the optional CRC trailer and advance past it. True when valid
  /// or absent; false when salvage mode skipped the record.
  bool checkTrailer(const RecordHeader& header, const ByteBuffer& chunk,
                    std::uint64_t myChunkBytes, std::uint64_t recordStart,
                    std::uint64_t recordEnd);
  /// Common tail of a record read: redistribution (or in-place placement),
  /// bookkeeping, and the transition to Extracting. Returns false when
  /// salvage mode skipped the record because its header routes an
  /// inconsistent element set (duplicate or out-of-range global indices).
  /// `flowId` (0 = untraced) extends the record's trace flow chain through
  /// the redistribution exchange.
  bool finishRecord(bool sorted, RecordHeader header, ByteBuffer chunk,
                    std::vector<std::uint64_t> chunkSizes,
                    std::uint64_t recordStart, std::uint64_t recordEnd,
                    std::uint64_t flowId);
  /// Seed-era phase 2 (StreamOptions::redistUsePlan = false): per-record
  /// enumeration of every node's element list and a std::map collection.
  /// Kept for A/B comparison against the plan engine; byte-identical
  /// output. Returns false when salvage mode skipped corrupt routing.
  bool redistributeLegacy(const RecordHeader& header, const ByteBuffer& chunk,
                          const std::vector<std::uint64_t>& chunkSizes,
                          std::uint64_t recordStart, std::uint64_t recordEnd,
                          std::uint64_t flowId);
  /// Record damage [from, to) in the salvage report and advance past it.
  bool skipDamage(std::uint64_t from, std::uint64_t to, std::string reason);
  void checkExtract(const coll::Layout& collectionLayout, std::uint32_t tag,
                    InsertKind kind) const;

  /// One past the last record byte: the footer offset when an intact
  /// trailer pinned it, else the end of the file.
  std::uint64_t chainEnd() const {
    return dataEndFixed_ ? dataEnd_ : file_->size();
  }

  const Byte* elementData(std::int64_t j) const {
    return buffer_.data() + elemOffsets_[static_cast<size_t>(j)];
  }
  std::uint64_t elementSize(std::int64_t j) const {
    return elemSizes_[static_cast<size_t>(j)];
  }
  std::uint64_t& extractCursor(std::int64_t j) {
    return extractCursors_[static_cast<size_t>(j)];
  }

  rt::Node* node_;
  pfs::Pfs* fs_;
  pfs::ParallelFilePtr file_;
  coll::Layout layout_;
  StreamOptions opts_;
  State state_ = State::Ready;
  std::int64_t localCount_;

  std::optional<RecordHeader> record_;
  SalvageReport salvage_;
  ByteBuffer buffer_;                      // this node's element data
  std::vector<std::uint64_t> elemOffsets_; // per local element, into buffer_
  std::vector<std::uint64_t> elemSizes_;
  std::vector<std::uint64_t> extractCursors_;
  size_t nextExtract_ = 0;

  // Redistribution state for sorted reads under a changed layout. The
  // stream memoizes the last plan (records of one file usually share a
  // writer layout) on top of the process-wide redist::PlanCache; the
  // scratch keeps exchange buffers at high-water capacity so steady-state
  // redistribution allocates nothing.
  redist::PlanPtr plan_;
  std::optional<coll::Layout> planWriter_;  ///< writer layout of plan_
  redist::ExchangeScratch redistScratch_;

  // Read-ahead state (null prefetcher_ = synchronous path). The modeled
  // fetch timeline is maintained here on the node thread — fetch k starts
  // when fetch k-1 finished AND slot capacity freed (record k-depth was
  // consumed) — so simulated results are independent of real scheduling.
  std::unique_ptr<aio::Prefetcher> prefetcher_;
  bool prefetchLive_ = false;
  double prefetchEpoch_ = 0.0;      ///< modeled time the chain started
  double prefetchPrevReady_ = 0.0;  ///< modeled end of the previous fetch
  std::vector<double> prefetchConsumedAt_;  ///< consume time per chain slot

  // dsindex footer state. With a verified footer, index_ drives O(1)
  // seeks and dataEnd_ bounds the chain exactly (the footer bytes are
  // never mistaken for a record). An intact trailer alone still fixes
  // dataEnd_ even when the body is damaged.
  dsindex::FileIndex index_;
  bool indexValid_ = false;
  bool dataEndFixed_ = false;
  std::uint64_t dataEnd_ = 0;
  std::vector<std::uint32_t> projection_;  ///< sorted unique insert indices
};

}  // namespace pcxx::ds
