#include "dstream/ostream.h"

#include <cstring>

#include "util/crc32.h"

#include "util/log.h"

namespace pcxx::ds {

OStream::OStream(pfs::Pfs& fs, const coll::Distribution* d,
                 const coll::Align* a, const std::string& fileName,
                 StreamOptions opts)
    : node_(&rt::thisNode()),
      fs_(&fs),
      layout_(*d, *a),
      opts_(opts),
      localCount_(0) {
  openFile(fileName);
}

OStream::OStream(pfs::Pfs& fs, const coll::Distribution* d,
                 const std::string& fileName, StreamOptions opts)
    : node_(&rt::thisNode()), fs_(&fs), layout_(*d), opts_(opts),
      localCount_(0) {
  openFile(fileName);
}

OStream::OStream(const coll::Distribution* d, const coll::Align* a,
                 const std::string& fileName, StreamOptions opts)
    : OStream(defaultPfs(), d, a, fileName, opts) {}

OStream::OStream(const coll::Distribution* d, const std::string& fileName,
                 StreamOptions opts)
    : OStream(defaultPfs(), d, fileName, opts) {}

OStream::OStream(pfs::Pfs& fs, pfs::ParallelFilePtr file, coll::Layout layout,
                 StreamOptions opts)
    : node_(&rt::thisNode()),
      fs_(&fs),
      file_(std::move(file)),
      layout_(std::move(layout)),
      opts_(opts),
      localCount_(layout_.localCount(node_->id())) {
  PCXX_REQUIRE(file_ != nullptr, "OStream requires an open file");
  pending_.resize(static_cast<size_t>(localCount_));
  setupAsync();
}

void OStream::setupAsync() {
#if PCXX_AIO_ENABLED
  if (opts_.aioQueueDepth <= 0) return;
  aio::Writer::Options wo;
  wo.queueDepth = opts_.aioQueueDepth;
  wo.poolBuffers = opts_.aioPoolBuffers;
  wo.drainDeadlineSeconds = opts_.aioDrainDeadlineSeconds;
  writer_ = std::make_unique<aio::Writer>(*node_, file_, wo);
#endif
}

void OStream::openFile(const std::string& fileName) {
  localCount_ = layout_.localCount(node_->id());
  pending_.resize(static_cast<size_t>(localCount_));
  if (opts_.append && fs_->exists(fileName)) {
    file_ = fs_->open(*node_, fileName, pfs::OpenMode::Read);
    // Validate the existing file header, then position at the end.
    ByteBuffer hdr(kFileHeaderBytes);
    if (node_->id() == 0) {
      const std::uint64_t got = file_->readAt(*node_, 0, hdr);
      if (got != kFileHeaderBytes) {
        hdr.clear();
      }
    }
    node_->broadcastBytes(0, hdr);
    verifyFileHeader(hdr);
    // Probe for an existing index footer.
    //  - Valid: adopt its entries and position at the footer so new records
    //    overwrite it (the grown footer is re-appended on close).
    //  - Corrupt, trailer intact: the self-checksummed trailer still pins
    //    the exact chain end, so position there and let new records
    //    overwrite the broken footer body; the old records' entries are
    //    unknown, so the file continues as a plain (footer-less) chain.
    //    Appending AFTER the broken footer instead would bury it mid-chain
    //    and make every new record unreadable.
    //  - Corrupt, trailer untrusted: the footer's extent is unknown, so
    //    any append either buries it mid-chain or overwrites records —
    //    refuse.
    //  - Absent: plain chain, append at end of file.
    // Whenever the old footer region will be overwritten, the stale
    // trailer at the old EOF is zeroed before the first record write (see
    // write()): a surviving trailer would keep pinning readers' chain end
    // at the old footer offset, silently hiding the appended records.
    enum : Byte { kAbsent = 0, kValid = 1, kOverwrite = 2, kRefuse = 3 };
    ByteBuffer ctl(1 + 8 + 8);
    ByteBuffer indexBody;
    if (node_->id() == 0) {
      const std::uint64_t fileBytes = file_->size();
      const dsindex::ProbeResult probe = dsindex::probeFooter(
          [&](std::uint64_t off, std::span<Byte> out) {
            return file_->readAt(*node_, off, out);
          },
          fileBytes, kFileHeaderBytes);
      if (probe.status == dsindex::ProbeStatus::Valid) {
        ctl[0] = kValid;
        indexBody = probe.index.encodeBody();
      } else if (probe.status == dsindex::ProbeStatus::Corrupt) {
        ctl[0] = probe.haveFooterOffset ? kOverwrite : kRefuse;
      } else {
        ctl[0] = kAbsent;
      }
      encodeU64(probe.footerOffset, ctl.data() + 1);
      encodeU64(fileBytes, ctl.data() + 9);
    }
    node_->broadcastBytes(0, ctl);
    node_->broadcastBytes(0, indexBody);
    const Byte probeCode = ctl[0];
    const std::uint64_t footerOffset = decodeU64(ctl.data() + 1);
    const std::uint64_t fileBytes = decodeU64(ctl.data() + 9);
    switch (probeCode) {
      case kValid:
        index_ = dsindex::FileIndex::decodeBody(indexBody);
        footerEnabled_ = true;
        staleTrailerAt_ = fileBytes - dsindex::kTrailerBytes;
        file_->seekShared(*node_, footerOffset);
        break;
      case kOverwrite:
        staleTrailerAt_ = fileBytes - dsindex::kTrailerBytes;
        file_->seekShared(*node_, footerOffset);
        break;
      case kRefuse:
        throw FormatError(
            "append: existing file carries a corrupt index footer of "
            "unknown extent; appending would make the new records "
            "unreadable (run dsdump --repair first)");
      default:
        file_->seekShared(*node_, fileBytes);
        break;
    }
    setupAsync();
    return;
  }
  if (opts_.codec.empty()) {
    file_ = fs_->open(*node_, fileName, pfs::OpenMode::Create);
  } else {
    PCXX_REQUIRE(opts_.codec == "none" || opts_.codec == "lz",
                 "StreamOptions::codec must be \"\", \"none\" or \"lz\"");
    pfs::CodecSpec spec;
    spec.enabled = opts_.codec == "lz";
    spec.codec = pfs::CodecId::Lz;
    if (opts_.codecChunkBytes != 0) spec.chunkBytes = opts_.codecChunkBytes;
    spec.dedupBase = opts_.codecDedupBase;
    file_ = fs_->open(*node_, fileName, pfs::OpenMode::Create, spec);
  }
  footerEnabled_ = opts_.indexFooter;
  if (node_->id() == 0) {
    const ByteBuffer hdr = encodeFileHeader();
    file_->writeAt(*node_, 0, hdr);
  }
  file_->seekShared(*node_, kFileHeaderBytes);
  setupAsync();
}

OStream::~OStream() {
  if (state_ == State::Closed) return;
  const bool pendingInserts = state_ == State::Inserting;
  if (pendingInserts) {
    PCXX_LOG_WARN(
        "OStream('%s') destroyed with inserts that were never written",
        file_ != nullptr ? file_->name().c_str() : "?");
  }
  state_ = State::Closed;
  const bool writeBehindFailed = writer_ != nullptr && writer_->failed();
  if (writeBehindFailed) {
    PCXX_LOG_WARN(
        "OStream('%s') destroyed with an unobserved write-behind failure; "
        "the file keeps its durable prefix (call close() to observe errors)",
        file_ != nullptr ? file_->name().c_str() : "?");
  }
  writer_.reset();  // best-effort flush of queued blocks; never throws
  if (!writeBehindFailed) {
    // appendFooter is collective-free, so it is safe here; a failure only
    // costs the accelerator (readers fall back to chain replay). Pending
    // inserts never touched the file — the cursor is still record-aligned
    // after the last write() — so the footer stays correct even on the
    // warning path above; skipping it would leave an append-mode file
    // whose stale trailer was zeroed with footer remnants mid-chain.
    // Only an unobserved write-behind failure forbids it: the cursor may
    // then sit past the durable bytes and the footer would lie.
    try {
      appendFooter();
    } catch (...) {
    }
  }
  file_.reset();
}

void OStream::close() {
  if (state_ == State::Closed) return;
  if (state_ == State::Inserting) {
    throw StateError(
        "close(): stream has pending inserts; call write() first");
  }
  state_ = State::Closed;
  if (writer_ != nullptr) {
    // Drain before releasing the file: a failed background flush must
    // surface here as its typed error, not vanish with the stream.
    try {
      writer_->drain();
    } catch (...) {
      writer_.reset();
      file_.reset();
      throw;
    }
    writer_.reset();
  }
  appendFooter();
  file_.reset();
}

std::uint32_t OStream::layoutDigest() {
  if (!layoutDigestReady_) {
    ByteBuffer enc;
    ByteWriter w(enc);
    layout_.encode(w);
    layoutDigest_ = crc32(enc);
    layoutDigestReady_ = true;
  }
  return layoutDigest_;
}

void OStream::appendFooter() {
  if (!footerEnabled_ || file_ == nullptr) return;
  footerEnabled_ = false;  // at most one footer per stream
  const std::uint64_t footerAt = file_->sharedOffset();
  if (node_->id() == 0) {
    const ByteBuffer footer = index_.encodeFooter(footerAt);
    file_->writeAt(*node_, footerAt, footer);
    if (opts_.syncOnWrite) file_->syncStorage();
  }
  PCXX_OBS_COUNT(node_->obs(), DsIndexFooterWrites, 1);
}

void OStream::checkInsert(const coll::Layout& collectionLayout) const {
  if (state_ == State::Closed) {
    throw StateError("insert on a closed d/stream");
  }
  // The interleaving constraint (paper §3): all collections inserted
  // before a write must share the stream's size and layout.
  if (collectionLayout != layout_) {
    throw UsageError(
        "inserted collection's distribution/alignment does not match the "
        "d/stream's; interleaved inserts require identical layouts");
  }
}

void OStream::beginInsert(std::uint32_t tag, InsertKind kind,
                          std::uint32_t fixedPerElement) {
  PCXX_OBS_COUNT(node_->obs(), DsInserts, 1);
  descs_.push_back(InsertDesc{tag, kind, fixedPerElement});
  state_ = State::Inserting;
}

std::vector<Entry>& OStream::entriesFor(std::int64_t localIdx) {
  return pending_[static_cast<size_t>(localIdx)];
}

HeaderMode OStream::chooseHeaderMode() const {
  switch (opts_.headerPolicy) {
    case StreamOptions::HeaderPolicy::ForceGathered:
      return HeaderMode::Gathered;
    case StreamOptions::HeaderPolicy::ForceParallel:
      return HeaderMode::Parallel;
    case StreamOptions::HeaderPolicy::Auto:
      break;
  }
  return layout_.size() >= opts_.parallelHeaderThreshold
             ? HeaderMode::Parallel
             : HeaderMode::Gathered;
}

void OStream::write() {
  if (state_ == State::Closed) {
    throw StateError("write on a closed d/stream");
  }
  if (state_ != State::Inserting) {
    throw StateError("write() requires at least one insert (Figure 2)");
  }
  if (writer_ != nullptr) writer_->rethrowPending();
  PCXX_OBS_PHASE(node_->obs(), "ds.write", DsWriteSeconds);

  // First record after an append-mode open that adopted (or is
  // overwriting) an existing footer: zero the old trailer before any
  // record byte lands. If the trailer survived — new bytes shorter than
  // the old footer plus a teardown that never appends a fresh footer —
  // readers would pin the chain end at the old footer offset and silently
  // never see the records written below.
  if (staleTrailerAt_ != 0) {
    if (node_->id() == 0) {
      const ByteBuffer zeros(static_cast<size_t>(dsindex::kTrailerBytes));
      file_->writeAt(*node_, staleTrailerAt_, zeros);
    }
    staleTrailerAt_ = 0;
  }

  // Record-scoped correlation id: opens a "ds.record" flow chain on this
  // node's track that the downstream stages (pfs ordered writes or the aio
  // flusher's modeled flush span) extend/terminate, so Perfetto links the
  // record to the background work that carried its bytes.
  std::uint64_t rid = 0;
#if PCXX_OBS_ENABLED
  obs::NodeObs* fobs = node_->obs();
  if (fobs != nullptr && fobs->trace != nullptr) {
    rid = node_->machine().nextFlowId();
    fobs->trace->flowStart(node_->id(), "ds.record", fobs->now(), rid);
  }
#endif

  // Step 0: traverse the pointer lists — per-element sizes and the packed
  // local data buffer (the "per-node buffer" of Figure 4). In async mode
  // the data is packed straight into a recycled staging buffer, so the
  // steady state allocates nothing.
  std::uint64_t localBytes = 0;
  ByteBuffer sizeTableLocal;
  ByteBuffer data =
      writer_ != nullptr ? writer_->acquireBuffer() : ByteBuffer{};
  {
    PCXX_OBS_PHASE(node_->obs(), "ds.bufferFill", DsBufferFillSeconds);
    sizeTableLocal.reserve(static_cast<size_t>(localCount_) * 8);
    for (const auto& entries : pending_) {
      std::uint64_t elemBytes = 0;
      for (const Entry& e : entries) elemBytes += e.bytes;
      Byte enc[8];
      encodeU64(elemBytes, enc);
      sizeTableLocal.insert(sizeTableLocal.end(), enc, enc + 8);
      localBytes += elemBytes;
    }
    data.reserve(static_cast<size_t>(localBytes));
    for (const auto& entries : pending_) {
      for (const Entry& e : entries) {
        const Byte* p = static_cast<const Byte*>(e.ptr);
        data.insert(data.end(), p, p + e.bytes);
      }
    }
    fs_->model().chargeBookkeeping(*node_, static_cast<std::uint64_t>(
                                               localCount_));
  }
  PCXX_OBS_COUNT(node_->obs(), DsBufferFillBytes, data.size());
  PCXX_OBS_COUNT(node_->obs(), DsSizeTableBytes, sizeTableLocal.size());
  PCXX_OBS_TRACE_COUNTER(node_->obs(), "ds.bufferBytes", data.size());

  // Step 1 (paper §4.1): distribution and size information. All nodes
  // construct the identical record header.
  ByteBuffer headerBytes;
  std::uint32_t dataCrc = 0;
  std::uint64_t totalBytes = 0;
  // The allgather replaces the former allreduce at the same collective
  // cost: its sum is the record's total data bytes, and the per-node
  // vector is exactly the extent table the index footer records.
  std::vector<std::uint64_t> extents;
  {
    PCXX_OBS_PHASE(node_->obs(), "ds.header", DsHeaderSeconds);
    extents = node_->allgatherU64(localBytes);
    for (const std::uint64_t b : extents) totalBytes += b;
  }
  const HeaderMode mode = chooseHeaderMode();
  RecordHeader header{recordSeq_, mode, layout_, descs_, totalBytes};
  if (opts_.checksumData) header.flags |= kRecordFlagDataCrc;
  {
    PCXX_OBS_PHASE(node_->obs(), "ds.header", DsHeaderSeconds);
    headerBytes = header.encode();

    // Each node checksums only its own block; the data-section CRC is the
    // in-order combination.
    if (opts_.checksumData) {
      const auto crcs = node_->allgatherU64(crc32(data));
      const auto lens = node_->allgatherU64(localBytes);
      for (int i = 0; i < node_->nprocs(); ++i) {
        dataCrc = crc32Combine(dataCrc,
                               static_cast<std::uint32_t>(
                                   crcs[static_cast<size_t>(i)]),
                               lens[static_cast<size_t>(i)]);
      }
    }
  }
  PCXX_OBS_COUNT(node_->obs(), DsHeaderEncodes, 1);
  PCXX_OBS_COUNT(node_->obs(), DsHeaderBytes, headerBytes.size());

  // syncOnWrite in async mode rides the last background job of the record
  // (the flusher syncs storage after that block lands) instead of the
  // collective sync(); see docs/ASYNC.md for the durability ordering.
  const bool syncViaFlusher = writer_ != nullptr && opts_.syncOnWrite;

  // The shared cursor sits exactly at the record's first byte in both
  // header modes (reservations advance it synchronously even when the
  // data travels via the write-behind flusher).
  const std::uint64_t recordStart = file_->sharedOffset();

  if (mode == HeaderMode::Parallel) {
    // Node 0 writes the header; the size table and data go out as two
    // parallel node-order writes.
    if (node_->id() == 0) {
      file_->writeAt(*node_, recordStart, headerBytes);
    }
    file_->seekShared(*node_, recordStart + headerBytes.size());
    if (writer_ != nullptr) {
      // Async: the collective reservations advance the shared cursor (and
      // all node-order bookkeeping) exactly like writeOrdered, but the
      // blocks themselves travel via the write-behind flusher.
      const pfs::OrderedReservation tableRes =
          file_->reserveOrdered(*node_, sizeTableLocal.size());
      ByteBuffer tableBuf = writer_->acquireBuffer();
      tableBuf.assign(sizeTableLocal.begin(), sizeTableLocal.end());
      writer_->submit(tableRes.offset, std::move(tableBuf),
                      tableRes.transferSeconds, false, rid);
      const pfs::OrderedReservation dataRes =
          file_->reserveOrdered(*node_, data.size());
      writer_->submit(dataRes.offset, std::move(data),
                      dataRes.transferSeconds, syncViaFlusher, rid);
    } else {
      file_->writeOrdered(*node_, sizeTableLocal);
#if PCXX_OBS_ENABLED
      if (fobs != nullptr && fobs->trace != nullptr) {
        fobs->trace->flowStep(node_->id(), "ds.record", fobs->now(), rid);
      }
#endif
      file_->writeOrdered(*node_, data);
#if PCXX_OBS_ENABLED
      // Synchronous chains terminate here: the record's bytes are on
      // storage. (Async chains terminate on the flusher track instead.)
      if (fobs != nullptr && fobs->trace != nullptr) {
        fobs->trace->flowEnd(node_->id(), "ds.record", fobs->now(), rid);
      }
#endif
    }
  } else {
    // Gathered: the size table is collected to node 0 and written at the
    // head of node 0's block, together with the header and node 0's data —
    // one parallel write total (the paper's small-collection optimization).
    auto gathered = node_->gatherBytes(0, sizeTableLocal);
    ByteBuffer block;
    if (node_->id() == 0) {
      if (writer_ != nullptr) block = writer_->acquireBuffer();
      block.reserve(headerBytes.size() +
                    static_cast<size_t>(header.sizeTableBytes()) +
                    data.size());
      block.insert(block.end(), headerBytes.begin(), headerBytes.end());
      for (const auto& part : gathered) {
        block.insert(block.end(), part.begin(), part.end());
      }
      block.insert(block.end(), data.begin(), data.end());
    }
    ByteBuffer& myBlock = node_->id() == 0 ? block : data;
    if (writer_ != nullptr) {
      const pfs::OrderedReservation res =
          file_->reserveOrdered(*node_, myBlock.size());
      writer_->submit(res.offset, std::move(myBlock), res.transferSeconds,
                      syncViaFlusher, rid);
      if (node_->id() == 0) {
        writer_->releaseBuffer(std::move(data));  // folded into the block
      }
    } else {
#if PCXX_OBS_ENABLED
      if (fobs != nullptr && fobs->trace != nullptr) {
        fobs->trace->flowStep(node_->id(), "ds.record", fobs->now(), rid);
      }
#endif
      file_->writeOrdered(*node_, myBlock);
#if PCXX_OBS_ENABLED
      if (fobs != nullptr && fobs->trace != nullptr) {
        fobs->trace->flowEnd(node_->id(), "ds.record", fobs->now(), rid);
      }
#endif
    }
  }

  if (opts_.checksumData) {
    const std::uint64_t trailerAt = file_->sharedOffset();
    if (node_->id() == 0) {
      Byte enc[4];
      encodeU32(dataCrc, enc);
      file_->writeAt(*node_, trailerAt, enc);
    }
    file_->seekShared(*node_, trailerAt + 4);
  }

  if (opts_.syncOnWrite && writer_ == nullptr) {
    file_->sync(*node_);
  }

  if (footerEnabled_) {
    dsindex::IndexEntry entry;
    entry.offset = recordStart;
    entry.headerBytes = static_cast<std::uint32_t>(headerBytes.size());
    entry.recordFlags = header.flags;
    entry.recordBytes = file_->sharedOffset() - recordStart;
    entry.dataBytes = totalBytes;
    entry.layoutDigest = layoutDigest();
    entry.extents = extents;
    index_.entries.push_back(std::move(entry));
  }

  // Reset per-record state (Figure 2: back to the post-open state).
  for (auto& entries : pending_) entries.clear();
  arena_.clear();
  descs_.clear();
  ++recordSeq_;
  state_ = State::Ready;
  PCXX_OBS_COUNT(node_->obs(), DsWrites, 1);
  PCXX_OBS_TRACE_COUNTER(node_->obs(), "ds.bufferBytes", 0);
}

}  // namespace pcxx::ds
