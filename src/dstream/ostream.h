// OStream: the output d/stream (paper §3, §4.1).
//
// Usage follows the paper's Figure 3 exactly (modulo C++ rendering of the
// pC++ field syntax):
//
//   OStream s(&d, &a, "wholeGridFile");            // open
//   s << g;                                        // insert a collection
//   s << g.field(&ParticleList::numberOfParticles);// insert one field
//   s << g2.field(&Cell::particleDensity);         // interleaved with above
//   s.write();                                     // write one record
//   ...                                            // more insert/write
//   // close happens in the destructor
//
// insert records per-element pointer lists (deferred copy, Figure 4);
// write() packs local entries into a per-node buffer and issues the
// node-order parallel write, preceded by the record header and per-element
// size table — gathered to node 0 for small collections, written in
// parallel for large ones (§4.1 step 1). All methods are collective: every
// node of the machine calls them with matching arguments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aio/aio.h"
#include "collection/collection.h"
#include "dsindex/dsindex.h"
#include "dstream/element_io.h"
#include "dstream/record.h"
#include "dstream/stream_common.h"
#include "dstream/typetag.h"
#include "pfs/parallel_file.h"
#include "runtime/machine.h"

namespace pcxx::ds {

class OStream {
 public:
  /// Open (create/truncate, or append with opts.append) `fileName` on `fs`
  /// for collections distributed by (d, a).
  OStream(pfs::Pfs& fs, const coll::Distribution* d, const coll::Align* a,
          const std::string& fileName, StreamOptions opts = {});

  /// Same, with identity alignment.
  OStream(pfs::Pfs& fs, const coll::Distribution* d,
          const std::string& fileName, StreamOptions opts = {});

  /// Paper-style constructors using the process-default file system
  /// (setDefaultPfs): `OStream s(&d, &a, "wholeGridFile");`
  OStream(const coll::Distribution* d, const coll::Align* a,
          const std::string& fileName, StreamOptions opts = {});
  OStream(const coll::Distribution* d, const std::string& fileName,
          StreamOptions opts = {});

  /// Attach to an already-open shared file (several streams with differing
  /// distributions writing records to one file).
  OStream(pfs::Pfs& fs, pfs::ParallelFilePtr file, coll::Layout layout,
          StreamOptions opts = {});

  ~OStream();
  OStream(const OStream&) = delete;
  OStream& operator=(const OStream&) = delete;

  /// Insert a whole collection: every local element's insertion function
  /// appends to that element's pointer list.
  template <typename T>
  OStream& operator<<(coll::Collection<T>& g) {
    checkInsert(g.layout());
    beginInsert(typeTag<T>(), InsertKind::Collection,
                detail::kStreamableScalar<T> ? sizeof(T) : 0);
    const std::int64_t n = g.localCount();
    for (std::int64_t j = 0; j < n; ++j) {
      ElementInserter ins(entriesFor(j), arena_);
      insertElement(ins, g.local(j));
    }
    return *this;
  }

  /// Insert a single field of every element (the paper's
  /// `s << g.numberOfParticles`).
  template <typename T, typename M>
  OStream& operator<<(coll::FieldRef<T, M> f) {
    coll::Collection<T>& g = f.collection();
    checkInsert(g.layout());
    beginInsert(typeTag<M>(), InsertKind::Field,
                detail::kStreamableScalar<M> ? sizeof(M) : 0);
    const std::int64_t n = g.localCount();
    for (std::int64_t j = 0; j < n; ++j) {
      ElementInserter ins(entriesFor(j), arena_);
      ins << f.of(g.local(j));
    }
    return *this;
  }

  /// Write one record: distribution + size information, then the data, via
  /// the node-order parallel write. Requires at least one insert. With
  /// StreamOptions::aioQueueDepth > 0 the data transfer is handed to this
  /// node's write-behind flusher and write() returns after the collective
  /// reservation; a failed background flush surfaces here (on the next
  /// write) or at close(), never silently.
  void write();

  /// Close the stream (also called by the destructor). Pending inserts that
  /// were never written are an error when closing explicitly. Drains the
  /// write-behind queue first: close() returning normally means every
  /// record is in storage. With StreamOptions::indexFooter the close then
  /// appends the dsindex footer (docs/FORMAT.md, "Index footer") so readers
  /// can seek records in O(1).
  void close();

  /// True when asynchronous write-behind is active for this stream.
  bool asyncActive() const { return writer_ != nullptr; }

  /// Staging buffers ever allocated by the write-behind pool (testing the
  /// steady-state-allocation-zero property); 0 when synchronous.
  int asyncBufferAllocations() const {
    return writer_ != nullptr ? writer_->bufferAllocations() : 0;
  }

  const coll::Layout& layout() const { return layout_; }
  const std::string& fileName() const { return file_->name(); }
  std::uint32_t recordsWritten() const { return recordSeq_; }

  /// Entry lists currently pending for the j-th local element (testing).
  std::int64_t pendingInsertCount() const {
    return static_cast<std::int64_t>(descs_.size());
  }

 private:
  enum class State { Ready, Inserting, Closed };

  void openFile(const std::string& fileName);
  void setupAsync();
  void checkInsert(const coll::Layout& collectionLayout) const;
  void beginInsert(std::uint32_t tag, InsertKind kind,
                   std::uint32_t fixedPerElement);
  std::vector<Entry>& entriesFor(std::int64_t localIdx);
  HeaderMode chooseHeaderMode() const;
  std::uint32_t layoutDigest();
  /// Append the index footer at the shared cursor. Collective-free by
  /// design (the cursor is already identical on every node and only node 0
  /// writes) so the destructor may call it safely.
  void appendFooter();

  rt::Node* node_;
  pfs::Pfs* fs_;
  pfs::ParallelFilePtr file_;
  coll::Layout layout_;
  StreamOptions opts_;
  State state_ = State::Ready;
  std::int64_t localCount_;

  std::vector<InsertDesc> descs_;
  std::vector<std::vector<Entry>> pending_;  // per local element
  detail::Arena arena_;
  std::uint32_t recordSeq_ = 0;
  std::unique_ptr<aio::Writer> writer_;  // null = synchronous path

  // dsindex footer state: entries accumulate per write() and are appended
  // as the footer on close. Disabled for attach-to-shared-file streams
  // (they do not own the file end) and when appending to a file that has
  // no valid footer to extend.
  dsindex::FileIndex index_;
  bool footerEnabled_ = false;
  /// Offset of a stale index trailer left by append-mode open (0 = none).
  /// Zeroed by the first write(): if it outlived the appended records — a
  /// crash, or a teardown path that skips appendFooter() — readers would
  /// keep trusting it and pin the chain end before the new records.
  std::uint64_t staleTrailerAt_ = 0;
  std::uint32_t layoutDigest_ = 0;
  bool layoutDigestReady_ = false;
};

}  // namespace pcxx::ds
