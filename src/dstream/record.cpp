#include "dstream/record.h"

#include <cstring>

#include "util/crc32.h"
#include "util/error.h"

namespace pcxx::ds {
namespace {

constexpr char kFileMagic[8] = {'P', 'C', 'X', 'X', 'D', 'S', 'T', 'R'};

}  // namespace

ByteBuffer RecordHeader::encode() const {
  ByteBuffer out;
  ByteWriter w(out);
  w.u32(kRecordMagic);
  w.u32(0);  // total length, patched below
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u8(flags);
  layout.encode(w);
  w.u32(static_cast<std::uint32_t>(inserts.size()));
  for (const InsertDesc& d : inserts) {
    w.u32(d.typeTag);
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.u32(d.fixedPerElement);
  }
  w.u64(dataBytes);
  const std::uint32_t total = static_cast<std::uint32_t>(out.size() + 4);
  encodeU32(total, out.data() + 4);
  const std::uint32_t crc = crc32({out.data(), out.size()});
  w.u32(crc);
  return out;
}

std::uint64_t RecordHeader::encodedLength(std::span<const Byte> prefix8) {
  if (prefix8.size() < 8) {
    throw FormatError("record header prefix truncated");
  }
  if (decodeU32(prefix8.data()) != kRecordMagic) {
    throw FormatError("bad record magic (not a d/stream record boundary)");
  }
  const std::uint32_t total = decodeU32(prefix8.data() + 4);
  if (total < 8 + 4 || total > 64 * 1024 * 1024) {
    throw FormatError("implausible record header length " +
                      std::to_string(total));
  }
  return total;
}

RecordHeader RecordHeader::decode(std::span<const Byte> data) {
  if (data.size() < 8 + 4) {
    throw FormatError("record header truncated");
  }
  const std::uint32_t expectedCrc = decodeU32(data.data() + data.size() - 4);
  const std::uint32_t actualCrc = crc32(data.subspan(0, data.size() - 4));
  if (expectedCrc != actualCrc) {
    throw FormatError("record header checksum mismatch (file corrupt?)");
  }

  ByteReader r(data);
  if (r.u32() != kRecordMagic) {
    throw FormatError("bad record magic");
  }
  const std::uint32_t total = r.u32();
  if (total != data.size()) {
    throw FormatError("record header length mismatch");
  }
  const std::uint32_t seq = r.u32();
  const std::uint8_t modeRaw = r.u8();
  if (modeRaw > static_cast<std::uint8_t>(HeaderMode::Parallel)) {
    throw FormatError("bad record header mode");
  }
  const std::uint8_t flags = r.u8();
  if ((flags & ~kRecordFlagDataCrc) != 0) {
    throw FormatError("unknown record flags (newer format?)");
  }
  coll::Layout layout = coll::Layout::decode(r);
  const std::uint32_t nInserts = r.u32();
  if (nInserts > 4096) {
    throw FormatError("implausible insert count " + std::to_string(nInserts));
  }
  std::vector<InsertDesc> inserts;
  inserts.reserve(nInserts);
  for (std::uint32_t i = 0; i < nInserts; ++i) {
    InsertDesc d;
    d.typeTag = r.u32();
    const std::uint8_t kindRaw = r.u8();
    if (kindRaw > static_cast<std::uint8_t>(InsertKind::Field)) {
      throw FormatError("bad insert descriptor kind");
    }
    d.kind = static_cast<InsertKind>(kindRaw);
    d.fixedPerElement = r.u32();
    inserts.push_back(d);
  }
  const std::uint64_t dataBytes = r.u64();
  return RecordHeader{seq,
                      static_cast<HeaderMode>(modeRaw),
                      std::move(layout),
                      std::move(inserts),
                      dataBytes,
                      flags};
}

ByteBuffer encodeFileHeader() {
  ByteBuffer out;
  ByteWriter w(out);
  w.bytes({reinterpret_cast<const Byte*>(kFileMagic), 8});
  w.u32(kFormatVersion);
  w.u32(0);  // flags, reserved
  PCXX_CHECK(out.size() == kFileHeaderBytes);
  return out;
}

void verifyFileHeader(std::span<const Byte> data) {
  if (data.size() < kFileHeaderBytes) {
    throw FormatError("file too short for a d/stream file header");
  }
  if (std::memcmp(data.data(), kFileMagic, 8) != 0) {
    throw FormatError("not a d/stream file (bad magic)");
  }
  const std::uint32_t version = decodeU32(data.data() + 8);
  if (version != kFormatVersion) {
    throw FormatError("unsupported d/stream format version " +
                      std::to_string(version));
  }
}

}  // namespace pcxx::ds
