// On-disk format of d/stream files (defined by this reproduction; the
// paper describes the content — distribution and size information ahead of
// the data — but not a byte layout).
//
//   FileHeader   magic "PCXXDSTR", format version, flags      (16 bytes)
//   Record*      one per write():
//     RecordHeader   seq, header mode, writer Layout (distribution +
//                    alignment + element count), insert descriptors,
//                    total data bytes, CRC-32
//     SizeTable      u64 per element, in FILE ORDER (writer node order,
//                    local order within a node)
//     Data           node-0 block, node-1 block, ...; within a block the
//                    node's local elements in local order; within an
//                    element the insert entries in insertion order — this
//                    byte layout IS the paper's interleaving
//
// The byte layout is identical whether the header+size table were written
// by node 0 (Gathered, the paper's small-collection optimization) or with
// a parallel size-table write (Parallel); the mode is recorded only for
// inspection. A reader therefore needs no out-of-band information: it
// decodes the writer's layout from the record header and can read under
// any node count or distribution (paper §4.1: "the library does the
// paperwork").
#pragma once

#include <cstdint>
#include <vector>

#include "collection/layout.h"
#include "util/bytes.h"

namespace pcxx::ds {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint64_t kFileHeaderBytes = 16;
inline constexpr std::uint32_t kRecordMagic = 0x44524543u;  // "CERD" LE

enum class HeaderMode : std::uint8_t {
  Gathered = 0,  ///< header + size table gathered to node 0 (small records)
  Parallel = 1,  ///< size table written with a parallel node-order write
};

enum class InsertKind : std::uint8_t {
  Collection = 0,  ///< a whole collection was inserted (s << g)
  Field = 1,       ///< a single element field was inserted (s << g.field(...))
};

/// One descriptor per insert (<<) call between writes.
struct InsertDesc {
  std::uint32_t typeTag = 0;
  InsertKind kind = InsertKind::Collection;
  /// Bytes per element if every element contributed the same amount
  /// (e.g. a double field = 8); 0 for variable-size inserts.
  std::uint32_t fixedPerElement = 0;

  bool operator==(const InsertDesc&) const = default;
};

/// Record flag bits.
inline constexpr std::uint8_t kRecordFlagDataCrc = 0x01;

/// Decoded per-record metadata.
struct RecordHeader {
  std::uint32_t seq;
  HeaderMode mode;
  coll::Layout layout;  ///< layout of the writing collection(s)
  std::vector<InsertDesc> inserts;
  std::uint64_t dataBytes;  ///< total element payload bytes in the record
  /// kRecordFlag* bits; kRecordFlagDataCrc means a 4-byte CRC-32 of the
  /// data section trails the record.
  std::uint8_t flags = 0;

  bool hasDataCrc() const { return (flags & kRecordFlagDataCrc) != 0; }
  std::uint64_t trailerBytes() const { return hasDataCrc() ? 4 : 0; }

  std::int64_t elementCount() const { return layout.size(); }
  std::uint64_t sizeTableBytes() const {
    return 8ull * static_cast<std::uint64_t>(layout.size());
  }

  /// Wire encoding, CRC included. The first 8 bytes are [magic][byteLen],
  /// so a reader fetches 8 bytes, then the remainder.
  ByteBuffer encode() const;

  /// Total encoded length given the first 8 bytes.
  static std::uint64_t encodedLength(std::span<const Byte> prefix8);

  /// Decode + verify CRC. `data` must be exactly the encoded bytes.
  static RecordHeader decode(std::span<const Byte> data);
};

/// Encode the 16-byte file header.
ByteBuffer encodeFileHeader();

/// Verify a 16-byte file header; throws FormatError on mismatch.
void verifyFileHeader(std::span<const Byte> data);

}  // namespace pcxx::ds
