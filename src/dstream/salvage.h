// Torn-write salvage reporting for d/stream files.
//
// A d/stream file damaged by a torn write (a crash mid-record) or by media
// corruption keeps a well-defined recoverable prefix: every record whose
// framing is intact and whose checksums verify (docs/FORMAT.md, "Partial
// writes and recoverable prefixes"). Salvage-mode readers (StreamOptions::
// salvage) and the offline scanner (inspect.h scanFile / dsdump --verify)
// both report what was recovered and what was lost through these types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcxx::ds {

/// One damaged byte range of a d/stream file.
struct DamagedRange {
  std::uint64_t offset = 0;  ///< first damaged byte
  std::uint64_t bytes = 0;   ///< extent of the damage
  std::string reason;        ///< e.g. "data checksum mismatch"
};

/// What a salvage pass recovered and what it had to give up.
struct SalvageReport {
  std::uint64_t recordsRecovered = 0;
  /// Records skipped or truncated away. Damage that hides the record
  /// framing (a torn tail) counts as one lost record even though more may
  /// be unrecoverable behind it.
  std::uint64_t recordsLost = 0;
  std::vector<DamagedRange> damage;

  bool clean() const { return recordsLost == 0 && damage.empty(); }
};

/// Human-readable rendering (what `dsdump --verify` prints).
std::string formatSalvageReport(const SalvageReport& report);

}  // namespace pcxx::ds
