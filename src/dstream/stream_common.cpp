#include "dstream/stream_common.h"

#include <atomic>

#include "util/error.h"

namespace pcxx::ds {
namespace {

std::atomic<pfs::Pfs*> g_defaultPfs{nullptr};

}  // namespace

void setDefaultPfs(pfs::Pfs* fs) { g_defaultPfs.store(fs); }

pfs::Pfs& defaultPfs() {
  pfs::Pfs* fs = g_defaultPfs.load();
  if (fs == nullptr) {
    throw UsageError(
        "no default file system: call pcxx::ds::setDefaultPfs() or use the "
        "stream constructors that take a pfs::Pfs explicitly");
  }
  return *fs;
}

}  // namespace pcxx::ds
