// Shared d/stream configuration and the default file system registry.
#pragma once

#include <cstdint>

#include "pfs/parallel_file.h"

namespace pcxx::ds {

/// Per-stream options.
struct StreamOptions {
  /// How the record header + size table are written (paper §4.1 step 1).
  enum class HeaderPolicy {
    Auto,           ///< Parallel when elementCount >= parallelHeaderThreshold
    ForceGathered,  ///< always gather to node 0 (small-collection path)
    ForceParallel,  ///< always use the parallel size-table write
  };

  HeaderPolicy headerPolicy = HeaderPolicy::Auto;
  /// Element count at which the parallel size-table write pays off.
  std::int64_t parallelHeaderThreshold = 4096;
  /// fsync after every write() (durability for checkpointing).
  bool syncOnWrite = false;
  /// Append a CRC-32 of each record's data section and verify it on read.
  /// Each node checksums only its own block; the whole-section value is
  /// assembled with crc32Combine, so the cost stays node-parallel.
  bool checksumData = false;
  /// Open the file for appending records instead of truncating (used when
  /// several streams with differing distributions share one file).
  bool append = false;
  /// Input streams only: salvage mode. On a damaged record (checksum
  /// mismatch, torn tail, truncated framing) read() skips the damage and
  /// continues with the next intact record instead of throwing; after a
  /// read, hasRecord() says whether a record was actually recovered, and
  /// salvageReport() accounts for the losses.
  bool salvage = false;

  // -- pcxx::dsindex (see docs/FORMAT.md, "Index footer") --------------------
  /// Output streams: append a self-describing index footer (per-record
  /// offsets, per-node extents, layout digest, CRC) on close so readers can
  /// seek to record k in O(1). The record chain's bytes are unchanged — the
  /// footer is an accelerator, never a format break.
  bool indexFooter = true;
  /// Input streams: use the index footer when present. Off = chain replay
  /// only (seekRecord walks, headers are probed, no dsindex.hits/fallbacks
  /// accounting); the footer's trailer is still honoured as the chain-end
  /// marker so replay never walks into the footer bytes. Corrupt footers
  /// always fall back to replay regardless of this flag.
  bool dsindexUseFooter = true;

  // -- pcxx::redist (see docs/REDIST.md) -------------------------------------
  /// Sorted reads under a changed layout: use the cached-plan redistribution
  /// engine (pcxx::redist). Off = the legacy per-record enumeration + map
  /// path, kept for A/B comparison; both produce byte-identical buffers.
  bool redistUsePlan = true;
  /// Bound on the payload bytes sent to any single peer per exchange round
  /// during redistribution. Caps peak redistribution memory at
  /// O(nprocs * redistChunkBytes) regardless of record size. 0 = exchange
  /// each record in a single unchunked round.
  std::uint64_t redistChunkBytes = 1 << 20;

  // -- pcxx::aio overlap (see docs/ASYNC.md) ---------------------------------
  /// Output streams: write-behind queue depth (buffers in flight per node).
  /// 0 = fully synchronous (today's path, byte-for-byte). Ignored when the
  /// library is built with PCXX_AIO=OFF.
  int aioQueueDepth = 0;
  /// Input streams: records prefetched ahead per node. 0 = synchronous.
  int aioPrefetchDepth = 0;
  /// Staging buffers per write-behind pipeline (0 = aioQueueDepth + 2).
  int aioPoolBuffers = 0;
  /// Wall-clock bound on any wait against an aio helper thread (drain at
  /// close, full queue, exhausted pool, in-flight prefetch).
  double aioDrainDeadlineSeconds = 30.0;

  // -- pfs chunk codec (see docs/FORMAT.md, "Chunk codec") -------------------
  /// Output streams: codec for the pfs chunk stage underneath this file.
  /// "" = the file system's default (PfsConfig::codec / PCXX_CODEC);
  /// "none" = explicitly unframed (byte-identical to the pre-codec
  /// format); "lz" = LZ chunk compression. Readers always auto-detect
  /// framing from the file, so input streams ignore these knobs.
  std::string codec;
  /// Chunk size for a codec enabled via `codec`; 0 = the pfs default.
  std::uint32_t codecChunkBytes = 0;
  /// pfs name of a sealed codec-framed file whose identical chunks may be
  /// stored as references instead of payload (CheckpointManager points
  /// this at the previous epoch). Empty = no dedup.
  std::string codecDedupBase;
};

/// Set the process-default file system used by the (d, a, filename) stream
/// constructors — the pC++ programs in the paper's Figure 3 name only a
/// file, with the file system implicit. Not owned; must outlive use.
void setDefaultPfs(pfs::Pfs* fs);

/// The default file system; throws UsageError if none was set.
pfs::Pfs& defaultPfs();

}  // namespace pcxx::ds
