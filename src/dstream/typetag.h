// Type tags for d/stream insert/extract checking.
//
// Each insert descriptor in a record header carries a 32-bit tag derived
// from the inserted element type; extraction verifies the tag of the
// corresponding insert, so extracting a collection of the wrong type fails
// with FormatError instead of silently misinterpreting bytes. Tags are a
// FNV-1a hash of the implementation's type name: stable within a build,
// which is the paper's usage model (the same declarations are included by
// the output and input programs — Figure 3).
#pragma once

#include <cstdint>
#include <typeinfo>

namespace pcxx::ds {

inline std::uint32_t fnv1a(const char* s) {
  std::uint32_t h = 2166136261u;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint8_t>(*s);
    h *= 16777619u;
  }
  return h;
}

/// Tag for element type T.
template <typename T>
std::uint32_t typeTag() {
  static const std::uint32_t tag = fnv1a(typeid(T).name());
  return tag;
}

}  // namespace pcxx::ds
