#include "obs/obs.h"

#include <sstream>

namespace pcxx::obs {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "ds.inserts",
    "ds.writes",
    "ds.reads",
    "ds.unsorted_reads",
    "ds.extracts",
    "ds.skips",
    "ds.header_encodes",
    "ds.header_decodes",
    "ds.header_bytes",
    "ds.size_table_bytes",
    "ds.buffer_fill_bytes",
    "redist.bytes_sent",
    "redist.messages_sent",
    "redist.elements_moved",
    "redist.plan_hits",
    "redist.plan_misses",
    "pfs.read_ops",
    "pfs.write_ops",
    "pfs.read_bytes",
    "pfs.write_bytes",
    "pfs.collective_ops",
    "pfs.retries",
    "pfs.give_ups",
    "rt.messages_sent",
    "rt.message_bytes",
    "rt.collectives",
    "aio.submits",
    "aio.drains",
    "aio.prefetch_hits",
    "aio.prefetch_misses",
    "aio.bg_write_bytes",
    "aio.bg_read_bytes",
    "rt.coll_straggler_ops",
    "rt.watchdog_trips",
    "rt.chaos_dropped",
    "rt.chaos_delayed",
    "rt.chaos_duplicated",
    "rt.chaos_reordered",
    "rt.chaos_skewed",
    "dsindex.footer_writes",
    "dsindex.hits",
    "dsindex.fallbacks",
    "dsindex.seeks",
    "dsindex.projections",
    "pfs.codec_raw_bytes",
    "pfs.codec_stored_bytes",
    "pfs.codec_dedup_hits",
    "pfs.codec_damaged_chunks",
};

constexpr const char* kTimerNames[kNumTimers] = {
    "ds.write_seconds",
    "ds.read_seconds",
    "ds.buffer_fill_seconds",
    "ds.header_seconds",
    "ds.redist_seconds",
    "redist.wait_seconds",
    "redist.plan_build_seconds",
    "pfs.read_seconds",
    "pfs.write_seconds",
    "pfs.queue_wait_seconds",
    "pfs.backoff_seconds",
    "rt.sync_wait_seconds",
    "scf.output_seconds",
    "scf.input_seconds",
    "aio.stall_seconds",
    "aio.drain_seconds",
    "pfs.codec_seconds",
};

constexpr const char* kHistNames[kNumHists] = {
    "pfs.read_size",
    "pfs.write_size",
    "aio.queue_depth",
    "redist.chunk_bytes",
    "rt.coll_skew_seconds",
};

}  // namespace

const char* counterName(Counter c) {
  return kCounterNames[static_cast<int>(c)];
}

const char* timerName(Timer t) { return kTimerNames[static_cast<int>(t)]; }

const char* histName(Hist h) { return kHistNames[static_cast<int>(h)]; }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::record(std::uint64_t value) {
  int b = 0;
  while (value != 0) {
    ++b;
    value >>= 1;
  }
  if (b >= kBuckets) b = kBuckets - 1;
  auto& a = buckets_[static_cast<size_t>(b)];
  a.store(a.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (int i = 0; i < kBuckets; ++i) sum += bucket(i);
  return sum;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucketLow(int i) {
  if (i <= 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

// ---------------------------------------------------------------------------
// NodeMetrics
// ---------------------------------------------------------------------------

NodeMetrics::NodeMetrics(int nprocs)
    : peerBytes_(static_cast<size_t>(nprocs > 0 ? nprocs : 0)) {}

void NodeMetrics::addPeerBytes(int peer, std::uint64_t bytes) {
  if (peer < 0 || static_cast<size_t>(peer) >= peerBytes_.size()) return;
  auto& a = peerBytes_[static_cast<size_t>(peer)];
  a.store(a.load(std::memory_order_relaxed) + bytes,
          std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(int nnodes) {
  nodes_.reserve(static_cast<size_t>(nnodes));
  for (int i = 0; i < nnodes; ++i) {
    nodes_.push_back(std::make_unique<NodeMetrics>(nnodes));
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const int n = nnodes();
  out.perNode.resize(static_cast<size_t>(n));
  out.merged.peerBytes.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const NodeMetrics& src = node(i);
    NodeSnapshot& dst = out.perNode[static_cast<size_t>(i)];
    for (int c = 0; c < kNumCounters; ++c) {
      dst.counters[static_cast<size_t>(c)] =
          src.counter(static_cast<Counter>(c));
      out.merged.counters[static_cast<size_t>(c)] +=
          dst.counters[static_cast<size_t>(c)];
    }
    for (int t = 0; t < kNumTimers; ++t) {
      dst.seconds[static_cast<size_t>(t)] = src.seconds(static_cast<Timer>(t));
      out.merged.seconds[static_cast<size_t>(t)] +=
          dst.seconds[static_cast<size_t>(t)];
    }
    for (int h = 0; h < kNumHists; ++h) {
      const Histogram& hist = src.hist(static_cast<Hist>(h));
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        dst.hists[static_cast<size_t>(h)][static_cast<size_t>(b)] =
            hist.bucket(b);
        out.merged.hists[static_cast<size_t>(h)][static_cast<size_t>(b)] +=
            hist.bucket(b);
      }
    }
    dst.peerBytes.resize(src.peerBytes_.size());
    for (size_t p = 0; p < src.peerBytes_.size(); ++p) {
      dst.peerBytes[p] = src.peerBytes_[p].load(std::memory_order_relaxed);
      if (p < out.merged.peerBytes.size()) {
        out.merged.peerBytes[p] += dst.peerBytes[p];
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  for (auto& node : nodes_) {
    for (auto& c : node->counters_) c.store(0, std::memory_order_relaxed);
    for (auto& t : node->timers_) t.store(0.0, std::memory_order_relaxed);
    for (auto& h : node->hists_) h.reset();
    for (auto& p : node->peerBytes_) p.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// snapshotJson
// ---------------------------------------------------------------------------

namespace {

void appendNodeJson(std::ostringstream& ss, const NodeSnapshot& n,
                    const char* indent) {
  ss << indent << "\"counters\": {";
  bool first = true;
  for (int c = 0; c < kNumCounters; ++c) {
    const std::uint64_t v = n.counters[static_cast<size_t>(c)];
    if (v == 0) continue;
    ss << (first ? "" : ", ") << "\"" << counterName(static_cast<Counter>(c))
       << "\": " << v;
    first = false;
  }
  ss << "},\n";
  ss << indent << "\"seconds\": {";
  first = true;
  for (int t = 0; t < kNumTimers; ++t) {
    const double v = n.seconds[static_cast<size_t>(t)];
    if (v == 0.0) continue;
    ss << (first ? "" : ", ") << "\"" << timerName(static_cast<Timer>(t))
       << "\": " << v;
    first = false;
  }
  ss << "},\n";
  ss << indent << "\"histograms\": {";
  first = true;
  for (int h = 0; h < kNumHists; ++h) {
    std::uint64_t total = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      total += n.hists[static_cast<size_t>(h)][static_cast<size_t>(b)];
    }
    if (total == 0) continue;
    ss << (first ? "" : ", ") << "\"" << histName(static_cast<Hist>(h))
       << "\": [";
    bool firstB = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t v =
          n.hists[static_cast<size_t>(h)][static_cast<size_t>(b)];
      if (v == 0) continue;
      ss << (firstB ? "" : ", ") << "{\"ge\": " << Histogram::bucketLow(b)
         << ", \"count\": " << v << "}";
      firstB = false;
    }
    ss << "]";
    first = false;
  }
  ss << "},\n";
  ss << indent << "\"peer_bytes\": [";
  for (size_t p = 0; p < n.peerBytes.size(); ++p) {
    ss << (p == 0 ? "" : ", ") << n.peerBytes[p];
  }
  ss << "]";
}

}  // namespace

std::string snapshotJson(const MetricsSnapshot& s) {
  std::ostringstream ss;
  ss << "{\n  \"merged\": {\n";
  appendNodeJson(ss, s.merged, "    ");
  ss << "\n  },\n  \"per_node\": [\n";
  for (size_t i = 0; i < s.perNode.size(); ++i) {
    ss << "    {\n";
    appendNodeJson(ss, s.perNode[i], "      ");
    ss << "\n    }" << (i + 1 < s.perNode.size() ? "," : "") << "\n";
  }
  ss << "  ]\n}";
  return ss.str();
}

}  // namespace pcxx::obs
