// pcxx::obs — observability for the d/stream stack.
//
// Three pieces, threaded through every layer (runtime, pfs, dstream, scf):
//
//  * MetricsRegistry — one NodeMetrics slot per node, holding cheap
//    owner-written / concurrently-readable atomic counters, phase timers
//    (seconds of virtual or wall time), log2 size histograms, and a
//    per-peer byte matrix for the redistribution exchange. snapshot()
//    produces a plain-data copy plus a cross-node merge.
//
//  * TraceSession — structured trace events in Chrome trace_event JSON
//    (one track per node: B/E spans for stream phases, C counter tracks
//    for buffer occupancy). The output loads in Perfetto / chrome://tracing.
//
//  * PCXX_OBS_* macros — the instrumentation points. They compile to
//    no-ops when the PCXX_OBS CMake option is OFF (PCXX_OBS_ENABLED=0),
//    and to a single null-check when ON but no observer is attached.
//
// Layering: obs depends only on util. The runtime attaches observers to a
// Machine (Machine::attachObserver) and hands each node a NodeObs; pfs and
// dstream instrument through Node::obs(). See docs/OBSERVABILITY.md for
// the metric catalogue and the trace span taxonomy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#ifndef PCXX_OBS_ENABLED
#define PCXX_OBS_ENABLED 1
#endif

namespace pcxx::obs {

// ---------------------------------------------------------------------------
// Metric catalogue (names and units: docs/OBSERVABILITY.md)
// ---------------------------------------------------------------------------

/// Monotone integer counters (ops, bytes, messages).
enum class Counter : int {
  DsInserts,          ///< insert operations (<< on a d/stream)
  DsWrites,           ///< write() records completed
  DsReads,            ///< read() records completed
  DsUnsortedReads,    ///< unsortedRead() records completed
  DsExtracts,         ///< extract operations (>> from a d/stream)
  DsSkips,            ///< skipRecord() calls
  DsHeaderEncodes,    ///< record headers encoded
  DsHeaderDecodes,    ///< record headers decoded
  DsHeaderBytes,      ///< record header bytes produced
  DsSizeTableBytes,   ///< size-table bytes produced (this node's share)
  DsBufferFillBytes,  ///< element bytes packed into per-node buffers
  RedistBytesSent,      ///< phase-2 bytes sent to *other* nodes
  RedistMessagesSent,   ///< phase-2 non-empty buffers sent to other nodes
  RedistElementsMoved,  ///< elements routed to other nodes
  RedistPlanHits,       ///< redistribution plans served from a cache
  RedistPlanMisses,     ///< redistribution plans built from scratch
  PfsReadOps,         ///< storage read requests issued
  PfsWriteOps,        ///< storage write requests issued
  PfsReadBytes,       ///< bytes requested by reads
  PfsWriteBytes,      ///< bytes written
  PfsCollectiveOps,   ///< node-order collective transfers + syncs + opens
  PfsRetries,         ///< storage op attempts retried under a RetryPolicy
  PfsGiveUps,         ///< storage ops abandoned (attempts/deadline spent)
  RtMessagesSent,     ///< point-to-point messages sent
  RtMessageBytes,     ///< point-to-point payload bytes sent
  RtCollectives,      ///< collective operations entered (incl. barriers)
  AioSubmits,         ///< write-behind jobs handed to a flusher
  AioDrains,          ///< write-behind drain points (close/collectives)
  AioPrefetchHits,    ///< records consumed from the read-ahead cache
  AioPrefetchMisses,  ///< records read synchronously despite prefetch on
  AioBgWriteBytes,    ///< bytes flushed by background writer threads
  AioBgReadBytes,     ///< bytes fetched by background prefetch threads
  RtCollStragglerOps,  ///< collectives this node was the last to arrive at
  RtWatchdogTrips,     ///< watchdog deadlines that expired on this node
  RtChaosDropped,      ///< p2p messages dropped by a ChaosPlan
  RtChaosDelayed,      ///< p2p messages delay-injected by a ChaosPlan
  RtChaosDuplicated,   ///< p2p messages duplicated by a ChaosPlan
  RtChaosReordered,    ///< p2p messages reorder-deferred by a ChaosPlan
  RtChaosSkewed,       ///< collective arrivals skew-injected by a ChaosPlan
  DsIndexFooterWrites, ///< index footers appended on stream close
  DsIndexHits,         ///< reader operations served by a valid index footer
  DsIndexFallbacks,    ///< footer absent/corrupt: chain replay used instead
  DsIndexSeeks,        ///< seekRecord() calls (indexed or replayed)
  DsIndexProjections,  ///< records read under a field projection
  PfsCodecRawBytes,      ///< logical bytes written through a chunk codec
  PfsCodecStoredBytes,   ///< frame header+payload bytes the codec stored
  PfsCodecDedupHits,     ///< chunks written as dedup ref frames
  PfsCodecDamagedChunks, ///< chunk reads that fell back to zeros
  kCount
};

/// Accumulated seconds (virtual time in simulation mode, wall otherwise).
enum class Timer : int {
  DsWriteSeconds,       ///< whole write() bracket (overlaps the phases)
  DsReadSeconds,        ///< whole read/unsortedRead bracket (overlaps)
  DsBufferFillSeconds,  ///< phase: pointer-list traversal + packing
  DsHeaderSeconds,      ///< phase: header construct + checksum collectives
  DsRedistSeconds,      ///< phase: two-phase redistribution exchange
  RedistWaitSeconds,    ///< of which: sync skew absorbed in the exchange
  RedistPlanBuildSeconds,  ///< phase: building redistribution plans
  PfsReadSeconds,       ///< phase: inside pfs read ops (incl. their syncs)
  PfsWriteSeconds,      ///< phase: inside pfs write ops (incl. their syncs)
  PfsQueueWaitSeconds,  ///< of which: small-op I/O-node queue wait
  PfsBackoffSeconds,    ///< modeled backoff charged before retries
  RtSyncWaitSeconds,    ///< total barrier/collective skew absorbed
  ScfOutputSeconds,     ///< harness bracket around IoMethod::output
  ScfInputSeconds,      ///< harness bracket around IoMethod::input
  AioStallSeconds,      ///< producer blocked on a full write-behind queue
  AioDrainSeconds,      ///< waiting for the flusher at drain points
  PfsCodecSeconds,      ///< wall seconds in chunk compress/decompress
  kCount
};

/// Log2-bucket size histograms.
enum class Hist : int {
  PfsReadSize,   ///< bytes per storage read request
  PfsWriteSize,  ///< bytes per storage write request
  AioQueueDepth, ///< write-behind queue occupancy sampled at each submit
  RedistChunkBytes,  ///< bytes per peer per chunked-exchange round
  RtCollSkew,    ///< per-collective skew absorbed, in whole microseconds
  kCount
};

constexpr int kNumCounters = static_cast<int>(Counter::kCount);
constexpr int kNumTimers = static_cast<int>(Timer::kCount);
constexpr int kNumHists = static_cast<int>(Hist::kCount);

const char* counterName(Counter c);
const char* timerName(Timer t);
const char* histName(Hist h);

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Power-of-two bucket histogram: bucket 0 holds value 0, bucket i holds
/// [2^(i-1), 2^i). Owner-thread writes, any-thread reads (relaxed atomics).
class Histogram {
 public:
  static constexpr int kBuckets = 33;

  void record(std::uint64_t value);
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  std::uint64_t total() const;
  void reset();
  /// Smallest value belonging to bucket i.
  static std::uint64_t bucketLow(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

// ---------------------------------------------------------------------------
// NodeMetrics / MetricsRegistry
// ---------------------------------------------------------------------------

/// Per-node metric slots. The owning node's thread is the only writer;
/// loads/stores are relaxed atomics so cross-thread snapshots are race-free
/// (TSan-clean) without fences on the hot path.
class NodeMetrics {
 public:
  explicit NodeMetrics(int nprocs);

  void add(Counter c, std::uint64_t delta) {
    auto& a = counters_[static_cast<size_t>(c)];
    a.store(a.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  void addSeconds(Timer t, double delta) {
    auto& a = timers_[static_cast<size_t>(t)];
    a.store(a.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  void record(Hist h, std::uint64_t value) {
    hists_[static_cast<size_t>(h)].record(value);
  }
  /// Bytes this node sent to `peer` during redistribution.
  void addPeerBytes(int peer, std::uint64_t bytes);

  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  double seconds(Timer t) const {
    return timers_[static_cast<size_t>(t)].load(std::memory_order_relaxed);
  }
  const Histogram& hist(Hist h) const {
    return hists_[static_cast<size_t>(h)];
  }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters_{};
  std::array<std::atomic<double>, kNumTimers> timers_{};
  std::array<Histogram, kNumHists> hists_{};
  std::vector<std::atomic<std::uint64_t>> peerBytes_;  // size nprocs
};

/// Plain-data copy of one node's metrics (or a cross-node merge).
struct NodeSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<double, kNumTimers> seconds{};
  std::array<std::array<std::uint64_t, Histogram::kBuckets>, kNumHists>
      hists{};
  std::vector<std::uint64_t> peerBytes;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<size_t>(c)];
  }
  double timer(Timer t) const { return seconds[static_cast<size_t>(t)]; }
};

struct MetricsSnapshot {
  std::vector<NodeSnapshot> perNode;
  NodeSnapshot merged;  ///< element-wise sums over all nodes
};

/// One NodeMetrics per node, plus the merged cross-node snapshot.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int nnodes);

  int nnodes() const { return static_cast<int>(nodes_.size()); }
  NodeMetrics& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  const NodeMetrics& node(int i) const { return *nodes_[static_cast<size_t>(i)]; }

  MetricsSnapshot snapshot() const;
  void reset();

 private:
  std::vector<std::unique_ptr<NodeMetrics>> nodes_;
};

/// Render a snapshot's non-zero metrics as a JSON object string (counters,
/// seconds, histograms, peer-byte matrix) — the generic machine-readable
/// dump used by `--metrics-json` on benches without a phase report.
std::string snapshotJson(const MetricsSnapshot& s);

// ---------------------------------------------------------------------------
// TraceSession — Chrome trace_event JSON
// ---------------------------------------------------------------------------

/// Collects trace events on per-node tracks. Each node's events are
/// appended only by that node's thread; toJson()/writeJson() are called
/// after the SPMD region ends (Machine::run joins its threads).
///
/// Besides the `nnodes` primary tracks there are two auxiliary tracks per
/// node — "aio flusher N" and "aio prefetch N" — addressed via
/// flusherTrack()/prefetchTrack(). The aio pipelines emit their background
/// activity there with *modeled* timestamps, pushed by the owning node's
/// thread (never by the helper thread), so the single-writer-per-track
/// rule holds even with several streams open on one node. Aux tracks that
/// stay empty are omitted from the JSON.
///
/// Span names must be string literals (or otherwise outlive the session).
class TraceSession {
 public:
  explicit TraceSession(int nnodes);

  /// Auxiliary track ids for node `node`'s background pipelines. Valid as
  /// the `node` argument of begin/end/counter/instant.
  int flusherTrack(int node) const { return nnodes_ + node; }
  int prefetchTrack(int node) const { return 2 * nnodes_ + node; }

  void begin(int node, const char* name, double tsSeconds) {
    push(node, Event{name, tsSeconds, 0.0, 'B'});
  }
  void end(int node, const char* name, double tsSeconds) {
    push(node, Event{name, tsSeconds, 0.0, 'E'});
  }
  /// A counter track sample (e.g. buffer occupancy in bytes).
  void counter(int node, const char* name, double value, double tsSeconds) {
    push(node, Event{name, tsSeconds, value, 'C'});
  }
  void instant(int node, const char* name, double tsSeconds) {
    push(node, Event{name, tsSeconds, 0.0, 'i'});
  }

  /// Flow events ("ph":"s"/"t"/"f" sharing a correlation `id`): Perfetto
  /// draws an arrow along each same-id chain in timestamp order, binding
  /// every event to its enclosing slice ("bp":"e" on the terminator). The
  /// id space is partitioned by the issuer (rt::Machine::nextFlowId plus
  /// tag bits for p2p/collective edges) so chains never collide.
  void flowStart(int node, const char* name, double tsSeconds,
                 std::uint64_t id) {
    push(node, Event{name, tsSeconds, 0.0, 's', id});
  }
  void flowStep(int node, const char* name, double tsSeconds,
                std::uint64_t id) {
    push(node, Event{name, tsSeconds, 0.0, 't', id});
  }
  void flowEnd(int node, const char* name, double tsSeconds,
               std::uint64_t id) {
    push(node, Event{name, tsSeconds, 0.0, 'f', id});
  }

  int nnodes() const { return nnodes_; }
  std::size_t eventCount() const;

  /// Chrome trace_event JSON ("traceEvents" array; ts in microseconds,
  /// pid 0, tid = node id, one event per line). Loads in Perfetto.
  std::string toJson() const;
  /// Writes toJson() to a sibling temp file, then renames it over `path`,
  /// so a crash mid-dump never leaves a truncated/unparseable artifact.
  void writeJson(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    double tsSeconds;
    double value;
    char phase;
    std::uint64_t id = 0;  ///< correlation id (flow events only)
  };
  void push(int node, Event e) {
    perNode_[static_cast<size_t>(node)].push_back(e);
  }
  int nnodes_ = 0;
  std::vector<std::vector<Event>> perNode_;  // nnodes_ primary + 2x aux
};

// ---------------------------------------------------------------------------
// Observer attachment (used by rt::Machine)
// ---------------------------------------------------------------------------

/// What to observe and which time base to stamp events with.
struct Observer {
  enum class TimeMode {
    Virtual,  ///< per-node virtual clocks (simulation mode)
    Wall,     ///< wall seconds since attach
  };
  MetricsRegistry* metrics = nullptr;  ///< not owned; may be null
  TraceSession* trace = nullptr;       ///< not owned; may be null
  TimeMode timeMode = TimeMode::Virtual;
};

/// Per-node observation handle, installed by the runtime. `clock` is an
/// opaque pointer the runtime-provided `nowFn` knows how to read, so obs
/// stays independent of the runtime layer.
struct NodeObs {
  NodeMetrics* metrics = nullptr;
  TraceSession* trace = nullptr;
  int nodeId = 0;
  double (*nowFn)(const NodeObs&) = nullptr;
  const void* clock = nullptr;
  double wallEpoch = 0.0;
  /// True when timestamps are wall seconds (Observer::TimeMode::Wall); the
  /// aio pipelines skip their modeled background-track spans in that mode.
  bool wallTime = false;

  double now() const { return nowFn != nullptr ? nowFn(*this) : 0.0; }
};

/// RAII span: emits a B/E trace pair and (optionally) accumulates the
/// elapsed seconds into a phase timer. Null `o` makes it a no-op.
class PhaseScope {
 public:
  PhaseScope(NodeObs* o, const char* name, Timer timer = Timer::kCount)
      : o_(o), name_(name), timer_(timer) {
    if (o_ == nullptr) return;
    t0_ = o_->now();
    if (o_->trace != nullptr) o_->trace->begin(o_->nodeId, name_, t0_);
  }
  ~PhaseScope() {
    if (o_ == nullptr) return;
    const double t1 = o_->now();
    if (o_->trace != nullptr) o_->trace->end(o_->nodeId, name_, t1);
    if (o_->metrics != nullptr && timer_ != Timer::kCount) {
      o_->metrics->addSeconds(timer_, t1 - t0_);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  NodeObs* o_;
  const char* name_;
  Timer timer_;
  double t0_ = 0.0;
};

}  // namespace pcxx::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. `obsExpr` is a (possibly null) obs::NodeObs*,
// typically `node.obs()`. With PCXX_OBS_ENABLED=0 the argument expressions
// are never evaluated and the macros contribute zero code.
// ---------------------------------------------------------------------------

#if PCXX_OBS_ENABLED

#define PCXX_OBS_CONCAT_IMPL_(a, b) a##b
#define PCXX_OBS_CONCAT_(a, b) PCXX_OBS_CONCAT_IMPL_(a, b)

/// Trace span + phase timer for the enclosing scope.
#define PCXX_OBS_PHASE(obsExpr, name, timerId)                       \
  ::pcxx::obs::PhaseScope PCXX_OBS_CONCAT_(pcxxObsPhase_, __LINE__)( \
      (obsExpr), (name), ::pcxx::obs::Timer::timerId)

/// Trace span (no timer) for the enclosing scope.
#define PCXX_OBS_SPAN(obsExpr, name)                                \
  ::pcxx::obs::PhaseScope PCXX_OBS_CONCAT_(pcxxObsSpan_, __LINE__)( \
      (obsExpr), (name))

#define PCXX_OBS_COUNT(obsExpr, counterId, delta)                      \
  do {                                                                 \
    ::pcxx::obs::NodeObs* pcxxObs_ = (obsExpr);                        \
    if (pcxxObs_ != nullptr && pcxxObs_->metrics != nullptr) {         \
      pcxxObs_->metrics->add(::pcxx::obs::Counter::counterId,          \
                             static_cast<std::uint64_t>(delta));       \
    }                                                                  \
  } while (0)

#define PCXX_OBS_SECONDS(obsExpr, timerId, delta)                      \
  do {                                                                 \
    ::pcxx::obs::NodeObs* pcxxObs_ = (obsExpr);                        \
    if (pcxxObs_ != nullptr && pcxxObs_->metrics != nullptr) {         \
      pcxxObs_->metrics->addSeconds(::pcxx::obs::Timer::timerId,       \
                                    (delta));                          \
    }                                                                  \
  } while (0)

#define PCXX_OBS_HIST(obsExpr, histId, value)                          \
  do {                                                                 \
    ::pcxx::obs::NodeObs* pcxxObs_ = (obsExpr);                        \
    if (pcxxObs_ != nullptr && pcxxObs_->metrics != nullptr) {         \
      pcxxObs_->metrics->record(::pcxx::obs::Hist::histId,             \
                                static_cast<std::uint64_t>(value));    \
    }                                                                  \
  } while (0)

#define PCXX_OBS_PEER_BYTES(obsExpr, peer, bytes)                      \
  do {                                                                 \
    ::pcxx::obs::NodeObs* pcxxObs_ = (obsExpr);                        \
    if (pcxxObs_ != nullptr && pcxxObs_->metrics != nullptr) {         \
      pcxxObs_->metrics->addPeerBytes(                                 \
          (peer), static_cast<std::uint64_t>(bytes));                  \
    }                                                                  \
  } while (0)

#define PCXX_OBS_TRACE_COUNTER(obsExpr, name, value)                   \
  do {                                                                 \
    ::pcxx::obs::NodeObs* pcxxObs_ = (obsExpr);                        \
    if (pcxxObs_ != nullptr && pcxxObs_->trace != nullptr) {           \
      pcxxObs_->trace->counter(pcxxObs_->nodeId, (name),               \
                               static_cast<double>(value),             \
                               pcxxObs_->now());                       \
    }                                                                  \
  } while (0)

#else  // !PCXX_OBS_ENABLED

#define PCXX_OBS_PHASE(obsExpr, name, timerId) do { } while (0)
#define PCXX_OBS_SPAN(obsExpr, name) do { } while (0)
#define PCXX_OBS_COUNT(obsExpr, counterId, delta) do { } while (0)
#define PCXX_OBS_SECONDS(obsExpr, timerId, delta) do { } while (0)
#define PCXX_OBS_HIST(obsExpr, histId, value) do { } while (0)
#define PCXX_OBS_PEER_BYTES(obsExpr, peer, bytes) do { } while (0)
#define PCXX_OBS_TRACE_COUNTER(obsExpr, name, value) do { } while (0)

#endif  // PCXX_OBS_ENABLED
