#include "obs/obs.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace pcxx::obs {

TraceSession::TraceSession(int nnodes)
    : nnodes_(nnodes > 0 ? nnodes : 0),
      perNode_(static_cast<size_t>(3 * (nnodes > 0 ? nnodes : 0))) {}

std::size_t TraceSession::eventCount() const {
  std::size_t n = 0;
  for (const auto& v : perNode_) n += v.size();
  return n;
}

std::string TraceSession::toJson() const {
  std::ostringstream ss;
  ss << "{\"traceEvents\": [\n";
  bool first = true;
  char buf[64];
  // Metadata: name each tid track. The first nnodes_ tracks are the node
  // threads; the aux flusher/prefetch tracks only appear when they carry
  // events so synchronous runs keep the exact pre-aio trace layout.
  const size_t n = static_cast<size_t>(nnodes_);
  for (size_t track = 0; track < perNode_.size(); ++track) {
    if (track >= n && perNode_[track].empty()) continue;
    ss << (first ? "" : ",\n")
       << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << track << ", \"args\": {\"name\": \"";
    if (track < n) {
      ss << "node " << track;
    } else if (track < 2 * n) {
      ss << "aio flusher " << (track - n);
    } else {
      ss << "aio prefetch " << (track - 2 * n);
    }
    ss << "\"}}";
    first = false;
  }
  for (size_t node = 0; node < perNode_.size(); ++node) {
    for (const Event& e : perNode_[node]) {
      // Microsecond timestamps, printed as a fixed-point decimal so the
      // JSON is stable across locales and float-format settings.
      std::snprintf(buf, sizeof(buf), "%.3f", e.tsSeconds * 1e6);
      ss << (first ? "" : ",\n") << "{\"name\": \"" << e.name
         << "\", \"cat\": \"pcxx\", \"ph\": \"" << e.phase
         << "\", \"ts\": " << buf << ", \"pid\": 0, \"tid\": " << node;
      if (e.phase == 'C') {
        std::snprintf(buf, sizeof(buf), "%.3f", e.value);
        ss << ", \"args\": {\"value\": " << buf << "}";
      } else if (e.phase == 'i') {
        ss << ", \"s\": \"t\"";
      } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        // Flow events carry their correlation id, printed as a hex string:
        // ids above 2^62 (the p2p/collective id spaces) are not exactly
        // representable as JSON doubles, and a numeric id would silently
        // collide in double-based consumers. The terminator binds to the
        // enclosing slice ("bp":"e") so Perfetto draws the arrow into the
        // span that consumed the flow, not to a bare point.
        std::snprintf(buf, sizeof(buf), "0x%" PRIx64, e.id);
        ss << ", \"id\": \"" << buf << "\"";
        if (e.phase == 'f') ss << ", \"bp\": \"e\"";
      }
      ss << "}";
      first = false;
    }
  }
  ss << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return ss.str();
}

void TraceSession::writeJson(const std::string& path) const {
  // Dump to a sibling temp file and rename it into place: rename within a
  // directory is atomic on POSIX, so readers (and the fault/crash-sweep CI
  // legs) either see the previous artifact or the complete new one, never
  // a truncated half-written trace.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("cannot open trace output file: " + tmp);
    }
    out << toJson();
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw IoError("failed writing trace output file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename trace output file into place: " + path);
  }
}

}  // namespace pcxx::obs
