#include "pfs/backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace pcxx::pfs {

// ---------------------------------------------------------------------------
// MemStorage
// ---------------------------------------------------------------------------

void MemStorage::writeAt(std::uint64_t offset, std::span<const Byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);
  std::copy(data.begin(), data.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(offset));
}

std::uint64_t MemStorage::readAt(std::uint64_t offset, std::span<Byte> out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset >= data_.size()) return 0;
  const std::uint64_t n =
      std::min<std::uint64_t>(out.size(), data_.size() - offset);
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset),
              static_cast<std::ptrdiff_t>(n), out.begin());
  return n;
}

std::uint64_t MemStorage::size() {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

void MemStorage::truncate(std::uint64_t newSize) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.resize(newSize);
}

// ---------------------------------------------------------------------------
// PosixStorage
// ---------------------------------------------------------------------------

PosixStorage::PosixStorage(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("open('" + path + "'): " + std::strerror(errno));
  }
}

PosixStorage::~PosixStorage() {
  if (fd_ >= 0) ::close(fd_);
}

void PosixStorage::writeAt(std::uint64_t offset, std::span<const Byte> data) {
  const Byte* p = data.data();
  std::uint64_t remaining = data.size();
  std::uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pwrite('" + path_ + "'): " + std::strerror(errno));
    }
    p += n;
    off += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::uint64_t>(n);
  }
}

std::uint64_t PosixStorage::readAt(std::uint64_t offset, std::span<Byte> out) {
  Byte* p = out.data();
  std::uint64_t remaining = out.size();
  std::uint64_t off = offset;
  std::uint64_t total = 0;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pread('" + path_ + "'): " + std::strerror(errno));
    }
    if (n == 0) break;  // end of file
    p += n;
    off += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::uint64_t>(n);
    total += static_cast<std::uint64_t>(n);
  }
  return total;
}

std::uint64_t PosixStorage::size() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw IoError("fstat('" + path_ + "'): " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

void PosixStorage::truncate(std::uint64_t newSize) {
  if (::ftruncate(fd_, static_cast<off_t>(newSize)) != 0) {
    throw IoError("ftruncate('" + path_ + "'): " + std::strerror(errno));
  }
}

void PosixStorage::sync() {
  if (::fsync(fd_) != 0) {
    throw IoError("fsync('" + path_ + "'): " + std::strerror(errno));
  }
}

}  // namespace pcxx::pfs
