// Storage backends for the parallel file system substrate.
//
// A StorageBackend is a flat, thread-safe byte array with read/write-at
// semantics. The pfs layer puts striping, node-order collective operations,
// timing models, and fault injection on top; backends only store bytes.
//
//  * MemStorage   — in-memory; used by tests and by simulation-mode benches
//                   (data correctness is still fully exercised).
//  * PosixStorage — a real file accessed with pread/pwrite; used by
//                   real-time benches and by the examples so outputs are
//                   inspectable on disk.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace pcxx::pfs {

/// Flat byte storage with positional I/O. All methods are thread-safe.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Write `data` at `offset`, extending the file as needed.
  virtual void writeAt(std::uint64_t offset, std::span<const Byte> data) = 0;

  /// Read up to `out.size()` bytes at `offset`; returns bytes actually read
  /// (fewer only at end-of-file).
  virtual std::uint64_t readAt(std::uint64_t offset, std::span<Byte> out) = 0;

  virtual std::uint64_t size() = 0;
  virtual void truncate(std::uint64_t newSize) = 0;
  /// Flush to durable storage (no-op for memory).
  virtual void sync() = 0;
};

/// In-memory backend.
class MemStorage final : public StorageBackend {
 public:
  void writeAt(std::uint64_t offset, std::span<const Byte> data) override;
  std::uint64_t readAt(std::uint64_t offset, std::span<Byte> out) override;
  std::uint64_t size() override;
  void truncate(std::uint64_t newSize) override;
  void sync() override {}

 private:
  std::mutex mu_;
  ByteBuffer data_;
};

/// POSIX file backend (pread/pwrite on a real file descriptor).
class PosixStorage final : public StorageBackend {
 public:
  /// Opens (creating if necessary) the file at `path`. Throws IoError.
  explicit PosixStorage(const std::string& path);
  ~PosixStorage() override;

  PosixStorage(const PosixStorage&) = delete;
  PosixStorage& operator=(const PosixStorage&) = delete;

  void writeAt(std::uint64_t offset, std::span<const Byte> data) override;
  std::uint64_t readAt(std::uint64_t offset, std::span<Byte> out) override;
  std::uint64_t size() override;
  void truncate(std::uint64_t newSize) override;
  void sync() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace pcxx::pfs
