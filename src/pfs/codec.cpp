// Chunk-codec stage: LZ-class block codec + the CodecStorage decorator.
// Layout and trust-boundary rules are specified in codec.h and
// docs/FORMAT.md ("Chunk codec"); keep the three in sync.
#include "pfs/codec.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/crc32.h"
#include "util/error.h"

namespace pcxx::pfs {
namespace {

constexpr char kFileMagic[8] = {'P', 'C', 'X', 'X', 'C', 'D', 'C', '1'};
constexpr std::uint32_t kFrameMagic = 0x46444350u;  // "PCDF" little-endian
constexpr std::uint32_t kCodecVersion = 1;
constexpr std::uint32_t kMaxBaseNameBytes = 4096;
constexpr std::uint32_t kMinChunkBytes = 64;
constexpr std::uint32_t kMaxChunkBytes = 1u << 30;
constexpr std::uint8_t kKindData = 0;
constexpr std::uint8_t kKindRef = 1;
constexpr std::uint16_t kFrameFlagBaseRef = 0x0001;

thread_local CodecThreadStats g_codecTls;

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a64(std::span<const Byte> data) {
  std::uint64_t h = 14695981039346656037ull;
  for (const Byte b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads exactly out.size() bytes or reports failure (EOF short read).
bool readExact(StorageBackend& s, std::uint64_t offset, std::span<Byte> out) {
  return s.readAt(offset, out) == out.size();
}

}  // namespace

const CodecThreadStats& codecThreadStats() { return g_codecTls; }

// ---------------------------------------------------------------------------
// LZ-class block codec.
//
// Token stream, LZ4-flavored: each sequence is one token byte — high nibble
// literal length, low nibble (match length - 4) — each nibble extended by
// 255-run bytes when saturated, then the literals, then (unless the stream
// ends after the literals) a 2-byte little-endian match offset into the
// already-decoded output. Minimum match 4, maximum offset 65535.
// ---------------------------------------------------------------------------

bool lzCompress(std::span<const Byte> src, ByteBuffer& out) {
  out.clear();
  const std::size_t n = src.size();
  if (n < 16) return false;  // token overhead can't win on tiny inputs

  constexpr unsigned kHashBits = 13;
  constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kNoPos);
  const auto hash4 = [&](std::size_t i) {
    std::uint32_t v;
    std::memcpy(&v, src.data() + i, 4);
    return (v * 2654435761u) >> (32u - kHashBits);
  };
  const auto emitRun = [&](std::size_t len) {
    while (len >= 255) {
      out.push_back(Byte{255});
      len -= 255;
    }
    out.push_back(static_cast<Byte>(len));
  };
  const auto emitSeq = [&](std::size_t litStart, std::size_t litLen,
                           std::size_t matchOff, std::size_t matchLen) {
    const std::size_t litTok = litLen < 15 ? litLen : 15;
    const std::size_t mTok =
        matchLen == 0 ? 0 : std::min<std::size_t>(matchLen - 4, 15);
    out.push_back(static_cast<Byte>((litTok << 4) | mTok));
    if (litTok == 15) emitRun(litLen - 15);
    out.insert(out.end(), src.begin() + litStart,
               src.begin() + litStart + litLen);
    if (matchLen != 0) {
      out.push_back(static_cast<Byte>(matchOff & 0xFF));
      out.push_back(static_cast<Byte>((matchOff >> 8) & 0xFF));
      if (mTok == 15) emitRun(matchLen - 4 - 15);
    }
  };

  out.reserve(n);
  std::size_t i = 0;
  std::size_t anchor = 0;
  const std::size_t mflimit = n - 4;  // last position a 4-byte match can start
  while (i < mflimit) {
    const auto h = hash4(i);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(i);
    if (cand != kNoPos && i - cand <= 65535 &&
        std::memcmp(src.data() + cand, src.data() + i, 4) == 0) {
      std::size_t len = 4;
      while (i + len < n && src[cand + len] == src[i + len]) ++len;
      emitSeq(anchor, i - anchor, i - cand, len);
      i += len;
      anchor = i;
      if (out.size() >= n) return false;  // clearly not winning; store raw
    } else {
      ++i;
    }
  }
  emitSeq(anchor, n - anchor, 0, 0);
  return out.size() < n;
}

ByteBuffer lzDecompress(std::span<const Byte> src, std::uint64_t rawBytes) {
  ByteBuffer out;
  out.reserve(static_cast<std::size_t>(rawBytes));
  std::size_t i = 0;
  const auto need = [&](std::size_t k) {
    if (k > src.size() - i) throw FormatError("lz: truncated stream");
  };
  const auto readRun = [&](std::size_t base) {
    std::size_t len = base;
    if (base == 15) {
      for (;;) {
        need(1);
        const Byte b = src[i++];
        len += b;
        if (b != 255) break;
      }
    }
    return len;
  };
  while (i < src.size()) {
    const Byte tok = src[i++];
    const std::size_t lit = readRun(tok >> 4);
    need(lit);
    if (lit > rawBytes - out.size()) throw FormatError("lz: output overflow");
    out.insert(out.end(), src.begin() + i, src.begin() + i + lit);
    i += lit;
    if (i == src.size()) break;  // final sequence carries literals only
    need(2);
    const std::size_t off =
        std::size_t{src[i]} | (std::size_t{src[i + 1]} << 8);
    i += 2;
    if (off == 0 || off > out.size())
      throw FormatError("lz: bad match offset");
    const std::size_t mlen = readRun(tok & 0x0F) + 4;
    if (mlen > rawBytes - out.size()) throw FormatError("lz: output overflow");
    for (std::size_t k = 0; k < mlen; ++k)  // byte-wise: overlap is legal
      out.push_back(out[out.size() - off]);
  }
  if (out.size() != rawBytes) throw FormatError("lz: size mismatch");
  return out;
}

// ---------------------------------------------------------------------------
// File and frame header codecs.
// ---------------------------------------------------------------------------

namespace {

struct FileHeader {
  std::uint32_t chunkBytes = 0;
  std::uint32_t defaultCodec = 0;
  std::string baseName;
};

/// Decodes + validates the 32-byte fixed header (not the base name).
/// Returns false on anything that is not an intact codec header.
bool decodeFileHeader(StorageBackend& inner, FileHeader& out) {
  Byte h[CodecStorage::kFileHeaderBytes];
  if (!readExact(inner, 0, std::span<Byte>(h, sizeof h))) return false;
  if (std::memcmp(h, kFileMagic, sizeof kFileMagic) != 0) return false;
  if (decodeU32(h + 8) != kCodecVersion) return false;
  if (decodeU32(h + 12) != 0) return false;  // unknown flags -> not framed
  if (decodeU32(h + 28) != crc32(std::span<const Byte>(h, 28))) return false;
  out.chunkBytes = decodeU32(h + 16);
  out.defaultCodec = decodeU32(h + 20);
  const std::uint32_t nameBytes = decodeU32(h + 24);
  if (out.chunkBytes < kMinChunkBytes || out.chunkBytes > kMaxChunkBytes)
    return false;
  if (out.defaultCodec > static_cast<std::uint32_t>(CodecId::Lz)) return false;
  if (nameBytes > kMaxBaseNameBytes) return false;
  out.baseName.clear();
  if (nameBytes != 0) {
    ByteBuffer name(nameBytes);
    if (!readExact(inner, sizeof h, std::span<Byte>(name))) return false;
    out.baseName.assign(reinterpret_cast<const char*>(name.data()),
                        name.size());
  }
  return true;
}

void writeFileHeader(StorageBackend& inner, const CodecSpec& spec) {
  ByteBuffer buf(CodecStorage::kFileHeaderBytes + spec.dedupBase.size());
  std::memcpy(buf.data(), kFileMagic, sizeof kFileMagic);
  encodeU32(kCodecVersion, buf.data() + 8);
  encodeU32(0, buf.data() + 12);
  encodeU32(spec.chunkBytes, buf.data() + 16);
  encodeU32(static_cast<std::uint32_t>(spec.codec), buf.data() + 20);
  encodeU32(static_cast<std::uint32_t>(spec.dedupBase.size()),
            buf.data() + 24);
  encodeU32(crc32(std::span<const Byte>(buf.data(), 28)), buf.data() + 28);
  std::memcpy(buf.data() + CodecStorage::kFileHeaderBytes,
              spec.dedupBase.data(), spec.dedupBase.size());
  inner.writeAt(0, buf);
}

}  // namespace

struct CodecStorage::Frame {
  std::uint8_t kind = kKindData;
  std::uint8_t codecId = 0;
  std::uint16_t flags = 0;
  std::uint64_t chunkIndex = 0;
  std::uint32_t rawBytes = 0;
  std::uint32_t storedBytes = 0;
  std::uint64_t contentHash = 0;
  std::uint32_t payloadCrc = 0;

  void encode(Byte* out) const {
    encodeU32(kFrameMagic, out);
    out[4] = kind;
    out[5] = codecId;
    out[6] = static_cast<Byte>(flags & 0xFF);
    out[7] = static_cast<Byte>(flags >> 8);
    encodeU64(chunkIndex, out + 8);
    encodeU32(rawBytes, out + 16);
    encodeU32(storedBytes, out + 20);
    encodeU64(contentHash, out + 24);
    encodeU32(payloadCrc, out + 32);
    encodeU32(crc32(std::span<const Byte>(out, 36)), out + 36);
  }
};

// ---------------------------------------------------------------------------
// CodecStorage.
// ---------------------------------------------------------------------------

CodecStorage::CodecStorage(std::shared_ptr<StorageBackend> inner,
                           CodecSpec spec, std::uint64_t headerBytes,
                           std::shared_ptr<CodecStorage> base)
    : inner_(std::move(inner)),
      spec_(std::move(spec)),
      headerBytes_(headerBytes),
      base_(std::move(base)) {
  if (base_ != nullptr && base_->spec_.chunkBytes == spec_.chunkBytes)
    baseHash_ = base_->ownHash_;  // full sealed data frames only
}

bool CodecStorage::isFramed(StorageBackend& inner) {
  FileHeader h;
  return decodeFileHeader(inner, h);
}

std::string CodecStorage::baseNameOf(StorageBackend& inner) {
  FileHeader h;
  if (!decodeFileHeader(inner, h)) return "";
  return h.baseName;
}

std::shared_ptr<CodecStorage> CodecStorage::create(
    std::shared_ptr<StorageBackend> inner, const CodecSpec& spec,
    std::shared_ptr<StorageBackend> baseInner) {
  PCXX_REQUIRE(spec.chunkBytes >= kMinChunkBytes &&
                   spec.chunkBytes <= kMaxChunkBytes,
               "codec chunkBytes out of range");
  PCXX_REQUIRE(spec.dedupBase.size() <= kMaxBaseNameBytes,
               "codec dedup base name too long");
  std::shared_ptr<CodecStorage> base;
  if (baseInner != nullptr && isFramed(*baseInner)) {
    try {
      base = attach(std::move(baseInner), nullptr);
    } catch (const FormatError&) {
      base = nullptr;  // a damaged base just contributes no dedup targets
    }
  }
  inner->truncate(0);
  writeFileHeader(*inner, spec);
  const std::uint64_t headerBytes = kFileHeaderBytes + spec.dedupBase.size();
  return std::shared_ptr<CodecStorage>(new CodecStorage(
      std::move(inner), spec, headerBytes, std::move(base)));
}

std::shared_ptr<CodecStorage> CodecStorage::attach(
    std::shared_ptr<StorageBackend> inner,
    std::shared_ptr<StorageBackend> baseInner) {
  FileHeader h;
  if (!decodeFileHeader(*inner, h))
    throw FormatError("codec: file header is not intact");
  CodecSpec spec;
  spec.enabled = true;
  spec.codec = static_cast<CodecId>(h.defaultCodec);
  spec.chunkBytes = h.chunkBytes;
  spec.dedupBase = h.baseName;
  std::shared_ptr<CodecStorage> base;
  if (baseInner != nullptr && isFramed(*baseInner)) {
    try {
      base = attach(std::move(baseInner), nullptr);
    } catch (const FormatError&) {
      base = nullptr;
    }
  }
  const std::uint64_t headerBytes = kFileHeaderBytes + h.baseName.size();
  auto self = std::shared_ptr<CodecStorage>(new CodecStorage(
      std::move(inner), std::move(spec), headerBytes, std::move(base)));
  self->scanExisting();
  return self;
}

void CodecStorage::scanExisting() {
  const std::uint64_t innerSize = inner_->size();
  const std::uint64_t c = spec_.chunkBytes;
  std::uint64_t logical = 0;
  for (std::uint64_t i = 0; frameOffset(i) < innerSize; ++i) {
    Frame f;
    switch (readFrame(i, f)) {
      case FrameState::Absent:
        break;
      case FrameState::Damaged:
        // rawBytes is untrustworthy; assume a full chunk so the zeros it
        // reads as stay inside the logical extent for the record layer.
        logical = std::max(logical, i * c + c);
        break;
      case FrameState::Valid: {
        logical = std::max(logical, i * c + f.rawBytes);
        if (f.kind == kKindData && f.rawBytes == c) {
          if (ownHash_.emplace(f.contentHash, i).second)
            hashByChunk_.emplace(i, f.contentHash);
        } else if (f.kind == kKindRef && (f.flags & kFrameFlagBaseRef) == 0) {
          Byte p[8];
          if (readExact(*inner_, frameOffset(i) + kFrameHeaderBytes,
                        std::span<Byte>(p, sizeof p)) &&
              crc32(std::span<const Byte>(p, sizeof p)) == f.payloadCrc) {
            const std::uint64_t target = decodeU64(p);
            refsByTarget_.emplace(target, i);
            refTargetByChunk_.emplace(i, target);
          }
        }
        break;
      }
    }
  }
  logicalSize_ = logical;
}

CodecStorage::FrameState CodecStorage::readFrame(std::uint64_t index,
                                                 Frame& f) {
  Byte h[kFrameHeaderBytes];
  const std::uint64_t got =
      inner_->readAt(frameOffset(index), std::span<Byte>(h, sizeof h));
  if (got < sizeof h) return FrameState::Absent;  // short only at EOF
  bool allZero = true;
  for (const Byte b : h) {
    if (b != 0) {
      allZero = false;
      break;
    }
  }
  if (allZero) return FrameState::Absent;  // hole inside the file
  if (decodeU32(h) != kFrameMagic) return FrameState::Damaged;
  if (decodeU32(h + 36) != crc32(std::span<const Byte>(h, 36)))
    return FrameState::Damaged;
  f.kind = h[4];
  f.codecId = h[5];
  f.flags = static_cast<std::uint16_t>(h[6]) |
            (static_cast<std::uint16_t>(h[7]) << 8);
  f.chunkIndex = decodeU64(h + 8);
  f.rawBytes = decodeU32(h + 16);
  f.storedBytes = decodeU32(h + 20);
  f.contentHash = decodeU64(h + 24);
  f.payloadCrc = decodeU32(h + 32);
  if (f.chunkIndex != index) return FrameState::Damaged;  // relocated frame
  if (f.rawBytes == 0 || f.rawBytes > spec_.chunkBytes)
    return FrameState::Damaged;
  if (f.kind == kKindData) {
    if (f.codecId > static_cast<std::uint8_t>(CodecId::Lz))
      return FrameState::Damaged;
    if (f.storedBytes == 0 || f.storedBytes > spec_.chunkBytes)
      return FrameState::Damaged;
    if (f.codecId == static_cast<std::uint8_t>(CodecId::Raw) &&
        f.storedBytes != f.rawBytes)
      return FrameState::Damaged;
  } else if (f.kind == kKindRef) {
    if (f.storedBytes != 8) return FrameState::Damaged;
    if (f.rawBytes != spec_.chunkBytes) return FrameState::Damaged;
  } else {
    return FrameState::Damaged;
  }
  return FrameState::Valid;
}

ByteBuffer CodecStorage::chunkContent(std::uint64_t index, bool followRef) {
  const std::uint64_t c = spec_.chunkBytes;
  ByteBuffer zeros(static_cast<std::size_t>(c), 0);
  const auto damaged = [&]() {
    ++g_codecTls.damagedChunks;
    return ByteBuffer(static_cast<std::size_t>(c), 0);
  };

  Frame f;
  switch (readFrame(index, f)) {
    case FrameState::Absent:
      return zeros;  // a hole: zeros, not damage
    case FrameState::Damaged:
      return damaged();
    case FrameState::Valid:
      break;
  }

  ByteBuffer payload(f.storedBytes);
  if (!readExact(*inner_, frameOffset(index) + kFrameHeaderBytes, payload))
    return damaged();  // payload torn off at EOF
  // Trust boundary: the payload CRC is verified BEFORE any payload byte is
  // interpreted — hostile bytes never reach the decoder or the ref target.
  if (crc32(payload) != f.payloadCrc) return damaged();

  if (f.kind == kKindRef) {
    const std::uint64_t target = decodeU64(payload.data());
    ByteBuffer content;
    if ((f.flags & kFrameFlagBaseRef) != 0) {
      bool ok = false;
      content = baseChunkContent(target, f.contentHash, ok);
      if (!ok) return damaged();
    } else {
      if (!followRef || target == index) return damaged();  // depth-1 only
      content = chunkContent(target, /*followRef=*/false);
      if (fnv1a64(content) != f.contentHash) return damaged();
    }
    return content;
  }

  ByteBuffer content;
  if (f.codecId == static_cast<std::uint8_t>(CodecId::Raw)) {
    content = std::move(payload);
  } else {
    const double t0 = nowSeconds();
    try {
      content = lzDecompress(payload, f.rawBytes);
    } catch (const FormatError&) {
      g_codecTls.seconds += nowSeconds() - t0;
      return damaged();
    }
    g_codecTls.seconds += nowSeconds() - t0;
  }
  if (content.size() != f.rawBytes) return damaged();
  content.resize(static_cast<std::size_t>(c), 0);  // zero-pad past rawBytes
  return content;
}

ByteBuffer CodecStorage::baseChunkContent(std::uint64_t index,
                                          std::uint64_t wantHash, bool& ok) {
  ok = false;
  if (base_ == nullptr || base_->spec_.chunkBytes != spec_.chunkBytes)
    return {};
  ByteBuffer content;
  {
    // Lock order is strictly file -> base; a base never locks a derived
    // file, so this nesting cannot deadlock.
    std::lock_guard<std::mutex> lk(base_->mu_);
    content = base_->chunkContent(index, /*followRef=*/false);
  }
  if (content.size() != spec_.chunkBytes) return {};
  // Re-verify the recorded content hash: a mutated or damaged base must
  // surface as detectable damage, never as silently wrong bytes.
  if (fnv1a64(content) != wantHash) return {};
  ok = true;
  return content;
}

void CodecStorage::forgetChunkLocked(std::uint64_t index) {
  if (const auto it = hashByChunk_.find(index); it != hashByChunk_.end()) {
    if (const auto own = ownHash_.find(it->second);
        own != ownHash_.end() && own->second == index)
      ownHash_.erase(own);
    hashByChunk_.erase(it);
  }
  if (const auto it = refTargetByChunk_.find(index);
      it != refTargetByChunk_.end()) {
    const auto range = refsByTarget_.equal_range(it->second);
    for (auto r = range.first; r != range.second; ++r) {
      if (r->second == index) {
        refsByTarget_.erase(r);
        break;
      }
    }
    refTargetByChunk_.erase(it);
  }
}

void CodecStorage::materializeRefsTo(std::uint64_t target) {
  std::vector<std::uint64_t> refs;
  const auto range = refsByTarget_.equal_range(target);
  for (auto it = range.first; it != range.second; ++it)
    refs.push_back(it->second);
  for (const std::uint64_t r : refs) {
    // Resolve through the target's still-present content, then re-seal the
    // ref as an independent data frame before the target changes.
    ByteBuffer content = chunkContent(r, /*followRef=*/true);
    forgetChunkLocked(r);
    writeDataFrame(r, content);
  }
}

void CodecStorage::writeDataFrame(std::uint64_t index,
                                  std::span<const Byte> content) {
  Frame f;
  f.kind = kKindData;
  f.chunkIndex = index;
  f.rawBytes = static_cast<std::uint32_t>(content.size());
  f.contentHash = fnv1a64(content);

  ByteBuffer packed;
  bool useLz = false;
  if (spec_.codec == CodecId::Lz) {
    const double t0 = nowSeconds();
    useLz = lzCompress(content, packed);
    g_codecTls.seconds += nowSeconds() - t0;
  }
  f.codecId = static_cast<std::uint8_t>(useLz ? CodecId::Lz : CodecId::Raw);

  ByteBuffer frame(kFrameHeaderBytes + (useLz ? packed.size() : content.size()));
  if (useLz) {
    f.storedBytes = static_cast<std::uint32_t>(packed.size());
    f.payloadCrc = crc32(packed);
    std::memcpy(frame.data() + kFrameHeaderBytes, packed.data(),
                packed.size());
  } else {
    f.storedBytes = f.rawBytes;
    f.payloadCrc = crc32(content);
    std::memcpy(frame.data() + kFrameHeaderBytes, content.data(),
                content.size());
  }
  f.encode(frame.data());
  // One contiguous write: header and payload land (or tear) together.
  inner_->writeAt(frameOffset(index), frame);
  g_codecTls.storedBytes += frame.size();

  if (f.rawBytes == spec_.chunkBytes &&
      ownHash_.emplace(f.contentHash, index).second)
    hashByChunk_.emplace(index, f.contentHash);
}

void CodecStorage::writeChunk(std::uint64_t index,
                              std::span<const Byte> content) {
  // Own refs resolving through this chunk must become self-contained
  // before its bytes change; then this chunk's old nominations go away.
  materializeRefsTo(index);
  forgetChunkLocked(index);

  if (content.size() == spec_.chunkBytes) {
    const std::uint64_t hash = fnv1a64(content);
    std::uint64_t target = 0;
    bool haveOwn = false;
    bool haveBase = false;
    if (const auto it = ownHash_.find(hash);
        it != ownHash_.end() && it->second != index) {
      // Hashes only nominate; bytes decide.
      const ByteBuffer existing = chunkContent(it->second, /*followRef=*/false);
      if (existing.size() == content.size() &&
          std::memcmp(existing.data(), content.data(), content.size()) == 0) {
        target = it->second;
        haveOwn = true;
      }
    }
    if (!haveOwn) {
      if (const auto it = baseHash_.find(hash); it != baseHash_.end()) {
        bool ok = false;
        const ByteBuffer existing = baseChunkContent(it->second, hash, ok);
        if (ok && existing.size() == content.size() &&
            std::memcmp(existing.data(), content.data(), content.size()) ==
                0) {
          target = it->second;
          haveBase = true;
        }
      }
    }
    if (haveOwn || haveBase) {
      Frame f;
      f.kind = kKindRef;
      f.flags = haveBase ? kFrameFlagBaseRef : 0;
      f.chunkIndex = index;
      f.rawBytes = spec_.chunkBytes;
      f.storedBytes = 8;
      f.contentHash = hash;
      ByteBuffer frame(kFrameHeaderBytes + 8);
      encodeU64(target, frame.data() + kFrameHeaderBytes);
      f.payloadCrc =
          crc32(std::span<const Byte>(frame.data() + kFrameHeaderBytes, 8));
      f.encode(frame.data());
      inner_->writeAt(frameOffset(index), frame);
      g_codecTls.storedBytes += frame.size();
      ++g_codecTls.dedupHits;
      if (haveOwn) {
        refsByTarget_.emplace(target, index);
        refTargetByChunk_.emplace(index, target);
      }
      return;
    }
  }
  writeDataFrame(index, content);
}

void CodecStorage::writeAt(std::uint64_t offset, std::span<const Byte> data) {
  if (data.empty()) return;
  const std::uint64_t c = spec_.chunkBytes;
  std::lock_guard<std::mutex> lk(mu_);
  g_codecTls.rawBytes += data.size();
  const std::uint64_t end = offset + data.size();
  const std::uint64_t newLogical = std::max(logicalSize_, end);
  std::uint64_t pos = offset;
  while (pos < end) {
    const std::uint64_t idx = pos / c;
    const std::uint64_t chunkStart = idx * c;
    const std::uint64_t segEnd = std::min(end, chunkStart + c);
    const std::size_t segLen = static_cast<std::size_t>(segEnd - pos);
    const std::size_t inChunk = static_cast<std::size_t>(pos - chunkStart);
    // rawBytes must cover every logical byte the chunk holds after this
    // write — including bytes owned by OTHER nodes' earlier writes.
    const std::uint32_t raw =
        static_cast<std::uint32_t>(std::min(c, newLogical - chunkStart));
    if (inChunk == 0 && segLen == raw) {
      writeChunk(idx, data.subspan(static_cast<std::size_t>(pos - offset),
                                   segLen));
    } else {
      ByteBuffer cur = chunkContent(idx, /*followRef=*/true);
      std::memcpy(cur.data() + inChunk,
                  data.data() + static_cast<std::size_t>(pos - offset),
                  segLen);
      writeChunk(idx, std::span<const Byte>(cur.data(), raw));
    }
    pos = segEnd;
  }
  logicalSize_ = newLogical;
}

std::uint64_t CodecStorage::readAt(std::uint64_t offset, std::span<Byte> out) {
  if (out.empty()) return 0;
  const std::uint64_t c = spec_.chunkBytes;
  std::lock_guard<std::mutex> lk(mu_);
  if (offset >= logicalSize_) return 0;
  const std::uint64_t n = std::min<std::uint64_t>(out.size(),
                                                  logicalSize_ - offset);
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + n;
  while (pos < end) {
    const std::uint64_t idx = pos / c;
    const std::uint64_t chunkStart = idx * c;
    const std::uint64_t segEnd = std::min(end, chunkStart + c);
    const std::size_t segLen = static_cast<std::size_t>(segEnd - pos);
    const ByteBuffer content = chunkContent(idx, /*followRef=*/true);
    std::memcpy(out.data() + static_cast<std::size_t>(pos - offset),
                content.data() + static_cast<std::size_t>(pos - chunkStart),
                segLen);
    pos = segEnd;
  }
  return n;
}

std::uint64_t CodecStorage::size() {
  std::lock_guard<std::mutex> lk(mu_);
  return logicalSize_;
}

void CodecStorage::truncate(std::uint64_t newSize) {
  const std::uint64_t c = spec_.chunkBytes;
  std::lock_guard<std::mutex> lk(mu_);
  if (newSize == logicalSize_) return;
  if (newSize > logicalSize_) {
    // Extend with zeros (MemStorage resize-grow semantics): pin the new
    // size by re-sealing the new tail chunk; intermediate chunks stay
    // holes and read as zeros.
    const std::uint64_t tail = (newSize - 1) / c;
    ByteBuffer content = chunkContent(tail, /*followRef=*/true);
    const std::uint32_t raw =
        static_cast<std::uint32_t>(std::min(c, newSize - tail * c));
    writeChunk(tail, std::span<const Byte>(content.data(), raw));
    logicalSize_ = newSize;
    return;
  }
  const std::uint64_t newCount = newSize == 0 ? 0 : (newSize - 1) / c + 1;
  // Refs are not ordered by index, so a surviving ref may target a chunk
  // being dropped — make those survivors self-contained first.
  std::vector<std::uint64_t> doomedTargets;
  for (const auto& [target, ref] : refsByTarget_) {
    if (target >= newCount && ref < newCount) doomedTargets.push_back(target);
  }
  std::sort(doomedTargets.begin(), doomedTargets.end());
  doomedTargets.erase(
      std::unique(doomedTargets.begin(), doomedTargets.end()),
      doomedTargets.end());
  for (const std::uint64_t t : doomedTargets) materializeRefsTo(t);
  std::vector<std::uint64_t> dropped;
  for (const auto& [idx, hash] : hashByChunk_) {
    (void)hash;
    if (idx >= newCount) dropped.push_back(idx);
  }
  for (const auto& [idx, target] : refTargetByChunk_) {
    (void)target;
    if (idx >= newCount) dropped.push_back(idx);
  }
  for (const std::uint64_t idx : dropped) forgetChunkLocked(idx);
  inner_->truncate(newCount == 0 ? headerBytes_ : frameOffset(newCount));
  logicalSize_ = newSize;
  if (newSize != 0) {
    // Re-seal the tail so its rawBytes matches the shrunk size (also
    // covers a tail that was a hole: the zero frame pins the size for
    // a later attach()).
    const std::uint64_t tail = newCount - 1;
    ByteBuffer content = chunkContent(tail, /*followRef=*/true);
    const std::uint32_t raw = static_cast<std::uint32_t>(newSize - tail * c);
    writeChunk(tail, std::span<const Byte>(content.data(), raw));
  }
}

void CodecStorage::sync() { inner_->sync(); }

std::shared_ptr<StorageBackend> wrapCodecIfFramed(
    std::shared_ptr<StorageBackend> storage,
    const std::function<std::shared_ptr<StorageBackend>(const std::string&)>&
        resolveBase) {
  if (storage == nullptr || !CodecStorage::isFramed(*storage)) return storage;
  std::shared_ptr<StorageBackend> baseInner;
  if (resolveBase) {
    const std::string baseName = CodecStorage::baseNameOf(*storage);
    if (!baseName.empty()) baseInner = resolveBase(baseName);
  }
  return CodecStorage::attach(std::move(storage), std::move(baseInner));
}

}  // namespace pcxx::pfs
