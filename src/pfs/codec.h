// Chunk-codec stage for the pfs layer: transparent compression + dedup.
//
// CodecStorage is a StorageBackend DECORATOR that sits between
// pfs::ParallelFile and the real byte store (MemStorage / PosixStorage).
// The logical byte space every upper layer sees — record offsets, index
// footers, salvage truncation points, the perf model's size argument — is
// unchanged; only the bytes moved through the inner backend shrink. Because
// the wrapper lives BELOW ParallelFile, fault hooks, RetryPolicy,
// CrashInjected durable-prefix semantics and FaultPlan op indices are all
// untouched: a hook-granted prefix of k logical bytes is applied through
// the codec in full before control returns, exactly like the raw path.
// (De)compression runs on whatever thread issues the storage op, so the
// pcxx::aio flusher/prefetcher threads do the codec work off the node's
// critical path for free.
//
// Physical layout (all integers little-endian):
//
//   FileHeader (32 bytes + baseName):
//     0   u8[8]  magic          "PCXXCDC1"
//     8   u32    version        1
//     12  u32    flags          0 (reserved; unknown flags -> not framed)
//     16  u32    chunkBytes     logical chunk size C
//     20  u32    defaultCodec   CodecId the writer prefers
//     24  u32    baseNameBytes  dedup base file name length (0 = none)
//     28  u32    headerCrc32    CRC-32 of bytes [0, 28)
//     32  u8[baseNameBytes]     pfs name of the dedup base file
//
//   Frames at FIXED offsets — chunk i lives at
//       headerBytes + i * (kFrameHeaderBytes + C)
//   so any chunk is addressable in O(1) with no directory and no scan.
//   Each frame reserves C payload bytes; the stored payload occupies a
//   prefix of that region. The savings are therefore in bytes MOVED
//   through the backend (the bandwidth the paper's tables are bound by),
//   not in the file's apparent extent.
//
//   FrameHeader (40 bytes):
//     0   u32    frameMagic     "PCDF" (0x46444350)
//     4   u8     kind           0 = data, 1 = ref (dedup)
//     5   u8     codecId        0 = raw, 1 = lz (data frames)
//     6   u16    frameFlags     bit 0: ref targets the dedup BASE file
//     8   u64    chunkIndex     must equal the frame's own index
//     16  u32    rawBytes       logical bytes held by the chunk (<= C)
//     20  u32    storedBytes    payload bytes present after the header
//     24  u64    contentHash    FNV-1a-64 of the raw chunk content
//     32  u32    payloadCrc32   CRC-32 of the STORED payload bytes
//     36  u32    headerCrc32    CRC-32 of bytes [0, 36)
//
// Trust boundary: payloadCrc32 is verified on the compressed bytes BEFORE
// the decoder sees them, so hostile input never reaches the decompressor;
// the decoder itself is fully bounds-checked and its output length must
// equal rawBytes. Any violation (magic, header CRC, size bounds, payload
// CRC, decode mismatch, unresolvable ref) makes the chunk read as ZEROS
// and ticks the damaged-chunk counter — damage then surfaces at the
// d/stream record layer (header CRC / data CRC / framing) exactly like
// uncompressed bit rot, so salvage verdicts and --verify results stay
// byte-identical to the uncompressed path.
//
// Dedup (kind = ref): a full chunk whose content hash matches an already
// sealed DATA frame — in this file or in the named base file (the previous
// checkpoint epoch) — is stored as an 8-byte reference to that chunk after
// a full byte comparison (hashes only nominate, bytes decide). Refs only
// ever target data frames, so cross-file dependencies are depth-1; reads
// re-verify the target's content hash, so a mutated base surfaces as
// detectable damage, never silent corruption. Overwriting a chunk that own
// refs point at first materializes those refs as data frames.
//
// Honest caveat (documented in docs/FORMAT.md): with a codec active the
// torn-write damage unit of a REAL crash is the chunk — a tear mid-rewrite
// of a shared tail chunk can damage up to chunkBytes-1 previously durable
// bytes. Detection and skip at the record layer are unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pfs/backend.h"

namespace pcxx::pfs {

/// Codec identifiers as stored in frame headers.
enum class CodecId : std::uint8_t {
  Raw = 0,  ///< stored bytes are the raw chunk content
  Lz = 1,   ///< LZ-class block compression (lzCompress/lzDecompress)
};

/// What a Create-mode open asks the file system to do about framing.
struct CodecSpec {
  /// false = plain file, byte-identical to the pre-codec format.
  bool enabled = false;
  CodecId codec = CodecId::Lz;
  /// Logical chunk size; larger chunks compress better, tear wider.
  std::uint32_t chunkBytes = 64 * 1024;
  /// pfs name of a file whose sealed chunks may be dedup targets
  /// (CheckpointManager wires the previous epoch here). Empty = off.
  std::string dedupBase;
};

/// Per-thread codec accounting. CodecStorage updates the calling thread's
/// slot; ParallelFile snapshots deltas around each storage op and folds
/// them into node metrics (sync paths) or BgIoStats (aio threads), keeping
/// the obs owner-write discipline intact. Values are monotone.
struct CodecThreadStats {
  std::uint64_t rawBytes = 0;      ///< logical bytes written through a codec
  std::uint64_t storedBytes = 0;   ///< frame header+payload bytes stored
  std::uint64_t dedupHits = 0;     ///< chunks written as ref frames
  std::uint64_t damagedChunks = 0; ///< chunk reads that fell back to zeros
  double seconds = 0.0;            ///< wall seconds in compress/decompress
};

/// The calling thread's codec counters (monotone; snapshot-and-diff).
const CodecThreadStats& codecThreadStats();

/// LZ-class block compression (LZ4-style token stream: literal/match
/// nibbles with 255-run extensions, 2-byte match offsets, min match 4).
/// Returns true and fills `out` when the encoding is strictly smaller than
/// `src`; returns false (out unspecified) for incompressible input.
bool lzCompress(std::span<const Byte> src, ByteBuffer& out);

/// Bounds-checked decompression of `src` into exactly `rawBytes` output
/// bytes. Throws FormatError on any malformed input (never reads or
/// writes out of bounds). Safe on hostile input.
ByteBuffer lzDecompress(std::span<const Byte> src, std::uint64_t rawBytes);

/// The transparent chunk-codec decorator. All methods are thread-safe.
class CodecStorage final : public StorageBackend {
 public:
  static constexpr std::uint64_t kFileHeaderBytes = 32;
  static constexpr std::uint64_t kFrameHeaderBytes = 40;

  /// Does `inner` hold a codec-framed file (magic + intact header)?
  static bool isFramed(StorageBackend& inner);

  /// The dedup base name recorded in a framed file's header ("" if none
  /// or not framed).
  static std::string baseNameOf(StorageBackend& inner);

  /// Wrap a fresh (truncated) inner store: writes the codec file header.
  /// `baseInner` is the dedup base's raw store (may be null; must itself
  /// be codec-framed to contribute dedup targets).
  static std::shared_ptr<CodecStorage> create(
      std::shared_ptr<StorageBackend> inner, const CodecSpec& spec,
      std::shared_ptr<StorageBackend> baseInner);

  /// Wrap an existing framed file (scans frame headers once to recover
  /// the logical size and the dedup maps). Throws FormatError when the
  /// file header is not intact.
  static std::shared_ptr<CodecStorage> attach(
      std::shared_ptr<StorageBackend> inner,
      std::shared_ptr<StorageBackend> baseInner);

  // -- StorageBackend (logical byte space) ----------------------------------
  void writeAt(std::uint64_t offset, std::span<const Byte> data) override;
  std::uint64_t readAt(std::uint64_t offset, std::span<Byte> out) override;
  std::uint64_t size() override;
  void truncate(std::uint64_t newSize) override;
  void sync() override;

  const CodecSpec& spec() const { return spec_; }
  /// The raw store underneath (tests corrupt physical frame bytes here).
  StorageBackend& inner() { return *inner_; }
  /// Physical offset of chunk `index`'s frame header in the inner store.
  std::uint64_t frameOffset(std::uint64_t index) const {
    return headerBytes_ + index * (kFrameHeaderBytes + spec_.chunkBytes);
  }

 private:
  CodecStorage(std::shared_ptr<StorageBackend> inner, CodecSpec spec,
               std::uint64_t headerBytes,
               std::shared_ptr<CodecStorage> base);

  struct Frame;  // decoded frame header (codec.cpp)
  enum class FrameState { Absent, Valid, Damaged };

  void scanExisting();  // rebuild logicalSize_/maps from inner frames
  FrameState readFrame(std::uint64_t index, Frame& f);
  /// Raw content of chunk `index`, always `chunkBytes` long (zero-padded
  /// past rawBytes; all zeros + damage tick on any integrity failure).
  /// `followRef` bounds ref resolution to depth 1.
  ByteBuffer chunkContent(std::uint64_t index, bool followRef);
  /// Content of a chunk in the BASE file (data frames only, hash-checked).
  ByteBuffer baseChunkContent(std::uint64_t index, std::uint64_t wantHash,
                              bool& ok);
  /// Seal `content` as chunk `index`: dedup probe, then ref or data frame.
  void writeChunk(std::uint64_t index, std::span<const Byte> content);
  /// Seal `content` as a DATA frame (no dedup probe; used by writeChunk
  /// and by ref materialization, which must not re-emit a ref).
  void writeDataFrame(std::uint64_t index, std::span<const Byte> content);
  void materializeRefsTo(std::uint64_t target);
  void forgetChunkLocked(std::uint64_t index);  // drop maps for an overwrite

  std::shared_ptr<StorageBackend> inner_;
  CodecSpec spec_;
  std::uint64_t headerBytes_ = 0;
  std::shared_ptr<CodecStorage> base_;  // dedup base view (depth 1)
  std::mutex mu_;
  std::uint64_t logicalSize_ = 0;
  /// content hash -> chunk index of a sealed full DATA frame in this file.
  std::unordered_map<std::uint64_t, std::uint64_t> ownHash_;
  /// content hash -> chunk index of a full data frame in the base file.
  std::unordered_map<std::uint64_t, std::uint64_t> baseHash_;
  /// chunk index -> hash, for exactly the entries this file put in
  /// ownHash_ (so overwrites erase precisely their own nomination).
  std::unordered_map<std::uint64_t, std::uint64_t> hashByChunk_;
  /// own ref chunk indices keyed by their (own-file) target chunk.
  std::unordered_multimap<std::uint64_t, std::uint64_t> refsByTarget_;
  /// own ref chunk -> its own-file target (reverse of refsByTarget_).
  std::unordered_map<std::uint64_t, std::uint64_t> refTargetByChunk_;
};

/// Probe `storage` for codec framing and wrap it when present; otherwise
/// return it unchanged. `resolveBase` (optional) maps the header's dedup
/// base name to that file's raw store. Offline consumers (dsdump, the
/// inspect convenience overloads) use this since they construct
/// PosixStorage directly rather than opening through a Pfs.
std::shared_ptr<StorageBackend> wrapCodecIfFramed(
    std::shared_ptr<StorageBackend> storage,
    const std::function<std::shared_ptr<StorageBackend>(const std::string&)>&
        resolveBase = nullptr);

}  // namespace pcxx::pfs
