// Fault injection and operation-recording hooks for the parallel file
// system.
//
// Tests install a FaultHook on a Pfs instance; the hook runs before every
// storage access and may throw IoError to simulate device failures, or fill
// in OpContext::outcome to request a partial completion / a crash after a
// durable prefix (torn writes). An observe hook (Pfs::setObserveHook) runs
// *after* every access with the modeled duration filled in, so the same
// OpContext infrastructure feeds both fault injection and metrics.
// OpRecorder is the canonical record-only consumer for either hook point;
// FaultPlan (fault_plan.h) is the canonical deterministic producer.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace pcxx::pfs {

enum class OpKind { Read, Write };

/// Thrown when a fault hook requests a crash: the storage holds exactly the
/// bytes durably written before the crash point and the run unwinds. Fatal
/// by definition — never retried by a RetryPolicy.
class CrashInjected : public Error {
 public:
  explicit CrashInjected(const std::string& what)
      : Error("crash injected: " + what) {}
};

/// A fault hook's verdict on one storage access, reported through
/// OpContext::outcome instead of throwing. Lowering completeBytes makes the
/// access complete only that prefix (a short write / short read); setting
/// crash additionally unwinds the run with CrashInjected *after* the prefix
/// was applied, so the storage reflects exactly the durable bytes.
struct OpOutcome {
  std::uint64_t completeBytes = 0;  ///< preset to the request size by pfs
  bool crash = false;               ///< throw CrashInjected after the prefix
};

/// Context passed to the fault and observe hooks around each storage access.
struct OpContext {
  std::string file;     ///< pfs file name
  OpKind kind;          ///< read or write
  std::uint64_t offset; ///< byte offset in the file
  std::uint64_t bytes;  ///< request size
  int nodeId;           ///< issuing node
  std::uint64_t opIndex;///< global op counter for this Pfs instance
  /// Virtual seconds the issuing node spent in the operation (per the perf
  /// model, including collective synchronization for ordered transfers).
  /// Filled only for observe hooks, which run after the access; fault hooks
  /// run before it and always see 0.
  double opDurationSeconds = 0.0;
  /// Non-null only while a *fault* hook runs: the hook may lower
  /// outcome->completeBytes or set outcome->crash instead of throwing.
  /// Observe hooks and OpRecorder always see null.
  OpOutcome* outcome = nullptr;
};

/// Runs around each storage access; fault hooks may throw (e.g. IoError) to
/// inject a failure, or write through OpContext::outcome to request a
/// partial completion or crash. Must be thread-safe: nodes call
/// concurrently.
using FaultHook = std::function<void(const OpContext&)>;

/// Thread-safe operation recorder: install `recorder.hook()` as a fault or
/// observe hook and assert on the captured contexts afterwards, instead of
/// writing a bespoke mutex-plus-vector lambda per test.
class OpRecorder {
 public:
  /// A hook that appends every context it sees to this recorder.
  FaultHook hook() {
    return [this](const OpContext& op) { record(op); };
  }

  void record(const OpContext& op) {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(op);
    // The outcome slot lives on the caller's stack; never keep it.
    ops_.back().outcome = nullptr;
  }

  std::vector<OpContext> ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_;
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_.size();
  }

  std::uint64_t totalBytes(OpKind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t sum = 0;
    for (const OpContext& op : ops_) {
      if (op.kind == kind) sum += op.bytes;
    }
    return sum;
  }

  /// Sum of opDurationSeconds over all recorded contexts (meaningful when
  /// installed as an observe hook).
  double totalSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    double sum = 0.0;
    for (const OpContext& op : ops_) sum += op.opDurationSeconds;
    return sum;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<OpContext> ops_;
};

}  // namespace pcxx::pfs
