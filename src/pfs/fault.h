// Fault injection hooks for the parallel file system.
//
// Tests install a FaultHook on a Pfs instance; the hook runs before every
// storage access and may throw IoError to simulate device failures, or
// record operations to assert on access patterns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace pcxx::pfs {

enum class OpKind { Read, Write };

/// Context passed to the fault hook before each storage access.
struct OpContext {
  std::string file;     ///< pfs file name
  OpKind kind;          ///< read or write
  std::uint64_t offset; ///< byte offset in the file
  std::uint64_t bytes;  ///< request size
  int nodeId;           ///< issuing node
  std::uint64_t opIndex;///< global op counter for this Pfs instance
};

/// Runs before each storage access; may throw (e.g. IoError) to inject a
/// failure. Must be thread-safe: nodes call concurrently.
using FaultHook = std::function<void(const OpContext&)>;

}  // namespace pcxx::pfs
