#include "pfs/fault_plan.h"

#include <algorithm>

#include "util/faultspec.h"
#include "util/strfmt.h"

namespace pcxx::pfs {

FaultPlan::FaultPlan(std::uint64_t seed) : rng_(seed) {}

FaultPlan::FaultPlan(FaultPlan&& other) noexcept : rng_(0) {
  std::lock_guard<std::mutex> lock(other.mu_);
  rng_ = other.rng_;
  clauses_ = std::move(other.clauses_);
  fired_ = other.fired_;
}

FaultPlan& FaultPlan::failAtOp(std::uint64_t opIndex) {
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.push_back(Clause{Shape::FailAt, opIndex, 0.0, 0, {}, {}});
  return *this;
}

FaultPlan& FaultPlan::failWithProbability(double p) {
  PCXX_REQUIRE(p >= 0.0 && p <= 1.0,
               "fault probability must lie in [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.push_back(Clause{Shape::FailProb, 0, p, 0, {}, {}});
  return *this;
}

FaultPlan& FaultPlan::shortCompletionAtOp(std::uint64_t opIndex,
                                          std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.push_back(Clause{Shape::ShortAt, opIndex, 0.0, bytes, {}, {}});
  return *this;
}

FaultPlan& FaultPlan::crashAtOp(std::uint64_t opIndex,
                                std::uint64_t durableBytes) {
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.push_back(
      Clause{Shape::CrashAt, opIndex, 0.0, durableBytes, {}, {}});
  return *this;
}

FaultPlan& FaultPlan::onlyKind(OpKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  PCXX_REQUIRE(!clauses_.empty(), "onlyKind requires a preceding clause");
  clauses_.back().kind = kind;
  return *this;
}

FaultPlan& FaultPlan::onlyFile(std::string fsName) {
  std::lock_guard<std::mutex> lock(mu_);
  PCXX_REQUIRE(!clauses_.empty(), "onlyFile requires a preceding clause");
  clauses_.back().file = std::move(fsName);
  return *this;
}

FaultHook FaultPlan::hook() {
  return [this](const OpContext& op) { apply(op); };
}

bool FaultPlan::matches(const Clause& c, const OpContext& op) {
  if (c.kind.has_value() && *c.kind != op.kind) return false;
  if (c.file.has_value() && *c.file != op.file) return false;
  switch (c.shape) {
    case Shape::FailAt:
    case Shape::ShortAt:
    case Shape::CrashAt:
      return op.opIndex == c.opIndex;
    case Shape::FailProb:
      // One deterministic draw per (clause, op) evaluation; the lock in
      // apply() serializes access to the generator.
      return rng_.uniform01() < c.probability;
  }
  return false;
}

void FaultPlan::apply(const OpContext& op) {
  Clause hit;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Clause& c : clauses_) {
      if (matches(c, op)) {
        hit = c;
        found = true;
        ++fired_;
        break;
      }
    }
  }
  if (!found) return;
  switch (hit.shape) {
    case Shape::FailAt:
      throw IoError(strfmt("fault plan: injected transient failure at op "
                           "%llu ('%s')",
                           static_cast<unsigned long long>(op.opIndex),
                           op.file.c_str()));
    case Shape::FailProb:
      throw IoError(strfmt("fault plan: injected probabilistic failure at "
                           "op %llu ('%s')",
                           static_cast<unsigned long long>(op.opIndex),
                           op.file.c_str()));
    case Shape::ShortAt:
      if (op.outcome != nullptr) {
        op.outcome->completeBytes =
            std::min(op.outcome->completeBytes, hit.bytes);
      }
      return;
    case Shape::CrashAt:
      if (op.outcome != nullptr) {
        op.outcome->completeBytes =
            std::min(op.outcome->completeBytes, hit.bytes);
        op.outcome->crash = true;
        return;
      }
      // Installed somewhere without an outcome slot: crash with nothing
      // applied rather than silently skipping the fault.
      throw CrashInjected(strfmt("at op %llu ('%s')",
                                 static_cast<unsigned long long>(op.opIndex),
                                 op.file.c_str()));
  }
}

std::uint64_t FaultPlan::firedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::size_t FaultPlan::clauseCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clauses_.size();
}

// ---------------------------------------------------------------------------
// Spec-string parsing
// ---------------------------------------------------------------------------

namespace {

// Clause tokenization + number validation live in util/faultspec.h, shared
// with rt::ChaosPlan so both planes keep one grammar style and error voice.
constexpr const char* kPlane = "fault plan";

[[noreturn]] void badSpec(const std::string& clause, const char* why) {
  spec::badClause(kPlane, clause, why);
}

std::uint64_t parseU64(const std::string& clause, const std::string& text) {
  return spec::clauseU64(kPlane, clause, text);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan(seed);
  for (const std::string& clause : spec::splitClauses(spec)) {
    std::optional<OpKind> kind;
    std::string body = clause;
    if (body.rfind("read:", 0) == 0) {
      kind = OpKind::Read;
      body = body.substr(5);
    } else if (body.rfind("write:", 0) == 0) {
      kind = OpKind::Write;
      body = body.substr(6);
    }

    if (body.rfind("fail@", 0) == 0) {
      plan.failAtOp(parseU64(clause, body.substr(5)));
    } else if (body.rfind("fail%", 0) == 0) {
      plan.failWithProbability(
          spec::clauseDouble(kPlane, clause, body.substr(5), 0.0, 1.0,
                             "expected a probability in [0, 1]"));
    } else if (body.rfind("short@", 0) == 0) {
      const std::string args = body.substr(6);
      const std::size_t colon = args.find(':');
      if (colon == std::string::npos) {
        badSpec(clause, "short@N:K needs a completed-byte count");
      }
      plan.shortCompletionAtOp(parseU64(clause, args.substr(0, colon)),
                               parseU64(clause, args.substr(colon + 1)));
    } else if (body.rfind("crash@", 0) == 0) {
      const std::string args = body.substr(6);
      const std::size_t colon = args.find(':');
      if (colon == std::string::npos) {
        plan.crashAtOp(parseU64(clause, args));
      } else {
        plan.crashAtOp(parseU64(clause, args.substr(0, colon)),
                       parseU64(clause, args.substr(colon + 1)));
      }
    } else {
      badSpec(clause, "unknown shape (want fail@N, fail%p, short@N:K, "
                      "crash@N[:K], optionally prefixed read:/write:)");
    }
    if (kind.has_value()) plan.onlyKind(*kind);
  }
  if (plan.clauseCount() == 0) {
    throw UsageError("fault plan spec '" + spec + "' contains no clauses");
  }
  return plan;
}

}  // namespace pcxx::pfs
