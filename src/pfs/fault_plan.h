// Deterministic fault schedules for the parallel file system.
//
// A FaultPlan replaces the hand-rolled fault-hook lambdas tests used to
// write: it is a seeded, thread-safe schedule of injected failures that can
// be installed directly as a Pfs fault hook.  Four fault shapes are
// supported (composable; the first matching clause per op wins, evaluated
// in the order they were added):
//
//   * transient IoError at a specific op index      failAtOp(n)
//   * transient IoError with probability p          failWithProbability(p)
//   * short completion: op applies only k bytes     shortCompletionAtOp(n, k)
//   * crash after k durable bytes of op n           crashAtOp(n[, k])
//
// Probabilistic clauses draw from a PRNG seeded at construction — no
// wall-clock anywhere — so a plan replays identically run after run.
// Clauses may be restricted to reads or writes and to one pfs file name.
//
// Plans also parse from a compact spec string (the grammar documented in
// docs/FAULTS.md), so CLI tools and scripts can describe fault schedules:
//
//   "fail@3"                 transient IoError at op 3
//   "write:fail%0.1"         each write fails with p = 0.1
//   "short@5:16"             op 5 completes only 16 bytes
//   "crash@7"                crash before op 7 applies anything
//   "crash@7:16"             op 7 applies 16 bytes, then crash
//   "fail@3;crash@9"         clauses compose, separated by ';'
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pfs/fault.h"
#include "util/rng.h"

namespace pcxx::pfs {

/// A seeded, deterministic schedule of injected storage faults.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0);

  /// Movable (for parse()); move before calling hook() — the hook binds
  /// the plan's address. Not copyable.
  FaultPlan(FaultPlan&& other) noexcept;
  FaultPlan& operator=(FaultPlan&&) = delete;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Parse a plan from a spec string (grammar above / docs/FAULTS.md).
  /// Throws UsageError on a malformed spec.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed = 0);

  // -- clause builders (chainable) ------------------------------------------

  /// Throw a transient IoError when the global op counter equals `opIndex`.
  FaultPlan& failAtOp(std::uint64_t opIndex);

  /// Throw a transient IoError on each matching op with probability `p`
  /// (seeded PRNG; deterministic given the seed and the op sequence).
  FaultPlan& failWithProbability(double p);

  /// Complete only `bytes` of the request at op `opIndex` (a short write
  /// or short read), without throwing.
  FaultPlan& shortCompletionAtOp(std::uint64_t opIndex, std::uint64_t bytes);

  /// Crash at op `opIndex`: the op applies `durableBytes` of its request
  /// (default 0 — nothing) and then the run unwinds via CrashInjected.
  FaultPlan& crashAtOp(std::uint64_t opIndex, std::uint64_t durableBytes = 0);

  /// Restrict the most recently added clause to reads or writes.
  FaultPlan& onlyKind(OpKind kind);

  /// Restrict the most recently added clause to one pfs file name.
  FaultPlan& onlyFile(std::string fsName);

  // -- use ------------------------------------------------------------------

  /// The hook to install via Pfs::setFaultHook. The returned hook shares
  /// this plan's state; the plan must outlive it.
  FaultHook hook();

  /// Apply the plan to one op (what the hook does). Thread-safe.
  void apply(const OpContext& op);

  /// How many faults this plan has injected so far (all shapes).
  std::uint64_t firedCount() const;

  /// Number of clauses (parsed or built).
  std::size_t clauseCount() const;

 private:
  enum class Shape { FailAt, FailProb, ShortAt, CrashAt };

  struct Clause {
    Shape shape;
    std::uint64_t opIndex = 0;      ///< FailAt / ShortAt / CrashAt
    double probability = 0.0;       ///< FailProb
    std::uint64_t bytes = 0;        ///< ShortAt: completed; CrashAt: durable
    std::optional<OpKind> kind;     ///< restrict to reads or writes
    std::optional<std::string> file;///< restrict to one pfs file
  };

  bool matches(const Clause& c, const OpContext& op);

  mutable std::mutex mu_;
  Rng rng_;
  std::vector<Clause> clauses_;
  std::uint64_t fired_ = 0;
};

}  // namespace pcxx::pfs
