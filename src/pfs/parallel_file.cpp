#include "pfs/parallel_file.h"

#include <algorithm>
#include <filesystem>

#include "util/error.h"
#include "util/log.h"

namespace pcxx::pfs {

// ---------------------------------------------------------------------------
// ParallelFile
// ---------------------------------------------------------------------------

ParallelFile::ParallelFile(Pfs* fs, std::string fsName,
                           std::shared_ptr<StorageBackend> storage)
    : fs_(fs), name_(std::move(fsName)), storage_(std::move(storage)) {}

std::uint64_t ParallelFile::runFaultHook(OpKind kind, std::uint64_t offset,
                                         std::uint64_t bytes, int nodeId) {
  const std::uint64_t index = fs_->opCounter_.fetch_add(1);
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(fs_->hookMu_);
    hook = fs_->faultHook_;
  }
  if (hook) {
    hook(OpContext{name_, kind, offset, bytes, nodeId, index});
  }
  return index;
}

void ParallelFile::runObserveHook(OpKind kind, std::uint64_t offset,
                                  std::uint64_t bytes, int nodeId,
                                  std::uint64_t opIndex, double duration) {
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(fs_->hookMu_);
    hook = fs_->observeHook_;
  }
  if (hook) {
    OpContext ctx{name_, kind, offset, bytes, nodeId, opIndex};
    ctx.opDurationSeconds = duration;
    hook(ctx);
  }
}

void ParallelFile::writeAt(rt::Node& node, std::uint64_t offset,
                           std::span<const Byte> data) {
  PCXX_OBS_PHASE(node.obs(), "pfs.writeAt", PfsWriteSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsWriteOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsWriteBytes, data.size());
  PCXX_OBS_HIST(node.obs(), PfsWriteSize, data.size());
  const double t0 = node.clock().now();
  const std::uint64_t index =
      runFaultHook(OpKind::Write, offset, data.size(), node.id());
  storage_->writeAt(offset, data);
  const std::uint64_t cum = cumWritten_.fetch_add(data.size()) + data.size();
  fs_->model_.chargeIndependentOp(node, offset, data.size(), storage_->size(),
                                  cum, /*isWrite=*/true);
  runObserveHook(OpKind::Write, offset, data.size(), node.id(), index,
                 node.clock().now() - t0);
}

std::uint64_t ParallelFile::readAt(rt::Node& node, std::uint64_t offset,
                                   std::span<Byte> out) {
  PCXX_OBS_PHASE(node.obs(), "pfs.readAt", PfsReadSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsReadOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsReadBytes, out.size());
  PCXX_OBS_HIST(node.obs(), PfsReadSize, out.size());
  const double t0 = node.clock().now();
  const std::uint64_t index =
      runFaultHook(OpKind::Read, offset, out.size(), node.id());
  const std::uint64_t n = storage_->readAt(offset, out);
  fs_->model_.chargeIndependentOp(node, offset, out.size(), storage_->size(),
                                  cumWritten_.load(), /*isWrite=*/false);
  runObserveHook(OpKind::Read, offset, out.size(), node.id(), index,
                 node.clock().now() - t0);
  return n;
}

std::uint64_t ParallelFile::writeOrdered(rt::Node& node,
                                         std::span<const Byte> myBlock) {
  PCXX_OBS_PHASE(node.obs(), "pfs.writeOrdered", PfsWriteSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsWriteOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsWriteBytes, myBlock.size());
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  PCXX_OBS_HIST(node.obs(), PfsWriteSize, myBlock.size());
  const double t0 = node.clock().now();
  const std::uint64_t base = cursor_.load();
  const std::uint64_t cumBefore = cumWritten_.load();
  const auto sizes = node.allgatherU64(myBlock.size());
  std::uint64_t myOffset = base;
  std::uint64_t total = 0;
  std::uint64_t maxNode = 0;
  for (int i = 0; i < node.nprocs(); ++i) {
    if (i < node.id()) myOffset += sizes[static_cast<size_t>(i)];
    total += sizes[static_cast<size_t>(i)];
    maxNode = std::max(maxNode, sizes[static_cast<size_t>(i)]);
  }
  const std::uint64_t index =
      runFaultHook(OpKind::Write, myOffset, myBlock.size(), node.id());
  storage_->writeAt(myOffset, myBlock);

  // All nodes complete the collective transfer together; charge the modeled
  // duration uniformly (the collective below also synchronizes clocks).
  node.barrier();
  const double duration = fs_->model_.collectiveBulkDuration(
      node.nprocs(), total, maxNode, storage_->size(), cumBefore,
      /*isWrite=*/true);
  node.clock().advance(duration);
  cursor_.store(base + total);
  cumWritten_.store(cumBefore + total);
  node.barrier();
  runObserveHook(OpKind::Write, myOffset, myBlock.size(), node.id(), index,
                 node.clock().now() - t0);
  return myOffset;
}

std::uint64_t ParallelFile::readOrdered(rt::Node& node,
                                        std::span<Byte> myBlock) {
  PCXX_OBS_PHASE(node.obs(), "pfs.readOrdered", PfsReadSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsReadOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsReadBytes, myBlock.size());
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  PCXX_OBS_HIST(node.obs(), PfsReadSize, myBlock.size());
  const double t0 = node.clock().now();
  const std::uint64_t base = cursor_.load();
  const auto sizes = node.allgatherU64(myBlock.size());
  std::uint64_t myOffset = base;
  std::uint64_t total = 0;
  std::uint64_t maxNode = 0;
  for (int i = 0; i < node.nprocs(); ++i) {
    if (i < node.id()) myOffset += sizes[static_cast<size_t>(i)];
    total += sizes[static_cast<size_t>(i)];
    maxNode = std::max(maxNode, sizes[static_cast<size_t>(i)]);
  }
  const std::uint64_t index =
      runFaultHook(OpKind::Read, myOffset, myBlock.size(), node.id());
  const std::uint64_t got = storage_->readAt(myOffset, myBlock);
  const bool shortRead = got != myBlock.size();

  node.barrier();
  const double duration = fs_->model_.collectiveBulkDuration(
      node.nprocs(), total, maxNode, storage_->size(), cumWritten_.load(),
      /*isWrite=*/false);
  node.clock().advance(duration);
  cursor_.store(base + total);
  node.barrier();
  runObserveHook(OpKind::Read, myOffset, myBlock.size(), node.id(), index,
                 node.clock().now() - t0);
  if (shortRead) {
    throw IoError("readOrdered: file '" + name_ + "' ended early (wanted " +
                  std::to_string(myBlock.size()) + " bytes at offset " +
                  std::to_string(myOffset) + ", got " + std::to_string(got) +
                  ")");
  }
  return myOffset;
}

void ParallelFile::seekShared(rt::Node& node, std::uint64_t offset) {
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  node.barrier();
  cursor_.store(offset);
  node.barrier();
}

void ParallelFile::sync(rt::Node& node) {
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  node.barrier();
  if (node.id() == 0) storage_->sync();
  const double duration = fs_->model_.enabled()
                              ? fs_->model_.params().collectiveSync(
                                    node.nprocs())
                              : 0.0;
  node.clock().advance(duration);
  node.barrier();
}

// ---------------------------------------------------------------------------
// Pfs
// ---------------------------------------------------------------------------

Pfs::Pfs(PfsConfig config)
    : config_(std::move(config)),
      model_(config_.perf, config_.nIoNodes, config_.stripeUnit) {}

std::string Pfs::posixPath(const std::string& fsName) const {
  return config_.dir + "/" + fsName;
}

std::shared_ptr<StorageBackend> Pfs::backendFor(const std::string& fsName,
                                                OpenMode mode) {
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memFiles_.find(fsName);
    if (mode == OpenMode::Read) {
      if (it == memFiles_.end()) {
        throw IoError("pfs file '" + fsName + "' does not exist");
      }
      return it->second;
    }
    // Create: fresh storage (truncate semantics).
    auto storage = std::make_shared<MemStorage>();
    memFiles_[fsName] = storage;
    return storage;
  }
  // Posix backend.
  const std::string path = posixPath(fsName);
  if (mode == OpenMode::Read && !std::filesystem::exists(path)) {
    throw IoError("pfs file '" + fsName + "' does not exist at " + path);
  }
  auto storage = std::make_shared<PosixStorage>(path);
  if (mode == OpenMode::Create) storage->truncate(0);
  return storage;
}

ParallelFilePtr Pfs::open(rt::Node& node, const std::string& fsName,
                          OpenMode mode) {
  PCXX_OBS_SPAN(node.obs(), "pfs.open");
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  // Node 0 resolves the backend; the resulting file object is shared.
  node.barrier();
  ParallelFilePtr file;
  std::shared_ptr<StorageBackend> storage;
  std::exception_ptr failure;
  if (node.id() == 0) {
    try {
      storage = backendFor(fsName, mode);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  // Propagate open failure to all nodes consistently.
  const double failFlag =
      node.allreduceMax(node.id() == 0 && failure ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    if (node.id() == 0) std::rethrow_exception(failure);
    throw IoError("pfs open('" + fsName + "') failed on node 0");
  }
  // Share the pointer via the collective staging area: node 0 stores it in
  // a member slot guarded by barriers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node.id() == 0) {
      pendingOpen_ = ParallelFilePtr(new ParallelFile(this, fsName, storage));
    }
  }
  node.barrier();
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = pendingOpen_;
  }
  node.barrier();
  if (node.id() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    pendingOpen_.reset();
  }
  // Charge the open cost (one collective synchronization).
  if (model_.enabled()) {
    node.clock().advance(model_.params().collectiveSync(node.nprocs()));
  }
  node.barrier();
  return file;
}

void Pfs::remove(rt::Node& node, const std::string& fsName) {
  node.barrier();
  if (node.id() == 0) {
    if (config_.backend == PfsConfig::Backend::Memory) {
      std::lock_guard<std::mutex> lock(mu_);
      memFiles_.erase(fsName);
    } else {
      std::filesystem::remove(posixPath(fsName));
    }
  }
  node.barrier();
}

bool Pfs::exists(const std::string& fsName) {
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    return memFiles_.count(fsName) != 0;
  }
  return std::filesystem::exists(posixPath(fsName));
}

void Pfs::setFaultHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(hookMu_);
  faultHook_ = std::move(hook);
}

void Pfs::setObserveHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(hookMu_);
  observeHook_ = std::move(hook);
}

void Pfs::corruptByte(const std::string& fsName, std::uint64_t offset,
                      Byte value) {
  std::shared_ptr<StorageBackend> storage;
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memFiles_.find(fsName);
    PCXX_REQUIRE(it != memFiles_.end(), "corruptByte: no such file");
    storage = it->second;
  } else {
    storage = std::make_shared<PosixStorage>(posixPath(fsName));
  }
  const Byte b = value;
  storage->writeAt(offset, {&b, 1});
}

void Pfs::truncateFile(const std::string& fsName, std::uint64_t newSize) {
  std::shared_ptr<StorageBackend> storage;
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memFiles_.find(fsName);
    PCXX_REQUIRE(it != memFiles_.end(), "truncateFile: no such file");
    storage = it->second;
  } else {
    storage = std::make_shared<PosixStorage>(posixPath(fsName));
  }
  storage->truncate(newSize);
}

}  // namespace pcxx::pfs
