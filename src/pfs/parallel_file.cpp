#include "pfs/parallel_file.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strfmt.h"

namespace pcxx::pfs {
namespace {

// The chunk codec runs below the storage ops on whatever thread issues
// them and accounts into thread-local counters; these helpers fold the
// delta accumulated by one op into the issuing node's metrics (sync paths)
// or the pipeline's BgIoStats (pcxx::aio threads), preserving the
// owner-write discipline of both sinks.
void foldCodecObs(rt::Node& node, const CodecThreadStats& before) {
  const CodecThreadStats& now = codecThreadStats();
  if (now.rawBytes != before.rawBytes)
    PCXX_OBS_COUNT(node.obs(), PfsCodecRawBytes, now.rawBytes - before.rawBytes);
  if (now.storedBytes != before.storedBytes)
    PCXX_OBS_COUNT(node.obs(), PfsCodecStoredBytes,
                   now.storedBytes - before.storedBytes);
  if (now.dedupHits != before.dedupHits)
    PCXX_OBS_COUNT(node.obs(), PfsCodecDedupHits,
                   now.dedupHits - before.dedupHits);
  if (now.damagedChunks != before.damagedChunks)
    PCXX_OBS_COUNT(node.obs(), PfsCodecDamagedChunks,
                   now.damagedChunks - before.damagedChunks);
  if (now.seconds != before.seconds)
    PCXX_OBS_SECONDS(node.obs(), PfsCodecSeconds, now.seconds - before.seconds);
  (void)node;
  (void)before;
  (void)now;
}

void foldCodecBg(BgIoStats& stats, const CodecThreadStats& before) {
  const CodecThreadStats& now = codecThreadStats();
  stats.codecRawBytes += now.rawBytes - before.rawBytes;
  stats.codecStoredBytes += now.storedBytes - before.storedBytes;
  stats.codecDedupHits += now.dedupHits - before.dedupHits;
  stats.codecDamagedChunks += now.damagedChunks - before.damagedChunks;
  stats.codecSeconds += now.seconds - before.seconds;
}

}  // namespace

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

double RetryPolicy::backoffFor(int retryIndex, std::uint64_t opIndex,
                               int nodeId) const {
  double b = backoffBase;
  for (int i = 1; i < retryIndex && b < backoffMax; ++i) b *= backoffFactor;
  if (jitter > 0.0) {
    // Stateless deterministic jitter: hash (seed, opIndex, nodeId) so the
    // same retry of the same op always waits the same modeled time.
    std::uint64_t h = seed ^ (opIndex * 0x9E3779B97F4A7C15ull) ^
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(nodeId))
                       << 32);
    const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    b *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  // The cap is a hard bound on the returned value, so it must apply AFTER
  // jitter: clamping first let jitter push the backoff up to a factor of
  // (1 + jitter) past the documented maximum.
  return std::min(b, backoffMax);
}

// ---------------------------------------------------------------------------
// ParallelFile
// ---------------------------------------------------------------------------

ParallelFile::ParallelFile(Pfs* fs, std::string fsName,
                           std::shared_ptr<StorageBackend> storage)
    : fs_(fs), name_(std::move(fsName)), storage_(std::move(storage)) {}

std::uint64_t ParallelFile::performWrite(rt::Node& node, std::uint64_t offset,
                                         std::span<const Byte> data) {
  const RetryPolicy rp = fs_->retryPolicy();
  const double start = node.clock().now();
  std::uint64_t done = 0;
  std::uint64_t lastIndex = 0;
  std::exception_ptr lastError;
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t want = data.size() - done;
    const std::uint64_t index = fs_->opCounter_.fetch_add(1);
    lastIndex = index;
    FaultHook hook;
    {
      std::lock_guard<std::mutex> lock(fs_->hookMu_);
      hook = fs_->faultHook_;
    }
    OpOutcome outcome{want, false};
    bool failed = false;
    if (hook) {
      OpContext ctx{name_, OpKind::Write, offset + done, want, node.id(),
                    index};
      ctx.outcome = &outcome;
      try {
        hook(ctx);
      } catch (const CrashInjected&) {
        throw;  // fatal by contract; nothing of this attempt was applied
      } catch (const IoError&) {
        failed = true;
        lastError = std::current_exception();
      }
    }
    if (!failed) {
      const std::uint64_t granted = std::min(outcome.completeBytes, want);
      if (granted > 0) {
        storage_->writeAt(offset + done,
                          data.subspan(static_cast<size_t>(done),
                                       static_cast<size_t>(granted)));
        done += granted;
      }
      if (outcome.crash) {
        throw CrashInjected(strfmt(
            "write on '%s' at op %llu: %llu of %llu bytes durable",
            name_.c_str(), static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(done),
            static_cast<unsigned long long>(data.size())));
      }
      if (done == data.size()) return lastIndex;
      lastError = nullptr;  // short completion, not an exception
    }
    // Transient failure or short completion: retry if the policy allows;
    // a retry resumes from the completed prefix.
    if (attempt >= rp.maxAttempts ||
        node.clock().now() - start >= rp.opDeadlineSeconds) {
      PCXX_OBS_COUNT(node.obs(), PfsGiveUps, 1);
      if (lastError) std::rethrow_exception(lastError);
      throw IoError(strfmt(
          "short write on '%s': only %llu of %llu bytes completed at "
          "offset %llu",
          name_.c_str(), static_cast<unsigned long long>(done),
          static_cast<unsigned long long>(data.size()),
          static_cast<unsigned long long>(offset)));
    }
    const double backoff = rp.backoffFor(attempt, index, node.id());
    node.clock().advance(backoff);
    PCXX_OBS_COUNT(node.obs(), PfsRetries, 1);
    PCXX_OBS_SECONDS(node.obs(), PfsBackoffSeconds, backoff);
  }
}

std::uint64_t ParallelFile::performRead(rt::Node& node, std::uint64_t offset,
                                        std::span<Byte> out,
                                        std::uint64_t* got) {
  const RetryPolicy rp = fs_->retryPolicy();
  const double start = node.clock().now();
  std::uint64_t done = 0;
  std::uint64_t lastIndex = 0;
  std::exception_ptr lastError;
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t want = out.size() - done;
    const std::uint64_t index = fs_->opCounter_.fetch_add(1);
    lastIndex = index;
    FaultHook hook;
    {
      std::lock_guard<std::mutex> lock(fs_->hookMu_);
      hook = fs_->faultHook_;
    }
    OpOutcome outcome{want, false};
    bool failed = false;
    if (hook) {
      OpContext ctx{name_, OpKind::Read, offset + done, want, node.id(),
                    index};
      ctx.outcome = &outcome;
      try {
        hook(ctx);
      } catch (const CrashInjected&) {
        throw;
      } catch (const IoError&) {
        failed = true;
        lastError = std::current_exception();
      }
    }
    if (!failed) {
      if (outcome.crash) {
        throw CrashInjected(strfmt("read on '%s' at op %llu", name_.c_str(),
                                   static_cast<unsigned long long>(index)));
      }
      const std::uint64_t limit = std::min(outcome.completeBytes, want);
      const std::uint64_t n =
          storage_->readAt(offset + done,
                           out.subspan(static_cast<size_t>(done),
                                       static_cast<size_t>(limit)));
      done += n;
      if (done == out.size() || n < limit) {
        // Complete, or a true end-of-file (the backend granted less than
        // the fault-free limit): not a fault.
        *got = done;
        return lastIndex;
      }
      // n == limit < want: a hook-limited short read; retry the remainder.
      lastError = nullptr;
    }
    if (attempt >= rp.maxAttempts ||
        node.clock().now() - start >= rp.opDeadlineSeconds) {
      PCXX_OBS_COUNT(node.obs(), PfsGiveUps, 1);
      if (lastError) std::rethrow_exception(lastError);
      throw IoError(strfmt(
          "short read on '%s': only %llu of %llu bytes completed at "
          "offset %llu",
          name_.c_str(), static_cast<unsigned long long>(done),
          static_cast<unsigned long long>(out.size()),
          static_cast<unsigned long long>(offset)));
    }
    const double backoff = rp.backoffFor(attempt, index, node.id());
    node.clock().advance(backoff);
    PCXX_OBS_COUNT(node.obs(), PfsRetries, 1);
    PCXX_OBS_SECONDS(node.obs(), PfsBackoffSeconds, backoff);
  }
}

void ParallelFile::writeAtBackground(int nodeId, std::uint64_t offset,
                                     std::span<const Byte> data,
                                     BgIoStats& stats) {
  const RetryPolicy rp = fs_->retryPolicy();
  const CodecThreadStats codecBefore = codecThreadStats();
  const double start = stats.backoffSeconds;
  std::uint64_t done = 0;
  std::uint64_t lastIndex = 0;
  std::exception_ptr lastError;
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t want = data.size() - done;
    const std::uint64_t index = fs_->opCounter_.fetch_add(1);
    lastIndex = index;
    FaultHook hook;
    {
      std::lock_guard<std::mutex> lock(fs_->hookMu_);
      hook = fs_->faultHook_;
    }
    OpOutcome outcome{want, false};
    bool failed = false;
    if (hook) {
      OpContext ctx{name_, OpKind::Write, offset + done, want, nodeId, index};
      ctx.outcome = &outcome;
      try {
        hook(ctx);
      } catch (const CrashInjected&) {
        throw;  // fatal by contract; nothing of this attempt was applied
      } catch (const IoError&) {
        failed = true;
        lastError = std::current_exception();
      }
    }
    if (!failed) {
      const std::uint64_t granted = std::min(outcome.completeBytes, want);
      if (granted > 0) {
        storage_->writeAt(offset + done,
                          data.subspan(static_cast<size_t>(done),
                                       static_cast<size_t>(granted)));
        done += granted;
      }
      if (outcome.crash) {
        throw CrashInjected(strfmt(
            "background write on '%s' at op %llu: %llu of %llu bytes durable",
            name_.c_str(), static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(done),
            static_cast<unsigned long long>(data.size())));
      }
      if (done == data.size()) {
        stats.writeOps += 1;
        stats.bytesWritten += data.size();
        foldCodecBg(stats, codecBefore);
        runObserveHook(OpKind::Write, offset, data.size(), nodeId, lastIndex,
                       0.0);
        return;
      }
      lastError = nullptr;  // short completion, not an exception
    }
    // Transient failure or short completion: the accumulated modeled
    // backoff stands in for the issuing node's clock in the deadline check.
    if (attempt >= rp.maxAttempts ||
        stats.backoffSeconds - start >= rp.opDeadlineSeconds) {
      stats.giveUps += 1;
      if (lastError) std::rethrow_exception(lastError);
      throw IoError(strfmt(
          "short background write on '%s': only %llu of %llu bytes "
          "completed at offset %llu",
          name_.c_str(), static_cast<unsigned long long>(done),
          static_cast<unsigned long long>(data.size()),
          static_cast<unsigned long long>(offset)));
    }
    stats.retries += 1;
    stats.backoffSeconds += rp.backoffFor(attempt, index, nodeId);
  }
}

std::uint64_t ParallelFile::readAtBackground(int nodeId, std::uint64_t offset,
                                             std::span<Byte> out,
                                             BgIoStats& stats) {
  const RetryPolicy rp = fs_->retryPolicy();
  const CodecThreadStats codecBefore = codecThreadStats();
  const double start = stats.backoffSeconds;
  std::uint64_t done = 0;
  std::uint64_t lastIndex = 0;
  std::exception_ptr lastError;
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t want = out.size() - done;
    const std::uint64_t index = fs_->opCounter_.fetch_add(1);
    lastIndex = index;
    FaultHook hook;
    {
      std::lock_guard<std::mutex> lock(fs_->hookMu_);
      hook = fs_->faultHook_;
    }
    OpOutcome outcome{want, false};
    bool failed = false;
    if (hook) {
      OpContext ctx{name_, OpKind::Read, offset + done, want, nodeId, index};
      ctx.outcome = &outcome;
      try {
        hook(ctx);
      } catch (const CrashInjected&) {
        throw;
      } catch (const IoError&) {
        failed = true;
        lastError = std::current_exception();
      }
    }
    if (!failed) {
      if (outcome.crash) {
        throw CrashInjected(strfmt("background read on '%s' at op %llu",
                                   name_.c_str(),
                                   static_cast<unsigned long long>(index)));
      }
      const std::uint64_t limit = std::min(outcome.completeBytes, want);
      const std::uint64_t n =
          storage_->readAt(offset + done,
                           out.subspan(static_cast<size_t>(done),
                                       static_cast<size_t>(limit)));
      done += n;
      if (done == out.size() || n < limit) {
        // Complete, or a true end-of-file: not a fault.
        stats.readOps += 1;
        stats.bytesRead += done;
        foldCodecBg(stats, codecBefore);
        runObserveHook(OpKind::Read, offset, out.size(), nodeId, lastIndex,
                       0.0);
        return done;
      }
      lastError = nullptr;
    }
    if (attempt >= rp.maxAttempts ||
        stats.backoffSeconds - start >= rp.opDeadlineSeconds) {
      stats.giveUps += 1;
      if (lastError) std::rethrow_exception(lastError);
      throw IoError(strfmt(
          "short background read on '%s': only %llu of %llu bytes "
          "completed at offset %llu",
          name_.c_str(), static_cast<unsigned long long>(done),
          static_cast<unsigned long long>(out.size()),
          static_cast<unsigned long long>(offset)));
    }
    stats.retries += 1;
    stats.backoffSeconds += rp.backoffFor(attempt, index, nodeId);
  }
}

void ParallelFile::runObserveHook(OpKind kind, std::uint64_t offset,
                                  std::uint64_t bytes, int nodeId,
                                  std::uint64_t opIndex, double duration) {
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(fs_->hookMu_);
    hook = fs_->observeHook_;
  }
  if (hook) {
    OpContext ctx{name_, kind, offset, bytes, nodeId, opIndex};
    ctx.opDurationSeconds = duration;
    hook(ctx);
  }
}

void ParallelFile::writeAt(rt::Node& node, std::uint64_t offset,
                           std::span<const Byte> data) {
  PCXX_OBS_PHASE(node.obs(), "pfs.writeAt", PfsWriteSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsWriteOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsWriteBytes, data.size());
  PCXX_OBS_HIST(node.obs(), PfsWriteSize, data.size());
  const double t0 = node.clock().now();
  const CodecThreadStats codecBefore = codecThreadStats();
  const std::uint64_t index = performWrite(node, offset, data);
  foldCodecObs(node, codecBefore);
  const std::uint64_t cum = cumWritten_.fetch_add(data.size()) + data.size();
  fs_->model_.chargeIndependentOp(node, offset, data.size(), storage_->size(),
                                  cum, /*isWrite=*/true);
  runObserveHook(OpKind::Write, offset, data.size(), node.id(), index,
                 node.clock().now() - t0);
}

std::uint64_t ParallelFile::readAt(rt::Node& node, std::uint64_t offset,
                                   std::span<Byte> out) {
  PCXX_OBS_PHASE(node.obs(), "pfs.readAt", PfsReadSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsReadOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsReadBytes, out.size());
  PCXX_OBS_HIST(node.obs(), PfsReadSize, out.size());
  const double t0 = node.clock().now();
  std::uint64_t n = 0;
  const CodecThreadStats codecBefore = codecThreadStats();
  const std::uint64_t index = performRead(node, offset, out, &n);
  foldCodecObs(node, codecBefore);
  fs_->model_.chargeIndependentOp(node, offset, out.size(), storage_->size(),
                                  cumWritten_.load(), /*isWrite=*/false);
  runObserveHook(OpKind::Read, offset, out.size(), node.id(), index,
                 node.clock().now() - t0);
  return n;
}

std::uint64_t ParallelFile::readTail(rt::Node& node, std::span<Byte> out) {
  if (out.empty()) return 0;
  const std::uint64_t fileBytes = storage_->size();
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), fileBytes);
  if (n == 0) return 0;
  return readAt(node, fileBytes - n, out.subspan(0, static_cast<size_t>(n)));
}

std::uint64_t ParallelFile::writeOrdered(rt::Node& node,
                                         std::span<const Byte> myBlock) {
  PCXX_OBS_PHASE(node.obs(), "pfs.writeOrdered", PfsWriteSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsWriteOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsWriteBytes, myBlock.size());
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  PCXX_OBS_HIST(node.obs(), PfsWriteSize, myBlock.size());
  const double t0 = node.clock().now();
  const std::uint64_t base = cursor_.load();
  const std::uint64_t cumBefore = cumWritten_.load();
  const auto sizes = node.allgatherU64(myBlock.size());
  std::uint64_t myOffset = base;
  std::uint64_t total = 0;
  std::uint64_t maxNode = 0;
  for (int i = 0; i < node.nprocs(); ++i) {
    if (i < node.id()) myOffset += sizes[static_cast<size_t>(i)];
    total += sizes[static_cast<size_t>(i)];
    maxNode = std::max(maxNode, sizes[static_cast<size_t>(i)]);
  }
  const CodecThreadStats codecBefore = codecThreadStats();
  const std::uint64_t index = performWrite(node, myOffset, myBlock);
  foldCodecObs(node, codecBefore);

  // All nodes complete the collective transfer together; charge the modeled
  // duration uniformly (the collective below also synchronizes clocks).
  node.barrier();
  const double duration = fs_->model_.collectiveBulkDuration(
      node.nprocs(), total, maxNode, storage_->size(), cumBefore,
      /*isWrite=*/true);
  node.clock().advance(duration);
  cursor_.store(base + total);
  cumWritten_.store(cumBefore + total);
  node.barrier();
  runObserveHook(OpKind::Write, myOffset, myBlock.size(), node.id(), index,
                 node.clock().now() - t0);
  return myOffset;
}

OrderedReservation ParallelFile::reserveOrdered(rt::Node& node,
                                                std::uint64_t myBytes) {
  PCXX_OBS_PHASE(node.obs(), "pfs.reserveOrdered", PfsWriteSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsWriteOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsWriteBytes, myBytes);
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  PCXX_OBS_HIST(node.obs(), PfsWriteSize, myBytes);
  const std::uint64_t base = cursor_.load();
  const std::uint64_t cumBefore = cumWritten_.load();
  const auto sizes = node.allgatherU64(myBytes);
  OrderedReservation r;
  r.offset = base;
  std::uint64_t maxNode = 0;
  for (int i = 0; i < node.nprocs(); ++i) {
    if (i < node.id()) r.offset += sizes[static_cast<size_t>(i)];
    r.totalBytes += sizes[static_cast<size_t>(i)];
    maxNode = std::max(maxNode, sizes[static_cast<size_t>(i)]);
  }
  node.barrier();
  // The file size writeOrdered's model charge would see is the region end:
  // the background transfer will have extended the file that far.
  const std::uint64_t sizeAfter =
      std::max<std::uint64_t>(storage_->size(), base + r.totalBytes);
  const double full = fs_->model_.collectiveBulkDuration(
      node.nprocs(), r.totalBytes, maxNode, sizeAfter, cumBefore,
      /*isWrite=*/true);
  const double syncShare =
      fs_->model_.enabled()
          ? fs_->model_.params().collectiveSync(node.nprocs())
          : 0.0;
  r.transferSeconds = std::max(0.0, full - syncShare);
  node.clock().advance(syncShare);
  cursor_.store(base + r.totalBytes);
  cumWritten_.store(cumBefore + r.totalBytes);
  node.barrier();
  return r;
}

std::uint64_t ParallelFile::readOrdered(rt::Node& node,
                                        std::span<Byte> myBlock) {
  PCXX_OBS_PHASE(node.obs(), "pfs.readOrdered", PfsReadSeconds);
  PCXX_OBS_COUNT(node.obs(), PfsReadOps, 1);
  PCXX_OBS_COUNT(node.obs(), PfsReadBytes, myBlock.size());
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  PCXX_OBS_HIST(node.obs(), PfsReadSize, myBlock.size());
  const double t0 = node.clock().now();
  const std::uint64_t base = cursor_.load();
  const auto sizes = node.allgatherU64(myBlock.size());
  std::uint64_t myOffset = base;
  std::uint64_t total = 0;
  std::uint64_t maxNode = 0;
  for (int i = 0; i < node.nprocs(); ++i) {
    if (i < node.id()) myOffset += sizes[static_cast<size_t>(i)];
    total += sizes[static_cast<size_t>(i)];
    maxNode = std::max(maxNode, sizes[static_cast<size_t>(i)]);
  }
  std::uint64_t got = 0;
  const CodecThreadStats codecBefore = codecThreadStats();
  const std::uint64_t index = performRead(node, myOffset, myBlock, &got);
  foldCodecObs(node, codecBefore);
  const bool shortRead = got != myBlock.size();

  node.barrier();
  const double duration = fs_->model_.collectiveBulkDuration(
      node.nprocs(), total, maxNode, storage_->size(), cumWritten_.load(),
      /*isWrite=*/false);
  node.clock().advance(duration);
  cursor_.store(base + total);
  node.barrier();
  runObserveHook(OpKind::Read, myOffset, myBlock.size(), node.id(), index,
                 node.clock().now() - t0);
  if (shortRead) {
    throw IoError("readOrdered: file '" + name_ + "' ended early (wanted " +
                  std::to_string(myBlock.size()) + " bytes at offset " +
                  std::to_string(myOffset) + ", got " + std::to_string(got) +
                  ")");
  }
  return myOffset;
}

void ParallelFile::seekShared(rt::Node& node, std::uint64_t offset) {
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  node.barrier();
  cursor_.store(offset);
  node.barrier();
}

void ParallelFile::sync(rt::Node& node) {
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  node.barrier();
  if (node.id() == 0) storage_->sync();
  const double duration = fs_->model_.enabled()
                              ? fs_->model_.params().collectiveSync(
                                    node.nprocs())
                              : 0.0;
  node.clock().advance(duration);
  node.barrier();
}

// ---------------------------------------------------------------------------
// Pfs
// ---------------------------------------------------------------------------

Pfs::Pfs(PfsConfig config)
    : config_(std::move(config)),
      model_(config_.perf, config_.nIoNodes, config_.stripeUnit) {
  // Environment kill switch / default for the chunk codec, read once so a
  // whole test run can be flipped without touching configuration code.
  if (const char* env = std::getenv("PCXX_CODEC")) {
    const std::string v(env);
    if (v == "off" || v == "none" || v == "0") {
      codecEnv_ = CodecEnv::ForceOff;
    } else if (v == "lz" || v == "on" || v == "1") {
      codecEnv_ = CodecEnv::ForceLz;
    }
  }
}

std::string Pfs::posixPath(const std::string& fsName) const {
  return config_.dir + "/" + fsName;
}

CodecSpec Pfs::effectiveCodecSpec(const CodecSpec* codec) const {
  CodecSpec s = codec != nullptr ? *codec : config_.codec;
  if (codecEnv_ == CodecEnv::ForceOff) {
    s.enabled = false;  // the kill switch wins over everything
  } else if (codecEnv_ == CodecEnv::ForceLz && codec == nullptr &&
             !config_.codec.enabled) {
    // Default-enable only where nothing asked for a codec explicitly.
    s.enabled = true;
    s.codec = CodecId::Lz;
  }
  return s;
}

std::shared_ptr<StorageBackend> Pfs::backendFor(const std::string& fsName,
                                                OpenMode mode,
                                                const CodecSpec* codec) {
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memFiles_.find(fsName);
    if (mode == OpenMode::Read) {
      if (it == memFiles_.end()) {
        throw IoError("pfs file '" + fsName + "' does not exist");
      }
      // Readers auto-detect framing; the dedup base (if named) lives in
      // the same namespace. mu_ is held across the attach scan, which
      // also keeps the resolver's map lookup safe.
      return wrapCodecIfFramed(
          it->second,
          [this](const std::string& base) -> std::shared_ptr<StorageBackend> {
            auto bit = memFiles_.find(base);
            return bit == memFiles_.end() ? nullptr : bit->second;
          });
    }
    // Create: fresh storage (truncate semantics). The registry keeps the
    // RAW store so physical test helpers and later attaches see the real
    // bytes; the returned handle is the codec view when one is active.
    auto storage = std::make_shared<MemStorage>();
    memFiles_[fsName] = storage;
    const CodecSpec spec = effectiveCodecSpec(codec);
    if (!spec.enabled) return storage;
    std::shared_ptr<StorageBackend> baseInner;
    if (!spec.dedupBase.empty()) {
      auto bit = memFiles_.find(spec.dedupBase);
      if (bit != memFiles_.end()) baseInner = bit->second;
    }
    return CodecStorage::create(storage, spec, std::move(baseInner));
  }
  // Posix backend.
  const std::string path = posixPath(fsName);
  if (mode == OpenMode::Read) {
    if (!std::filesystem::exists(path)) {
      throw IoError("pfs file '" + fsName + "' does not exist at " + path);
    }
    return wrapCodecIfFramed(
        std::make_shared<PosixStorage>(path),
        [this](const std::string& base) -> std::shared_ptr<StorageBackend> {
          const std::string basePath = posixPath(base);
          if (!std::filesystem::exists(basePath)) return nullptr;
          return std::make_shared<PosixStorage>(basePath);
        });
  }
  auto storage = std::make_shared<PosixStorage>(path);
  storage->truncate(0);
  const CodecSpec spec = effectiveCodecSpec(codec);
  if (!spec.enabled) return storage;
  std::shared_ptr<StorageBackend> baseInner;
  if (!spec.dedupBase.empty()) {
    const std::string basePath = posixPath(spec.dedupBase);
    if (std::filesystem::exists(basePath)) {
      baseInner = std::make_shared<PosixStorage>(basePath);
    }
  }
  return CodecStorage::create(std::move(storage), spec, std::move(baseInner));
}

ParallelFilePtr Pfs::open(rt::Node& node, const std::string& fsName,
                          OpenMode mode) {
  return openImpl(node, fsName, mode, nullptr);
}

ParallelFilePtr Pfs::open(rt::Node& node, const std::string& fsName,
                          OpenMode mode, const CodecSpec& codec) {
  return openImpl(node, fsName, mode, &codec);
}

ParallelFilePtr Pfs::openImpl(rt::Node& node, const std::string& fsName,
                              OpenMode mode, const CodecSpec* codec) {
  PCXX_OBS_SPAN(node.obs(), "pfs.open");
  PCXX_OBS_COUNT(node.obs(), PfsCollectiveOps, 1);
  // Node 0 resolves the backend; the resulting file object is shared.
  node.barrier();
  ParallelFilePtr file;
  std::shared_ptr<StorageBackend> storage;
  std::exception_ptr failure;
  if (node.id() == 0) {
    try {
      storage = backendFor(fsName, mode, codec);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  // Propagate open failure to all nodes consistently.
  const double failFlag =
      node.allreduceMax(node.id() == 0 && failure ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    if (node.id() == 0) std::rethrow_exception(failure);
    throw IoError("pfs open('" + fsName + "') failed on node 0");
  }
  // Share the pointer via the collective staging area: node 0 stores it in
  // a member slot guarded by barriers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node.id() == 0) {
      pendingOpen_ = ParallelFilePtr(new ParallelFile(this, fsName, storage));
    }
  }
  node.barrier();
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = pendingOpen_;
  }
  node.barrier();
  if (node.id() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    pendingOpen_.reset();
  }
  // Charge the open cost (one collective synchronization).
  if (model_.enabled()) {
    node.clock().advance(model_.params().collectiveSync(node.nprocs()));
  }
  node.barrier();
  return file;
}

void Pfs::remove(rt::Node& node, const std::string& fsName) {
  node.barrier();
  if (node.id() == 0) {
    if (config_.backend == PfsConfig::Backend::Memory) {
      std::lock_guard<std::mutex> lock(mu_);
      memFiles_.erase(fsName);
    } else {
      std::filesystem::remove(posixPath(fsName));
    }
  }
  node.barrier();
}

bool Pfs::exists(const std::string& fsName) {
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    return memFiles_.count(fsName) != 0;
  }
  return std::filesystem::exists(posixPath(fsName));
}

std::vector<std::string> Pfs::listFiles(const std::string& prefix) {
  std::vector<std::string> out;
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, storage] : memFiles_) {
      if (name.rfind(prefix, 0) == 0) out.push_back(name);
    }
  } else {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(config_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Pfs::setFaultHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(hookMu_);
  faultHook_ = std::move(hook);
}

void Pfs::setObserveHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(hookMu_);
  observeHook_ = std::move(hook);
}

void Pfs::setRetryPolicy(RetryPolicy policy) {
  PCXX_REQUIRE(policy.maxAttempts >= 1,
               "RetryPolicy needs at least one attempt");
  std::lock_guard<std::mutex> lock(hookMu_);
  retryPolicy_ = policy;
}

RetryPolicy Pfs::retryPolicy() const {
  std::lock_guard<std::mutex> lock(hookMu_);
  return retryPolicy_;
}

std::shared_ptr<StorageBackend> Pfs::rawStorageFor(
    const std::string& fsName) {
  if (config_.backend == PfsConfig::Backend::Memory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memFiles_.find(fsName);
    return it == memFiles_.end() ? nullptr : it->second;
  }
  const std::string path = posixPath(fsName);
  if (!std::filesystem::exists(path)) return nullptr;
  return std::make_shared<PosixStorage>(path);
}

void Pfs::corruptByte(const std::string& fsName, std::uint64_t offset,
                      Byte value) {
  auto raw = rawStorageFor(fsName);
  PCXX_REQUIRE(raw != nullptr, "corruptByte: no such file");
  // Corrupt the LOGICAL byte: on a framed file the codec re-seals the
  // chunk around the flip, so the damage models record-payload bit rot
  // (what this helper's callers simulate), not frame damage — that is
  // what corruptStoredByte is for.
  auto storage = wrapCodecIfFramed(
      std::move(raw),
      [this](const std::string& base) { return rawStorageFor(base); });
  const Byte b = value;
  storage->writeAt(offset, {&b, 1});
}

void Pfs::truncateFile(const std::string& fsName, std::uint64_t newSize) {
  auto raw = rawStorageFor(fsName);
  PCXX_REQUIRE(raw != nullptr, "truncateFile: no such file");
  auto storage = wrapCodecIfFramed(
      std::move(raw),
      [this](const std::string& base) { return rawStorageFor(base); });
  storage->truncate(newSize);
}

void Pfs::corruptStoredByte(const std::string& fsName, std::uint64_t offset,
                            Byte value) {
  auto raw = rawStorageFor(fsName);
  PCXX_REQUIRE(raw != nullptr, "corruptStoredByte: no such file");
  const Byte b = value;
  raw->writeAt(offset, {&b, 1});
}

std::uint64_t Pfs::storedFileSize(const std::string& fsName) {
  auto raw = rawStorageFor(fsName);
  PCXX_REQUIRE(raw != nullptr, "storedFileSize: no such file");
  return raw->size();
}

}  // namespace pcxx::pfs
