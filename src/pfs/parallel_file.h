// The parallel file system substrate.
//
// This layer reproduces the I/O interface the paper's library is built on —
// Intel Paragon PFS / CM-5 sfs style parallel files:
//
//   * independent positional reads/writes from any node, and
//   * *node-order collective* transfers ("parallel I/O primitives which
//     transfer a contiguous block of data from each compute node to the
//     file system simultaneously and write those blocks to the file in node
//     order" — paper §4.1), implemented here as writeOrdered/readOrdered
//     against a shared file cursor.
//
// A Pfs instance is the "file system": it owns the storage backend choice
// (in-memory or a real POSIX directory), the virtual-time performance model,
// and the fault-injection hook. Files opened through it are shared across
// nodes; all collective methods must be called by every node of the machine.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pfs/backend.h"
#include "pfs/codec.h"
#include "pfs/fault.h"
#include "pfs/perf_model.h"
#include "runtime/machine.h"

namespace pcxx::pfs {

/// File system configuration.
struct PfsConfig {
  enum class Backend { Memory, Posix };

  Backend backend = Backend::Memory;
  /// Directory for Posix-backed files.
  std::string dir = ".";
  /// Virtual-time model; PerfParams{} (disabled) means real-time mode.
  PerfParams perf;
  /// I/O nodes the file system stripes over (scales modeled bandwidth).
  int nIoNodes = 1;
  std::uint64_t stripeUnit = 64 * 1024;
  /// Default chunk-codec spec applied to Create-mode opens (per-open specs
  /// override it; the PCXX_CODEC env var overrides both — see Pfs).
  CodecSpec codec;
};

enum class OpenMode {
  Create,  ///< truncate / create for writing
  Read,    ///< existing file for reading
};

/// Bounded-retry policy for transient storage failures (Pfs::setRetryPolicy).
///
/// A transient IoError (thrown by a fault hook or the storage backend) is
/// retried up to maxAttempts total tries; each retry first charges an
/// exponential backoff with deterministic jitter to the issuing node's
/// VirtualClock, so retried runs show the delay in modeled time. A short
/// completion (a hook granting only k of n bytes) resumes from the
/// completed prefix rather than re-transferring it. CrashInjected and
/// non-IoError exceptions are fatal and never retried. An op that exhausts
/// its attempts or its modeled-time deadline rethrows the last failure.
struct RetryPolicy {
  /// Total tries per op (1 = no retries; the default Pfs behavior).
  int maxAttempts = 1;
  /// Backoff before retry k (1-based) is base * factor^(k-1), capped.
  double backoffBase = 1e-3;
  double backoffFactor = 2.0;
  double backoffMax = 1.0;
  /// Jitter fraction: each backoff is scaled by a deterministic factor in
  /// [1 - jitter, 1 + jitter] drawn from (seed, opIndex, nodeId). The
  /// backoffMax cap applies AFTER jitter: the returned backoff never
  /// exceeds backoffMax.
  double jitter = 0.1;
  /// Give up once an op's modeled elapsed time (including backoff) exceeds
  /// this many virtual seconds.
  double opDeadlineSeconds = 60.0;
  std::uint64_t seed = 0;

  /// Backoff (seconds, jitter applied) before retry `retryIndex` (1-based)
  /// of op `opIndex` on `nodeId`. Pure function of the policy fields.
  double backoffFor(int retryIndex, std::uint64_t opIndex, int nodeId) const;
};

class Pfs;

/// Accounting for storage ops issued by background (pcxx::aio) threads,
/// which own no VirtualClock: modeled backoff accumulates here (doubling as
/// the per-op retry deadline clock) and the owning node folds the totals
/// into its metrics when it drains the pipeline. One instance per pipeline;
/// written only by that pipeline's background thread.
struct BgIoStats {
  std::uint64_t writeOps = 0;
  std::uint64_t readOps = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t retries = 0;
  std::uint64_t giveUps = 0;
  double backoffSeconds = 0.0;
  // Chunk-codec work done by this background thread (codec stage below the
  // op; deltas of pfs::codecThreadStats() captured around each storage op).
  std::uint64_t codecRawBytes = 0;
  std::uint64_t codecStoredBytes = 0;
  std::uint64_t codecDedupHits = 0;
  std::uint64_t codecDamagedChunks = 0;
  double codecSeconds = 0.0;
};

/// Result of reserveOrdered(): where this node's block will land once a
/// background flusher transfers it, plus the modeled bulk-transfer share
/// the caller should charge to its write-behind timeline.
struct OrderedReservation {
  std::uint64_t offset = 0;      ///< this node's block offset in the file
  std::uint64_t totalBytes = 0;  ///< all nodes' contributions combined
  /// Modeled transfer duration (collective bulk time minus the collective
  /// synchronization share, which reserveOrdered charges inline).
  double transferSeconds = 0.0;
};

/// An open parallel file. Thread-safe; collective methods must be invoked
/// by all nodes of the machine with matching arguments.
class ParallelFile {
 public:
  // -- independent operations ----------------------------------------------

  /// Positional write from one node.
  void writeAt(rt::Node& node, std::uint64_t offset,
               std::span<const Byte> data);

  /// Positional read from one node; returns bytes read (fewer than
  /// requested only at end of file).
  std::uint64_t readAt(rt::Node& node, std::uint64_t offset,
                       std::span<Byte> out);

  /// EOF-relative positional read: fill `out` with the final `out.size()`
  /// bytes of the file (one readAt at size() - out.size()). Returns bytes
  /// read — fewer than requested only when the file is shorter than the
  /// request. Index-footer probes use this to find the trailer at EOF.
  std::uint64_t readTail(rt::Node& node, std::span<Byte> out);

  // -- collective operations (node-order parallel I/O) ----------------------

  /// Every node contributes one contiguous block; blocks are placed at the
  /// shared cursor in node order and the cursor advances by the total.
  /// Returns the file offset where this node's block begins.
  std::uint64_t writeOrdered(rt::Node& node, std::span<const Byte> myBlock);

  /// Every node reads one contiguous block (of the size it passes) from the
  /// shared cursor in node order; the cursor advances by the total. Throws
  /// IoError if the file ends early. Returns this node's block offset.
  std::uint64_t readOrdered(rt::Node& node, std::span<Byte> myBlock);

  /// Collective: reserve a node-order region at the shared cursor without
  /// performing any storage I/O. Advances the cursor and the cumulative
  /// write accounting exactly as writeOrdered would — so a later
  /// writeAtBackground of each node's block produces a byte-identical file
  /// — but charges only the collective-synchronization share of the
  /// modeled cost inline; the transfer share is returned for the caller's
  /// write-behind timeline. Every node must eventually transfer its block
  /// to the returned offset (pcxx::aio::Writer does).
  OrderedReservation reserveOrdered(rt::Node& node, std::uint64_t myBytes);

  /// Collective: set the shared cursor.
  void seekShared(rt::Node& node, std::uint64_t offset);

  /// Current shared cursor position.
  std::uint64_t sharedOffset() const { return cursor_.load(); }

  /// Collective: flush to durable storage.
  void sync(rt::Node& node);

  std::uint64_t size() { return storage_->size(); }
  const std::string& name() const { return name_; }

  // -- background operations (pcxx::aio flusher / prefetch threads) ---------

  /// Positional write issued by a background thread on behalf of `nodeId`.
  /// Fault hook, retry policy, short-completion resumption, and
  /// CrashInjected durable-prefix semantics match writeAt, but no Node is
  /// touched: backoff is accounted to `stats` instead of a VirtualClock,
  /// and the cumulative-write accounting is NOT advanced (the matching
  /// reserveOrdered already advanced it).
  void writeAtBackground(int nodeId, std::uint64_t offset,
                         std::span<const Byte> data, BgIoStats& stats);

  /// Read counterpart (no cursor or model interaction); returns bytes read
  /// (fewer than requested only at end of file).
  std::uint64_t readAtBackground(int nodeId, std::uint64_t offset,
                                 std::span<Byte> out, BgIoStats& stats);

  /// Flush the storage backend directly (no collective, no timing charge):
  /// the write-behind flusher's substitute for the collective sync() when
  /// StreamOptions::syncOnWrite rides an async record.
  void syncStorage() { storage_->sync(); }

 private:
  friend class Pfs;
  ParallelFile(Pfs* fs, std::string fsName,
               std::shared_ptr<StorageBackend> storage);

  /// One storage write with fault hook, retry/backoff, and short-completion
  /// resumption applied. Returns the op index of the last attempt.
  std::uint64_t performWrite(rt::Node& node, std::uint64_t offset,
                             std::span<const Byte> data);
  /// Read counterpart; `*got` receives the bytes read (fewer than requested
  /// only at end of file). Returns the op index of the last attempt.
  std::uint64_t performRead(rt::Node& node, std::uint64_t offset,
                            std::span<Byte> out, std::uint64_t* got);
  /// Runs the observe hook (post-op) with the modeled duration.
  void runObserveHook(OpKind kind, std::uint64_t offset, std::uint64_t bytes,
                      int nodeId, std::uint64_t opIndex, double duration);

  Pfs* fs_;
  std::string name_;
  std::shared_ptr<StorageBackend> storage_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> cumWritten_{0};
};

using ParallelFilePtr = std::shared_ptr<ParallelFile>;

/// A parallel file system instance.
///
/// Chunk codec resolution: a Create-mode open uses the per-open CodecSpec
/// when one is passed, else PfsConfig::codec. The PCXX_CODEC environment
/// variable (read once at construction) overrides both: "off"/"none"/"0"
/// force-disables the codec everywhere; "lz" default-enables LZ framing for
/// opens that did not ask for a codec explicitly. Read-mode opens always
/// auto-detect framing from the file itself, so readers need no
/// configuration at all.
class Pfs {
 public:
  explicit Pfs(PfsConfig config);

  /// Collective: open `fsName`. Create truncates; Read requires existence
  /// (throws IoError otherwise).
  ParallelFilePtr open(rt::Node& node, const std::string& fsName,
                       OpenMode mode);

  /// Collective open with an explicit chunk-codec spec (Create mode only;
  /// Read-mode opens detect framing from the file). PCXX_CODEC=off still
  /// wins over `codec.enabled`.
  ParallelFilePtr open(rt::Node& node, const std::string& fsName,
                       OpenMode mode, const CodecSpec& codec);

  /// Collective: delete a file (removes the memory image / POSIX file).
  void remove(rt::Node& node, const std::string& fsName);

  /// Does a file exist (independent, no timing charge)?
  bool exists(const std::string& fsName);

  /// Names of all files starting with `prefix`, sorted (independent, no
  /// timing charge). Lets recovery code enumerate epoch files when a
  /// marker is lost.
  std::vector<std::string> listFiles(const std::string& prefix);

  PerfModel& model() { return model_; }
  const PfsConfig& config() const { return config_; }

  /// Install (or clear, with nullptr) the fault-injection hook. Runs
  /// before each storage access and may throw.
  void setFaultHook(FaultHook hook);

  /// Install (or clear, with nullptr) the observation hook. Runs after
  /// each storage access with OpContext::opDurationSeconds filled from the
  /// perf model; must not throw. Feeds metrics without disturbing the
  /// fault-injection hook.
  void setObserveHook(FaultHook hook);

  /// Install the retry policy applied to every storage read/write issued
  /// through this file system. The default ({}, maxAttempts = 1) retries
  /// nothing.
  void setRetryPolicy(RetryPolicy policy);
  RetryPolicy retryPolicy() const;

  /// Test helper: overwrite one byte of a file's storage directly,
  /// bypassing timing and fault hooks. Offsets are LOGICAL: on a
  /// codec-framed file the flip lands in the decoded byte space (the
  /// chunk is re-sealed around it), modeling bit rot in the record
  /// payload exactly as on an unframed file.
  void corruptByte(const std::string& fsName, std::uint64_t offset,
                   Byte value);

  /// Test helper: truncate a file's storage directly (logical bytes).
  void truncateFile(const std::string& fsName, std::uint64_t newSize);

  /// Test helper: overwrite one PHYSICAL byte of the raw store underneath
  /// any codec framing (corrupts frame headers / compressed payloads; on
  /// an unframed file this is identical to corruptByte).
  void corruptStoredByte(const std::string& fsName, std::uint64_t offset,
                         Byte value);

  /// Test helper: the file's physical size in the raw store (frame
  /// overhead included on framed files).
  std::uint64_t storedFileSize(const std::string& fsName);

  /// Total storage operations issued so far (reads + writes).
  std::uint64_t opCount() const { return opCounter_.load(); }

 private:
  friend class ParallelFile;

  enum class CodecEnv { Unset, ForceOff, ForceLz };

  ParallelFilePtr openImpl(rt::Node& node, const std::string& fsName,
                           OpenMode mode, const CodecSpec* codec);
  std::shared_ptr<StorageBackend> backendFor(const std::string& fsName,
                                             OpenMode mode,
                                             const CodecSpec* codec);
  /// The raw (unframed) store for an existing file; nullptr when the file
  /// does not exist. Caller must NOT hold mu_.
  std::shared_ptr<StorageBackend> rawStorageFor(const std::string& fsName);
  /// Spec a Create-mode open will actually use (env override applied).
  CodecSpec effectiveCodecSpec(const CodecSpec* codec) const;
  std::string posixPath(const std::string& fsName) const;

  CodecEnv codecEnv_ = CodecEnv::Unset;
  PfsConfig config_;
  PerfModel model_;
  std::mutex mu_;
  // Memory backend registry so files persist across open/close within a
  // process (mirrors a file system's namespace).
  std::map<std::string, std::shared_ptr<StorageBackend>> memFiles_;
  // Slot used by open() to hand the shared file object from node 0 to the
  // other nodes (guarded by mu_ and the surrounding barriers).
  ParallelFilePtr pendingOpen_;
  FaultHook faultHook_;
  FaultHook observeHook_;
  RetryPolicy retryPolicy_;
  mutable std::mutex hookMu_;
  std::atomic<std::uint64_t> opCounter_{0};
};

}  // namespace pcxx::pfs
