#include "pfs/perf_model.h"

#include <algorithm>

#include "util/error.h"

namespace pcxx::pfs {

PerfParams paragonParams() {
  PerfParams p;
  p.enabled = true;
  p.name = "paragon";
  // Calibrated against Tables 1-2; see DESIGN.md §6 for the fit.
  p.smallOpLatencyCached = 1.7e-3;
  p.smallOpLatencyDisk = 21e-3;
  p.smallOpCacheBytes = 2'900'000;  // cliff between 512 and 1000 segments
  p.smallOpThreshold = 16 * 1024;
  p.smallOpsSerialize = true;  // I/O nodes serialize small requests
  p.bulkBwCached = 2.7e6;
  p.bulkBwDisk = 0.3e6;
  p.bulkCachePerNode = 2'000'000;  // knee at 11.2 MB on 4 nodes, absent on 8
  p.collectiveSyncBase = 0.10;
  p.collectiveSyncPerNode = 0.029;
  p.bookkeepingPerElement = 4e-5;
  return p;
}

PerfParams sgiParams(int nprocs) {
  PerfParams p;
  p.enabled = true;
  p.name = "sgi";
  p.smallOpsSerialize = false;  // SMP: requests hit the page cache in parallel
  if (nprocs <= 1) {
    p.smallOpLatencyCached = 40e-6;
    p.smallOpLatencyDisk = 40e-6;
    p.bulkBwCached = 10.7e6;
    p.bulkBwDisk = 10.7e6;
    p.collectiveSyncBase = 0.005;
    p.collectiveSyncPerNode = 0.0;
    // Fit of the paper's streams-minus-manual differences (Table 3):
    // overhead(N) ~ 0.235 s + 3.5e-5 s * N across a write+read pair.
    p.bookkeepingPerElement = 1.75e-5;
    p.bookkeepingPerRecord = 0.118;
  } else {
    p.smallOpLatencyCached = 150e-6;
    p.smallOpLatencyDisk = 150e-6;
    p.bulkBwCached = 66e6;
    p.bulkBwDisk = 35e6;
    p.bulkCachePerNode = 3'000'000;
    p.collectiveSyncBase = 0.002;
    p.collectiveSyncPerNode = 0.0008;
    // Fit of Table 4's streams-minus-manual differences.
    p.bookkeepingPerElement = 7e-6;
    p.bookkeepingPerRecord = 0.08;
  }
  return p;
}

PerfParams noModel() { return PerfParams{}; }

PerfParams paramsByName(const std::string& name, int nprocs) {
  if (name == "paragon") return paragonParams();
  if (name == "sgi") return sgiParams(nprocs);
  if (name == "none" || name.empty()) return noModel();
  throw UsageError("unknown platform model '" + name +
                   "' (expected paragon, sgi, or none)");
}

PerfModel::PerfModel(PerfParams params, int nIoNodes, std::uint64_t stripeUnit)
    : params_(std::move(params)), stripeUnit_(stripeUnit) {
  PCXX_REQUIRE(nIoNodes >= 1, "PerfModel requires at least one I/O node");
  PCXX_REQUIRE(stripeUnit >= 1, "PerfModel stripe unit must be positive");
  queues_.assign(static_cast<size_t>(nIoNodes), 0.0);
}

void PerfModel::chargeIndependentOp(rt::Node& node, std::uint64_t offset,
                                    std::uint64_t opBytes,
                                    std::uint64_t fileSize,
                                    std::uint64_t cumWritten, bool isWrite) {
  if (!params_.enabled) return;

  const double ioScale = static_cast<double>(queues_.size());
  const int nprocs = node.nprocs();
  if (opBytes > params_.smallOpThreshold) {
    // Large independent transfer: bandwidth dominated, no collective sync.
    const bool cached = isWrite
                            ? cumWritten <= params_.smallOpCacheBytes
                            : fileSize <= params_.smallOpCacheBytes;
    const double bw =
        (cached ? params_.bulkBwCached : params_.bulkBwDisk) * ioScale;
    node.clock().advance(static_cast<double>(opBytes) / bw);
    return;
  }

  const bool cached = isWrite ? cumWritten <= params_.smallOpCacheBytes
                              : fileSize <= params_.smallOpCacheBytes;
  const double latency =
      cached ? params_.smallOpLatencyCached : params_.smallOpLatencyDisk;

  if (params_.smallOpsSerialize) {
    // Small requests funnel through the I/O node owning the first stripe of
    // the request: the op starts when both the node and that I/O path are
    // free, and occupies the path for `latency`. The calibrated latency is
    // the full end-to-end cost of a small request on such machines.
    const size_t q = static_cast<size_t>((offset / stripeUnit_) %
                                         queues_.size());
    std::lock_guard<std::mutex> lock(mu_);
    const double start = std::max(queues_[q], node.clock().now());
    const double queueWait = start - node.clock().now();
    if (queueWait > 0) {
      PCXX_OBS_SECONDS(node.obs(), PfsQueueWaitSeconds, queueWait);
    }
    queues_[q] = start + latency;
    node.clock().syncTo(queues_[q]);
  } else {
    // SMP path: requests proceed concurrently, paying a per-request
    // software latency plus their share of the file system bandwidth (the
    // aggregate bandwidth is divided among the nprocs concurrent nodes).
    const std::uint64_t cache = params_.bulkCacheBytes(nprocs);
    const bool bwCachedHit =
        isWrite ? cumWritten <= cache : fileSize <= cache;
    const double bw =
        (bwCachedHit ? params_.bulkBwCached : params_.bulkBwDisk) * ioScale;
    node.clock().advance(latency + static_cast<double>(opBytes) *
                                       static_cast<double>(nprocs) / bw);
  }
}

double PerfModel::collectiveBulkDuration(int nprocs, std::uint64_t totalBytes,
                                         std::uint64_t maxNodeBytes,
                                         std::uint64_t fileSize,
                                         std::uint64_t cumWrittenBefore,
                                         bool isWrite) const {
  if (!params_.enabled) return 0.0;
  const double ioScale = static_cast<double>(queues_.size());
  const double bwCached = params_.bulkBwCached * ioScale;
  const double bwDisk = params_.bulkBwDisk * ioScale;
  const std::uint64_t cache = params_.bulkCacheBytes(nprocs);

  double transfer = 0.0;
  double effectiveBw = bwCached;
  if (isWrite) {
    // Bytes up to the cache boundary stream at cached bandwidth; the rest
    // goes to disk.
    std::uint64_t cachedBytes = 0;
    if (cumWrittenBefore < cache) {
      cachedBytes = std::min<std::uint64_t>(totalBytes,
                                            cache - cumWrittenBefore);
    }
    const std::uint64_t diskBytes = totalBytes - cachedBytes;
    transfer = static_cast<double>(cachedBytes) / bwCached +
               static_cast<double>(diskBytes) / bwDisk;
    if (totalBytes > 0) {
      effectiveBw = static_cast<double>(totalBytes) / std::max(transfer, 1e-12);
    }
  } else {
    const bool cached = fileSize <= cache;
    effectiveBw = cached ? bwCached : bwDisk;
    transfer = static_cast<double>(totalBytes) / effectiveBw;
  }

  // A lopsided collective (e.g. the gathered size table at node 0) is
  // limited by the most loaded node's share of the bandwidth.
  const double fraction =
      std::max(params_.perNodeBwFraction, 1.0 / static_cast<double>(nprocs));
  const double nodeLimit =
      static_cast<double>(maxNodeBytes) / (effectiveBw * fraction);

  return params_.collectiveSync(nprocs) + std::max(transfer, nodeLimit);
}

double PerfModel::backgroundOpSeconds(int nprocs, int ops,
                                      std::uint64_t bytes,
                                      std::uint64_t refBytes,
                                      bool isWrite) const {
  if (!params_.enabled) return 0.0;
  const double ioScale = static_cast<double>(queues_.size());
  const bool cached = refBytes <= params_.bulkCacheBytes(nprocs);
  const double bulkBw =
      (cached ? params_.bulkBwCached : params_.bulkBwDisk) * ioScale;
  const bool latCached = refBytes <= params_.smallOpCacheBytes;
  const double latency = latCached ? params_.smallOpLatencyCached
                                   : params_.smallOpLatencyDisk;
  // One node drives at most its per-node fraction of the striped bandwidth.
  const double fraction =
      std::max(params_.perNodeBwFraction, 1.0 / static_cast<double>(nprocs));
  (void)isWrite;  // the tier selection via refBytes is direction-agnostic
  return static_cast<double>(ops) * latency +
         static_cast<double>(bytes) / (bulkBw * fraction);
}

void PerfModel::chargeBookkeeping(rt::Node& node, std::uint64_t nElements) {
  if (!params_.enabled) return;
  node.clock().advance(params_.bookkeepingPerRecord +
                       params_.bookkeepingPerElement *
                           static_cast<double>(nElements));
}

void PerfModel::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(queues_.begin(), queues_.end(), 0.0);
}

}  // namespace pcxx::pfs
