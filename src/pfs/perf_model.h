// Virtual-time performance model for the parallel file system.
//
// The paper's evaluation ran on a 1995 Intel Paragon (OSF/1 + PFS) and an
// SGI Challenge; neither is available, so simulation-mode benches advance
// per-node virtual clocks according to this model instead of sleeping. The
// model reproduces the *shape* of the paper's Tables 1-4 (see DESIGN.md
// section 6 for the calibration): who wins, by roughly what factor, and
// where the cliffs fall — not the absolute 1995 numbers.
//
// Mechanisms modeled (each visible in the paper's own data):
//
//  * Small independent operations (unbuffered I/O) pay a per-request
//    latency: a cached value while the file still fits the I/O-node file
//    cache, a much larger disk value beyond it. This produces the dramatic
//    unbuffered-I/O cliff between 512 and 1000 segments on the Paragon
//    (14.73 s -> 283 s). On the Paragon small requests serialize through
//    the I/O nodes (4- and 8-node unbuffered times are nearly identical in
//    the paper); on the SGI (an SMP with a unified page cache) they proceed
//    in parallel.
//
//  * Bulk transfers (manual buffering, pC++/streams) move at an aggregate
//    cached bandwidth until the cumulative bytes exceed the cache (which
//    scales with the node count), then at disk bandwidth. This produces the
//    manual-buffering knee at 11.2 MB on the 4-node Paragon (5.42 s ->
//    54.17 s) and its absence on 8 nodes (9.69 s).
//
//  * Collective operations pay a synchronization cost that grows with the
//    node count (Paragon gsync was expensive), which is why small I/O on
//    8 nodes is *slower* than on 4 in the paper's manual-buffering rows.
//
//  * Per-element bookkeeping (pointer-list traversal, size table) charges
//    CPU time to the streams library; it shrinks relative to data volume,
//    reproducing the "% of Manual Buf." row rising toward 100%.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/machine.h"

namespace pcxx::pfs {

/// Platform timing parameters (all times seconds, sizes bytes, rates B/s).
struct PerfParams {
  bool enabled = false;
  std::string name = "none";

  // -- small independent operations (per-request latency dominated) --------
  double smallOpLatencyCached = 0.0;
  double smallOpLatencyDisk = 0.0;
  /// File-cache capacity governing the small-op latency cliff: writes are
  /// cached while cumulative bytes written stay below this; reads are cached
  /// while the whole file fits.
  std::uint64_t smallOpCacheBytes = std::numeric_limits<std::uint64_t>::max();
  /// Requests at or below this size take the small-op path.
  std::uint64_t smallOpThreshold = 16 * 1024;
  /// True when small requests serialize through a shared I/O-node queue
  /// (Paragon); false when they proceed concurrently (SGI SMP page cache).
  bool smallOpsSerialize = true;

  // -- bulk transfers (bandwidth dominated) ---------------------------------
  double bulkBwCached = 1e18;
  double bulkBwDisk = 1e18;
  /// Bulk cache capacity per node; total capacity = this * nprocs.
  std::uint64_t bulkCachePerNode = std::numeric_limits<std::uint64_t>::max();
  /// A single compute node can drive at most this fraction of the aggregate
  /// file system bandwidth (node-0 bottleneck for gathered headers); on a
  /// single-node machine the full bandwidth is available.
  double perNodeBwFraction = 0.5;

  // -- collective costs ------------------------------------------------------
  double collectiveSyncBase = 0.0;
  double collectiveSyncPerNode = 0.0;

  // -- library CPU costs -----------------------------------------------------
  /// Charged by pC++/streams per element for pointer-list traversal and
  /// size-table bookkeeping.
  double bookkeepingPerElement = 0.0;
  /// Charged by pC++/streams once per record write()/read() (header
  /// construction, extra collective synchronizations).
  double bookkeepingPerRecord = 0.0;

  double collectiveSync(int nprocs) const {
    return collectiveSyncBase + collectiveSyncPerNode * nprocs;
  }
  std::uint64_t bulkCacheBytes(int nprocs) const {
    const std::uint64_t perNode = bulkCachePerNode;
    const auto n = static_cast<std::uint64_t>(nprocs);
    if (perNode > std::numeric_limits<std::uint64_t>::max() / (n ? n : 1)) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return perNode * n;
  }
};

/// Intel Paragon preset (calibrated to Tables 1 and 2; see DESIGN.md §6).
PerfParams paragonParams();

/// SGI Challenge preset for `nprocs` processors (Tables 3 and 4).
PerfParams sgiParams(int nprocs);

/// Disabled model (real-time mode).
PerfParams noModel();

/// Look up a preset by name: "paragon", "sgi", "none".
PerfParams paramsByName(const std::string& name, int nprocs);

/// Applies PerfParams to advance virtual clocks. One PerfModel instance is
/// shared by all files of a Pfs; it owns the per-I/O-node small-op queues.
///
/// `nIoNodes` scales the file system: bulk bandwidth is multiplied by it and
/// small requests are spread over that many serialized queues (selected by
/// stripe, `offset / stripeUnit % nIoNodes`). The platform presets are
/// calibrated for nIoNodes = 1; the stripe-sweep ablation varies it.
class PerfModel {
 public:
  explicit PerfModel(PerfParams params, int nIoNodes = 1,
                     std::uint64_t stripeUnit = 64 * 1024);

  bool enabled() const { return params_.enabled; }
  const PerfParams& params() const { return params_; }
  int nIoNodes() const { return static_cast<int>(queues_.size()); }

  /// Charge one independent request issued by `node`. `fileSize` is the file
  /// size after the op; `cumWritten` is cumulative bytes ever written to the
  /// file (after the op, for writes).
  void chargeIndependentOp(rt::Node& node, std::uint64_t offset,
                           std::uint64_t opBytes, std::uint64_t fileSize,
                           std::uint64_t cumWritten, bool isWrite);

  /// Duration of a collective bulk transfer of `totalBytes` (all nodes
  /// combined), of which the most loaded node moves `maxNodeBytes`.
  /// `cumWrittenBefore` is bytes written to the file before this op (writes
  /// split cached/disk across the cache boundary; reads are cached only if
  /// the whole file fits). The duration is the larger of the aggregate
  /// transfer and the most-loaded node's transfer at its per-node bandwidth
  /// cap, plus the collective synchronization cost.
  double collectiveBulkDuration(int nprocs, std::uint64_t totalBytes,
                                std::uint64_t maxNodeBytes,
                                std::uint64_t fileSize,
                                std::uint64_t cumWrittenBefore,
                                bool isWrite) const;

  /// Pure modeled duration of `ops` background (pcxx::aio) transfers by one
  /// node totalling `bytes`: per-op latency plus the bytes at this node's
  /// per-node share of the bulk bandwidth. `refBytes` selects the cache
  /// tier — cumulative bytes written for writes, file size for reads. No
  /// clock or I/O-node-queue interaction, so prefetch/flusher timelines
  /// stay deterministic regardless of real thread scheduling.
  double backgroundOpSeconds(int nprocs, int ops, std::uint64_t bytes,
                             std::uint64_t refBytes, bool isWrite) const;

  /// Charge library bookkeeping CPU time for `nElements` local elements.
  void chargeBookkeeping(rt::Node& node, std::uint64_t nElements);

  /// Reset the small-op queues (between benchmark repetitions).
  void reset();

 private:
  PerfParams params_;
  std::uint64_t stripeUnit_;
  std::mutex mu_;
  std::vector<double> queues_;  // next-free time per I/O node
};

}  // namespace pcxx::pfs
