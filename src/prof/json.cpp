#include "prof/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace pcxx::prof {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double JsonValue::numberAt(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : def;
}

std::uint64_t JsonValue::countAt(const std::string& key,
                                 std::uint64_t def) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != Kind::Number || v->number < 0.0) return def;
  return static_cast<std::uint64_t>(v->number);
}

std::string JsonValue::stringAt(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->str : def;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream ss;
    ss << "JSON parse error at byte " << pos_ << ": " << what;
    throw FormatError(ss.str());
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': return parseLiteral("true", JsonValue::Kind::Bool, true);
      case 'f': return parseLiteral("false", JsonValue::Kind::Bool, false);
      case 'n': return parseLiteral("null", JsonValue::Kind::Null, false);
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      JsonValue key = parseString();
      skipWs();
      expect(':');
      v.members.emplace_back(std::move(key.str), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parseString() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'n': v.str.push_back('\n'); break;
        case 't': v.str.push_back('\t'); break;
        case 'r': v.str.push_back('\r'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'u': {
          // The emitters never write \u escapes; accept and keep the raw
          // code unit as '?' so foreign documents still parse.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          pos_ += 4;
          v.str.push_back('?');
          break;
        }
        default: fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue parseNumber() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = num;
    return v;
  }

  JsonValue parseLiteral(const char* word, JsonValue::Kind kind, bool b) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      fail(std::string("expected '") + word + "'");
    }
    pos_ += len;
    JsonValue v;
    v.kind = kind;
    v.boolean = b;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) {
  return Parser(text).parseDocument();
}

JsonValue parseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open input file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw IoError("failed reading input file: " + path);
  try {
    return parseJson(buf.str());
  } catch (const FormatError& e) {
    throw FormatError(path + ": " + e.what());
  }
}

}  // namespace pcxx::prof
