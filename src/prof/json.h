// Minimal JSON reader for pcxx-prof.
//
// pcxx-prof ingests artifacts the library itself wrote (--metrics-json
// reports and --trace-json Chrome traces), so this parser covers exactly
// the JSON subset those emitters produce: objects, arrays, double
// numbers, strings with \" \\ \n escapes, true/false/null. It is a small
// recursive-descent parser over an in-memory string — no dependency is
// pulled in for it, matching the repo's no-new-deps rule.
//
// Numbers are held as double, which is lossless for every value the
// emitters write (timestamps, seconds, and counters well under 2^53).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pcxx::prof {

/// One parsed JSON value. Object members preserve document order.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                             ///< Array
  std::vector<std::pair<std::string, JsonValue>> members;   ///< Object

  bool isNull() const { return kind == Kind::Null; }
  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Member value coerced to double/uint64/string, or `def` when the
  /// member is absent or has the wrong kind.
  double numberAt(const std::string& key, double def = 0.0) const;
  std::uint64_t countAt(const std::string& key, std::uint64_t def = 0) const;
  std::string stringAt(const std::string& key,
                       const std::string& def = {}) const;
};

/// Parse a complete JSON document. Throws pcxx::FormatError (with byte
/// offset and context) on malformed input or trailing garbage.
JsonValue parseJson(const std::string& text);

/// Read and parse a JSON file. Throws pcxx::IoError when the file cannot
/// be read, pcxx::FormatError when it does not parse.
JsonValue parseJsonFile(const std::string& path);

}  // namespace pcxx::prof
