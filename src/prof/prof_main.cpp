// pcxx-prof — offline critical-path and straggler profiler for the
// artifacts the benches already emit (--metrics-json reports and
// --trace-json Chrome traces).
//
//   pcxx-prof [--format=text|json] [--max-off-pct PCT]
//             report.json [trace.json ...]
//
// Inputs are classified by content, so any mix can be passed in one
// invocation (e.g. a figure5_all metrics report plus its per-table
// traces):
//
//   * pcxx-metrics-v1 (table benches): per cell and method, the critical
//     path is the node whose virtual clock finished last — its phase
//     breakdown IS the bench total's decomposition (compute, collective
//     wait, redistribution, pfs read/write). pcxx-prof recomputes the sum
//     and fails (exit 3) when it deviates from that node's total by more
//     than --max-off-pct percent, so a broken phase-timer attribution
//     cannot go unnoticed. A straggler league table ranks nodes by how
//     often the collective straggler detector (rt.coll_last_arrival)
//     blamed them, alongside their collective wait and aio stall time.
//   * pcxx-bench-metrics-v1 (ablation benches): per labeled run, the same
//     straggler league from the per-node snapshots.
//   * Chrome traces ("traceEvents"): flow-event accounting — chains,
//     steps, terminators, unterminated chains, and rt.coll spans — the
//     quick integrity check that causal links survived a code change.
//
// Exit status: 0 clean, 2 usage/parse errors, 3 when any critical-path
// decomposition is off by more than --max-off-pct.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "prof/json.h"
#include "util/error.h"
#include "util/options.h"

namespace {

using pcxx::prof::JsonValue;

// ---------------------------------------------------------------------------
// Report model
// ---------------------------------------------------------------------------

struct NodeWaitRow {
  int node = 0;
  std::uint64_t stragglerOps = 0;
  std::uint64_t collectives = 0;
  double syncWait = 0.0;
  double aioStall = 0.0;
  double aioDrain = 0.0;
  double total = 0.0;  // 0 when the doc carries no per-node total
};

struct PhaseSegment {
  std::string name;
  double seconds = 0.0;
};

struct CellProfile {
  std::string table;
  std::string method;
  std::int64_t segments = 0;
  std::uint64_t bytes = 0;
  double totalSeconds = 0.0;
  int criticalNode = -1;
  double criticalTotal = 0.0;
  double segmentSum = 0.0;
  double offPct = 0.0;
  bool violation = false;
  std::vector<PhaseSegment> phases;
  std::vector<NodeWaitRow> league;
};

struct BenchRunProfile {
  std::string file;
  std::string label;
  std::vector<NodeWaitRow> league;
};

struct TraceProfile {
  std::string file;
  std::size_t events = 0;
  std::size_t flowStarts = 0;
  std::size_t flowSteps = 0;
  std::size_t flowEnds = 0;
  std::size_t flowChains = 0;        // distinct ids seen on 's' events
  std::size_t unterminated = 0;      // chains with a start but no 'f'
  std::size_t collSpans = 0;         // rt.coll complete begin/end pairs
  std::size_t collEdges = 0;         // rt.coll flow starts (one per receiver)
  std::size_t stragglerMarks = 0;    // rt.coll_last_arrival instants
};

// Sort: most-blamed straggler first; among equals the node that waited
// least (it was the one others waited for), then node id for stability.
void sortLeague(std::vector<NodeWaitRow>& league) {
  std::sort(league.begin(), league.end(),
            [](const NodeWaitRow& a, const NodeWaitRow& b) {
              if (a.stragglerOps != b.stragglerOps) {
                return a.stragglerOps > b.stragglerOps;
              }
              if (a.syncWait != b.syncWait) return a.syncWait < b.syncWait;
              return a.node < b.node;
            });
}

// ---------------------------------------------------------------------------
// pcxx-metrics-v1 (table benches)
// ---------------------------------------------------------------------------

void profileMetricsV1(const JsonValue& doc, double maxOffPct,
                      std::vector<CellProfile>& out) {
  const JsonValue* tables = doc.find("tables");
  if (tables == nullptr || !tables->isArray()) {
    throw pcxx::FormatError("pcxx-metrics-v1 document has no tables array");
  }
  for (const JsonValue& table : tables->items) {
    const std::string title = table.stringAt("title", "(untitled)");
    const JsonValue* cells = table.find("cells");
    if (cells == nullptr || !cells->isArray()) continue;
    for (const JsonValue& cell : cells->items) {
      const JsonValue* methods = cell.find("methods");
      if (methods == nullptr || !methods->isArray()) continue;
      for (const JsonValue& method : methods->items) {
        CellProfile p;
        p.table = title;
        p.method = method.stringAt("method", "(unnamed)");
        p.segments = static_cast<std::int64_t>(cell.numberAt("segments"));
        p.bytes = cell.countAt("bytes");
        p.totalSeconds = method.numberAt("total_seconds");

        const JsonValue* perNode = method.find("per_node");
        if (perNode != nullptr && perNode->isArray()) {
          for (const JsonValue& n : perNode->items) {
            NodeWaitRow row;
            row.node = static_cast<int>(n.numberAt("node"));
            row.total = n.numberAt("total_seconds");
            row.syncWait = n.numberAt("sync_wait_seconds");
            row.stragglerOps = n.countAt("straggler_ops");
            row.collectives = n.countAt("collectives");
            row.aioStall = n.numberAt("aio_stall_seconds");
            row.aioDrain = n.numberAt("aio_drain_seconds");
            p.league.push_back(row);
            if (row.total > p.criticalTotal || p.criticalNode < 0) {
              p.criticalTotal = row.total;
              p.criticalNode = row.node;
            }
          }
          // The critical path is the last-finishing node: decompose ITS
          // phase breakdown, not the merged one, so the segments explain
          // what the bench total was actually spent on.
          for (const JsonValue& n : perNode->items) {
            if (static_cast<int>(n.numberAt("node")) != p.criticalNode) {
              continue;
            }
            const JsonValue* phases = n.find("phases");
            if (phases != nullptr && phases->isObject()) {
              for (const auto& m : phases->members) {
                if (m.second.kind != JsonValue::Kind::Number) continue;
                p.phases.push_back({m.first, m.second.number});
                p.segmentSum += m.second.number;
              }
            }
          }
        }
        const double base = p.criticalTotal > 0.0 ? p.criticalTotal : 1.0;
        p.offPct = 100.0 * (p.segmentSum - p.criticalTotal) / base;
        p.violation =
            p.criticalNode >= 0 && (p.offPct > maxOffPct ||
                                    p.offPct < -maxOffPct);
        sortLeague(p.league);
        out.push_back(std::move(p));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// pcxx-bench-metrics-v1 (ablation benches)
// ---------------------------------------------------------------------------

void profileBenchMetricsV1(const JsonValue& doc, const std::string& file,
                           std::vector<BenchRunProfile>& out) {
  const JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->isArray()) {
    throw pcxx::FormatError(
        "pcxx-bench-metrics-v1 document has no runs array");
  }
  for (const JsonValue& run : runs->items) {
    BenchRunProfile p;
    p.file = file;
    p.label = run.stringAt("label", "(unlabeled)");
    const JsonValue* metrics = run.find("metrics");
    const JsonValue* perNode =
        metrics != nullptr ? metrics->find("per_node") : nullptr;
    if (perNode != nullptr && perNode->isArray()) {
      for (size_t i = 0; i < perNode->items.size(); ++i) {
        const JsonValue& n = perNode->items[i];
        const JsonValue* counters = n.find("counters");
        const JsonValue* seconds = n.find("seconds");
        NodeWaitRow row;
        row.node = static_cast<int>(i);
        if (counters != nullptr) {
          row.stragglerOps = counters->countAt("rt.coll_straggler_ops");
          row.collectives = counters->countAt("rt.collectives");
        }
        if (seconds != nullptr) {
          row.syncWait = seconds->numberAt("rt.sync_wait_seconds");
          row.aioStall = seconds->numberAt("aio.stall_seconds");
          row.aioDrain = seconds->numberAt("aio.drain_seconds");
        }
        p.league.push_back(row);
      }
    }
    sortLeague(p.league);
    out.push_back(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Chrome traces
// ---------------------------------------------------------------------------

// Flow ids are hex strings in the emitted traces (numeric ids above 2^62
// would collapse under double parsing); tolerate plain numbers for
// foreign traces.
std::string flowIdOf(const JsonValue& e) {
  const JsonValue* v = e.find("id");
  if (v == nullptr) return {};
  if (v->kind == JsonValue::Kind::String) return v->str;
  std::ostringstream ss;
  ss.precision(17);
  ss << v->number;
  return ss.str();
}

void profileTrace(const JsonValue& doc, const std::string& file,
                  std::vector<TraceProfile>& out) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    throw pcxx::FormatError("trace document has no traceEvents array");
  }
  TraceProfile p;
  p.file = file;
  std::set<std::string> started;
  std::set<std::string> ended;
  std::size_t collBegins = 0;
  std::size_t collEnds = 0;
  for (const JsonValue& e : events->items) {
    const std::string ph = e.stringAt("ph");
    const std::string name = e.stringAt("name");
    if (ph == "M") continue;  // metadata records are not trace events
    ++p.events;
    if (ph == "s") {
      ++p.flowStarts;
      started.insert(flowIdOf(e));
      if (name == "rt.coll") ++p.collEdges;
    } else if (ph == "t") {
      ++p.flowSteps;
    } else if (ph == "f") {
      ++p.flowEnds;
      ended.insert(flowIdOf(e));
    } else if (ph == "B" && name == "rt.coll") {
      ++collBegins;
    } else if (ph == "E" && name == "rt.coll") {
      ++collEnds;
    } else if (ph == "i" && name == "rt.coll_last_arrival") {
      ++p.stragglerMarks;
    }
  }
  p.flowChains = started.size();
  for (const std::string& id : started) {
    if (ended.count(id) == 0) ++p.unterminated;
  }
  p.collSpans = std::min(collBegins, collEnds);
  out.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string secs(double v) {
  std::ostringstream ss;
  ss.precision(9);
  ss << v;
  return ss.str();
}

void printLeagueText(std::ostream& os, const std::vector<NodeWaitRow>& league,
                     bool withTotals, const char* indent) {
  os << indent
     << "node  straggler_ops  collectives  sync_wait_s  aio_stall_s  "
        "aio_drain_s";
  if (withTotals) os << "  total_s";
  os << "\n";
  for (const NodeWaitRow& r : league) {
    os << indent << r.node << "  " << r.stragglerOps << "  " << r.collectives
       << "  " << secs(r.syncWait) << "  " << secs(r.aioStall) << "  "
       << secs(r.aioDrain);
    if (withTotals) os << "  " << secs(r.total);
    os << "\n";
  }
}

void renderText(const std::vector<CellProfile>& cells,
                const std::vector<BenchRunProfile>& runs,
                const std::vector<TraceProfile>& traces, double maxOffPct) {
  for (const CellProfile& c : cells) {
    std::cout << "== " << c.table << " | " << c.method << " | segments "
              << c.segments << " | " << c.bytes << " bytes\n";
    std::cout << "   total " << secs(c.totalSeconds) << " s; critical path: ";
    if (c.criticalNode < 0) {
      std::cout << "(no per-node data)\n";
      continue;
    }
    std::cout << "node " << c.criticalNode << " (" << secs(c.criticalTotal)
              << " s), segment sum " << secs(c.segmentSum) << " s, off "
              << secs(c.offPct) << "%"
              << (c.violation ? "  ** EXCEEDS --max-off-pct **" : "") << "\n";
    for (const PhaseSegment& s : c.phases) {
      const double pct =
          c.criticalTotal > 0.0 ? 100.0 * s.seconds / c.criticalTotal : 0.0;
      std::cout << "     " << s.name << "  " << secs(s.seconds) << " s  ("
                << secs(pct) << "%)\n";
    }
    std::cout << "   straggler league:\n";
    printLeagueText(std::cout, c.league, /*withTotals=*/true, "     ");
  }
  for (const BenchRunProfile& r : runs) {
    std::cout << "== bench run \"" << r.label << "\" (" << r.file << ")\n";
    printLeagueText(std::cout, r.league, /*withTotals=*/false, "     ");
  }
  for (const TraceProfile& t : traces) {
    std::cout << "== trace " << t.file << "\n"
              << "     events " << t.events << ", flow chains "
              << t.flowChains << " (starts " << t.flowStarts << ", steps "
              << t.flowSteps << ", ends " << t.flowEnds << ", unterminated "
              << t.unterminated << ")\n"
              << "     collective spans " << t.collSpans << ", causal edges "
              << t.collEdges << ", straggler marks " << t.stragglerMarks
              << "\n";
  }
  int violations = 0;
  for (const CellProfile& c : cells) {
    if (c.violation) ++violations;
  }
  if (violations > 0) {
    std::cout << violations
              << " critical-path decomposition(s) off by more than "
              << secs(maxOffPct) << "%\n";
  }
}

void appendLeagueJson(std::ostringstream& ss,
                      const std::vector<NodeWaitRow>& league) {
  ss << "[";
  for (size_t i = 0; i < league.size(); ++i) {
    const NodeWaitRow& r = league[i];
    ss << (i > 0 ? ", " : "") << "{\"node\": " << r.node
       << ", \"straggler_ops\": " << r.stragglerOps
       << ", \"collectives\": " << r.collectives
       << ", \"sync_wait_seconds\": " << secs(r.syncWait)
       << ", \"aio_stall_seconds\": " << secs(r.aioStall)
       << ", \"aio_drain_seconds\": " << secs(r.aioDrain)
       << ", \"total_seconds\": " << secs(r.total) << "}";
  }
  ss << "]";
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void renderJson(const std::vector<CellProfile>& cells,
                const std::vector<BenchRunProfile>& runs,
                const std::vector<TraceProfile>& traces, double maxOffPct) {
  std::ostringstream ss;
  int violations = 0;
  ss << "{\"schema\": \"pcxx-prof-v1\", \"max_off_pct\": " << secs(maxOffPct)
     << ",\n \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellProfile& c = cells[i];
    if (c.violation) ++violations;
    ss << "  {\"table\": \"" << escape(c.table) << "\", \"method\": \""
       << escape(c.method) << "\", \"segments\": " << c.segments
       << ", \"bytes\": " << c.bytes
       << ", \"total_seconds\": " << secs(c.totalSeconds)
       << ", \"critical_node\": " << c.criticalNode
       << ", \"critical_total_seconds\": " << secs(c.criticalTotal)
       << ", \"segment_sum_seconds\": " << secs(c.segmentSum)
       << ", \"off_pct\": " << secs(c.offPct) << ", \"violation\": "
       << (c.violation ? "true" : "false") << ",\n   \"phases\": {";
    for (size_t j = 0; j < c.phases.size(); ++j) {
      ss << (j > 0 ? ", " : "") << "\"" << escape(c.phases[j].name)
         << "\": " << secs(c.phases[j].seconds);
    }
    ss << "},\n   \"straggler_league\": ";
    appendLeagueJson(ss, c.league);
    ss << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  ss << " ],\n \"bench_runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    ss << "  {\"file\": \"" << escape(runs[i].file) << "\", \"label\": \""
       << escape(runs[i].label) << "\", \"straggler_league\": ";
    appendLeagueJson(ss, runs[i].league);
    ss << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  ss << " ],\n \"traces\": [\n";
  for (size_t i = 0; i < traces.size(); ++i) {
    const TraceProfile& t = traces[i];
    ss << "  {\"file\": \"" << escape(t.file) << "\", \"events\": " << t.events
       << ", \"flow_chains\": " << t.flowChains
       << ", \"flow_starts\": " << t.flowStarts
       << ", \"flow_steps\": " << t.flowSteps
       << ", \"flow_ends\": " << t.flowEnds
       << ", \"unterminated_chains\": " << t.unterminated
       << ", \"coll_spans\": " << t.collSpans
       << ", \"coll_edges\": " << t.collEdges
       << ", \"straggler_marks\": " << t.stragglerMarks << "}"
       << (i + 1 < traces.size() ? "," : "") << "\n";
  }
  ss << " ],\n \"violations\": " << violations << "}\n";
  std::cout << ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcxx;

  Options opts("pcxx-prof",
               "Critical-path and straggler profiler over --metrics-json "
               "reports and --trace-json Chrome traces. Inputs are "
               "classified by content; pass any mix of artifact files.");
  opts.add("format", "text", "output format: text or json");
  opts.add("max-off-pct", "1.0",
           "fail (exit 3) when a cell's critical-path segment sum deviates "
           "from the critical node's total by more than this percentage");

  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const UsageError& e) {
    std::cerr << "pcxx-prof: " << e.what() << "\n";
    return 2;
  }
  const std::string format = opts.get("format");
  if (format != "text" && format != "json") {
    std::cerr << "pcxx-prof: unknown --format '" << format
              << "' (expected text or json)\n";
    return 2;
  }
  if (opts.positional().empty()) {
    std::cerr << "pcxx-prof: no input files\n" << opts.usage();
    return 2;
  }
  double maxOffPct = 0.0;
  try {
    maxOffPct = opts.getDouble("max-off-pct");
  } catch (const Error& e) {
    std::cerr << "pcxx-prof: " << e.what() << "\n";
    return 2;
  }

  std::vector<CellProfile> cells;
  std::vector<BenchRunProfile> runs;
  std::vector<TraceProfile> traces;
  for (const std::string& path : opts.positional()) {
    try {
      const prof::JsonValue doc = prof::parseJsonFile(path);
      const std::string schema =
          doc.isObject() ? doc.stringAt("schema") : std::string();
      if (schema == "pcxx-metrics-v1") {
        profileMetricsV1(doc, maxOffPct, cells);
      } else if (schema == "pcxx-bench-metrics-v1") {
        profileBenchMetricsV1(doc, path, runs);
      } else if (doc.isObject() && doc.find("traceEvents") != nullptr) {
        profileTrace(doc, path, traces);
      } else {
        std::cerr << "pcxx-prof: " << path
                  << ": not a pcxx metrics report or Chrome trace\n";
        return 2;
      }
    } catch (const Error& e) {
      std::cerr << "pcxx-prof: " << e.what() << "\n";
      return 2;
    }
  }

  if (format == "json") {
    renderJson(cells, runs, traces, maxOffPct);
  } else {
    renderText(cells, runs, traces, maxOffPct);
  }
  for (const CellProfile& c : cells) {
    if (c.violation) return 3;
  }
  return 0;
}
