// Per-record execution of a RedistPlan: counting-sort placement into one
// preallocated receive buffer, with the data exchange split into rounds of
// at most `chunkBytes` per peer.
//
// The exchange runs in two stages. Stage one swaps per-peer element-size
// lists (8 bytes per moved element) so every receiver can lay out its
// final buffer — sizes, offsets, and total — before any element data
// moves. Stage two streams the payload: each round packs up to chunkBytes
// per peer from the sender-side element streams and scatters the arriving
// bytes directly to their final offsets, so peak memory is bounded by
// O(nprocs * chunkBytes) regardless of record size. Elements split across
// round boundaries at byte granularity; the per-peer pack/consume cursors
// in ExchangeScratch carry the position across rounds.
//
// All counts are plan-derived on both sides from the same header bytes,
// so disagreement between what a peer sends and what the plan expects is
// an internal invariant violation (PCXX_CHECK), not a file-format error:
// format problems are fully diagnosed at plan-build time.
#include "redist/redist.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace pcxx::redist {

void execute(rt::Node& node, const RedistPlan& plan, const ByteBuffer& chunk,
             const std::vector<std::uint64_t>& chunkSizes,
             std::uint64_t chunkBytes, ByteBuffer& buffer,
             std::vector<std::uint64_t>& elemOffsets,
             std::vector<std::uint64_t>& elemSizes, ExchangeScratch& scratch,
             std::uint64_t flowId) {
#if PCXX_OBS_ENABLED
  // Step the record's flow chain at each wire touch (size swap + every
  // payload round) so the trace links the record to its exchanges.
  const auto flowStep = [&node, flowId] {
    obs::NodeObs* o = node.obs();
    if (flowId != 0 && o != nullptr && o->trace != nullptr) {
      o->trace->flowStep(o->nodeId, "ds.record", o->now(), flowId);
    }
  };
#else
  (void)flowId;
  const auto flowStep = [] {};
#endif
  const int nprocs = plan.nprocs;
  const int me = plan.me;
  PCXX_REQUIRE(node.nprocs() == nprocs && node.id() == me,
               "redistribution plan was built for a different machine shape");
  PCXX_CHECK(static_cast<std::int64_t>(chunkSizes.size()) == plan.chunkCount);

  const size_t local = static_cast<size_t>(plan.localCount);
  elemSizes.assign(local, 0);
  elemOffsets.assign(local, 0);

  // Byte offset of each chunk element (file order within my chunk).
  scratch.chunkOffsets.assign(chunkSizes.size(), 0);
  std::uint64_t chunkOff = 0;
  for (size_t k = 0; k < chunkSizes.size(); ++k) {
    scratch.chunkOffsets[k] = chunkOff;
    chunkOff += chunkSizes[k];
  }
  PCXX_CHECK(chunkOff == chunk.size());

  scratch.sendBufs.resize(static_cast<size_t>(nprocs));
  scratch.recvBufs.resize(static_cast<size_t>(nprocs));
  scratch.sendPeerBytes.assign(static_cast<size_t>(nprocs), 0);
  scratch.recvPeerBytes.assign(static_cast<size_t>(nprocs), 0);

  [[maybe_unused]] const double waitedBefore = node.clock().waitedSeconds();

  // ---- stage one: sizes -----------------------------------------------------
  // Self group: placed without touching the wire.
  for (std::int64_t i = plan.sendStarts[static_cast<size_t>(me)];
       i < plan.sendStarts[static_cast<size_t>(me) + 1]; ++i) {
    elemSizes[static_cast<size_t>(plan.sendSlot[static_cast<size_t>(i)])] =
        chunkSizes[static_cast<size_t>(plan.sendIdx[static_cast<size_t>(i)])];
  }
  std::uint64_t elementsMoved = 0;
  for (int p = 0; p < nprocs; ++p) {
    ByteBuffer& out = scratch.sendBufs[static_cast<size_t>(p)];
    out.clear();
    if (p == me) continue;
    const std::int64_t count = plan.sendCountTo(p);
    out.resize(8 * static_cast<size_t>(count));
    std::uint64_t payload = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t at = plan.sendStarts[static_cast<size_t>(p)] + i;
      const std::uint64_t sz =
          chunkSizes[static_cast<size_t>(plan.sendIdx[static_cast<size_t>(at)])];
      encodeU64(sz, out.data() + 8 * static_cast<size_t>(i));
      payload += sz;
    }
    scratch.sendPeerBytes[static_cast<size_t>(p)] = payload;
    elementsMoved += static_cast<std::uint64_t>(count);
  }
  PCXX_OBS_COUNT(node.obs(), RedistElementsMoved, elementsMoved);
#if !PCXX_OBS_ENABLED
  (void)elementsMoved;
#endif
  flowStep();
  node.alltoallvInto(scratch.sendBufs, scratch.recvBufs);
  for (int p = 0; p < nprocs; ++p) {
    if (p == me) continue;
    const ByteBuffer& in = scratch.recvBufs[static_cast<size_t>(p)];
    const std::int64_t count = plan.recvCountFrom(p);
    PCXX_CHECK(in.size() == 8 * static_cast<size_t>(count));
    std::uint64_t payload = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      const std::uint64_t sz = decodeU64(in.data() + 8 * static_cast<size_t>(i));
      const std::int64_t slot =
          plan.recvSlot[static_cast<size_t>(plan.recvStarts[static_cast<size_t>(p)] + i)];
      elemSizes[static_cast<size_t>(slot)] = sz;
      payload += sz;
    }
    scratch.recvPeerBytes[static_cast<size_t>(p)] = payload;
  }

  // Final layout: offsets are a prefix sum over reader local order.
  std::uint64_t total = 0;
  for (size_t j = 0; j < local; ++j) {
    elemOffsets[j] = total;
    total += elemSizes[j];
  }
  buffer.resize(static_cast<size_t>(total));  // capacity is kept across records

  // ---- self data ------------------------------------------------------------
  for (std::int64_t i = plan.sendStarts[static_cast<size_t>(me)];
       i < plan.sendStarts[static_cast<size_t>(me) + 1]; ++i) {
    const std::int64_t idx = plan.sendIdx[static_cast<size_t>(i)];
    const std::int64_t slot = plan.sendSlot[static_cast<size_t>(i)];
    const std::uint64_t sz = chunkSizes[static_cast<size_t>(idx)];
    if (sz == 0) continue;
    std::memcpy(buffer.data() + elemOffsets[static_cast<size_t>(slot)],
                chunk.data() + scratch.chunkOffsets[static_cast<size_t>(idx)],
                static_cast<size_t>(sz));
  }

  // ---- stage two: chunked data rounds ---------------------------------------
  // Rounds are a global maximum so every node participates in every
  // alltoallv, including nodes with nothing left to send (they contribute
  // empty buffers). chunkBytes == 0 means one unchunked round.
  std::uint64_t myMaxPeerBytes = 0;
  for (int p = 0; p < nprocs; ++p) {
    if (p == me) continue;
    myMaxPeerBytes =
        std::max(myMaxPeerBytes, scratch.sendPeerBytes[static_cast<size_t>(p)]);
  }
  const std::uint64_t myRounds =
      chunkBytes == 0 ? (myMaxPeerBytes > 0 ? 1 : 0)
                      : (myMaxPeerBytes + chunkBytes - 1) / chunkBytes;
  const std::uint64_t rounds = static_cast<std::uint64_t>(
      node.allreduceMax(static_cast<double>(myRounds)));

  scratch.sendCursor.assign(static_cast<size_t>(nprocs), 0);
  scratch.sendInner.assign(static_cast<size_t>(nprocs), 0);
  scratch.recvCursor.assign(static_cast<size_t>(nprocs), 0);
  scratch.recvInner.assign(static_cast<size_t>(nprocs), 0);
  for (int p = 0; p < nprocs; ++p) {
    scratch.sendCursor[static_cast<size_t>(p)] =
        plan.sendStarts[static_cast<size_t>(p)];
    scratch.recvCursor[static_cast<size_t>(p)] =
        plan.recvStarts[static_cast<size_t>(p)];
  }

  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (int p = 0; p < nprocs; ++p) {
      ByteBuffer& out = scratch.sendBufs[static_cast<size_t>(p)];
      out.clear();
      if (p == me) continue;
      std::uint64_t budget =
          chunkBytes == 0 ? std::numeric_limits<std::uint64_t>::max()
                          : chunkBytes;
      std::int64_t& cur = scratch.sendCursor[static_cast<size_t>(p)];
      std::uint64_t& inner = scratch.sendInner[static_cast<size_t>(p)];
      const std::int64_t end = plan.sendStarts[static_cast<size_t>(p) + 1];
      while (cur < end) {
        const std::int64_t idx = plan.sendIdx[static_cast<size_t>(cur)];
        const std::uint64_t sz = chunkSizes[static_cast<size_t>(idx)];
        const std::uint64_t left = sz - inner;
        const std::uint64_t take = std::min(left, budget);
        if (left > 0 && take == 0) break;  // budget exhausted this round
        const Byte* src =
            chunk.data() + scratch.chunkOffsets[static_cast<size_t>(idx)] + inner;
        out.insert(out.end(), src, src + take);
        inner += take;
        budget -= take;
        if (inner == sz) {
          ++cur;
          inner = 0;
        }
      }
      const std::uint64_t sent = out.size();
      scratch.sendPeerBytes[static_cast<size_t>(p)] -= sent;
      if (sent > 0) {
        PCXX_OBS_COUNT(node.obs(), RedistBytesSent, sent);
        PCXX_OBS_COUNT(node.obs(), RedistMessagesSent, 1);
        PCXX_OBS_PEER_BYTES(node.obs(), p, sent);
        PCXX_OBS_HIST(node.obs(), RedistChunkBytes, sent);
      }
    }
    flowStep();
    node.alltoallvInto(scratch.sendBufs, scratch.recvBufs);
    for (int p = 0; p < nprocs; ++p) {
      if (p == me) continue;
      const ByteBuffer& in = scratch.recvBufs[static_cast<size_t>(p)];
      PCXX_CHECK(in.size() <= scratch.recvPeerBytes[static_cast<size_t>(p)]);
      std::int64_t& cur = scratch.recvCursor[static_cast<size_t>(p)];
      std::uint64_t& inner = scratch.recvInner[static_cast<size_t>(p)];
      const std::int64_t end = plan.recvStarts[static_cast<size_t>(p) + 1];
      size_t pos = 0;
      while (pos < in.size()) {
        PCXX_CHECK(cur < end);
        const std::int64_t slot = plan.recvSlot[static_cast<size_t>(cur)];
        const std::uint64_t sz = elemSizes[static_cast<size_t>(slot)];
        const std::uint64_t left = sz - inner;
        if (left == 0) {
          ++cur;
          inner = 0;
          continue;
        }
        const std::uint64_t take =
            std::min(left, static_cast<std::uint64_t>(in.size() - pos));
        std::memcpy(buffer.data() + elemOffsets[static_cast<size_t>(slot)] + inner,
                    in.data() + pos, static_cast<size_t>(take));
        inner += take;
        pos += take;
        if (inner == sz) {
          ++cur;
          inner = 0;
        }
      }
      scratch.recvPeerBytes[static_cast<size_t>(p)] -= in.size();
    }
  }
  for (int p = 0; p < nprocs; ++p) {
    if (p == me) continue;
    PCXX_CHECK(scratch.sendPeerBytes[static_cast<size_t>(p)] == 0 &&
                   scratch.recvPeerBytes[static_cast<size_t>(p)] == 0);
  }
  PCXX_OBS_SECONDS(node.obs(), RedistWaitSeconds,
                   node.clock().waitedSeconds() - waitedBefore);
}

}  // namespace pcxx::redist
