// RedistPlan construction and the process-wide plan cache.
//
// Plan building is pure layout arithmetic: no collectives, no I/O. Every
// node derives its plan from the same broadcast record-header bytes, so
// any FormatError raised here fires on every node at the same program
// point — which is what lets salvage mode make a collectively consistent
// skip decision without an extra vote.
#include "redist/redist.h"

#include <algorithm>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/error.h"

namespace pcxx::redist {

namespace {

/// File order is writer-proc-major: node w's elements occupy file
/// positions [writerPrefix[w], writerPrefix[w+1]), ascending by global
/// index. This helper answers both directions of that mapping, using the
/// distribution's closed forms when the alignment is identity and one
/// O(size) enumeration otherwise (paid once per plan build, then cached).
class WriterOrder {
 public:
  WriterOrder(const coll::Layout& writer, std::int64_t size)
      : writer_(writer), closed_(writer.closedForm()) {
    const int wprocs = writer_.nprocs();
    prefix_.assign(static_cast<size_t>(wprocs) + 1, 0);
    if (closed_) {
      for (int w = 0; w < wprocs; ++w) {
        prefix_[static_cast<size_t>(w) + 1] =
            prefix_[static_cast<size_t>(w)] +
            writer_.distribution().localCount(w);
      }
    } else {
      std::vector<std::int64_t> counts(static_cast<size_t>(wprocs), 0);
      for (std::int64_t i = 0; i < size; ++i) {
        const int o = writer_.ownerOf(i);
        if (o < 0 || o >= wprocs) {
          throw FormatError(
              "record header layout routes global index " + std::to_string(i) +
              " to node " + std::to_string(o) + " of " +
              std::to_string(wprocs) + " — the file's layout is corrupt");
        }
        counts[static_cast<size_t>(o)] += 1;
      }
      for (int w = 0; w < wprocs; ++w) {
        prefix_[static_cast<size_t>(w) + 1] =
            prefix_[static_cast<size_t>(w)] + counts[static_cast<size_t>(w)];
      }
      // Second pass: both directions of the file-order mapping.
      fileIndexOf_.assign(static_cast<size_t>(size), 0);
      globalAtFile_.assign(static_cast<size_t>(size), 0);
      std::vector<std::int64_t> cursor(prefix_.begin(), prefix_.end() - 1);
      for (std::int64_t i = 0; i < size; ++i) {
        const int o = writer_.ownerOf(i);
        const std::int64_t f = cursor[static_cast<size_t>(o)]++;
        fileIndexOf_[static_cast<size_t>(i)] = f;
        globalAtFile_[static_cast<size_t>(f)] = i;
      }
    }
    if (prefix_.back() != size) {
      throw FormatError(
          "record header layout's local element lists cover " +
          std::to_string(prefix_.back()) + " of " + std::to_string(size) +
          " elements — the file's layout is corrupt");
    }
  }

  std::int64_t total() const { return prefix_.back(); }

  /// Global index at file position `f`. `w` is a monotone cursor hint for
  /// sequential scans (callers pass the same int across ascending f).
  std::int64_t globalAt(std::int64_t f, int& w) const {
    if (!closed_) return globalAtFile_[static_cast<size_t>(f)];
    while (w + 1 < static_cast<int>(prefix_.size()) - 1 &&
           f >= prefix_[static_cast<size_t>(w) + 1]) {
      ++w;
    }
    return writer_.distribution().localToGlobal(
        w, f - prefix_[static_cast<size_t>(w)]);
  }

  /// File position of global index `g`.
  std::int64_t fileIndexOf(std::int64_t g) const {
    if (!closed_) return fileIndexOf_[static_cast<size_t>(g)];
    const int o = writer_.distribution().ownerOf(g);
    return prefix_[static_cast<size_t>(o)] +
           writer_.distribution().globalToLocal(g);
  }

 private:
  const coll::Layout& writer_;
  bool closed_;
  std::vector<std::int64_t> prefix_;        // size wprocs + 1
  std::vector<std::int64_t> fileIndexOf_;   // non-closed-form only
  std::vector<std::int64_t> globalAtFile_;  // non-closed-form only
};

}  // namespace

PlanPtr buildPlan(const coll::Layout& writer, const coll::Layout& reader,
                  int nprocs, int me) {
  PCXX_REQUIRE(nprocs > 0 && me >= 0 && me < nprocs,
               "buildPlan: bad machine shape");
  const std::int64_t size = reader.size();
  if (writer.size() != size) {
    throw FormatError("record header layout describes " +
                      std::to_string(writer.size()) +
                      " elements but the reader expects " +
                      std::to_string(size));
  }

  auto plan = std::make_shared<RedistPlan>();
  plan->nprocs = nprocs;
  plan->me = me;

  // ---- reader side: per-node counts, owners, and local slots -------------
  const bool readerClosed = reader.closedForm();
  std::vector<std::int64_t> readerCounts(static_cast<size_t>(nprocs), 0);
  std::vector<std::int64_t> readerSlotOf;  // non-closed-form fallback
  std::vector<int> readerOwnerOf;          // non-closed-form fallback
  if (readerClosed) {
    for (int p = 0; p < nprocs; ++p) {
      readerCounts[static_cast<size_t>(p)] = reader.localCount(p);
    }
  } else {
    readerOwnerOf.assign(static_cast<size_t>(size), 0);
    readerSlotOf.assign(static_cast<size_t>(size), 0);
    for (std::int64_t i = 0; i < size; ++i) {
      const int o = reader.ownerOf(i);
      PCXX_CHECK(o >= 0 && o < nprocs);
      readerOwnerOf[static_cast<size_t>(i)] = o;
      // Locals ascend by global index, so the running count IS the slot.
      readerSlotOf[static_cast<size_t>(i)] =
          readerCounts[static_cast<size_t>(o)]++;
    }
  }
  // Phase-1 chunks partition file order by the reader's local counts.
  std::vector<std::int64_t> chunkPrefix(static_cast<size_t>(nprocs) + 1, 0);
  for (int p = 0; p < nprocs; ++p) {
    chunkPrefix[static_cast<size_t>(p) + 1] =
        chunkPrefix[static_cast<size_t>(p)] +
        readerCounts[static_cast<size_t>(p)];
  }
  PCXX_CHECK(chunkPrefix.back() == size);
  plan->chunkStart = chunkPrefix[static_cast<size_t>(me)];
  plan->chunkCount = readerCounts[static_cast<size_t>(me)];
  plan->localCount = readerCounts[static_cast<size_t>(me)];

  // ---- writer side: the file-order mapping (may throw FormatError) -------
  const WriterOrder order(writer, size);

  // ---- sender side: route my chunk, counting-sorted by destination -------
  const std::int64_t chunkCount = plan->chunkCount;
  std::vector<int> ownerOfChunk(static_cast<size_t>(chunkCount), 0);
  std::vector<std::int64_t> slotOfChunk(static_cast<size_t>(chunkCount), 0);
  std::vector<std::int64_t> sendCounts(static_cast<size_t>(nprocs), 0);
  int wCursor = 0;
  for (std::int64_t k = 0; k < chunkCount; ++k) {
    const std::int64_t g = order.globalAt(plan->chunkStart + k, wCursor);
    if (g < 0 || g >= size) {
      throw FormatError("record header layout yields out-of-range global "
                        "index " +
                        std::to_string(g) + " at file position " +
                        std::to_string(plan->chunkStart + k));
    }
    const int o =
        readerClosed ? reader.ownerOf(g) : readerOwnerOf[static_cast<size_t>(g)];
    PCXX_CHECK(o >= 0 && o < nprocs);
    ownerOfChunk[static_cast<size_t>(k)] = o;
    slotOfChunk[static_cast<size_t>(k)] =
        readerClosed ? reader.distribution().globalToLocal(g)
                     : readerSlotOf[static_cast<size_t>(g)];
    sendCounts[static_cast<size_t>(o)] += 1;
  }
  plan->sendStarts.assign(static_cast<size_t>(nprocs) + 1, 0);
  for (int p = 0; p < nprocs; ++p) {
    plan->sendStarts[static_cast<size_t>(p) + 1] =
        plan->sendStarts[static_cast<size_t>(p)] +
        sendCounts[static_cast<size_t>(p)];
  }
  plan->sendIdx.assign(static_cast<size_t>(chunkCount), 0);
  plan->sendSlot.assign(static_cast<size_t>(chunkCount), 0);
  std::vector<std::int64_t> fill(plan->sendStarts.begin(),
                                 plan->sendStarts.end() - 1);
  for (std::int64_t k = 0; k < chunkCount; ++k) {
    const int o = ownerOfChunk[static_cast<size_t>(k)];
    const std::int64_t at = fill[static_cast<size_t>(o)]++;
    plan->sendIdx[static_cast<size_t>(at)] = k;
    plan->sendSlot[static_cast<size_t>(at)] = slotOfChunk[static_cast<size_t>(k)];
  }

  // ---- receiver side: where each of my elements arrives from -------------
  std::vector<std::int64_t> myGlobals;
  myGlobals.reserve(static_cast<size_t>(plan->localCount));
  if (readerClosed) {
    const std::int64_t n = plan->localCount;
    for (std::int64_t l = 0; l < n; ++l) {
      myGlobals.push_back(reader.distribution().localToGlobal(me, l));
    }
  } else {
    for (std::int64_t i = 0; i < size; ++i) {
      if (readerOwnerOf[static_cast<size_t>(i)] == me) myGlobals.push_back(i);
    }
  }
  struct Arrival {
    int src;
    std::int64_t filePos;
    std::int64_t slot;
  };
  std::vector<Arrival> arrivals;
  std::int64_t selfSeen = 0;
  for (std::int64_t j = 0;
       j < static_cast<std::int64_t>(myGlobals.size()); ++j) {
    const std::int64_t f = order.fileIndexOf(myGlobals[static_cast<size_t>(j)]);
    const auto it =
        std::upper_bound(chunkPrefix.begin(), chunkPrefix.end(), f);
    const int s = static_cast<int>(it - chunkPrefix.begin()) - 1;
    if (s == me) {
      selfSeen += 1;
      continue;
    }
    arrivals.push_back(Arrival{s, f, j});
  }
  PCXX_CHECK(selfSeen == plan->sendCountTo(me));
  // A peer transmits its group to me in its file order, so my arrival
  // order from that peer is ascending file position.
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.src != b.src ? a.src < b.src : a.filePos < b.filePos;
            });
  plan->recvStarts.assign(static_cast<size_t>(nprocs) + 1, 0);
  for (const Arrival& a : arrivals) {
    plan->recvStarts[static_cast<size_t>(a.src) + 1] += 1;
  }
  for (int p = 0; p < nprocs; ++p) {
    plan->recvStarts[static_cast<size_t>(p) + 1] +=
        plan->recvStarts[static_cast<size_t>(p)];
  }
  plan->recvSlot.reserve(arrivals.size());
  plan->recvSlot.clear();
  for (const Arrival& a : arrivals) {
    plan->recvSlot.push_back(a.slot);
  }

  // ---- validation: self + arrivals must tile [0, localCount) exactly -----
  // Any aliasing in a corrupt writer layout shows up here as a duplicate
  // delivery slot; name the offending global index precisely instead of
  // letting it surface later as a vague count mismatch.
  std::vector<std::uint8_t> seen(static_cast<size_t>(plan->localCount), 0);
  std::int64_t covered = 0;
  auto mark = [&](std::int64_t slot) {
    if (slot < 0 || slot >= plan->localCount ||
        seen[static_cast<size_t>(slot)] != 0) {
      const std::int64_t g =
          (slot >= 0 && slot < static_cast<std::int64_t>(myGlobals.size()))
              ? myGlobals[static_cast<size_t>(slot)]
              : slot;
      throw FormatError(
          "duplicate delivery for global index " + std::to_string(g) +
          " during redistribution routing — the record header's layout is "
          "corrupt");
    }
    seen[static_cast<size_t>(slot)] = 1;
    covered += 1;
  };
  for (std::int64_t i = plan->sendStarts[static_cast<size_t>(me)];
       i < plan->sendStarts[static_cast<size_t>(me) + 1]; ++i) {
    mark(plan->sendSlot[static_cast<size_t>(i)]);
  }
  for (const std::int64_t slot : plan->recvSlot) mark(slot);
  if (covered != plan->localCount) {
    throw FormatError(
        "redistribution routing covers " + std::to_string(covered) + " of " +
        std::to_string(plan->localCount) +
        " local elements — the record header's layout is corrupt");
  }
  return plan;
}

std::string planKey(const coll::Layout& writer, const coll::Layout& reader,
                    int nprocs, int me) {
  ByteBuffer buf;
  ByteWriter w(buf);
  writer.encode(w);
  reader.encode(w);
  w.u32(static_cast<std::uint32_t>(nprocs));
  w.u32(static_cast<std::uint32_t>(me));
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

struct PlanCache::Impl {
  std::mutex mu;
  size_t capacity;
  // Front = most recently used. The map indexes into the list.
  std::list<std::pair<std::string, PlanPtr>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, PlanPtr>>::iterator>
      index;

  void evictOverCapacityLocked() {
    while (lru.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
    }
  }
};

PlanCache::PlanCache(size_t capacity) : impl_(std::make_shared<Impl>()) {
  impl_->capacity = capacity;
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

PlanPtr PlanCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->index.find(key);
  if (it == impl_->index.end()) return nullptr;
  impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  return impl_->lru.front().second;
}

void PlanCache::put(const std::string& key, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->capacity == 0) return;
  const auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    it->second->second = std::move(plan);
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    return;
  }
  impl_->lru.emplace_front(key, std::move(plan));
  impl_->index.emplace(key, impl_->lru.begin());
  impl_->evictOverCapacityLocked();
}

size_t PlanCache::size() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->lru.size();
}

size_t PlanCache::capacity() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

void PlanCache::setCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = capacity;
  impl_->evictOverCapacityLocked();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->lru.clear();
  impl_->index.clear();
}

PlanPtr planFor(const coll::Layout& writer, const coll::Layout& reader,
                rt::Node& node) {
  const std::string key = planKey(writer, reader, node.nprocs(), node.id());
  PlanCache& cache = PlanCache::instance();
  if (PlanPtr hit = cache.get(key)) {
    PCXX_OBS_COUNT(node.obs(), RedistPlanHits, 1);
    return hit;
  }
  PCXX_OBS_COUNT(node.obs(), RedistPlanMisses, 1);
  PlanPtr plan;
  {
    PCXX_OBS_PHASE(node.obs(), "redist.plan", RedistPlanBuildSeconds);
    plan = buildPlan(writer, reader, node.nprocs(), node.id());
  }
  cache.put(key, plan);
  return plan;
}

}  // namespace pcxx::redist
