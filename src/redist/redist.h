// pcxx::redist — the plan-based redistribution engine (paper §4.1 phase 2).
//
// A sorted read whose reader layout differs from the layout stored in the
// record header must move every element from its phase-1 file-order
// position to its reader-side owner. The seed implementation recomputed
// that mapping per record per node by enumerating EVERY node's local
// element list (O(total elements) work and memory) and collected the
// exchanged elements through a std::map. This module separates the
// mapping (a RedistPlan, computed once per (writer layout, reader layout,
// nprocs, node) and cached) from the per-record execution (counting-sort
// placement into preallocated buffers + a chunked alltoallv with bounded
// peak memory):
//
//   * buildPlan() — pure layout arithmetic, no collectives. Closed-form
//     layouts (identity alignment) cost O(local + nprocs) per node; a
//     non-closed-form side falls back to one O(size) enumeration — but
//     only at plan-build time, never per record.
//   * PlanCache — process-wide LRU keyed by the encoded layout pair plus
//     (nprocs, node id). ViPIOS-style: the source→target mapping is a
//     reusable object, not a per-operation recomputation.
//   * execute() — places this node's phase-1 chunk and the exchanged
//     bytes straight into the caller's (buffer, offsets, sizes) arrays.
//     All scratch space lives in an ExchangeScratch the caller keeps
//     across records, so steady-state execution allocates nothing
//     (matching the aio BufferPool discipline). The data exchange runs in
//     rounds of at most `chunkBytes` per peer, bounding peak
//     redistribution memory independently of record size.
//
// Layering: redist sits on collection + runtime (+obs via runtime); the
// d/stream input path consumes it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collection/layout.h"
#include "runtime/machine.h"
#include "util/bytes.h"

namespace pcxx::redist {

/// One node's precomputed routing for a (writer layout, reader layout,
/// nprocs) triple. Plans are immutable after construction and shared
/// across streams/records via PlanPtr.
struct RedistPlan {
  int nprocs = 0;  ///< machine size the plan was built for
  int me = 0;      ///< node the plan belongs to

  std::int64_t localCount = 0;  ///< reader-side elements this node owns
  std::int64_t chunkCount = 0;  ///< elements in this node's phase-1 chunk
  std::int64_t chunkStart = 0;  ///< file-order position of the chunk

  /// Sender side: the chunk's elements grouped by destination peer
  /// (counting-sorted, stable in file order). Peer p's group is
  /// sendIdx[sendStarts[p] .. sendStarts[p+1]):
  ///   sendIdx[k]  — chunk-relative element index (ascending in a group)
  ///   sendSlot[k] — destination local slot at peer p
  /// The me-group is never transmitted; execute() places it locally.
  std::vector<std::int64_t> sendStarts;  ///< size nprocs + 1
  std::vector<std::int64_t> sendIdx;
  std::vector<std::int64_t> sendSlot;

  /// Receiver side: local slots of elements arriving from each peer, in
  /// the peer's transmission (= file) order. Excludes the self group.
  std::vector<std::int64_t> recvStarts;  ///< size nprocs + 1
  std::vector<std::int64_t> recvSlot;

  std::int64_t sendCountTo(int peer) const {
    return sendStarts[static_cast<size_t>(peer) + 1] -
           sendStarts[static_cast<size_t>(peer)];
  }
  std::int64_t recvCountFrom(int peer) const {
    return recvStarts[static_cast<size_t>(peer) + 1] -
           recvStarts[static_cast<size_t>(peer)];
  }
};

using PlanPtr = std::shared_ptr<const RedistPlan>;

/// Compute node `me`'s plan for redistributing a record written under
/// `writer` into collections laid out by `reader` on an `nprocs`-node
/// machine. Pure (no collectives): every node derives its plan from the
/// same broadcast header bytes, so a FormatError here is raised on every
/// node at the same point. Throws FormatError when the writer layout
/// (which came from the file) routes duplicate or out-of-range global
/// indices — the precise index is named in the message.
PlanPtr buildPlan(const coll::Layout& writer, const coll::Layout& reader,
                  int nprocs, int me);

/// Cache key for a plan: the encoded layout pair + (nprocs, me).
std::string planKey(const coll::Layout& writer, const coll::Layout& reader,
                    int nprocs, int me);

/// Process-wide LRU cache of plans. Thread-safe (node threads of one or
/// several machines hit it concurrently); bounded so a long-running
/// process scanning many layout pairs cannot grow without limit.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit PlanCache(size_t capacity = kDefaultCapacity);

  /// The process-wide instance used by planFor().
  static PlanCache& instance();

  /// Lookup; refreshes LRU position. Null when absent.
  PlanPtr get(const std::string& key);
  /// Insert (or refresh), evicting the least recently used entry beyond
  /// capacity.
  void put(const std::string& key, PlanPtr plan);

  size_t size();
  size_t capacity();
  /// Resize; drops LRU entries if shrinking. Capacity 0 disables caching.
  void setCapacity(size_t capacity);
  void clear();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Cache-aware plan lookup for `node`: consults PlanCache::instance(),
/// building and inserting on a miss. Counts redist.plan_hits/misses and
/// times plan builds on the node's observer.
PlanPtr planFor(const coll::Layout& writer, const coll::Layout& reader,
                rt::Node& node);

/// Reusable per-stream workspace for execute(). Keeping it across records
/// is what makes steady-state execution allocation-free: every vector is
/// resized/assigned in place and settles at its high-water capacity.
struct ExchangeScratch {
  std::vector<ByteBuffer> sendBufs;
  std::vector<ByteBuffer> recvBufs;
  std::vector<std::uint64_t> chunkOffsets;   ///< chunk element -> byte offset
  std::vector<std::uint64_t> sendPeerBytes;  ///< payload bytes owed per peer
  std::vector<std::uint64_t> recvPeerBytes;  ///< payload bytes due per peer
  // Per-round pack/consume cursors (element index into sendIdx/recvSlot +
  // byte offset inside the element at the cursor).
  std::vector<std::int64_t> sendCursor;
  std::vector<std::uint64_t> sendInner;
  std::vector<std::int64_t> recvCursor;
  std::vector<std::uint64_t> recvInner;
};

/// Execute phase 2 for one record: redistribute this node's phase-1 chunk
/// (`chunk`, per-element sizes `chunkSizes` in file order) into reader
/// local order, depositing into (buffer, elemOffsets, elemSizes).
/// `chunkBytes` bounds the payload sent to any single peer per exchange
/// round (0 = a single unchunked round, the seed behaviour). Collective:
/// every node must call with plans built from the same layout pair.
/// A nonzero `flowId` extends that record's trace flow chain with a step at
/// each exchange round, so Perfetto links the record to its exchanges.
void execute(rt::Node& node, const RedistPlan& plan, const ByteBuffer& chunk,
             const std::vector<std::uint64_t>& chunkSizes,
             std::uint64_t chunkBytes, ByteBuffer& buffer,
             std::vector<std::uint64_t>& elemOffsets,
             std::vector<std::uint64_t>& elemSizes, ExchangeScratch& scratch,
             std::uint64_t flowId = 0);

}  // namespace pcxx::redist
