#include "runtime/chaos_plan.h"

#include "runtime/rt_errors.h"
#include "util/faultspec.h"

namespace pcxx::rt {

namespace {

constexpr const char* kPlane = "chaos plan";

// Per-node PRNG streams: expand (seed, node) into independent sequences so
// node k's draws do not depend on how many draws other nodes made.
std::uint64_t nodeSeed(std::uint64_t seed, int node) {
  std::uint64_t state = seed ^ (0xA5A5A5A5A5A5A5A5ull +
                                static_cast<std::uint64_t>(node + 1));
  return splitmix64(state);
}

}  // namespace

ChaosPlan::ChaosPlan(std::uint64_t seed) : seed_(seed) {}

ChaosPlan::ChaosPlan(ChaosPlan&& other) noexcept
    : seed_(other.seed_),
      clauses_(std::move(other.clauses_)),
      nodes_(std::move(other.nodes_)),
      fired_(other.fired_.load(std::memory_order_relaxed)) {}

ChaosPlan& ChaosPlan::dropAtSend(std::uint64_t sendIndex) {
  clauses_.push_back(Clause{Shape::DropAt, sendIndex, 0.0, 0.0, -1});
  return *this;
}

ChaosPlan& ChaosPlan::dropWithProbability(double p) {
  PCXX_REQUIRE(p >= 0.0 && p <= 1.0, "chaos probability must lie in [0, 1]");
  clauses_.push_back(Clause{Shape::DropProb, 0, p, 0.0, -1});
  return *this;
}

ChaosPlan& ChaosPlan::delayAtSend(std::uint64_t sendIndex, double seconds) {
  PCXX_REQUIRE(seconds >= 0.0, "chaos delay must be non-negative");
  clauses_.push_back(Clause{Shape::DelayAt, sendIndex, 0.0, seconds, -1});
  return *this;
}

ChaosPlan& ChaosPlan::delayWithProbability(double p, double seconds) {
  PCXX_REQUIRE(p >= 0.0 && p <= 1.0, "chaos probability must lie in [0, 1]");
  PCXX_REQUIRE(seconds >= 0.0, "chaos delay must be non-negative");
  clauses_.push_back(Clause{Shape::DelayProb, 0, p, seconds, -1});
  return *this;
}

ChaosPlan& ChaosPlan::dupAtSend(std::uint64_t sendIndex) {
  clauses_.push_back(Clause{Shape::DupAt, sendIndex, 0.0, 0.0, -1});
  return *this;
}

ChaosPlan& ChaosPlan::reorderAtSend(std::uint64_t sendIndex) {
  clauses_.push_back(Clause{Shape::ReorderAt, sendIndex, 0.0, 0.0, -1});
  return *this;
}

ChaosPlan& ChaosPlan::crashNodeAtOp(int node, std::uint64_t opIndex) {
  PCXX_REQUIRE(node >= 0, "crashNodeAtOp needs a node id");
  clauses_.push_back(Clause{Shape::CrashNode, opIndex, 0.0, 0.0, node});
  return *this;
}

ChaosPlan& ChaosPlan::skewAtCollective(std::uint64_t collIndex,
                                       double seconds) {
  PCXX_REQUIRE(seconds >= 0.0, "chaos skew must be non-negative");
  clauses_.push_back(Clause{Shape::SkewAt, collIndex, 0.0, seconds, -1});
  return *this;
}

ChaosPlan& ChaosPlan::skewWithProbability(double p, double seconds) {
  PCXX_REQUIRE(p >= 0.0 && p <= 1.0, "chaos probability must lie in [0, 1]");
  PCXX_REQUIRE(seconds >= 0.0, "chaos skew must be non-negative");
  clauses_.push_back(Clause{Shape::SkewProb, 0, p, seconds, -1});
  return *this;
}

ChaosPlan& ChaosPlan::onlyNode(int node) {
  PCXX_REQUIRE(!clauses_.empty(), "onlyNode requires a preceding clause");
  PCXX_REQUIRE(clauses_.back().shape != Shape::CrashNode,
               "crash-node clauses already name their node");
  PCXX_REQUIRE(node >= 0, "onlyNode needs a node id");
  clauses_.back().node = node;
  return *this;
}

void ChaosPlan::bind(int nprocs) {
  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    NodeState st;
    st.rng = Rng(nodeSeed(seed_, i));
    nodes_.push_back(st);
  }
}

ChaosPlan::NodeState& ChaosPlan::state(int node) {
  PCXX_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(),
               "ChaosPlan: node out of range (bind() not called?)");
  return nodes_[static_cast<std::size_t>(node)];
}

void ChaosPlan::maybeCrash(NodeState& st, int node) {
  for (const Clause& c : clauses_) {
    if (c.shape == Shape::CrashNode && c.node == node &&
        c.opIndex == st.ops) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      throw ChaosCrashError(node, st.ops);
    }
  }
}

ChaosPlan::SendVerdict ChaosPlan::onSend(int node) {
  NodeState& st = state(node);
  maybeCrash(st, node);
  const std::uint64_t sendIdx = st.sends++;
  ++st.ops;
  SendVerdict v;
  for (const Clause& c : clauses_) {
    if (!clauseAppliesTo(c, node)) continue;
    switch (c.shape) {
      case Shape::DropAt:
        if (sendIdx != c.opIndex) continue;
        v.drop = true;
        break;
      case Shape::DropProb:
        if (st.rng.uniform01() >= c.probability) continue;
        v.drop = true;
        break;
      case Shape::DelayAt:
        if (sendIdx != c.opIndex) continue;
        v.delaySeconds = c.seconds;
        break;
      case Shape::DelayProb:
        if (st.rng.uniform01() >= c.probability) continue;
        v.delaySeconds = c.seconds;
        break;
      case Shape::DupAt:
        if (sendIdx != c.opIndex) continue;
        v.duplicate = true;
        break;
      case Shape::ReorderAt:
        if (sendIdx != c.opIndex) continue;
        v.reorder = true;
        break;
      case Shape::CrashNode:
      case Shape::SkewAt:
      case Shape::SkewProb:
        continue;  // not a send shape
    }
    // First matching send clause wins (mirrors FaultPlan::apply).
    fired_.fetch_add(1, std::memory_order_relaxed);
    return v;
  }
  return v;
}

double ChaosPlan::onCollectiveArrival(int node) {
  NodeState& st = state(node);
  maybeCrash(st, node);
  const std::uint64_t collIdx = st.colls++;
  ++st.ops;
  for (const Clause& c : clauses_) {
    if (!clauseAppliesTo(c, node)) continue;
    switch (c.shape) {
      case Shape::SkewAt:
        if (collIdx != c.opIndex) continue;
        break;
      case Shape::SkewProb:
        if (st.rng.uniform01() >= c.probability) continue;
        break;
      default:
        continue;
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    return c.seconds;
  }
  return 0.0;
}

void ChaosPlan::onRecv(int node) {
  NodeState& st = state(node);
  maybeCrash(st, node);
  ++st.ops;
}

// ---------------------------------------------------------------------------
// Spec-string parsing
// ---------------------------------------------------------------------------

namespace {

/// Split "N:D" into its two parts, or fail with `why`.
std::pair<std::string, std::string> splitColon(const std::string& clause,
                                               const std::string& args,
                                               const char* why) {
  const std::size_t colon = args.find(':');
  if (colon == std::string::npos) spec::badClause(kPlane, clause, why);
  return {args.substr(0, colon), args.substr(colon + 1)};
}

double parseSeconds(const std::string& clause, const std::string& text) {
  return spec::clauseDouble(kPlane, clause, text, 0.0, 1e18,
                            "expected a non-negative duration in seconds");
}

double parseProb(const std::string& clause, const std::string& text) {
  return spec::clauseDouble(kPlane, clause, text, 0.0, 1.0,
                            "expected a probability in [0, 1]");
}

}  // namespace

ChaosPlan ChaosPlan::parse(const std::string& spec, std::uint64_t seed) {
  ChaosPlan plan(seed);
  for (const std::string& clause : spec::splitClauses(spec)) {
    std::string body = clause;
    int restrictNode = -1;
    // Optional sender restriction: "nK:" prefixes any non-crash shape.
    if (body.size() >= 3 && body[0] == 'n' && body[1] >= '0' &&
        body[1] <= '9') {
      const std::size_t colon = body.find(':');
      if (colon != std::string::npos) {
        restrictNode = static_cast<int>(
            spec::clauseU64(kPlane, clause, body.substr(1, colon - 1)));
        body = body.substr(colon + 1);
      }
    }

    if (body.rfind("drop@", 0) == 0) {
      plan.dropAtSend(spec::clauseU64(kPlane, clause, body.substr(5)));
    } else if (body.rfind("drop%", 0) == 0) {
      plan.dropWithProbability(parseProb(clause, body.substr(5)));
    } else if (body.rfind("delay@", 0) == 0) {
      const auto [n, d] = splitColon(clause, body.substr(6),
                                     "delay@N:D needs a duration");
      plan.delayAtSend(spec::clauseU64(kPlane, clause, n),
                       parseSeconds(clause, d));
    } else if (body.rfind("delay%", 0) == 0) {
      const auto [p, d] = splitColon(clause, body.substr(6),
                                     "delay%p:D needs a duration");
      plan.delayWithProbability(parseProb(clause, p), parseSeconds(clause, d));
    } else if (body.rfind("dup@", 0) == 0) {
      plan.dupAtSend(spec::clauseU64(kPlane, clause, body.substr(4)));
    } else if (body.rfind("reorder@", 0) == 0) {
      plan.reorderAtSend(spec::clauseU64(kPlane, clause, body.substr(8)));
    } else if (body.rfind("crash-node@", 0) == 0) {
      const auto [k, op] = splitColon(clause, body.substr(11),
                                      "crash-node@K:op=M needs an op index");
      if (op.rfind("op=", 0) != 0) {
        spec::badClause(kPlane, clause, "crash-node@K:op=M needs 'op='");
      }
      plan.crashNodeAtOp(
          static_cast<int>(spec::clauseU64(kPlane, clause, k)),
          spec::clauseU64(kPlane, clause, op.substr(3)));
    } else if (body.rfind("skew@", 0) == 0) {
      const auto [n, d] = splitColon(clause, body.substr(5),
                                     "skew@N:D needs a duration");
      plan.skewAtCollective(spec::clauseU64(kPlane, clause, n),
                            parseSeconds(clause, d));
    } else if (body.rfind("skew%", 0) == 0) {
      const auto [p, d] = splitColon(clause, body.substr(5),
                                     "skew%p:D needs a duration");
      plan.skewWithProbability(parseProb(clause, p), parseSeconds(clause, d));
    } else {
      spec::badClause(kPlane, clause,
                      "unknown shape (want drop@N, drop%p, delay@N:D, "
                      "delay%p:D, dup@N, reorder@N, crash-node@K:op=M, "
                      "skew@N:D, skew%p:D, optionally prefixed nK:)");
    }
    if (restrictNode >= 0) plan.onlyNode(restrictNode);
  }
  if (plan.clauseCount() == 0) {
    throw UsageError("chaos plan spec '" + spec + "' contains no clauses");
  }
  return plan;
}

}  // namespace pcxx::rt
