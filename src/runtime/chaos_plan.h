// Deterministic fault schedules for the runtime transport — the
// pfs::FaultPlan design one layer down.
//
// A ChaosPlan is a seeded schedule of injected transport faults that a
// Machine consults (MachineOptions::chaos) on every p2p send, recv, and
// collective arrival. Seven clause shapes compose; the first matching
// clause per op wins, evaluated in the order they were added:
//
//   * drop the node's N-th send                      dropAtSend(n)
//   * drop each send with probability p              dropWithProbability(p)
//   * delay the N-th send's arrival by D seconds     delayAtSend(n, d)
//   * delay each send with probability p             delayWithProbability(p, d)
//   * deliver the N-th send twice                    dupAtSend(n)
//   * defer the N-th send behind the node's next op  reorderAtSend(n)
//   * crash node K at its M-th runtime op            crashNodeAtOp(k, m)
//   * add D seconds of skew at the N-th collective   skewAtCollective(n, d)
//
// All indices are per-node (each node counts its own sends, collective
// arrivals, and runtime ops), and probabilistic clauses draw from a
// per-node PRNG stream derived from the seed — so a schedule replays
// identically however the OS interleaves the node threads. Delays and skew
// are charged to the VirtualClock, never to wall time.
//
// Plans also parse from a compact spec string (grammar documented in
// docs/FAULTS.md; tokenization shared with pfs::FaultPlan via
// util/faultspec.h):
//
//   "drop@1"                 drop each node's send #1
//   "n2:drop%0.1"            node 2 drops each send with p = 0.1
//   "delay@0:0.5"            each node's send #0 arrives 0.5 s late
//   "dup@3"                  send #3 is delivered twice
//   "reorder@0"              send #0 is deferred behind the next send
//   "crash-node@2:op=7"      node 2 dies (ChaosCrashError) at its op #7
//   "skew@1:0.25"            0.25 s of skew at collective arrival #1
//   "drop@1;skew@0:0.5"      clauses compose, separated by ';'
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pcxx::rt {

/// A seeded, deterministic schedule of injected transport faults.
class ChaosPlan {
 public:
  explicit ChaosPlan(std::uint64_t seed = 0);

  /// Movable (for parse()); move before installing — MachineOptions binds
  /// the plan's address. Not copyable.
  ChaosPlan(ChaosPlan&& other) noexcept;
  ChaosPlan& operator=(ChaosPlan&&) = delete;
  ChaosPlan(const ChaosPlan&) = delete;
  ChaosPlan& operator=(const ChaosPlan&) = delete;

  /// Parse a plan from a spec string (grammar above / docs/FAULTS.md).
  /// Throws UsageError on a malformed spec.
  static ChaosPlan parse(const std::string& spec, std::uint64_t seed = 0);

  // -- clause builders (chainable) ------------------------------------------

  /// Drop a node's send number `sendIndex` (per-node, 0-based).
  ChaosPlan& dropAtSend(std::uint64_t sendIndex);

  /// Drop each matching send with probability `p` (per-node PRNG stream).
  ChaosPlan& dropWithProbability(double p);

  /// Deliver send number `sendIndex` with its arrival time `seconds` later
  /// on the virtual clock.
  ChaosPlan& delayAtSend(std::uint64_t sendIndex, double seconds);

  /// Delay each matching send with probability `p`.
  ChaosPlan& delayWithProbability(double p, double seconds);

  /// Deliver send number `sendIndex` twice (the duplicate follows
  /// immediately, same payload and arrival time).
  ChaosPlan& dupAtSend(std::uint64_t sendIndex);

  /// Defer send number `sendIndex` until the sender's next runtime op
  /// (send, recv, or collective entry) — the two messages swap order on
  /// the wire, deterministically, because the deferral happens on the
  /// sender's own thread.
  ChaosPlan& reorderAtSend(std::uint64_t sendIndex);

  /// Crash node `node` with ChaosCrashError when its per-node runtime op
  /// counter (sends + recvs + collective arrivals) reaches `opIndex`.
  ChaosPlan& crashNodeAtOp(int node, std::uint64_t opIndex);

  /// Advance a node's clock by `seconds` at its collective arrival number
  /// `collIndex` — a pure straggler, visible in rt.coll_skew_seconds.
  ChaosPlan& skewAtCollective(std::uint64_t collIndex, double seconds);

  /// Skew each matching collective arrival with probability `p`.
  ChaosPlan& skewWithProbability(double p, double seconds);

  /// Restrict the most recently added clause to one sending node.
  ChaosPlan& onlyNode(int node);

  // -- runtime hooks (called by Machine on the node's own thread) -----------

  /// What to do with one outgoing message.
  struct SendVerdict {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    double delaySeconds = 0.0;
  };

  /// (Re)size and reset the per-node counters and PRNG streams.
  /// Machine::run() calls this before spawning node threads, so one plan
  /// replays the same schedule in every SPMD region it is installed for.
  void bind(int nprocs);

  /// Consult the plan for node `node`'s next send. May throw
  /// ChaosCrashError (a crash clause due at this op).
  SendVerdict onSend(int node);

  /// Consult the plan at node `node`'s next collective arrival; returns
  /// the injected skew in seconds (0 = none). May throw ChaosCrashError.
  double onCollectiveArrival(int node);

  /// Account node `node`'s next recv. May throw ChaosCrashError.
  void onRecv(int node);

  /// How many faults this plan has injected so far (all shapes).
  std::uint64_t firedCount() const {
    return fired_.load(std::memory_order_relaxed);
  }

  /// Number of clauses (parsed or built).
  std::size_t clauseCount() const { return clauses_.size(); }

 private:
  enum class Shape {
    DropAt,
    DropProb,
    DelayAt,
    DelayProb,
    DupAt,
    ReorderAt,
    CrashNode,
    SkewAt,
    SkewProb,
  };

  struct Clause {
    Shape shape;
    std::uint64_t opIndex = 0;  ///< @N clauses; CrashNode: the op index
    double probability = 0.0;   ///< %p clauses
    double seconds = 0.0;       ///< delay / skew amount
    int node = -1;              ///< restrict to one node (CrashNode: the node)
  };

  /// Per-node schedule state. Only the owning node's thread touches its
  /// entry after bind(), so no locking is needed (and the schedule cannot
  /// depend on thread interleaving).
  struct NodeState {
    std::uint64_t sends = 0;
    std::uint64_t colls = 0;
    std::uint64_t ops = 0;
    Rng rng{0};
  };

  NodeState& state(int node);
  void maybeCrash(NodeState& st, int node);
  bool clauseAppliesTo(const Clause& c, int node) const {
    return c.node < 0 || c.node == node;
  }

  std::uint64_t seed_;
  std::vector<Clause> clauses_;
  std::vector<NodeState> nodes_;
  std::atomic<std::uint64_t> fired_{0};
};

}  // namespace pcxx::rt
