// Per-node virtual clock.
//
// In simulation mode every node carries a virtual time (seconds). I/O and
// communication operations advance it according to the platform performance
// model; collectives synchronize all nodes to the maximum, exactly as a
// barrier does on a real machine. In real-time mode the virtual clock is
// simply unused and benches measure wall time.
#pragma once

namespace pcxx::rt {

/// Monotone virtual time owned by a single node (thread).
class VirtualClock {
 public:
  double now() const { return now_; }

  /// Advance local time by `seconds` (>= 0).
  void advance(double seconds) {
    if (seconds > 0) now_ += seconds;
  }

  /// Jump forward to `t` if it is later than local time (used by barriers
  /// and by device-queue waits; virtual time never goes backwards).
  void syncTo(double t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace pcxx::rt
