// Per-node virtual clock.
//
// In simulation mode every node carries a virtual time (seconds). I/O and
// communication operations advance it according to the platform performance
// model; collectives synchronize all nodes to the maximum, exactly as a
// barrier does on a real machine. In real-time mode the virtual clock is
// simply unused and benches measure wall time.
#pragma once

namespace pcxx::rt {

/// Monotone virtual time owned by a single node (thread).
class VirtualClock {
 public:
  double now() const { return now_; }

  /// Advance local time by `seconds` (>= 0).
  void advance(double seconds) {
    if (seconds > 0) now_ += seconds;
  }

  /// Jump forward to `t` if it is later than local time (used by barriers
  /// and by device-queue waits; virtual time never goes backwards). The
  /// absorbed skew — how long this node idled waiting for the rendezvous —
  /// accumulates into waitedSeconds().
  void syncTo(double t) {
    if (t > now_) {
      waited_ += t - now_;
      now_ = t;
    }
  }

  /// Jump forward to `t` like syncTo(), but attribute the jump to a local
  /// pipeline stall (aio write-behind backpressure, drain-at-close,
  /// prefetch catch-up) instead of communication wait. Keeping the two
  /// buckets separate makes waitedSeconds() a pure sync-wait measure:
  /// aio.stall_seconds/aio.drain_seconds and the barrier wait timer are
  /// disjoint by construction instead of double-counting drain time.
  void stallTo(double t) {
    if (t > now_) {
      stalled_ += t - now_;
      now_ = t;
    }
  }

  /// Cumulative skew absorbed by syncTo() since the last reset(): the total
  /// time this node spent waiting at barriers, collectives, message
  /// arrivals, and device queues rather than computing.
  double waitedSeconds() const { return waited_; }

  /// Cumulative time absorbed by stallTo(): local pipeline stalls, disjoint
  /// from waitedSeconds().
  double stalledSeconds() const { return stalled_; }

  void reset() {
    now_ = 0.0;
    waited_ = 0.0;
    stalled_ = 0.0;
  }

 private:
  double now_ = 0.0;
  double waited_ = 0.0;
  double stalled_ = 0.0;
};

}  // namespace pcxx::rt
