#include "runtime/machine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "runtime/chaos_plan.h"
#include "util/log.h"

namespace pcxx::rt {
namespace {

thread_local Node* g_currentNode = nullptr;

double wallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double obsVirtualNow(const obs::NodeObs& o) {
  return static_cast<const VirtualClock*>(o.clock)->now();
}

double obsWallNow(const obs::NodeObs& o) {
  return wallSeconds() - o.wallEpoch;
}

/// ceil(log2(p)) hop count used for tree-shaped collective cost.
int collectiveHops(int nprocs) {
  int hops = 0;
  int span = 1;
  while (span < nprocs) {
    span *= 2;
    ++hops;
  }
  return std::max(hops, 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

int Node::nprocs() const { return machine_->nprocs(); }

void Node::send(int dest, int tag, std::span<const Byte> data) {
  PCXX_REQUIRE(dest >= 0 && dest < nprocs(), "send: bad destination node");
  ChaosPlan::SendVerdict verdict{};
  if (ChaosPlan* chaos = machine_->options().chaos) {
    verdict = chaos->onSend(id_);  // may throw ChaosCrashError
  }
  const CommModel& comm = machine_->commModel();
  Message msg;
  msg.src = id_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  if (comm.enabled()) {
    // Sender pays the startup latency; the payload arrives after the
    // transfer completes.
    clock_.advance(comm.latency);
    msg.arrivalTime =
        clock_.now() + comm.perByte * static_cast<double>(data.size());
  } else {
    msg.arrivalTime = 0.0;
  }
  if (verdict.drop) {
    // The message vanishes on the wire: the sender still paid the modeled
    // cost, but nothing reaches the destination mailbox.
    PCXX_OBS_COUNT(obs(), RtChaosDropped, 1);
    flushDeferredSend();
    return;
  }
  if (verdict.delaySeconds > 0.0) {
    // Charge the delay to the virtual arrival time, never wall time, so
    // delayed schedules replay exactly.
    msg.arrivalTime =
        std::max(msg.arrivalTime, clock_.now()) + verdict.delaySeconds;
    PCXX_OBS_COUNT(obs(), RtChaosDelayed, 1);
  }
  PCXX_OBS_COUNT(obs(), RtMessagesSent, 1);
  PCXX_OBS_COUNT(obs(), RtMessageBytes, data.size());
#if PCXX_OBS_ENABLED
  // Stamp the message with a correlation id and open the flow edge on the
  // sender track; the receiver closes it in recv(), so Perfetto draws the
  // actual sender→receiver causality arrow.
  if (obs::NodeObs* o = obs(); o != nullptr && o->trace != nullptr) {
    msg.flowId = Machine::kFlowP2P | machine_->nextFlowId();
    o->trace->flowStart(id_, "rt.msg", o->now(), msg.flowId);
  }
#endif
  if (verdict.reorder) {
    // Stash this message on the sender; the next runtime op (send, recv,
    // collective, or function return) delivers it, so a later send
    // overtakes it deterministically.
    flushDeferredSend();  // at most one deferred message in flight
    PCXX_OBS_COUNT(obs(), RtChaosReordered, 1);
    deferredValid_ = true;
    deferredDest_ = dest;
    deferredMsg_ = std::move(msg);
    return;
  }
  Message dupCopy;
  if (verdict.duplicate) {
    dupCopy = msg;
    dupCopy.flowId = 0;  // the duplicate is not part of the trace flow
  }
  machine_->node(dest).mailbox_.push(std::move(msg));
  if (verdict.duplicate) {
    PCXX_OBS_COUNT(obs(), RtChaosDuplicated, 1);
    machine_->node(dest).mailbox_.push(std::move(dupCopy));
  }
  flushDeferredSend();
}

void Node::flushDeferredSend() {
  if (!deferredValid_) return;
  deferredValid_ = false;
  machine_->node(deferredDest_).mailbox_.push(std::move(deferredMsg_));
}

Message Node::recv(int src, int tag) {
  flushDeferredSend();
  if (ChaosPlan* chaos = machine_->options().chaos) {
    chaos->onRecv(id_);  // may throw ChaosCrashError
  }
  Message msg;
  const Mailbox::WaitStatus status = mailbox_.waitPopFor(
      src, tag, machine_->options().recvDeadlineSeconds, msg);
  if (status == Mailbox::WaitStatus::Aborted) {
    machine_->throwAbortError(
        "machine aborted while node was waiting in recv()");
  }
  if (status == Mailbox::WaitStatus::TimedOut) {
    PCXX_OBS_COUNT(obs(), RtWatchdogTrips, 1);
    Machine::AbortInfo info;
    info.kind = Machine::AbortKind::RecvTimeout;
    info.origin = id_;
    info.src = src;
    info.tag = tag;
    machine_->abortWith(std::move(info));
    throw RecvTimeoutError(id_, src, tag);
  }
  clock_.syncTo(msg.arrivalTime);
#if PCXX_OBS_ENABLED
  if (obs::NodeObs* o = obs();
      o != nullptr && o->trace != nullptr && msg.flowId != 0) {
    o->trace->flowEnd(id_, "rt.msg", o->now(), msg.flowId);
  }
#endif
  return msg;
}

bool Node::probe(int src, int tag) { return mailbox_.probe(src, tag); }

void Node::barrier() {
  machine_->barrierSync("barrier", nullptr, /*applyCost=*/true);
}

std::vector<std::uint64_t> Node::allgatherU64(std::uint64_t v) {
  Machine& m = *machine_;
  m.stageU64_[static_cast<size_t>(id_)] = v;
  m.barrierSync("allgatherU64", 
      [&m, n = nprocs()] {
        m.pendingCommBytes_ = 8ull * static_cast<std::uint64_t>(n);
      },
      /*applyCost=*/true);
  std::vector<std::uint64_t> out = m.stageU64_;
  m.barrierSync("allgatherU64", nullptr, /*applyCost=*/false);
  return out;
}

std::vector<ByteBuffer> Node::allgatherBytes(std::span<const Byte> mine) {
  Machine& m = *machine_;
  m.stageSpans_[static_cast<size_t>(id_)] = mine;
  m.barrierSync("allgatherBytes", 
      [&m] {
        for (const auto& s : m.stageSpans_) m.pendingCommBytes_ += s.size();
      },
      /*applyCost=*/true);
  std::vector<ByteBuffer> out(static_cast<size_t>(nprocs()));
  for (int i = 0; i < nprocs(); ++i) {
    const auto& s = m.stageSpans_[static_cast<size_t>(i)];
    out[static_cast<size_t>(i)].assign(s.begin(), s.end());
  }
  m.barrierSync("allgatherBytes", nullptr, /*applyCost=*/false);
  return out;
}

std::vector<ByteBuffer> Node::gatherBytes(int root, std::span<const Byte> mine) {
  PCXX_REQUIRE(root >= 0 && root < nprocs(), "gatherBytes: bad root");
  Machine& m = *machine_;
  m.stageSpans_[static_cast<size_t>(id_)] = mine;
  m.barrierSync("gatherBytes", 
      [&m] {
        for (const auto& s : m.stageSpans_) m.pendingCommBytes_ += s.size();
      },
      /*applyCost=*/true);
  std::vector<ByteBuffer> out;
  if (id_ == root) {
    out.resize(static_cast<size_t>(nprocs()));
    for (int i = 0; i < nprocs(); ++i) {
      const auto& s = m.stageSpans_[static_cast<size_t>(i)];
      out[static_cast<size_t>(i)].assign(s.begin(), s.end());
    }
  }
  m.barrierSync("gatherBytes", nullptr, /*applyCost=*/false);
  return out;
}

ByteBuffer Node::scatterBytes(int root,
                              const std::vector<ByteBuffer>& toEach) {
  PCXX_REQUIRE(root >= 0 && root < nprocs(), "scatterBytes: bad root");
  PCXX_REQUIRE(id_ != root ||
                   static_cast<int>(toEach.size()) == nprocs(),
               "scatterBytes: root must pass one buffer per node");
  Machine& m = *machine_;
  if (id_ == root) {
    m.stageVecs_[static_cast<size_t>(root)] = &toEach;
  }
  m.barrierSync("scatterBytes", 
      [&m, root] {
        for (const auto& buf : *m.stageVecs_[static_cast<size_t>(root)]) {
          m.pendingCommBytes_ += buf.size();
        }
      },
      /*applyCost=*/true);
  ByteBuffer out =
      (*m.stageVecs_[static_cast<size_t>(root)])[static_cast<size_t>(id_)];
  m.barrierSync("scatterBytes", nullptr, /*applyCost=*/false);
  return out;
}

void Node::broadcastBytes(int root, ByteBuffer& data) {
  PCXX_REQUIRE(root >= 0 && root < nprocs(), "broadcastBytes: bad root");
  Machine& m = *machine_;
  if (id_ == root) {
    m.stageSpans_[static_cast<size_t>(root)] = data;
  }
  m.barrierSync("broadcastBytes", 
      [&m, root] {
        m.pendingCommBytes_ = m.stageSpans_[static_cast<size_t>(root)].size();
      },
      /*applyCost=*/true);
  const auto& src = m.stageSpans_[static_cast<size_t>(root)];
  if (id_ != root) {
    data.assign(src.begin(), src.end());
  }
  m.barrierSync("broadcastBytes", nullptr, /*applyCost=*/false);
}

std::vector<ByteBuffer> Node::alltoallv(
    const std::vector<ByteBuffer>& sendTo) {
  std::vector<ByteBuffer> out;
  alltoallvInto(sendTo, out);
  return out;
}

void Node::alltoallvInto(const std::vector<ByteBuffer>& sendTo,
                         std::vector<ByteBuffer>& recv) {
  PCXX_REQUIRE(static_cast<int>(sendTo.size()) == nprocs(),
               "alltoallv: need one buffer per destination node");
  PCXX_REQUIRE(&sendTo != &recv,
               "alltoallvInto: send and receive vectors must be distinct");
  Machine& m = *machine_;
  m.stageVecs_[static_cast<size_t>(id_)] = &sendTo;
  m.barrierSync("alltoallv", 
      [&m, n = nprocs()] {
        for (int s = 0; s < n; ++s) {
          for (const auto& buf : *m.stageVecs_[static_cast<size_t>(s)]) {
            m.pendingCommBytes_ += buf.size();
          }
        }
      },
      /*applyCost=*/true);
  recv.resize(static_cast<size_t>(nprocs()));
  for (int s = 0; s < nprocs(); ++s) {
    const ByteBuffer& src =
        (*m.stageVecs_[static_cast<size_t>(s)])[static_cast<size_t>(id_)];
    // assign() never shrinks capacity: repeated exchanges into the same
    // vector settle into steady-state zero allocation.
    recv[static_cast<size_t>(s)].assign(src.begin(), src.end());
  }
  m.barrierSync("alltoallv", nullptr, /*applyCost=*/false);
}

double Node::allreduceMax(double v) {
  Machine& m = *machine_;
  m.stageF64_[static_cast<size_t>(id_)] = v;
  m.barrierSync("allreduceMax", nullptr, /*applyCost=*/true);
  const double out = *std::max_element(m.stageF64_.begin(), m.stageF64_.end());
  m.barrierSync("allreduceMax", nullptr, /*applyCost=*/false);
  return out;
}

double Node::allreduceSum(double v) {
  Machine& m = *machine_;
  m.stageF64_[static_cast<size_t>(id_)] = v;
  m.barrierSync("allreduceSum", nullptr, /*applyCost=*/true);
  double sum = 0.0;
  for (double x : m.stageF64_) sum += x;
  m.barrierSync("allreduceSum", nullptr, /*applyCost=*/false);
  return sum;
}

std::uint64_t Node::allreduceSumU64(std::uint64_t v) {
  Machine& m = *machine_;
  m.stageU64_[static_cast<size_t>(id_)] = v;
  m.barrierSync("allreduceSumU64", nullptr, /*applyCost=*/true);
  std::uint64_t sum = 0;
  for (std::uint64_t x : m.stageU64_) sum += x;
  m.barrierSync("allreduceSumU64", nullptr, /*applyCost=*/false);
  return sum;
}

std::uint64_t Node::exclusiveScanU64(std::uint64_t v) {
  Machine& m = *machine_;
  m.stageU64_[static_cast<size_t>(id_)] = v;
  m.barrierSync("exclusiveScanU64", nullptr, /*applyCost=*/true);
  std::uint64_t prefix = 0;
  for (int i = 0; i < id_; ++i) prefix += m.stageU64_[static_cast<size_t>(i)];
  m.barrierSync("exclusiveScanU64", nullptr, /*applyCost=*/false);
  return prefix;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(int nprocs, CommModel comm, MachineOptions options)
    : nprocs_(nprocs), comm_(comm), opts_(options) {
  PCXX_REQUIRE(nprocs >= 1, "Machine requires at least one node");
  nodes_.reserve(static_cast<size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    auto node = std::unique_ptr<Node>(new Node());
    node->machine_ = this;
    node->id_ = i;
    nodes_.push_back(std::move(node));
  }
  stageSpans_.resize(static_cast<size_t>(nprocs));
  stageU64_.resize(static_cast<size_t>(nprocs));
  stageF64_.resize(static_cast<size_t>(nprocs));
  stageVecs_.resize(static_cast<size_t>(nprocs));
  arrivedGen_.assign(static_cast<size_t>(nprocs), 0);
}

Machine::~Machine() = default;

void Machine::run(const std::function<void(Node&)>& fn) {
  // Fresh SPMD region: clear abort state, mailboxes, clocks, trace ids.
  {
    std::lock_guard<std::mutex> lock(barrierMu_);
    aborted_ = false;
    abortInfo_ = AbortInfo{};
    barrierArrived_ = 0;
    collOpCount_ = 0;
    collOpId_ = 0;
    collStraggler_ = 0;
    std::fill(arrivedGen_.begin(), arrivedGen_.end(), 0);
    genOpName_ = nullptr;
  }
  flowIdCounter_.store(0, std::memory_order_relaxed);
  if (opts_.chaos != nullptr) opts_.chaos->bind(nprocs_);
  for (auto& node : nodes_) {
    node->mailbox_.reset();
    node->clock_.reset();
    node->deferredValid_ = false;
  }

  // First-exception bookkeeping: a PeerAbortError is only the *echo* of a
  // peer's failure, so a later real exception displaces a stored echo —
  // run() deterministically rethrows the origin's exception regardless of
  // which thread reached the recording lock first.
  std::exception_ptr firstException;
  bool firstIsEcho = false;
  std::mutex exceptionMu;
  const auto record = [&](bool echo) {
    std::lock_guard<std::mutex> lock(exceptionMu);
    if (!firstException || (firstIsEcho && !echo)) {
      firstException = std::current_exception();
      firstIsEcho = echo;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (auto& nodePtr : nodes_) {
    Node* node = nodePtr.get();
    threads.emplace_back([this, node, &fn, &record] {
      g_currentNode = node;
      try {
        fn(*node);
        node->flushDeferredSend();
      } catch (const PeerAbortError&) {
        // Echo of a peer's abort: the machine is already unwinding.
        record(/*echo=*/true);
      } catch (const std::exception& e) {
        record(/*echo=*/false);
        abortPeer(node->id_, e.what());
      } catch (...) {
        record(/*echo=*/false);
        abortPeer(node->id_, "unknown exception");
      }
      g_currentNode = nullptr;
    });
  }
  for (auto& t : threads) t.join();
  if (firstException) std::rethrow_exception(firstException);
}

void Machine::abort() {
  AbortInfo info;
  info.kind = AbortKind::Generic;
  abortWith(std::move(info));
}

void Machine::abortPeer(int originNode, const std::string& why) {
  AbortInfo info;
  info.kind = AbortKind::Peer;
  info.origin = originNode;
  info.reason = why;
  {
    std::lock_guard<std::mutex> lock(barrierMu_);
    info.opId = collOpCount_;
  }
  abortWith(std::move(info));
}

void Machine::abortWith(AbortInfo info) {
  {
    std::lock_guard<std::mutex> lock(barrierMu_);
    // First abort wins: later causes are consequences of the first.
    if (abortInfo_.kind == AbortKind::None && info.kind != AbortKind::None) {
      abortInfo_ = std::move(info);
    }
    aborted_ = true;
  }
  // Wake every way a node (or its helper) can block: the collective
  // rendezvous, each mailbox, and registered aio-style abort-waiters.
  barrierCv_.notify_all();
  for (auto& node : nodes_) node->mailbox_.abort();
  {
    std::lock_guard<std::mutex> lock(abortWaitersMu_);
    for (AbortWaiter* w : abortWaiters_) {
      // Briefly hold the waiter's mutex so the notify cannot slip between
      // its predicate check and its wait.
      std::lock_guard<std::mutex> g(*w->mu);
      w->cv->notify_all();
    }
  }
}

void Machine::registerAbortWaiter(AbortWaiter* w) {
  std::lock_guard<std::mutex> lock(abortWaitersMu_);
  abortWaiters_.push_back(w);
}

void Machine::unregisterAbortWaiter(AbortWaiter* w) {
  std::lock_guard<std::mutex> lock(abortWaitersMu_);
  std::erase(abortWaiters_, w);
}

void Machine::throwAbortError(const char* genericMessage) const {
  std::unique_lock<std::mutex> lock(barrierMu_);
  throwAbortErrorHavingLock(lock, genericMessage);
}

void Machine::throwAbortErrorHavingLock(std::unique_lock<std::mutex>& lock,
                                        const char* genericMessage) const {
  const AbortInfo info = abortInfo_;  // copy out, then drop the lock
  lock.unlock();
  switch (info.kind) {
    case AbortKind::Peer:
      throw PeerAbortError(info.origin, info.opId, info.reason);
    case AbortKind::CollTimeout:
      throw CollectiveTimeoutError(info.opName, info.opId, info.arrived,
                                   info.missing);
    case AbortKind::CollMismatch:
      throw CollectiveMismatchError(info.opName, info.reason, info.origin);
    case AbortKind::RecvTimeout:
      throw RecvTimeoutError(info.origin, info.src, info.tag);
    case AbortKind::Generic:
    case AbortKind::None:
      break;
  }
  throw Error(genericMessage);
}

bool Machine::aborted() const {
  std::lock_guard<std::mutex> lock(barrierMu_);
  return aborted_;
}

double Machine::maxVirtualTime() const {
  double t = 0.0;
  for (const auto& node : nodes_) t = std::max(t, node->clock().now());
  return t;
}

void Machine::syncClocksLocked(bool applyCost) {
  double maxClock = 0.0;
  int straggler = 0;
  for (const auto& node : nodes_) {
    if (node->clock().now() > maxClock) {
      maxClock = node->clock().now();
      straggler = node->id_;
    }
  }
  double cost = 0.0;
  if (comm_.enabled() && applyCost) {
    cost = comm_.latency * collectiveHops(nprocs_) +
           comm_.perByte * static_cast<double>(pendingCommBytes_);
  }
  pendingCommBytes_ = 0;
  clockTarget_ = maxClock + cost;
  if (applyCost) {
    // Phase-1 rendezvous of a collective: issue the op id and record who
    // arrived last (ties break to the lowest node id, deterministically).
    collOpId_ = ++collOpCount_;
    collStraggler_ = straggler;
  }
}

void Machine::barrierSync(const char* opName,
                          const std::function<void()>& completion,
                          bool applyCost) {
  // Thread-ownership rule: collectives may only be entered by the thread
  // that owns a node of THIS machine. Helper threads (pcxx::aio flushers
  // and prefetchers) would otherwise corrupt the rendezvous count silently;
  // turn that race into a typed error instead.
  if (g_currentNode == nullptr || g_currentNode->machine_ != this) {
    throw UsageError(
        "collective entered from a thread that is not a node of this "
        "machine (background/helper threads must not use Node collectives "
        "or mutate node state; see the threading rules in machine.h)");
  }
  Node& self = *g_currentNode;
  if (applyCost) {
    // Phase-1 arrival only: deliver any deferred (reordered) send before
    // the rendezvous, and let the chaos plan inject straggler skew. The
    // skew is charged to the virtual clock, so the collective's absorbed
    // skew shows up in rt.coll_skew_seconds like any real straggler.
    self.flushDeferredSend();
    if (opts_.chaos != nullptr) {
      const double skew = opts_.chaos->onCollectiveArrival(self.id_);
      if (skew > 0.0) {
        self.clock_.advance(skew);
        PCXX_OBS_COUNT(self.obs(), RtChaosSkewed, 1);
      }
    }
  }
  double target;
  std::uint64_t opId = 0;
  int straggler = -1;
  {
    std::unique_lock<std::mutex> lock(barrierMu_);
    if (aborted_) {
      throwAbortErrorHavingLock(
          lock, "machine aborted while node was waiting at a barrier");
    }
    // Divergence check: every node joining an in-progress rendezvous must
    // be entering the same collective as the first arriver. A mismatch is
    // a protocol bug (e.g. one node skipped a collective) that the central
    // barrier would otherwise "complete" with mixed staging.
    if (genOpName_ != nullptr && opName != nullptr &&
        std::strcmp(genOpName_, opName) != 0) {
      const std::string expected = genOpName_;
      const std::string actual = opName;
      AbortInfo info;
      info.kind = AbortKind::CollMismatch;
      info.origin = self.id_;
      info.opId = collOpCount_ + 1;
      info.opName = expected;
      info.reason = actual;
      lock.unlock();
      abortWith(std::move(info));
      throw CollectiveMismatchError(expected, actual, self.id_);
    }
    if (barrierArrived_ == 0) genOpName_ = opName;
    arrivedGen_[static_cast<size_t>(self.id_)] = 1;
    ++barrierArrived_;
    if (barrierArrived_ == nprocs_) {
      if (completion) completion();
      syncClocksLocked(applyCost);
      barrierArrived_ = 0;
      ++barrierGeneration_;
      std::fill(arrivedGen_.begin(), arrivedGen_.end(), 0);
      genOpName_ = nullptr;
      target = clockTarget_;
      barrierCv_.notify_all();
    } else {
      const std::uint64_t gen = barrierGeneration_;
      const auto released = [this, gen] {
        return barrierGeneration_ != gen || aborted_;
      };
      if (opts_.collectiveDeadlineSeconds > 0.0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    opts_.collectiveDeadlineSeconds));
        if (!barrierCv_.wait_until(lock, deadline, released)) {
          // Watchdog trip: the rendezvous stalled past the deadline.
          // Record who made it and who is missing, then unwind everyone.
          PCXX_OBS_COUNT(self.obs(), RtWatchdogTrips, 1);
          AbortInfo info;
          info.kind = AbortKind::CollTimeout;
          info.origin = self.id_;
          info.opId = applyCost ? collOpCount_ + 1 : collOpId_;
          info.opName = opName != nullptr ? opName : "collective";
          for (int i = 0; i < nprocs_; ++i) {
            if (arrivedGen_[static_cast<size_t>(i)]) {
              info.arrived.push_back(i);
            } else {
              info.missing.push_back(i);
            }
          }
          const AbortInfo mine = info;
          lock.unlock();
          abortWith(std::move(info));
          throw CollectiveTimeoutError(mine.opName, mine.opId, mine.arrived,
                                       mine.missing);
        }
      } else {
        barrierCv_.wait(lock, released);
      }
      // Only treat the abort as fatal if the barrier did NOT complete:
      // when all nodes arrived, every node gets the collective's result
      // even if a peer aborted immediately afterwards — this keeps error
      // propagation through collectives deterministic.
      if (barrierGeneration_ == gen && aborted_) {
        throwAbortErrorHavingLock(
            lock, "machine aborted while node was waiting at a barrier");
      }
      target = clockTarget_;
    }
    opId = collOpId_;
    straggler = collStraggler_;
  }
  if (g_currentNode != nullptr && g_currentNode->machine_ == this) {
    Node& n = *g_currentNode;
    if (applyCost) {
      // Phase-1 rendezvous of a collective (phase 2 is release-only):
      // count it once and attribute the absorbed skew to sync wait.
      PCXX_OBS_COUNT(n.obs(), RtCollectives, 1);
      const double skew = target - n.clock_.now();
      if (skew > 0) {
        PCXX_OBS_SECONDS(n.obs(), RtSyncWaitSeconds, skew);
      }
      PCXX_OBS_HIST(n.obs(), RtCollSkew,
                    skew > 0 ? skew * 1e6 : 0.0);  // whole microseconds
      if (n.id_ == straggler) {
        PCXX_OBS_COUNT(n.obs(), RtCollStragglerOps, 1);
      }
#if PCXX_OBS_ENABLED
      if (obs::NodeObs* o = n.obs(); o != nullptr && o->trace != nullptr) {
        // Per-node arrival/release span plus the straggler's flow edges:
        // the last-arriving node opens one edge per peer at its release
        // point; every other node terminates its own edge inside its
        // rt.coll span, so Perfetto draws straggler→waiter causality for
        // every collective. Edge ids derive from the op id and receiver so
        // chains never collide across collectives.
        const double tArr = o->now();
        n.clock_.syncTo(target);
        const double tRel = o->now();
        o->trace->begin(n.id_, "rt.coll", tArr);
        if (n.id_ == straggler) {
          o->trace->instant(n.id_, "rt.coll_last_arrival", tArr);
          for (int r = 0; r < nprocs_; ++r) {
            if (r == n.id_) continue;
            o->trace->flowStart(
                n.id_, "rt.coll", tRel,
                kFlowColl | (opId * static_cast<std::uint64_t>(nprocs_) +
                             static_cast<std::uint64_t>(r)));
          }
        } else {
          o->trace->flowEnd(
              n.id_, "rt.coll", tRel,
              kFlowColl | (opId * static_cast<std::uint64_t>(nprocs_) +
                           static_cast<std::uint64_t>(n.id_)));
        }
        o->trace->end(n.id_, "rt.coll", tRel);
        return;
      }
#endif
    }
#if !PCXX_OBS_ENABLED
    (void)opId;
    (void)straggler;
#endif
    n.clock_.syncTo(target);
  }
}

void Machine::attachObserver(const obs::Observer& observer) {
  PCXX_REQUIRE(observer.metrics == nullptr ||
                   observer.metrics->nnodes() >= nprocs_,
               "attachObserver: metrics registry smaller than the machine");
  const double epoch = wallSeconds();
  for (auto& node : nodes_) {
    obs::NodeObs& o = node->obs_;
    o.metrics = observer.metrics != nullptr
                    ? &observer.metrics->node(node->id_)
                    : nullptr;
    o.trace = observer.trace;
    o.nodeId = node->id_;
    if (observer.timeMode == obs::Observer::TimeMode::Virtual) {
      o.clock = &node->clock_;
      o.nowFn = &obsVirtualNow;
    } else {
      o.wallEpoch = epoch;
      o.nowFn = &obsWallNow;
      o.wallTime = true;
    }
    node->obsAttached_ = true;
  }
}

void Machine::detachObserver() {
  for (auto& node : nodes_) {
    node->obsAttached_ = false;
    node->obs_ = obs::NodeObs{};
  }
}

Node& thisNode() {
  if (g_currentNode == nullptr) {
    throw UsageError(
        "thisNode(): the calling thread is not inside Machine::run()");
  }
  return *g_currentNode;
}

bool inNodeContext() { return g_currentNode != nullptr; }

}  // namespace pcxx::rt
