// The node runtime: an SPMD "machine" of N nodes simulated by threads.
//
// This is the stand-in for the pC++ runtime layer the paper's library sits
// on (message passing on the Paragon/CM-5, shared memory on the SGI
// Challenge). A Machine owns `nprocs` logical nodes; Machine::run() executes
// a function on every node concurrently (one thread per node), giving the
// same SPMD execution + collectives model the d/stream implementation needs:
//
//   Machine m(8);
//   m.run([&](Node& node) { ... node.barrier(); ... });
//
// Each node has a private mailbox for tagged point-to-point messages and a
// virtual clock used by the simulation-mode performance model. Collectives
// (barrier, broadcast, gather, allgather, alltoallv, reductions, scans)
// synchronize all nodes and, in simulation mode, advance every virtual clock
// to the maximum plus a modeled communication cost.
//
// If a node function throws, the machine aborts: blocked peers are woken
// with an Error and run() rethrows the original exception, so failure
// injection tests never deadlock.
//
// Thread-ownership rules (enforced where cheap, relied on everywhere):
//
//   * Only the thread run() spawned for a node may call that Node's
//     non-const members — collectives, send/recv, clock mutation, obs
//     writes. Entering a collective from any other thread throws
//     UsageError instead of corrupting the rendezvous.
//   * Helper threads (e.g. the pcxx::aio flusher/prefetcher a node owns)
//     may touch only explicitly thread-safe lower layers
//     (pfs::ParallelFile::{write,read}AtBackground, storage backends) and
//     their own synchronization state. They must never block a node
//     indefinitely: any node-side wait on a helper must poll
//     Machine::aborted() with a timeout so abort-on-throw still wins.
//   * A node must join or detach its helper threads before its SPMD
//     function returns; run() joins only node threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/obs.h"
#include "runtime/clock.h"
#include "runtime/mailbox.h"
#include "runtime/message.h"
#include "util/bytes.h"
#include "util/error.h"

namespace pcxx::rt {

class Machine;

/// Communication cost model applied to collectives and p2p messages in
/// simulation mode. All-zero (the default) disables modeling.
struct CommModel {
  double latency = 0.0;  ///< startup cost per operation hop (seconds)
  double perByte = 0.0;  ///< transfer cost per byte (seconds)

  bool enabled() const { return latency > 0.0 || perByte > 0.0; }
};

/// One logical node of the machine. Only the owning thread may call
/// non-const members; a reference is passed to the SPMD function by run().
class Node {
 public:
  int id() const { return id_; }
  int nprocs() const;
  Machine& machine() const { return *machine_; }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  /// This node's observation handle, or nullptr when no observer is
  /// attached (Machine::attachObserver). Intended for the PCXX_OBS_*
  /// macros, which tolerate null.
  obs::NodeObs* obs() { return obsAttached_ ? &obs_ : nullptr; }

  // -- point-to-point ------------------------------------------------------

  /// Send bytes to node `dest` with a tag. Never blocks.
  void send(int dest, int tag, std::span<const Byte> data);

  /// Block until a message matching (src, tag) arrives.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking: is a matching message queued?
  bool probe(int src = kAnySource, int tag = kAnyTag);

  /// Send a single trivially copyable value.
  template <typename T>
  void sendValue(int dest, int tag, const T& v) {
    send(dest, tag, asBytes(v));
  }

  /// Receive a single trivially copyable value from (src, tag).
  template <typename T>
  T recvValue(int src, int tag) {
    Message m = recv(src, tag);
    if (m.payload.size() != sizeof(T)) {
      throw Error("recvValue: payload size mismatch");
    }
    T out;
    std::memcpy(&out, m.payload.data(), sizeof(T));
    return out;
  }

  // -- collectives (all nodes must call with matching arguments) -----------

  void barrier();
  std::vector<std::uint64_t> allgatherU64(std::uint64_t v);
  std::vector<ByteBuffer> allgatherBytes(std::span<const Byte> mine);
  /// Gather to `root`; non-root nodes get an empty vector.
  std::vector<ByteBuffer> gatherBytes(int root, std::span<const Byte> mine);
  /// Scatter from `root`: root passes one buffer per node; every node
  /// (including root) returns the buffer addressed to it. Non-root nodes
  /// pass an empty vector.
  ByteBuffer scatterBytes(int root, const std::vector<ByteBuffer>& toEach);
  /// Broadcast `data` from `root`; on other nodes `data` is replaced.
  void broadcastBytes(int root, ByteBuffer& data);
  /// Each node passes one buffer per destination; returns one buffer per
  /// source (buffers addressed to this node).
  std::vector<ByteBuffer> alltoallv(const std::vector<ByteBuffer>& sendTo);
  /// alltoallv variant that deposits into caller-owned buffers: `recv` is
  /// resized to nprocs and each slot is overwritten via assign(), so the
  /// buffers' capacity is reused across calls. This is what lets the
  /// chunked redistribution exchange run with zero steady-state
  /// allocation — round k reuses round k-1's receive storage.
  void alltoallvInto(const std::vector<ByteBuffer>& sendTo,
                     std::vector<ByteBuffer>& recv);
  double allreduceMax(double v);
  double allreduceSum(double v);
  std::uint64_t allreduceSumU64(std::uint64_t v);
  /// Exclusive prefix sum across node ids (node 0 receives 0).
  std::uint64_t exclusiveScanU64(std::uint64_t v);

 private:
  friend class Machine;
  Node() = default;

  Machine* machine_ = nullptr;
  int id_ = -1;
  VirtualClock clock_;
  Mailbox mailbox_;
  obs::NodeObs obs_;
  bool obsAttached_ = false;
};

/// A simulated distributed-memory machine of `nprocs` nodes.
class Machine {
 public:
  explicit Machine(int nprocs, CommModel comm = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return nprocs_; }
  const CommModel& commModel() const { return comm_; }

  /// Run `fn` on every node concurrently; returns when all nodes finish.
  /// Virtual clocks and mailboxes are reset at entry. If any node throws,
  /// the machine aborts the others and rethrows the first exception.
  void run(const std::function<void(Node&)>& fn);

  /// Abort: wake everything blocked in recv()/collectives with an Error.
  void abort();
  bool aborted() const;

  /// Direct node access (e.g. to inspect clocks after run()).
  Node& node(int i) { return *nodes_[static_cast<size_t>(i)]; }

  /// Maximum virtual time over all nodes (the simulated makespan).
  double maxVirtualTime() const;

  /// Attach metrics/trace sinks: each node i observes into
  /// observer.metrics->node(i) (when non-null) and observer.trace tracks
  /// pid 0 / tid i. Time stamps come from the node's virtual clock
  /// (TimeMode::Virtual) or wall seconds since attach (TimeMode::Wall).
  /// The sinks are borrowed and must outlive the machine or a
  /// detachObserver() call. Attach before run(); not thread-safe against
  /// a concurrently running SPMD region.
  void attachObserver(const obs::Observer& observer);
  void detachObserver();

  // -- trace correlation ids ------------------------------------------------
  //
  // Flow edges in the trace share a 64-bit id space, partitioned by issuer
  // so chains never collide: record-scoped ids are raw nextFlowId() values,
  // p2p message edges set kFlowP2P, and per-collective edges are derived
  // from the collective op id with kFlowColl set.

  /// High bit tagging p2p message flow ids.
  static constexpr std::uint64_t kFlowP2P = std::uint64_t{1} << 62;
  /// High bit tagging collective arrival/release flow ids.
  static constexpr std::uint64_t kFlowColl = std::uint64_t{1} << 63;

  /// Monotonically-issued correlation id (1, 2, ...). Thread-safe; ids are
  /// unique within one run() region (the counter resets at entry).
  std::uint64_t nextFlowId() {
    return flowIdCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  friend class Node;

  // Two-phase collective rendezvous. Phase 1 publishes inputs and runs
  // `completion` (on the last arriving thread, which may set
  // pendingCommBytes_ for the cost model); phase 2 releases shared staging
  // so the next collective can reuse it and applies no cost.
  void barrierSync(const std::function<void()>& completion, bool applyCost);

  void syncClocksLocked(bool applyCost);

  int nprocs_;
  CommModel comm_;
  std::vector<std::unique_ptr<Node>> nodes_;

  // Sense-reversing barrier.
  mutable std::mutex barrierMu_;
  std::condition_variable barrierCv_;
  int barrierArrived_ = 0;
  std::uint64_t barrierGeneration_ = 0;
  bool aborted_ = false;

  // Collective staging (valid between phase-1 and phase-2 barriers).
  std::vector<std::span<const Byte>> stageSpans_;
  std::vector<std::uint64_t> stageU64_;
  std::vector<double> stageF64_;
  std::vector<const std::vector<ByteBuffer>*> stageVecs_;
  std::uint64_t pendingCommBytes_ = 0;
  double clockTarget_ = 0.0;

  // Collective stamping (guarded by barrierMu_): the last-arriving thread
  // issues the op id and records which node it was; every node copies both
  // before leaving the phase-1 rendezvous.
  std::uint64_t collOpCount_ = 0;
  std::uint64_t collOpId_ = 0;
  int collStraggler_ = 0;

  std::atomic<std::uint64_t> flowIdCounter_{0};
};

/// The node bound to the calling thread. Throws if the caller is not inside
/// Machine::run(). This is how implicitly contextual constructors (e.g.
/// Distribution, d/stream open) locate the runtime, mirroring pC++'s
/// implicit runtime context.
Node& thisNode();

/// True when the calling thread is executing inside Machine::run().
bool inNodeContext();

}  // namespace pcxx::rt
