// The node runtime: an SPMD "machine" of N nodes simulated by threads.
//
// This is the stand-in for the pC++ runtime layer the paper's library sits
// on (message passing on the Paragon/CM-5, shared memory on the SGI
// Challenge). A Machine owns `nprocs` logical nodes; Machine::run() executes
// a function on every node concurrently (one thread per node), giving the
// same SPMD execution + collectives model the d/stream implementation needs:
//
//   Machine m(8);
//   m.run([&](Node& node) { ... node.barrier(); ... });
//
// Each node has a private mailbox for tagged point-to-point messages and a
// virtual clock used by the simulation-mode performance model. Collectives
// (barrier, broadcast, gather, allgather, alltoallv, reductions, scans)
// synchronize all nodes and, in simulation mode, advance every virtual clock
// to the maximum plus a modeled communication cost.
//
// If a node function throws, the machine aborts: blocked peers are woken
// with a typed PeerAbortError (origin node + collective op id) and run()
// rethrows the original exception, so failure injection tests never
// deadlock. MachineOptions adds the rest of the robustness layer: a
// collective/recv watchdog (deadlines turn indefinite waits into
// CollectiveTimeoutError / RecvTimeoutError on every node) and an
// rt::ChaosPlan hook injecting deterministic transport faults
// (see runtime/chaos_plan.h and docs/FAULTS.md "Runtime faults").
//
// Thread-ownership rules (enforced where cheap, relied on everywhere):
//
//   * Only the thread run() spawned for a node may call that Node's
//     non-const members — collectives, send/recv, clock mutation, obs
//     writes. Entering a collective from any other thread throws
//     UsageError instead of corrupting the rendezvous.
//   * Helper threads (e.g. the pcxx::aio flusher/prefetcher a node owns)
//     may touch only explicitly thread-safe lower layers
//     (pfs::ParallelFile::{write,read}AtBackground, storage backends) and
//     their own synchronization state. They must never block a node
//     indefinitely: any node-side wait on a helper registers its
//     (mutex, condvar) pair via AbortWaiterGuard so abort() delivers an
//     O(1) wake — no polling — and the woken wait rethrows the machine's
//     typed abort error (Machine::throwAbortError).
//   * A node must join or detach its helper threads before its SPMD
//     function returns; run() joins only node threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runtime/clock.h"
#include "runtime/mailbox.h"
#include "runtime/message.h"
#include "runtime/rt_errors.h"
#include "util/bytes.h"
#include "util/error.h"

namespace pcxx::rt {

class Machine;
class ChaosPlan;

/// Communication cost model applied to collectives and p2p messages in
/// simulation mode. All-zero (the default) disables modeling.
struct CommModel {
  double latency = 0.0;  ///< startup cost per operation hop (seconds)
  double perByte = 0.0;  ///< transfer cost per byte (seconds)

  bool enabled() const { return latency > 0.0 || perByte > 0.0; }
};

/// Robustness knobs for a Machine. All default to "off" — a Machine with
/// default options behaves exactly like the pre-chaos runtime.
struct MachineOptions {
  /// Watchdog deadline (wall seconds) for a collective rendezvous: when a
  /// node waits this long without the collective completing, the machine
  /// aborts and *every* node observes CollectiveTimeoutError naming the
  /// stalled op and the missing node(s). 0 disables the watchdog.
  double collectiveDeadlineSeconds = 0.0;

  /// Watchdog deadline (wall seconds) for recv(): no matching message
  /// within the deadline aborts the machine with RecvTimeoutError.
  /// 0 disables the watchdog.
  double recvDeadlineSeconds = 0.0;

  /// Deterministic transport-fault schedule consulted on every send/recv/
  /// collective arrival. Borrowed — must outlive the machine (or be
  /// cleared with setChaosPlan(nullptr)). run() re-binds the plan, so the
  /// same plan replays the same schedule every region. nullptr = off.
  ChaosPlan* chaos = nullptr;
};

/// One logical node of the machine. Only the owning thread may call
/// non-const members; a reference is passed to the SPMD function by run().
class Node {
 public:
  int id() const { return id_; }
  int nprocs() const;
  Machine& machine() const { return *machine_; }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  /// This node's observation handle, or nullptr when no observer is
  /// attached (Machine::attachObserver). Intended for the PCXX_OBS_*
  /// macros, which tolerate null.
  obs::NodeObs* obs() { return obsAttached_ ? &obs_ : nullptr; }

  // -- point-to-point ------------------------------------------------------

  /// Send bytes to node `dest` with a tag. Never blocks.
  void send(int dest, int tag, std::span<const Byte> data);

  /// Block until a message matching (src, tag) arrives.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking: is a matching message queued?
  bool probe(int src = kAnySource, int tag = kAnyTag);

  /// Send a single trivially copyable value.
  template <typename T>
  void sendValue(int dest, int tag, const T& v) {
    send(dest, tag, asBytes(v));
  }

  /// Receive a single trivially copyable value from (src, tag).
  template <typename T>
  T recvValue(int src, int tag) {
    Message m = recv(src, tag);
    if (m.payload.size() != sizeof(T)) {
      throw Error("recvValue: payload size mismatch");
    }
    T out;
    std::memcpy(&out, m.payload.data(), sizeof(T));
    return out;
  }

  // -- collectives (all nodes must call with matching arguments) -----------

  void barrier();
  std::vector<std::uint64_t> allgatherU64(std::uint64_t v);
  std::vector<ByteBuffer> allgatherBytes(std::span<const Byte> mine);
  /// Gather to `root`; non-root nodes get an empty vector.
  std::vector<ByteBuffer> gatherBytes(int root, std::span<const Byte> mine);
  /// Scatter from `root`: root passes one buffer per node; every node
  /// (including root) returns the buffer addressed to it. Non-root nodes
  /// pass an empty vector.
  ByteBuffer scatterBytes(int root, const std::vector<ByteBuffer>& toEach);
  /// Broadcast `data` from `root`; on other nodes `data` is replaced.
  void broadcastBytes(int root, ByteBuffer& data);
  /// Each node passes one buffer per destination; returns one buffer per
  /// source (buffers addressed to this node).
  std::vector<ByteBuffer> alltoallv(const std::vector<ByteBuffer>& sendTo);
  /// alltoallv variant that deposits into caller-owned buffers: `recv` is
  /// resized to nprocs and each slot is overwritten via assign(), so the
  /// buffers' capacity is reused across calls. This is what lets the
  /// chunked redistribution exchange run with zero steady-state
  /// allocation — round k reuses round k-1's receive storage.
  void alltoallvInto(const std::vector<ByteBuffer>& sendTo,
                     std::vector<ByteBuffer>& recv);
  double allreduceMax(double v);
  double allreduceSum(double v);
  std::uint64_t allreduceSumU64(std::uint64_t v);
  /// Exclusive prefix sum across node ids (node 0 receives 0).
  std::uint64_t exclusiveScanU64(std::uint64_t v);

 private:
  friend class Machine;
  Node() = default;

  /// Deliver the sender-side deferred message (ChaosPlan reorder clause).
  /// Called before every send/recv/collective and when the SPMD function
  /// returns, so a stashed message is delayed by at most one op.
  void flushDeferredSend();

  Machine* machine_ = nullptr;
  int id_ = -1;
  VirtualClock clock_;
  Mailbox mailbox_;
  obs::NodeObs obs_;
  bool obsAttached_ = false;

  // Reorder-in-flight slot: a send a ChaosPlan reorder clause held back so
  // the *next* send overtakes it. Owned by the node's thread only.
  bool deferredValid_ = false;
  int deferredDest_ = -1;
  Message deferredMsg_;
};

/// A simulated distributed-memory machine of `nprocs` nodes.
class Machine {
 public:
  explicit Machine(int nprocs, CommModel comm = {}, MachineOptions options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return nprocs_; }
  const CommModel& commModel() const { return comm_; }

  const MachineOptions& options() const { return opts_; }
  /// Replace the robustness options. Not thread-safe against a running
  /// SPMD region — set between run() calls.
  void setOptions(MachineOptions options) { opts_ = options; }
  /// Attach/detach a chaos plan (nullptr = off). Borrowed; re-bound to
  /// nprocs at every run() entry so schedules replay per region.
  void setChaosPlan(ChaosPlan* plan) { opts_.chaos = plan; }

  /// Run `fn` on every node concurrently; returns when all nodes finish.
  /// Virtual clocks and mailboxes are reset at entry. If any node throws,
  /// the machine aborts the others and rethrows the first exception.
  void run(const std::function<void(Node&)>& fn);

  /// Abort: wake everything blocked in recv()/collectives/aio waits with
  /// a typed error (see throwAbortError).
  void abort();
  bool aborted() const;

  /// Throw the typed error describing why this machine aborted:
  /// PeerAbortError / CollectiveTimeoutError / CollectiveMismatchError /
  /// RecvTimeoutError when a cause was recorded, otherwise
  /// Error(genericMessage). Call only after aborted() turned true.
  [[noreturn]] void throwAbortError(const char* genericMessage) const;

  // -- abort-waiter registry -------------------------------------------------
  //
  // Helper-layer waits (aio buffer pool, writer queue, prefetcher) register
  // their (mutex, condvar) pair here so abort() can deliver an O(1)
  // notify_all instead of the waiters polling aborted() on a timeout.
  // Lock order: abortWaitersMu_ -> waiter mutex (abort side). Registration
  // takes only abortWaitersMu_, so callers MUST construct the guard
  // *before* locking their own wait mutex.

  /// One registered helper-side wait.
  struct AbortWaiter {
    std::mutex* mu;
    std::condition_variable* cv;
  };

  void registerAbortWaiter(AbortWaiter* w);
  void unregisterAbortWaiter(AbortWaiter* w);

  /// Direct node access (e.g. to inspect clocks after run()).
  Node& node(int i) { return *nodes_[static_cast<size_t>(i)]; }

  /// Maximum virtual time over all nodes (the simulated makespan).
  double maxVirtualTime() const;

  /// Attach metrics/trace sinks: each node i observes into
  /// observer.metrics->node(i) (when non-null) and observer.trace tracks
  /// pid 0 / tid i. Time stamps come from the node's virtual clock
  /// (TimeMode::Virtual) or wall seconds since attach (TimeMode::Wall).
  /// The sinks are borrowed and must outlive the machine or a
  /// detachObserver() call. Attach before run(); not thread-safe against
  /// a concurrently running SPMD region.
  void attachObserver(const obs::Observer& observer);
  void detachObserver();

  // -- trace correlation ids ------------------------------------------------
  //
  // Flow edges in the trace share a 64-bit id space, partitioned by issuer
  // so chains never collide: record-scoped ids are raw nextFlowId() values,
  // p2p message edges set kFlowP2P, and per-collective edges are derived
  // from the collective op id with kFlowColl set.

  /// High bit tagging p2p message flow ids.
  static constexpr std::uint64_t kFlowP2P = std::uint64_t{1} << 62;
  /// High bit tagging collective arrival/release flow ids.
  static constexpr std::uint64_t kFlowColl = std::uint64_t{1} << 63;

  /// Monotonically-issued correlation id (1, 2, ...). Thread-safe; ids are
  /// unique within one run() region (the counter resets at entry).
  std::uint64_t nextFlowId() {
    return flowIdCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  friend class Node;

  /// Why the machine aborted; drives which typed error blocked peers see.
  enum class AbortKind { None, Generic, Peer, CollTimeout, CollMismatch, RecvTimeout };

  /// First-abort-wins context recorded by abortWith() (guarded by
  /// barrierMu_). Every wait that wakes to aborted_==true converts this
  /// into the matching typed exception via throwAbortError().
  struct AbortInfo {
    AbortKind kind = AbortKind::None;
    int origin = -1;
    std::uint64_t opId = 0;
    std::string opName;
    std::string reason;
    std::vector<int> arrived;
    std::vector<int> missing;
    int src = kAnySource;
    int tag = kAnyTag;
  };

  // Two-phase collective rendezvous. Phase 1 publishes inputs and runs
  // `completion` (on the last arriving thread, which may set
  // pendingCommBytes_ for the cost model); phase 2 releases shared staging
  // so the next collective can reuse it and applies no cost. `opName` is a
  // static string naming the collective for the watchdog / mismatch check.
  void barrierSync(const char* opName, const std::function<void()>& completion,
                   bool applyCost);

  void syncClocksLocked(bool applyCost);

  /// Record the abort cause (first caller wins), set aborted_, and wake
  /// every blocked wait: barrier cv, node mailboxes, registered
  /// abort-waiters.
  void abortWith(AbortInfo info);

  /// Abort on behalf of a node whose SPMD function threw.
  void abortPeer(int originNode, const std::string& why);

  [[noreturn]] void throwAbortErrorHavingLock(
      std::unique_lock<std::mutex>& lock, const char* genericMessage) const;

  int nprocs_;
  CommModel comm_;
  MachineOptions opts_;
  std::vector<std::unique_ptr<Node>> nodes_;

  // Sense-reversing barrier.
  mutable std::mutex barrierMu_;
  std::condition_variable barrierCv_;
  int barrierArrived_ = 0;
  std::uint64_t barrierGeneration_ = 0;
  bool aborted_ = false;
  AbortInfo abortInfo_;  // guarded by barrierMu_

  // Watchdog bookkeeping for the in-progress phase-1 rendezvous (guarded
  // by barrierMu_): which nodes have arrived and what op they entered.
  std::vector<char> arrivedGen_;
  const char* genOpName_ = nullptr;

  // Helper-side waits wakeable by abort() (see AbortWaiter above).
  std::mutex abortWaitersMu_;
  std::vector<AbortWaiter*> abortWaiters_;

  // Collective staging (valid between phase-1 and phase-2 barriers).
  std::vector<std::span<const Byte>> stageSpans_;
  std::vector<std::uint64_t> stageU64_;
  std::vector<double> stageF64_;
  std::vector<const std::vector<ByteBuffer>*> stageVecs_;
  std::uint64_t pendingCommBytes_ = 0;
  double clockTarget_ = 0.0;

  // Collective stamping (guarded by barrierMu_): the last-arriving thread
  // issues the op id and records which node it was; every node copies both
  // before leaving the phase-1 rendezvous.
  std::uint64_t collOpCount_ = 0;
  std::uint64_t collOpId_ = 0;
  int collStraggler_ = 0;

  std::atomic<std::uint64_t> flowIdCounter_{0};
};

/// RAII registration of a (mutex, condvar) wait with the machine's abort
/// registry. Construct BEFORE locking the wait mutex (the registry lock
/// order is abortWaitersMu_ -> wait mutex); destruction deregisters.
/// While registered, abort() notifies `cv` under `mu`, so a
/// `cv.wait_until(lock, ..., pred-or-machine.aborted())` wakes in O(1)
/// instead of polling.
class AbortWaiterGuard {
 public:
  AbortWaiterGuard(Machine& machine, std::mutex& mu,
                   std::condition_variable& cv)
      : machine_(machine), waiter_{&mu, &cv} {
    machine_.registerAbortWaiter(&waiter_);
  }
  ~AbortWaiterGuard() { machine_.unregisterAbortWaiter(&waiter_); }

  AbortWaiterGuard(const AbortWaiterGuard&) = delete;
  AbortWaiterGuard& operator=(const AbortWaiterGuard&) = delete;

 private:
  Machine& machine_;
  Machine::AbortWaiter waiter_;
};

/// The node bound to the calling thread. Throws if the caller is not inside
/// Machine::run(). This is how implicitly contextual constructors (e.g.
/// Distribution, d/stream open) locate the runtime, mirroring pC++'s
/// implicit runtime context.
Node& thisNode();

/// True when the calling thread is executing inside Machine::run().
bool inNodeContext();

}  // namespace pcxx::rt
