#include "runtime/mailbox.h"

#include <algorithm>
#include <chrono>

namespace pcxx::rt {

void Mailbox::push(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(msg));
  const Message& m = queue_.back();
  // Wake every matching waiter that has not been signaled yet (not just
  // the first: an earlier push may already have signaled one of them, and
  // that waiter will take the earlier message). Waiters whose pattern
  // cannot match this message stay asleep.
  for (Waiter* w : waiters_) {
    if (!w->signaled && matches(m, w->src, w->tag)) {
      w->signaled = true;
      w->cv.notify_one();
    }
  }
}

Message Mailbox::waitPop(int src, int tag) {
  Message out;
  if (waitPopFor(src, tag, /*deadlineSeconds=*/0.0, out) ==
      WaitStatus::Aborted) {
    throw Error("machine aborted while node was waiting in recv()");
  }
  return out;
}

Mailbox::WaitStatus Mailbox::waitPopFor(int src, int tag,
                                        double deadlineSeconds, Message& out) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool bounded = deadlineSeconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? deadlineSeconds : 0.0));
  Waiter self;
  self.src = src;
  self.tag = tag;
  bool registered = false;
  for (;;) {
    if (aborted_) {
      if (registered) std::erase(waiters_, &self);
      return WaitStatus::Aborted;
    }
    auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, src, tag); });
    if (it != queue_.end()) {
      out = std::move(*it);
      queue_.erase(it);
      if (registered) std::erase(waiters_, &self);
      return WaitStatus::Ok;
    }
    if (!registered) {
      waiters_.push_back(&self);
      registered = true;
    }
    self.signaled = false;
    const auto woken = [&] { return self.signaled || aborted_; };
    if (bounded) {
      if (!self.cv.wait_until(lock, deadline, woken)) {
        std::erase(waiters_, &self);
        return WaitStatus::TimedOut;
      }
    } else {
      self.cv.wait(lock, woken);
    }
  }
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, src, tag); });
}

void Mailbox::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  for (Waiter* w : waiters_) {
    w->signaled = true;
    w->cv.notify_one();
  }
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  aborted_ = false;
}

size_t Mailbox::pendingCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t Mailbox::waiterCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace pcxx::rt
