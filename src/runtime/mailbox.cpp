#include "runtime/mailbox.h"

#include <algorithm>

namespace pcxx::rt {

void Mailbox::push(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(msg));
  const Message& m = queue_.back();
  // Wake every matching waiter that has not been signaled yet (not just
  // the first: an earlier push may already have signaled one of them, and
  // that waiter will take the earlier message). Waiters whose pattern
  // cannot match this message stay asleep.
  for (Waiter* w : waiters_) {
    if (!w->signaled && matches(m, w->src, w->tag)) {
      w->signaled = true;
      w->cv.notify_one();
    }
  }
}

Message Mailbox::waitPop(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  Waiter self;
  self.src = src;
  self.tag = tag;
  bool registered = false;
  for (;;) {
    if (aborted_) {
      if (registered) std::erase(waiters_, &self);
      throw Error("machine aborted while node was waiting in recv()");
    }
    auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, src, tag); });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      if (registered) std::erase(waiters_, &self);
      return out;
    }
    if (!registered) {
      waiters_.push_back(&self);
      registered = true;
    }
    self.signaled = false;
    self.cv.wait(lock, [&] { return self.signaled || aborted_; });
  }
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, src, tag); });
}

void Mailbox::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  for (Waiter* w : waiters_) {
    w->signaled = true;
    w->cv.notify_one();
  }
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  aborted_ = false;
}

size_t Mailbox::pendingCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pcxx::rt
