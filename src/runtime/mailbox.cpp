#include "runtime/mailbox.h"

#include <algorithm>

namespace pcxx::rt {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::waitPop(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (aborted_) {
      throw Error("machine aborted while node was waiting in recv()");
    }
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) { return matches(m, src, tag); });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, src, tag); });
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  aborted_ = false;
}

size_t Mailbox::pendingCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pcxx::rt
