// Per-node mailbox: a tag- and source-matched message queue.
//
// Each node owns one mailbox. send() enqueues into the destination's
// mailbox; recv() blocks until a message matching (src, tag) is present.
// Matching follows MPI semantics: kAnySource / kAnyTag are wildcards, and
// messages from the same (src, tag) pair are delivered in send order.
//
// Blocked receivers register a per-waiter condition variable with the
// (src, tag) pattern they are waiting for; push() signals only waiters the
// new message can satisfy. With one shared condition variable every push
// would wake every blocked receiver to re-scan the queue — a thundering
// herd once the chunked redistribution exchange has several rounds of
// traffic in flight.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/message.h"
#include "util/error.h"

namespace pcxx::rt {

class Mailbox {
 public:
  /// Enqueue a message (called by the sending node's thread). Wakes only
  /// waiters whose (src, tag) pattern matches the message.
  void push(Message msg);

  /// Block until a message matching (src, tag) arrives, then remove and
  /// return it. Throws Error if the machine aborts while waiting.
  Message waitPop(int src, int tag);

  /// How a bounded wait ended.
  enum class WaitStatus { Ok, TimedOut, Aborted };

  /// Deadline-aware waitPop: waits up to `deadlineSeconds` of wall time
  /// (<= 0 means forever) for a matching message. On Ok the message is
  /// moved into `out`; TimedOut and Aborted leave `out` untouched and the
  /// queue unchanged. The waiter is always deregistered on return — never
  /// leaked — whichever way the wait ends; Machine::run's watchdog
  /// (MachineOptions::recvDeadlineSeconds) is built on this.
  WaitStatus waitPopFor(int src, int tag, double deadlineSeconds,
                        Message& out);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int src, int tag);

  /// Wake all waiters and make subsequent waits throw (machine abort).
  void abort();

  /// Clear messages and the abort flag (between SPMD regions).
  void reset();

  size_t pendingCount();

  /// Currently registered (blocked) waiters — abort() must leave this at
  /// zero once the woken waiters unwind; the leak tests pin that.
  size_t waiterCount();

 private:
  /// One blocked waitPop(), registered while it sleeps. Lives on the
  /// waiter's stack; the registry only ever holds live entries because
  /// waitPop() deregisters on every exit path while holding mu_.
  struct Waiter {
    int src;
    int tag;
    bool signaled = false;
    std::condition_variable cv;
  };

  bool matches(const Message& m, int src, int tag) const {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::mutex mu_;
  std::deque<Message> queue_;
  std::vector<Waiter*> waiters_;  // guarded by mu_
  bool aborted_ = false;
};

}  // namespace pcxx::rt
