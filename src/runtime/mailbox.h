// Per-node mailbox: a tag- and source-matched message queue.
//
// Each node owns one mailbox. send() enqueues into the destination's
// mailbox; recv() blocks until a message matching (src, tag) is present.
// Matching follows MPI semantics: kAnySource / kAnyTag are wildcards, and
// messages from the same (src, tag) pair are delivered in send order.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "runtime/message.h"
#include "util/error.h"

namespace pcxx::rt {

class Mailbox {
 public:
  /// Enqueue a message (called by the sending node's thread).
  void push(Message msg);

  /// Block until a message matching (src, tag) arrives, then remove and
  /// return it. Throws Error if the machine aborts while waiting.
  Message waitPop(int src, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int src, int tag);

  /// Wake all waiters and make subsequent waits throw (machine abort).
  void abort();

  /// Clear messages and the abort flag (between SPMD regions).
  void reset();

  size_t pendingCount();

 private:
  bool matches(const Message& m, int src, int tag) const {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace pcxx::rt
