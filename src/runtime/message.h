// Point-to-point message types for the node runtime.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.h"

namespace pcxx::rt {

/// Matches any source node in recv().
inline constexpr int kAnySource = -1;
/// Matches any tag in recv().
inline constexpr int kAnyTag = -1;

/// A delivered point-to-point message.
struct Message {
  int src = 0;
  int tag = 0;
  ByteBuffer payload;
  /// Virtual arrival time (simulation mode); the receiver's clock is
  /// advanced to at least this value when the message is received.
  double arrivalTime = 0.0;
  /// Trace correlation id stamped by Node::send when tracing is attached
  /// (0 = untraced). recv() closes the flow edge with the same id.
  std::uint64_t flowId = 0;
};

}  // namespace pcxx::rt
