#include "runtime/rio.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/error.h"
#include "util/strfmt.h"

namespace pcxx::rt::rio {

void printf(Node& node, const char* fmt, ...) {
  if (node.id() == 0) {
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fwrite(msg.data(), 1, msg.size(), stdout);
    std::fflush(stdout);
  }
  node.barrier();
}

ByteBuffer readFileReplicated(Node& node, const std::string& path) {
  ByteBuffer data;
  bool failed = false;
  std::string error;
  if (node.id() == 0) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      failed = true;
      error = "cannot open '" + path + "' for reading";
    } else {
      in.seekg(0, std::ios::end);
      const auto size = in.tellg();
      in.seekg(0, std::ios::beg);
      data.resize(static_cast<size_t>(size));
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
      if (!in) {
        failed = true;
        error = "short read from '" + path + "'";
      }
    }
  }
  // Broadcast the failure flag first so all nodes throw consistently.
  const double failFlag = node.allreduceMax(failed ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    throw IoError(node.id() == 0 ? error
                                 : "replicated read of '" + path + "' failed");
  }
  node.broadcastBytes(0, data);
  return data;
}

void writeFileReplicated(Node& node, const std::string& path,
                         std::span<const Byte> data) {
  bool failed = false;
  std::string error;
  if (node.id() == 0) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      failed = true;
      error = "cannot open '" + path + "' for writing";
    } else {
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
      if (!out) {
        failed = true;
        error = "short write to '" + path + "'";
      }
    }
  }
  const double failFlag = node.allreduceMax(failed ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    throw IoError(node.id() == 0
                      ? error
                      : "replicated write of '" + path + "' failed");
  }
}

std::string readLineReplicated(Node& node) {
  ByteBuffer data;
  if (node.id() == 0) {
    std::string line;
    if (std::getline(std::cin, line)) {
      data.assign(line.begin(), line.end());
    }
  }
  node.broadcastBytes(0, data);
  return std::string(data.begin(), data.end());
}

}  // namespace pcxx::rt::rio
