#include "runtime/rio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "util/error.h"
#include "util/strfmt.h"

namespace pcxx::rt::rio {

namespace {

// POSIX read/write may be interrupted by a signal before transferring any
// data (EINTR) or transfer only part of the request; both are retried here
// so callers see all-or-error semantics. Returns false (with `error` set,
// always naming the path) on any other failure.
bool readAll(int fd, const std::string& path, Byte* out, size_t n,
             std::string& error) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      error = strfmt("read from '%s' failed: %s", path.c_str(),
                     std::strerror(errno));
      return false;
    }
    if (got == 0) {
      error = strfmt("short read from '%s': got %zu of %zu bytes",
                     path.c_str(), done, n);
      return false;
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

bool writeAll(int fd, const std::string& path, const Byte* data, size_t n,
              std::string& error) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, data + done, n - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      error = strfmt("write to '%s' failed: %s", path.c_str(),
                     std::strerror(errno));
      return false;
    }
    done += static_cast<size_t>(put);
  }
  return true;
}

}  // namespace

void printf(Node& node, const char* fmt, ...) {
  if (node.id() == 0) {
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fwrite(msg.data(), 1, msg.size(), stdout);
    std::fflush(stdout);
  }
  node.barrier();
}

ByteBuffer readFileReplicated(Node& node, const std::string& path) {
  ByteBuffer data;
  bool failed = false;
  std::string error;
  if (node.id() == 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      failed = true;
      error = strfmt("cannot open '%s' for reading: %s", path.c_str(),
                     std::strerror(errno));
    } else {
      const off_t size = ::lseek(fd, 0, SEEK_END);
      if (size < 0 || ::lseek(fd, 0, SEEK_SET) < 0) {
        failed = true;
        error = strfmt("cannot seek in '%s': %s", path.c_str(),
                       std::strerror(errno));
      } else {
        data.resize(static_cast<size_t>(size));
        failed = !readAll(fd, path, data.data(), data.size(), error);
      }
      ::close(fd);
    }
  }
  // Broadcast the failure flag first so all nodes throw consistently.
  const double failFlag = node.allreduceMax(failed ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    throw IoError(node.id() == 0 ? error
                                 : "replicated read of '" + path + "' failed");
  }
  node.broadcastBytes(0, data);
  return data;
}

void writeFileReplicated(Node& node, const std::string& path,
                         std::span<const Byte> data) {
  bool failed = false;
  std::string error;
  if (node.id() == 0) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      failed = true;
      error = strfmt("cannot open '%s' for writing: %s", path.c_str(),
                     std::strerror(errno));
    } else {
      failed = !writeAll(fd, path, data.data(), data.size(), error);
      if (::close(fd) != 0 && !failed) {
        failed = true;
        error = strfmt("close of '%s' failed: %s", path.c_str(),
                       std::strerror(errno));
      }
    }
  }
  const double failFlag = node.allreduceMax(failed ? 1.0 : 0.0);
  if (failFlag > 0.0) {
    throw IoError(node.id() == 0
                      ? error
                      : "replicated write of '" + path + "' failed");
  }
}

std::string readLineReplicated(Node& node) {
  ByteBuffer data;
  if (node.id() == 0) {
    std::string line;
    if (std::getline(std::cin, line)) {
      data.assign(line.begin(), line.end());
    }
  }
  node.broadcastBytes(0, data);
  return std::string(data.begin(), data.end());
}

}  // namespace pcxx::rt::rio
