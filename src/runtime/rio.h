// Replicated I/O on local (non-distributed) data — paper Section 4.2.
//
// pC++ transforms programs so that local data replicated on all nodes is
// output by only one node, and on input is read by one node and broadcast
// to the rest. These collectives provide that facility as a library: every
// node calls them (they are collective operations), node 0 performs the
// actual OS-level I/O, and input results are broadcast.
#pragma once

#include <string>

#include "runtime/machine.h"
#include "util/bytes.h"

namespace pcxx::rt::rio {

/// Collective printf: all nodes call; only node 0 writes to stdout.
[[gnu::format(printf, 2, 3)]] void printf(Node& node, const char* fmt, ...);

/// Collective: node 0 reads the whole file at `path`; contents are broadcast
/// so every node returns an identical buffer. Throws IoError on failure.
ByteBuffer readFileReplicated(Node& node, const std::string& path);

/// Collective: node 0 writes `data` to `path` (truncating). Throws IoError.
void writeFileReplicated(Node& node, const std::string& path,
                         std::span<const Byte> data);

/// Collective: node 0 reads one line from stdin (or returns "" at EOF) and
/// the line is broadcast to all nodes.
std::string readLineReplicated(Node& node);

}  // namespace pcxx::rt::rio
