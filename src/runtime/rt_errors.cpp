#include "runtime/rt_errors.h"

#include <sstream>

namespace pcxx::rt {

namespace {

std::string joinNodes(const std::vector<int>& nodes) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ss << (i == 0 ? "" : ",") << nodes[i];
  }
  return ss.str();
}

std::string timeoutMessage(const std::string& opName, std::uint64_t opId,
                           const std::vector<int>& arrived,
                           const std::vector<int>& missing) {
  std::ostringstream ss;
  ss << "collective watchdog: op '" << opName << "' (#" << opId
     << ") stalled past the deadline; arrived nodes [" << joinNodes(arrived)
     << "], missing nodes [" << joinNodes(missing) << "]";
  return ss.str();
}

std::string srcName(int v) { return v < 0 ? "any" : std::to_string(v); }

}  // namespace

CollectiveTimeoutError::CollectiveTimeoutError(std::string stalledOp,
                                               std::uint64_t stalledOpId,
                                               std::vector<int> arrivedNodes,
                                               std::vector<int> missingNodes)
    : Error(timeoutMessage(stalledOp, stalledOpId, arrivedNodes,
                           missingNodes)),
      opName(std::move(stalledOp)),
      opId(stalledOpId),
      arrived(std::move(arrivedNodes)),
      missing(std::move(missingNodes)) {}

RecvTimeoutError::RecvTimeoutError(int waitingNode, int wantSrc, int wantTag)
    : Error("recv watchdog: node " + std::to_string(waitingNode) +
            " found no message matching (src=" + srcName(wantSrc) +
            ", tag=" + srcName(wantTag) + ") within the deadline"),
      node(waitingNode),
      src(wantSrc),
      tag(wantTag) {}

PeerAbortError::PeerAbortError(int origin, std::uint64_t atOpId,
                               const std::string& why)
    : Error("peer abort: node " + std::to_string(origin) +
            " threw near collective op #" + std::to_string(atOpId) +
            (why.empty() ? std::string() : " (" + why + ")")),
      originNode(origin),
      opId(atOpId) {}

}  // namespace pcxx::rt
