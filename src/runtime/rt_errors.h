// Typed runtime failures: every way an SPMD region can die is a distinct
// exception type, so tests and callers can tell an injected chaos crash
// from a watchdog timeout from a peer's unwinding — and none of them is a
// hang. See docs/FAULTS.md ("Runtime faults") for the full semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace pcxx::rt {

/// A node killed by a ChaosPlan crash-node clause (the runtime analogue of
/// pfs::CrashInjected). Peers observe PeerAbortError, not this.
class ChaosCrashError : public Error {
 public:
  ChaosCrashError(int crashedNode, std::uint64_t crashOp)
      : Error("chaos plan: injected crash on node " +
              std::to_string(crashedNode) + " at runtime op " +
              std::to_string(crashOp)),
        node(crashedNode),
        op(crashOp) {}

  int node;          ///< the crashed node
  std::uint64_t op;  ///< its per-node runtime op index at the crash
};

/// The collective watchdog fired: a rendezvous did not complete within
/// MachineOptions::collectiveDeadlineSeconds. Delivered on *every* node
/// still inside the machine (waiting at the collective, blocked in recv(),
/// or stalled on an aio pipeline), naming the stalled op and the nodes
/// that never arrived.
class CollectiveTimeoutError : public Error {
 public:
  CollectiveTimeoutError(std::string stalledOp, std::uint64_t stalledOpId,
                         std::vector<int> arrivedNodes,
                         std::vector<int> missingNodes);

  std::string opName;        ///< collective that stalled ("barrier", ...)
  std::uint64_t opId;        ///< 1-based collective op id that never completed
  std::vector<int> arrived;  ///< nodes that reached the rendezvous
  std::vector<int> missing;  ///< nodes that never arrived
};

/// Two nodes entered *different* collectives at the same rendezvous — a
/// protocol divergence (the bug class dslint's DS5xx checks hunt
/// statically) that the central barrier would otherwise "complete" with
/// mixed staging. Detected at arrival time and delivered on every node.
class CollectiveMismatchError : public Error {
 public:
  CollectiveMismatchError(std::string expected, std::string actual,
                          int diverged)
      : Error("collective mismatch: node " + std::to_string(diverged) +
              " entered '" + actual + "' while peers are in '" + expected +
              "'"),
        expectedOp(std::move(expected)),
        actualOp(std::move(actual)),
        divergingNode(diverged) {}

  std::string expectedOp;  ///< what the first arriver entered
  std::string actualOp;    ///< what the diverging node entered
  int divergingNode;       ///< the node that diverged
};

/// A recv() found no matching message within
/// MachineOptions::recvDeadlineSeconds (e.g. the sender's message was
/// dropped, or the sender died before sending).
class RecvTimeoutError : public Error {
 public:
  RecvTimeoutError(int waitingNode, int wantSrc, int wantTag);

  int node;  ///< the receiver that timed out
  int src;   ///< requested source (kAnySource = -1)
  int tag;   ///< requested tag (kAnyTag = -1)
};

/// A *peer* node threw and the machine unwound this node's blocking call
/// (collective, recv, aio wait). Carries the origin node and the last
/// issued collective op id so logs can say where the machine was when it
/// died. The origin node itself rethrows its original exception.
class PeerAbortError : public Error {
 public:
  PeerAbortError(int origin, std::uint64_t atOpId, const std::string& why);

  int originNode;      ///< node whose exception started the abort
  std::uint64_t opId;  ///< collective op count at abort time
};

}  // namespace pcxx::rt
