#include "scf/harness.h"

#include <chrono>
#include <memory>

#include "collection/collection.h"
#include "pfs/parallel_file.h"
#include "runtime/machine.h"
#include "scf/io_methods.h"
#include "scf/workload.h"
#include "util/error.h"
#include "util/strfmt.h"

namespace pcxx::scf {
namespace {

/// Interconnect model per platform (used by the runtime's collectives).
rt::CommModel commModelFor(const std::string& platform) {
  if (platform == "paragon") {
    return rt::CommModel{100e-6, 1.25e-8};  // ~100us latency, ~80 MB/s links
  }
  if (platform == "sgi") {
    return rt::CommModel{5e-6, 2e-9};  // shared-memory "messages"
  }
  return rt::CommModel{};
}

pfs::PfsConfig pfsConfigFor(const std::string& platform, int nprocs) {
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Memory;
  cfg.perf = pfs::paramsByName(platform, nprocs);
  return cfg;
}

/// Run one (method, size) measurement: output then input on a fresh file
/// system. Returns seconds — virtual when the platform model is enabled,
/// wall-clock otherwise. When `metricsOut` is non-null the run is observed
/// and the per-node snapshot + totals are stored there; `trace` (optional)
/// additionally records Chrome-trace spans.
double runCell(const BenchConfig& cfg, IoMethod& method, std::int64_t segments,
               MethodMetrics* metricsOut = nullptr,
               obs::TraceSession* trace = nullptr) {
  rt::Machine machine(cfg.nprocs, commModelFor(cfg.platform));
  pfs::Pfs fs(pfsConfigFor(cfg.platform, cfg.nprocs));
  const bool simulated = fs.model().enabled();

  std::unique_ptr<obs::MetricsRegistry> registry;
  if (metricsOut != nullptr || trace != nullptr) {
    obs::Observer observer;
    if (metricsOut != nullptr) {
      registry = std::make_unique<obs::MetricsRegistry>(cfg.nprocs);
      observer.metrics = registry.get();
    }
    observer.trace = trace;
    observer.timeMode = simulated ? obs::Observer::TimeMode::Virtual
                                  : obs::Observer::TimeMode::Wall;
    machine.attachObserver(observer);
  }

  std::int64_t badValues = 0;
  const auto wallStart = std::chrono::steady_clock::now();
  machine.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(segments, &P, coll::DistKind::Block);
    coll::Collection<Segment> data(&d);
    fillDeterministic(data, cfg.particlesPerSegment);

    {
      PCXX_OBS_PHASE(node.obs(), "scf.output", ScfOutputSeconds);
      method.output(node, fs, data, "scf_particles");
    }

    coll::Collection<Segment> back(&d);
    {
      PCXX_OBS_PHASE(node.obs(), "scf.input", ScfInputSeconds);
      method.input(node, fs, back, "scf_particles", cfg.particlesPerSegment);
    }

    if (cfg.verify) {
      const std::int64_t local = verifyDeterministic(back,
                                                     cfg.particlesPerSegment);
      const std::int64_t total = static_cast<std::int64_t>(
          node.allreduceSumU64(static_cast<std::uint64_t>(local)));
      if (node.id() == 0) badValues = total;
    }
  });
  const auto wallEnd = std::chrono::steady_clock::now();

  if (cfg.verify && badValues != 0) {
    throw InternalError(method.name() + " corrupted " +
                        std::to_string(badValues) + " values");
  }
  const double wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  const double total = simulated ? machine.maxVirtualTime() : wallSeconds;
  if (metricsOut != nullptr) {
    metricsOut->method = method.name();
    metricsOut->totalSeconds = total;
    metricsOut->nodeSeconds.resize(static_cast<size_t>(cfg.nprocs));
    for (int i = 0; i < cfg.nprocs; ++i) {
      metricsOut->nodeSeconds[static_cast<size_t>(i)] =
          simulated ? machine.node(i).clock().now() : wallSeconds;
    }
    metricsOut->snapshot = registry->snapshot();
  }
  return total;
}

}  // namespace

BenchTableResult runBenchTable(const BenchConfig& config) {
  BenchTableResult result;
  result.config = config;
  auto unbuffered = makeUnbufferedIo();
  auto manual = makeManualBufferingIo();
  auto streams = makeStreamsIo(config.sortedRead);
  auto streamsAsync = makeStreamsAsyncIo(
      config.sortedRead, config.asyncQueueDepth, config.asyncPrefetchDepth);

  for (std::int64_t segments : config.segmentCounts) {
    CellResult cell;
    cell.segments = segments;
    cell.bytes = static_cast<std::uint64_t>(segments) *
                 (sizeof(int) +
                  7ull * 8ull *
                      static_cast<std::uint64_t>(config.particlesPerSegment));
    const bool collect = config.collectMetrics;
    if (collect) cell.metrics.resize(4);
    MethodMetrics* m = collect ? cell.metrics.data() : nullptr;
    // The Chrome trace captures the streams method at the table's largest
    // I/O size (one trace per table keeps the file reviewable in Perfetto).
    const bool traceThisCell = !config.traceJsonPath.empty() &&
                               segments == config.segmentCounts.back();
    std::unique_ptr<obs::TraceSession> trace;
    if (traceThisCell) {
      trace = std::make_unique<obs::TraceSession>(config.nprocs);
    }
    cell.unbuffered =
        runCell(config, *unbuffered, segments, collect ? &m[0] : nullptr);
    cell.manual =
        runCell(config, *manual, segments, collect ? &m[1] : nullptr);
    cell.streams = runCell(config, *streams, segments,
                           collect ? &m[2] : nullptr, trace.get());
    cell.streamsAsync = runCell(config, *streamsAsync, segments,
                                collect ? &m[3] : nullptr);
    if (trace != nullptr) {
      trace->writeJson(config.traceJsonPath);
    }
    result.cells.push_back(std::move(cell));
  }
  return result;
}

Table BenchTableResult::toTable() const {
  Table t(config.title);
  std::vector<std::string> header{"I/O Size (# of Segments)"};
  for (const CellResult& c : cells) {
    header.push_back(strfmt("%s (%lld)",
                            humanBytes(c.bytes).c_str(),
                            static_cast<long long>(c.segments)));
  }
  t.setHeader(std::move(header));

  auto row = [&](const std::string& label,
                 const std::function<double(const CellResult&)>& get,
                 bool pct = false) {
    std::vector<std::string> cellsOut{label};
    for (const CellResult& c : cells) {
      cellsOut.push_back(pct ? strfmt("%.1f%%", get(c))
                             : humanSeconds(get(c)) + " sec.");
    }
    t.addRow(std::move(cellsOut));
  };
  row("Unbuffered I/O", [](const CellResult& c) { return c.unbuffered; });
  row("Manual Buffering", [](const CellResult& c) { return c.manual; });
  row("pC++/streams", [](const CellResult& c) { return c.streams; });
  row("pC++/streams (async)",
      [](const CellResult& c) { return c.streamsAsync; });
  row("% of Manual Buf.", [](const CellResult& c) { return c.pctOfManual(); },
      /*pct=*/true);
  t.setFootnote("timings: output operation followed by input operation; "
                "input uses " +
                std::string(config.sortedRead ? "read()" : "unsortedRead()") +
                "; platform model: " + config.platform);
  return t;
}

namespace {
BenchConfig makeTableConfig(std::string title, std::string platform,
                            int nprocs, std::vector<std::int64_t> segments) {
  BenchConfig cfg;
  cfg.title = std::move(title);
  cfg.platform = std::move(platform);
  cfg.nprocs = nprocs;
  cfg.segmentCounts = std::move(segments);
  return cfg;
}
}  // namespace

BenchConfig table1Paragon4() {
  return makeTableConfig(
      "Table 1: Benchmark Results on Intel Paragon (4 processors)",
      "paragon", 4, {256, 512, 1000, 2000});
}

BenchConfig table2Paragon8() {
  return makeTableConfig(
      "Table 2: Benchmark Results on Intel Paragon (8 processors)",
      "paragon", 8, {256, 512, 1000, 2000});
}

BenchConfig table3SgiUni() {
  return makeTableConfig(
      "Table 3: Benchmark Results on Uniprocessor SGI Challenge",
      "sgi", 1, {1000, 2000, 20000});
}

BenchConfig table4Sgi8() {
  return makeTableConfig(
      "Table 4: Benchmark Results on Multiprocessor SGI Challenge "
      "(8 processors)",
      "sgi", 8, {1000, 2000, 8000});
}

PaperRow paperValues(int tableId) {
  switch (tableId) {
    case 1:
      return PaperRow{{7.13, 14.73, 283.00, 556.78},
                      {2.14, 3.04, 5.42, 54.17},
                      {2.47, 3.31, 5.71, 55.00}};
    case 2:
      return PaperRow{{7.53, 14.47, 273.77, 561.72},
                      {2.91, 3.75, 5.72, 9.69},
                      {3.36, 4.20, 6.16, 10.19}};
    case 3:
      return PaperRow{{1.68, 3.42, 32.20},
                      {1.05, 2.13, 20.9},
                      {1.32, 2.71, 21.84}};
    case 4:
      return PaperRow{{0.55, 1.10, 4.95},
                      {0.22, 0.34, 2.38},
                      {0.39, 0.75, 2.65}};
    default:
      throw UsageError("paperValues: table id must be 1..4");
  }
}

void printWithPaperComparison(int tableId, const BenchTableResult& result) {
  result.toTable().print();
  const PaperRow paper = paperValues(tableId);
  Table t(strfmt("Paper-reported values (PPoPP '95, Table %d)", tableId));
  std::vector<std::string> header{"I/O Size (# of Segments)"};
  for (const CellResult& c : result.cells) {
    header.push_back(strfmt("%lld", static_cast<long long>(c.segments)));
  }
  t.setHeader(std::move(header));
  auto row = [&](const std::string& label, const std::vector<double>& vals) {
    std::vector<std::string> cells{label};
    for (double v : vals) cells.push_back(humanSeconds(v));
    t.addRow(std::move(cells));
  };
  row("Unbuffered I/O", paper.unbuffered);
  row("Manual Buffering", paper.manual);
  row("pC++/streams", paper.streams);
  std::vector<std::string> pct{"% of Manual Buf."};
  for (size_t i = 0; i < paper.streams.size(); ++i) {
    pct.push_back(strfmt("%.1f%%", 100.0 * paper.manual[i] / paper.streams[i]));
  }
  t.addRow(std::move(pct));
  t.print();
}

}  // namespace pcxx::scf
