// The SCF benchmark harness: reproduces the paper's Figure 5 tables.
//
// Each table is a sweep over I/O sizes (segment counts) with three methods:
// unbuffered OS-primitive I/O, manual buffering, and pC++/streams. Each
// measurement is "an output operation followed by an input operation on a
// distributed data structure" (Figure 5 caption); the d/streams
// unsortedRead primitive is used for input.
//
// Two timing modes:
//  * simulation (default): the pfs performance model advances virtual
//    clocks calibrated to the paper's platforms ("paragon", "sgi"); the
//    reported seconds are virtual and comparable to the 1995 tables.
//  * real: no model; wall-clock seconds on the host are reported.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/table.h"

namespace pcxx::scf {

struct BenchConfig {
  std::string title;          ///< e.g. "Table 1: ... Intel Paragon (4 processors)"
  std::string platform;       ///< "paragon", "sgi", or "none" (real time)
  int nprocs = 4;
  std::vector<std::int64_t> segmentCounts;
  int particlesPerSegment = 100;
  bool sortedRead = false;    ///< use read() instead of unsortedRead()
  bool verify = true;         ///< check data integrity after input
  /// Collect per-cell obs metrics snapshots into CellResult::metrics
  /// (--metrics-json). Zero extra collectives; just attaches an observer.
  bool collectMetrics = false;
  /// When non-empty, write a Chrome trace_event JSON of the pC++/streams
  /// run at the table's largest I/O size to this path (--trace-json).
  std::string traceJsonPath;
  /// Overlap settings for the "pC++/streams (async)" row (pcxx::aio).
  int asyncQueueDepth = 4;
  int asyncPrefetchDepth = 2;
};

/// Per-(cell, method) observability capture: the merged + per-node metric
/// snapshot plus each node's own total, so reports can decompose the bench
/// time into phases per node.
struct MethodMetrics {
  std::string method;                ///< "unbuffered", "manual", "streams"
  double totalSeconds = 0.0;         ///< the bench cell's reported seconds
  std::vector<double> nodeSeconds;   ///< per-node end time (virtual mode)
  obs::MetricsSnapshot snapshot;
};

struct CellResult {
  std::int64_t segments = 0;
  std::uint64_t bytes = 0;    ///< collection payload (one direction)
  double unbuffered = 0.0;    ///< seconds (output + input)
  double manual = 0.0;
  double streams = 0.0;
  double streamsAsync = 0.0;  ///< pC++/streams with the aio overlap pipeline
  std::vector<MethodMetrics> metrics;  ///< when BenchConfig::collectMetrics

  double pctOfManual() const {
    return streams > 0.0 ? 100.0 * manual / streams : 0.0;
  }
};

struct BenchTableResult {
  BenchConfig config;
  std::vector<CellResult> cells;

  /// Render in the paper's row layout (I/O size columns; method rows;
  /// final "% of Manual Buf." row).
  Table toTable() const;
};

/// Run one full table. Each (method, size) cell runs on a fresh file
/// system so cache state does not leak between measurements.
BenchTableResult runBenchTable(const BenchConfig& config);

/// The paper's four tables.
BenchConfig table1Paragon4();
BenchConfig table2Paragon8();
BenchConfig table3SgiUni();
BenchConfig table4Sgi8();

/// Paper-reported values for a table id (1..4), for side-by-side printing.
struct PaperRow {
  std::vector<double> unbuffered, manual, streams;
};
PaperRow paperValues(int tableId);

/// Print measured vs paper for one table id.
void printWithPaperComparison(int tableId, const BenchTableResult& result);

}  // namespace pcxx::scf
