#include "scf/io_methods.h"

#include <cstring>

#include "dstream/istream.h"
#include "dstream/ostream.h"
#include "util/error.h"

namespace pcxx::scf {
namespace {

/// Fixed per-segment footprint when every segment holds `n` particles.
std::uint64_t segmentBytes(int n) {
  return sizeof(int) + 7ull * 8ull * static_cast<std::uint64_t>(n);
}

// ---------------------------------------------------------------------------
// Unbuffered: one OS request per field per segment.
// ---------------------------------------------------------------------------

class UnbufferedIo final : public IoMethod {
 public:
  std::string name() const override { return "Unbuffered I/O"; }

  void output(rt::Node& node, pfs::Pfs& fs,
              coll::Collection<Segment>& segments,
              const std::string& file) override {
    auto f = fs.open(node, file, pfs::OpenMode::Create);
    segments.forEachLocal([&](Segment& seg, std::int64_t g) {
      // Fixed geometry: segment g starts at g * segmentBytes(n).
      std::uint64_t off =
          static_cast<std::uint64_t>(g) * segmentBytes(seg.numberOfParticles);
      const auto n = static_cast<std::uint64_t>(seg.numberOfParticles);
      f->writeAt(node, off, asBytes(seg.numberOfParticles));
      off += sizeof(int);
      const double* fields[7] = {seg.x, seg.y, seg.z, seg.vx,
                                 seg.vy, seg.vz, seg.mass};
      for (const double* field : fields) {
        f->writeAt(node, off, asBytes(field, n));
        off += 8 * n;
      }
    });
    node.barrier();
  }

  void input(rt::Node& node, pfs::Pfs& fs,
             coll::Collection<Segment>& segments, const std::string& file,
             int particlesPerSegment) override {
    auto f = fs.open(node, file, pfs::OpenMode::Read);
    segments.forEachLocal([&](Segment& seg, std::int64_t g) {
      std::uint64_t off =
          static_cast<std::uint64_t>(g) * segmentBytes(particlesPerSegment);
      int n = 0;
      if (f->readAt(node, off, asWritableBytes(n)) != sizeof(int)) {
        throw IoError("unbuffered input: short read of particle count");
      }
      off += sizeof(int);
      if (n != seg.numberOfParticles) seg.allocate(n);
      double* fields[7] = {seg.x, seg.y, seg.z, seg.vx,
                           seg.vy, seg.vz, seg.mass};
      const auto bytes = 8ull * static_cast<std::uint64_t>(n);
      for (double*& field : fields) {
        std::span<Byte> out{reinterpret_cast<Byte*>(field),
                            static_cast<size_t>(bytes)};
        if (f->readAt(node, off, out) != bytes) {
          throw IoError("unbuffered input: short read of particle field");
        }
        off += bytes;
      }
    });
    node.barrier();
  }
};

// ---------------------------------------------------------------------------
// Manual buffering: pack locally, one parallel write / read. No size or
// distribution information in the file.
// ---------------------------------------------------------------------------

class ManualBufferingIo final : public IoMethod {
 public:
  std::string name() const override { return "Manual Buffering"; }

  void output(rt::Node& node, pfs::Pfs& fs,
              coll::Collection<Segment>& segments,
              const std::string& file) override {
    auto f = fs.open(node, file, pfs::OpenMode::Create);
    ByteBuffer buf;
    segments.forEachLocal([&](Segment& seg, std::int64_t) {
      const auto n = static_cast<std::uint64_t>(seg.numberOfParticles);
      const Byte* count = reinterpret_cast<const Byte*>(&seg.numberOfParticles);
      buf.insert(buf.end(), count, count + sizeof(int));
      const double* fields[7] = {seg.x, seg.y, seg.z, seg.vx,
                                 seg.vy, seg.vz, seg.mass};
      for (const double* field : fields) {
        const Byte* p = reinterpret_cast<const Byte*>(field);
        buf.insert(buf.end(), p, p + 8 * n);
      }
    });
    f->writeOrdered(node, buf);
  }

  void input(rt::Node& node, pfs::Pfs& fs,
             coll::Collection<Segment>& segments, const std::string& file,
             int particlesPerSegment) override {
    auto f = fs.open(node, file, pfs::OpenMode::Read);
    // The reader computes its share from the known geometry — this is what
    // "storing no element size or distribution information" costs.
    const std::uint64_t myBytes =
        static_cast<std::uint64_t>(segments.localCount()) *
        segmentBytes(particlesPerSegment);
    ByteBuffer buf(static_cast<size_t>(myBytes));
    f->readOrdered(node, buf);
    std::uint64_t off = 0;
    segments.forEachLocal([&](Segment& seg, std::int64_t) {
      int n = 0;
      std::memcpy(&n, buf.data() + off, sizeof(int));
      off += sizeof(int);
      if (n != seg.numberOfParticles) seg.allocate(n);
      double* fields[7] = {seg.x, seg.y, seg.z, seg.vx,
                           seg.vy, seg.vz, seg.mass};
      for (double*& field : fields) {
        const auto bytes = 8ull * static_cast<std::uint64_t>(n);
        std::memcpy(field, buf.data() + off, bytes);
        off += bytes;
      }
    });
  }
};

// ---------------------------------------------------------------------------
// pC++/streams.
// ---------------------------------------------------------------------------

class StreamsIo final : public IoMethod {
 public:
  explicit StreamsIo(bool sorted) : sorted_(sorted) {}

  std::string name() const override { return "pC++/streams"; }

  void output(rt::Node&, pfs::Pfs& fs, coll::Collection<Segment>& segments,
              const std::string& file) override {
    const coll::Layout& layout = segments.layout();
    ds::OStream s(fs, &layout.distribution(), &layout.align(), file);
    s << segments;
    s.write();
  }

  void input(rt::Node&, pfs::Pfs& fs, coll::Collection<Segment>& segments,
             const std::string& file, int) override {
    const coll::Layout& layout = segments.layout();
    ds::IStream s(fs, &layout.distribution(), &layout.align(), file);
    if (sorted_) {
      s.read();
    } else {
      s.unsortedRead();  // the paper's input path for these measurements
    }
    s >> segments;
  }

 private:
  bool sorted_;
};

// ---------------------------------------------------------------------------
// pC++/streams with overlapped I/O (pcxx::aio).
// ---------------------------------------------------------------------------

class StreamsAsyncIo final : public IoMethod {
 public:
  StreamsAsyncIo(bool sorted, int queueDepth, int prefetchDepth)
      : sorted_(sorted), queueDepth_(queueDepth),
        prefetchDepth_(prefetchDepth) {}

  std::string name() const override { return "pC++/streams (async)"; }

  void output(rt::Node&, pfs::Pfs& fs, coll::Collection<Segment>& segments,
              const std::string& file) override {
    const coll::Layout& layout = segments.layout();
    ds::StreamOptions so;
    so.aioQueueDepth = queueDepth_;
    ds::OStream s(fs, &layout.distribution(), &layout.align(), file, so);
    s << segments;
    s.write();
    // Explicit close drains the write-behind queue inside the measured
    // region (and surfaces flush failures here, not from the destructor).
    s.close();
  }

  void input(rt::Node&, pfs::Pfs& fs, coll::Collection<Segment>& segments,
             const std::string& file, int) override {
    const coll::Layout& layout = segments.layout();
    ds::StreamOptions so;
    so.aioPrefetchDepth = prefetchDepth_;
    ds::IStream s(fs, &layout.distribution(), &layout.align(), file, so);
    if (sorted_) {
      s.read();
    } else {
      s.unsortedRead();
    }
    s >> segments;
  }

 private:
  bool sorted_;
  int queueDepth_;
  int prefetchDepth_;
};

}  // namespace

std::unique_ptr<IoMethod> makeUnbufferedIo() {
  return std::make_unique<UnbufferedIo>();
}

std::unique_ptr<IoMethod> makeManualBufferingIo() {
  return std::make_unique<ManualBufferingIo>();
}

std::unique_ptr<IoMethod> makeStreamsIo(bool sorted) {
  return std::make_unique<StreamsIo>(sorted);
}

std::unique_ptr<IoMethod> makeStreamsAsyncIo(bool sorted, int queueDepth,
                                             int prefetchDepth) {
  return std::make_unique<StreamsAsyncIo>(sorted, queueDepth, prefetchDepth);
}

}  // namespace pcxx::scf
