// The three I/O implementations compared in the paper's benchmark (§4.3):
//
//   * UnbufferedIo      — "using operating system I/O primitives directly
//                          with no buffering": one positional request per
//                          field per segment (8 requests per segment each
//                          way).
//   * ManualBufferingIo — the application packs all local segments into one
//                          buffer and issues a single node-order parallel
//                          write; no element size or distribution
//                          information is stored (the reader must already
//                          know the segment geometry).
//   * StreamsIo         — pC++/streams: OStream/IStream with the automatic
//                          bookkeeping of size + distribution information.
//
// All three implement output of a Collection<Segment> followed by input,
// which is exactly the benchmark's measured operation.
#pragma once

#include <memory>
#include <string>

#include "collection/collection.h"
#include "pfs/parallel_file.h"
#include "scf/segment.h"

namespace pcxx::scf {

/// One I/O implementation under benchmark.
class IoMethod {
 public:
  virtual ~IoMethod() = default;
  virtual std::string name() const = 0;

  /// Write all segments to `file` (collective).
  virtual void output(rt::Node& node, pfs::Pfs& fs,
                      coll::Collection<Segment>& segments,
                      const std::string& file) = 0;

  /// Read all segments back from `file` (collective). Implementations may
  /// rely on `particlesPerSegment` being uniform — the paper's manual
  /// baseline does exactly that ("element sizes can be computed").
  virtual void input(rt::Node& node, pfs::Pfs& fs,
                     coll::Collection<Segment>& segments,
                     const std::string& file, int particlesPerSegment) = 0;
};

std::unique_ptr<IoMethod> makeUnbufferedIo();
std::unique_ptr<IoMethod> makeManualBufferingIo();
/// `sorted` selects read() instead of the paper's unsortedRead() input path.
std::unique_ptr<IoMethod> makeStreamsIo(bool sorted = false);
/// pC++/streams with the pcxx::aio overlap pipeline: write-behind flushing
/// on output (queueDepth buffers in flight per node) and read-ahead
/// prefetch on input (prefetchDepth records). Produces byte-identical
/// files; only the modeled overlap differs. Falls back to the synchronous
/// path when the library is built with PCXX_AIO=OFF or depths are 0.
std::unique_ptr<IoMethod> makeStreamsAsyncIo(bool sorted = false,
                                             int queueDepth = 4,
                                             int prefetchDepth = 2);

}  // namespace pcxx::scf
