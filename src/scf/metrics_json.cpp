#include "scf/metrics_json.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace pcxx::scf {

namespace {

using obs::Counter;
using obs::NodeSnapshot;
using obs::Timer;

std::string num(double v) {
  std::ostringstream ss;
  ss.precision(9);
  ss << v;
  return ss.str();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void appendPhases(std::ostringstream& ss, const PhaseBreakdown& p) {
  ss << "{\"insert_buffer_fill\": " << num(p.insertBufferFill)
     << ", \"header\": " << num(p.header)
     << ", \"redistribution\": " << num(p.redistribution)
     << ", \"pfs_read\": " << num(p.pfsRead)
     << ", \"pfs_write\": " << num(p.pfsWrite)
     << ", \"other\": " << num(p.other) << "}";
}

void appendMethod(std::ostringstream& ss, const MethodMetrics& m,
                  const std::string& indent) {
  const NodeSnapshot& merged = m.snapshot.merged;
  double nodeSum = 0.0;
  for (double s : m.nodeSeconds) nodeSum += s;

  ss << indent << "{\n";
  ss << indent << "  \"method\": \"" << jsonEscape(m.method) << "\",\n";
  ss << indent << "  \"total_seconds\": " << num(m.totalSeconds) << ",\n";
  ss << indent << "  \"node_seconds_sum\": " << num(nodeSum) << ",\n";
  ss << indent << "  \"phases\": ";
  appendPhases(ss, phaseBreakdown(merged, nodeSum));
  ss << ",\n";
  ss << indent << "  \"redistribution\": {\"bytes_sent\": "
     << merged.counter(Counter::RedistBytesSent)
     << ", \"messages\": " << merged.counter(Counter::RedistMessagesSent)
     << ", \"elements_moved\": "
     << merged.counter(Counter::RedistElementsMoved)
     << ", \"wait_seconds\": "
     << num(merged.timer(Timer::RedistWaitSeconds)) << "},\n";
  ss << indent << "  \"counters\": {";
  bool first = true;
  for (int c = 0; c < obs::kNumCounters; ++c) {
    const std::uint64_t v = merged.counters[static_cast<size_t>(c)];
    if (v == 0) continue;
    ss << (first ? "" : ", ") << "\""
       << obs::counterName(static_cast<Counter>(c)) << "\": " << v;
    first = false;
  }
  ss << "},\n";
  ss << indent << "  \"seconds\": {";
  first = true;
  for (int t = 0; t < obs::kNumTimers; ++t) {
    const double v = merged.seconds[static_cast<size_t>(t)];
    if (v == 0.0) continue;
    ss << (first ? "" : ", ") << "\""
       << obs::timerName(static_cast<Timer>(t)) << "\": " << num(v);
    first = false;
  }
  ss << "},\n";
  ss << indent << "  \"per_node\": [\n";
  for (size_t i = 0; i < m.snapshot.perNode.size(); ++i) {
    const double nodeTotal =
        i < m.nodeSeconds.size() ? m.nodeSeconds[i] : 0.0;
    const NodeSnapshot& ns = m.snapshot.perNode[i];
    ss << indent << "    {\"node\": " << i
       << ", \"total_seconds\": " << num(nodeTotal) << ", \"phases\": ";
    appendPhases(ss, phaseBreakdown(ns, nodeTotal));
    // Runtime wait attribution per node: how long this node sat in
    // collectives, how often it was the one everyone waited for, and its
    // local aio pipeline stalls — the inputs to pcxx-prof's straggler
    // league table.
    ss << ", \"sync_wait_seconds\": "
       << num(ns.timer(Timer::RtSyncWaitSeconds))
       << ", \"straggler_ops\": "
       << ns.counter(Counter::RtCollStragglerOps)
       << ", \"collectives\": " << ns.counter(Counter::RtCollectives)
       << ", \"aio_stall_seconds\": " << num(ns.timer(Timer::AioStallSeconds))
       << ", \"aio_drain_seconds\": "
       << num(ns.timer(Timer::AioDrainSeconds));
    ss << "}" << (i + 1 < m.snapshot.perNode.size() ? "," : "") << "\n";
  }
  ss << indent << "  ]\n";
  ss << indent << "}";
}

}  // namespace

PhaseBreakdown phaseBreakdown(const NodeSnapshot& s, double totalSeconds) {
  PhaseBreakdown p;
  p.insertBufferFill = s.timer(Timer::DsBufferFillSeconds);
  p.header = s.timer(Timer::DsHeaderSeconds);
  p.redistribution = s.timer(Timer::DsRedistSeconds);
  p.pfsRead = s.timer(Timer::PfsReadSeconds);
  p.pfsWrite = s.timer(Timer::PfsWriteSeconds);
  p.other = totalSeconds - (p.insertBufferFill + p.header + p.redistribution +
                            p.pfsRead + p.pfsWrite);
  return p;
}

std::string metricsReportJson(const std::vector<BenchTableResult>& tables) {
  std::ostringstream ss;
  ss << "{\n  \"schema\": \"pcxx-metrics-v1\",\n  \"tables\": [\n";
  for (size_t t = 0; t < tables.size(); ++t) {
    const BenchTableResult& table = tables[t];
    ss << "    {\n";
    ss << "      \"title\": \"" << jsonEscape(table.config.title) << "\",\n";
    ss << "      \"platform\": \"" << jsonEscape(table.config.platform)
       << "\",\n";
    ss << "      \"nprocs\": " << table.config.nprocs << ",\n";
    ss << "      \"sorted_read\": "
       << (table.config.sortedRead ? "true" : "false") << ",\n";
    ss << "      \"cells\": [\n";
    for (size_t c = 0; c < table.cells.size(); ++c) {
      const CellResult& cell = table.cells[c];
      ss << "        {\n";
      ss << "          \"segments\": " << cell.segments << ",\n";
      ss << "          \"bytes\": " << cell.bytes << ",\n";
      ss << "          \"methods\": [\n";
      for (size_t m = 0; m < cell.metrics.size(); ++m) {
        appendMethod(ss, cell.metrics[m], "            ");
        ss << (m + 1 < cell.metrics.size() ? "," : "") << "\n";
      }
      ss << "          ]\n";
      ss << "        }" << (c + 1 < table.cells.size() ? "," : "") << "\n";
    }
    ss << "      ]\n";
    ss << "    }" << (t + 1 < tables.size() ? "," : "") << "\n";
  }
  ss << "  ]\n}\n";
  return ss.str();
}

void writeMetricsJson(const std::string& path,
                      const std::vector<BenchTableResult>& tables) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("cannot open metrics output file: " + path);
  }
  out << metricsReportJson(tables);
  if (!out) {
    throw IoError("failed writing metrics output file: " + path);
  }
}

}  // namespace pcxx::scf
