// Machine-readable phase-breakdown reports for the SCF benchmarks
// (the --metrics-json output; schema "pcxx-metrics-v1").
//
// The report decomposes each (cell, method) measurement into disjoint
// phases — insert/buffer fill, header, redistribution, pfs read, pfs
// write — plus an "other" remainder defined as total minus the sum, so
// per-node numbers always sum exactly to the per-node totals. See
// docs/OBSERVABILITY.md for the phase taxonomy and bench/compare_metrics.py
// for the before/after diff helper that consumes this format.
#pragma once

#include <string>
#include <vector>

#include "scf/harness.h"

namespace pcxx::scf {

/// Disjoint phase decomposition of a node (or merged) snapshot against a
/// total: the named phases never overlap by construction (the
/// instrumentation brackets contain no pfs calls inside ds.bufferFill /
/// ds.header / ds.redist), and `other` absorbs the remainder.
struct PhaseBreakdown {
  double insertBufferFill = 0.0;  ///< ds.buffer_fill_seconds
  double header = 0.0;            ///< ds.header_seconds
  double redistribution = 0.0;    ///< ds.redist_seconds
  double pfsRead = 0.0;           ///< pfs.read_seconds
  double pfsWrite = 0.0;          ///< pfs.write_seconds
  double other = 0.0;             ///< total - sum of the above

  double sum() const {
    return insertBufferFill + header + redistribution + pfsRead + pfsWrite +
           other;
  }
};

PhaseBreakdown phaseBreakdown(const obs::NodeSnapshot& s, double totalSeconds);

/// Render the full report for a set of bench tables run with
/// BenchConfig::collectMetrics.
std::string metricsReportJson(const std::vector<BenchTableResult>& tables);

void writeMetricsJson(const std::string& path,
                      const std::vector<BenchTableResult>& tables);

}  // namespace pcxx::scf
