#include "scf/physics.h"

#include <cmath>

namespace pcxx::scf {

NBodyStepper::Gathered NBodyStepper::gatherParticles(
    rt::Node& node, coll::Collection<Segment>& segments) {
  // Pack local particles (x, y, z, mass) and allgather.
  ByteBuffer local;
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      const double vals[4] = {seg.x[k], seg.y[k], seg.z[k], seg.mass[k]};
      const Byte* p = reinterpret_cast<const Byte*>(vals);
      local.insert(local.end(), p, p + sizeof(vals));
    }
  });
  const auto buffers = node.allgatherBytes(local);
  Gathered all;
  for (const ByteBuffer& buf : buffers) {
    const size_t n = buf.size() / (4 * sizeof(double));
    const double* vals = reinterpret_cast<const double*>(buf.data());
    for (size_t i = 0; i < n; ++i) {
      all.x.push_back(vals[4 * i + 0]);
      all.y.push_back(vals[4 * i + 1]);
      all.z.push_back(vals[4 * i + 2]);
      all.mass.push_back(vals[4 * i + 3]);
    }
  }
  return all;
}

void NBodyStepper::accumulateAccel(const Gathered& all, const Segment& seg,
                                   int k, double& ax, double& ay,
                                   double& az) const {
  const double eps2 = config_.softening * config_.softening;
  ax = ay = az = 0.0;
  for (size_t j = 0; j < all.x.size(); ++j) {
    const double dx = all.x[j] - seg.x[k];
    const double dy = all.y[j] - seg.y[k];
    const double dz = all.z[j] - seg.z[k];
    const double r2 = dx * dx + dy * dy + dz * dz + eps2;
    if (r2 <= eps2 * 1.0000001 && dx == 0 && dy == 0 && dz == 0) {
      continue;  // self-interaction
    }
    const double inv = 1.0 / (r2 * std::sqrt(r2));
    const double f = config_.gravity * all.mass[j] * inv;
    ax += f * dx;
    ay += f * dy;
    az += f * dz;
  }
}

void NBodyStepper::step(rt::Node& node, coll::Collection<Segment>& segments) {
  const double half = 0.5 * config_.dt;

  // Kick (half) using current positions.
  Gathered all = gatherParticles(node, segments);
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      double ax, ay, az;
      accumulateAccel(all, seg, k, ax, ay, az);
      seg.vx[k] += half * ax;
      seg.vy[k] += half * ay;
      seg.vz[k] += half * az;
    }
  });

  // Drift.
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      seg.x[k] += config_.dt * seg.vx[k];
      seg.y[k] += config_.dt * seg.vy[k];
      seg.z[k] += config_.dt * seg.vz[k];
    }
  });

  // Kick (half) using new positions.
  all = gatherParticles(node, segments);
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      double ax, ay, az;
      accumulateAccel(all, seg, k, ax, ay, az);
      seg.vx[k] += half * ax;
      seg.vy[k] += half * ay;
      seg.vz[k] += half * az;
    }
  });
}

double NBodyStepper::totalEnergy(rt::Node& node,
                                 coll::Collection<Segment>& segments) {
  const Gathered all = gatherParticles(node, segments);
  const double eps2 = config_.softening * config_.softening;

  double kinetic = 0.0;
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      kinetic += 0.5 * seg.mass[k] *
                 (seg.vx[k] * seg.vx[k] + seg.vy[k] * seg.vy[k] +
                  seg.vz[k] * seg.vz[k]);
    }
  });

  // Potential: each node sums pairs (local particle, all particles) with a
  // factor 1/2 for double counting.
  double potential = 0.0;
  segments.forEachLocal([&](Segment& seg, std::int64_t) {
    for (int k = 0; k < seg.numberOfParticles; ++k) {
      for (size_t j = 0; j < all.x.size(); ++j) {
        const double dx = all.x[j] - seg.x[k];
        const double dy = all.y[j] - seg.y[k];
        const double dz = all.z[j] - seg.z[k];
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 == 0.0) continue;
        potential -= 0.5 * config_.gravity * seg.mass[k] * all.mass[j] /
                     std::sqrt(r2 + eps2);
      }
    }
  });

  return node.allreduceSum(kinetic + potential);
}

}  // namespace pcxx::scf
