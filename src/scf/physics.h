// A small N-body stepper over Collection<Segment>, used by the examples.
//
// The paper's SCF application is a Grand Challenge cosmology code
// (Hernquist & Ostriker's self-consistent field method); the benchmark only
// exercises its I/O skeleton. For the examples we implement a direct-sum
// leapfrog integrator with Plummer softening, which gives the checkpointing
// and visualization examples honest dynamics without reproducing the full
// SCF basis expansion (see DESIGN.md substitutions).
#pragma once

#include <cstdint>

#include "collection/collection.h"
#include "scf/segment.h"

namespace pcxx::scf {

struct StepperConfig {
  double dt = 1e-3;
  double softening = 0.05;
  double gravity = 1.0;
};

class NBodyStepper {
 public:
  explicit NBodyStepper(StepperConfig config) : config_(config) {}

  /// One leapfrog (kick-drift-kick) step. Collective: positions and masses
  /// are allgathered for the direct force sum.
  void step(rt::Node& node, coll::Collection<Segment>& segments);

  /// Total energy (kinetic + potential) of the system; collective.
  double totalEnergy(rt::Node& node, coll::Collection<Segment>& segments);

 private:
  struct Gathered {
    std::vector<double> x, y, z, mass;
  };
  Gathered gatherParticles(rt::Node& node,
                           coll::Collection<Segment>& segments);
  void accumulateAccel(const Gathered& all, const Segment& seg, int k,
                       double& ax, double& ay, double& az) const;

  StepperConfig config_;
};

}  // namespace pcxx::scf
