// The SCF benchmark data structure (paper §4.3).
//
// "SCF is an N-body code in which the primary data structure is a one
// dimensional collection of Segments where each segment stores data
// corresponding to several particles. Per-particle information includes
// the x, y, and z coordinates of the particles, their x, y, and z
// velocities, and their masses."
//
// A segment with n particles holds 4 + 7*8*n bytes of payload: 100
// particles/segment gives the paper's 5.6 KB per segment (1000 segments =
// 5.6 MB).
#pragma once

#include <cstdint>

#include "dstream/element_io.h"

namespace pcxx::scf {

struct Segment {
  int numberOfParticles = 0;
  double* x = nullptr;
  double* y = nullptr;
  double* z = nullptr;
  double* vx = nullptr;
  double* vy = nullptr;
  double* vz = nullptr;
  double* mass = nullptr;

  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment() { release(); }

  /// Allocate per-particle arrays for `n` particles (freeing any previous).
  void allocate(int n) {
    release();
    numberOfParticles = n;
    if (n > 0) {
      x = new double[static_cast<size_t>(n)];
      y = new double[static_cast<size_t>(n)];
      z = new double[static_cast<size_t>(n)];
      vx = new double[static_cast<size_t>(n)];
      vy = new double[static_cast<size_t>(n)];
      vz = new double[static_cast<size_t>(n)];
      mass = new double[static_cast<size_t>(n)];
    }
  }

  void release() {
    delete[] x;
    delete[] y;
    delete[] z;
    delete[] vx;
    delete[] vy;
    delete[] vz;
    delete[] mass;
    x = y = z = vx = vy = vz = mass = nullptr;
    numberOfParticles = 0;
  }

  /// Payload bytes this segment contributes to a d/stream record.
  std::uint64_t payloadBytes() const {
    return sizeof(int) +
           7ull * 8ull * static_cast<std::uint64_t>(numberOfParticles);
  }
};

// d/stream insertion/extraction for Segment (paper §4.1 style; also what
// the stream-gen tool generates for this type).
declareStreamInserter(Segment& seg) {
  s << seg.numberOfParticles;
  s << ds::array(seg.x, seg.numberOfParticles);
  s << ds::array(seg.y, seg.numberOfParticles);
  s << ds::array(seg.z, seg.numberOfParticles);
  s << ds::array(seg.vx, seg.numberOfParticles);
  s << ds::array(seg.vy, seg.numberOfParticles);
  s << ds::array(seg.vz, seg.numberOfParticles);
  s << ds::array(seg.mass, seg.numberOfParticles);
}

declareStreamExtractor(Segment& seg) {
  int n = 0;
  s >> n;
  if (n != seg.numberOfParticles) seg.allocate(n);
  s >> ds::array(seg.x, seg.numberOfParticles);
  s >> ds::array(seg.y, seg.numberOfParticles);
  s >> ds::array(seg.z, seg.numberOfParticles);
  s >> ds::array(seg.vx, seg.numberOfParticles);
  s >> ds::array(seg.vy, seg.numberOfParticles);
  s >> ds::array(seg.vz, seg.numberOfParticles);
  s >> ds::array(seg.mass, seg.numberOfParticles);
}

}  // namespace pcxx::scf
