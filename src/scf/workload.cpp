#include "scf/workload.h"

#include <cmath>

#include "util/rng.h"

namespace pcxx::scf {

void fillPlummer(coll::Collection<Segment>& segments, int particlesPerSegment,
                 std::uint64_t seed) {
  segments.forEachLocal([&](Segment& seg, std::int64_t g) {
    seg.allocate(particlesPerSegment);
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(g + 1)));
    for (int k = 0; k < particlesPerSegment; ++k) {
      // Plummer sphere radius sampling: r = a / sqrt(u^(-2/3) - 1).
      const double u = std::max(rng.uniform01(), 1e-12);
      const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
      const double theta = std::acos(2.0 * rng.uniform01() - 1.0);
      const double phi = 2.0 * M_PI * rng.uniform01();
      seg.x[k] = r * std::sin(theta) * std::cos(phi);
      seg.y[k] = r * std::sin(theta) * std::sin(phi);
      seg.z[k] = r * std::cos(theta);
      // Modest isotropic velocities.
      seg.vx[k] = rng.uniform(-0.1, 0.1);
      seg.vy[k] = rng.uniform(-0.1, 0.1);
      seg.vz[k] = rng.uniform(-0.1, 0.1);
      seg.mass[k] = 1.0 / static_cast<double>(particlesPerSegment);
    }
  });
}

double deterministicValue(std::int64_t g, int k, int f) {
  return static_cast<double>(g) * 1000.0 + static_cast<double>(k) * 10.0 +
         static_cast<double>(f);
}

void fillDeterministic(coll::Collection<Segment>& segments,
                       int particlesPerSegment) {
  segments.forEachLocal([&](Segment& seg, std::int64_t g) {
    seg.allocate(particlesPerSegment);
    double* fields[7] = {seg.x, seg.y, seg.z, seg.vx, seg.vy, seg.vz,
                         seg.mass};
    for (int k = 0; k < particlesPerSegment; ++k) {
      for (int f = 0; f < 7; ++f) {
        fields[f][k] = deterministicValue(g, k, f);
      }
    }
  });
}

std::int64_t verifyDeterministic(const coll::Collection<Segment>& segments,
                                 int particlesPerSegment) {
  std::int64_t mismatches = 0;
  segments.forEachLocal([&](const Segment& seg, std::int64_t g) {
    if (seg.numberOfParticles != particlesPerSegment) {
      ++mismatches;
      return;
    }
    const double* fields[7] = {seg.x, seg.y, seg.z, seg.vx,
                               seg.vy, seg.vz, seg.mass};
    for (int k = 0; k < particlesPerSegment; ++k) {
      for (int f = 0; f < 7; ++f) {
        if (fields[f][k] != deterministicValue(g, k, f)) ++mismatches;
      }
    }
  });
  return mismatches;
}

}  // namespace pcxx::scf
