// Workload generation for the SCF benchmark and examples.
#pragma once

#include <cstdint>

#include "collection/collection.h"
#include "scf/segment.h"

namespace pcxx::scf {

/// Fill every local segment with `particlesPerSegment` particles drawn from
/// a Plummer-like sphere (deterministic per global segment index, so any
/// node count generates the same global data set).
void fillPlummer(coll::Collection<Segment>& segments, int particlesPerSegment,
                 std::uint64_t seed);

/// Deterministic synthetic fill used by tests: every value is a function of
/// (global segment index, particle index, field), so readers can verify
/// content without communicating.
void fillDeterministic(coll::Collection<Segment>& segments,
                       int particlesPerSegment);

/// Verify a deterministically filled collection; returns the number of
/// mismatching values on this node.
std::int64_t verifyDeterministic(const coll::Collection<Segment>& segments,
                                 int particlesPerSegment);

/// Expected value for field `f` (0..6 = x,y,z,vx,vy,vz,mass) of particle
/// `k` in global segment `g` under the deterministic fill.
double deterministicValue(std::int64_t g, int k, int f);

}  // namespace pcxx::scf
