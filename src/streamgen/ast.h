// AST for the stream-gen C++ subset: struct/class definitions with data
// members, enough to generate d/stream insertion and extraction functions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcxx::sg {

/// How a field will be streamed by the generated code.
enum class FieldCategory {
  Scalar,          ///< arithmetic / enum / user struct streamed by value
  FixedArray,      ///< T name[N] of scalars
  SizedPointer,    ///< T* with a pcxx:size(expr) annotation
  RecursivePointer,///< pointer to the enclosing struct type (linked node)
  Vector,          ///< std::vector<T> (self-describing)
  String,          ///< std::string (self-describing)
  Skipped,         ///< pcxx:skip annotation — not streamed
  UnknownPointer,  ///< pointer without annotation — generates a TODO comment
};

struct Field {
  std::string typeName;   ///< base type without pointers ("double", "Pos")
  int pointerDepth = 0;
  std::string name;
  std::vector<std::string> arrayDims;  ///< fixed dimensions, textual
  std::string sizeExpr;   ///< from pcxx:size(...), empty otherwise
  FieldCategory category = FieldCategory::Scalar;
  int line = 0;
  int col = 0;  ///< column of the field's name
};

struct StructDef {
  std::string name;            ///< unqualified name
  std::string qualifiedName;   ///< with enclosing namespaces
  std::vector<Field> fields;
  int line = 0;
  int col = 0;  ///< column of the `struct` / `class` keyword
};

struct ParsedUnit {
  std::string file;  ///< source name for diagnostics (may be empty)
  std::vector<StructDef> structs;
};

}  // namespace pcxx::sg
