#include "streamgen/codegen.h"

#include <sstream>

namespace pcxx::sg {
namespace {

/// Emit the per-field streaming statement(s). `extract` selects direction.
void emitField(std::ostringstream& os, const StructDef& def, const Field& f,
               bool extract) {
  const char* op = extract ? ">>" : "<<";
  const std::string v = "v." + f.name;
  switch (f.category) {
    case FieldCategory::Scalar:
      os << "  s " << op << " " << v << ";\n";
      break;
    case FieldCategory::FixedArray: {
      // Nested loops over every fixed dimension.
      std::string indexing;
      std::string indent = "  ";
      for (size_t d = 0; d < f.arrayDims.size(); ++d) {
        const char idx = static_cast<char>('i' + d);
        os << indent << "for (std::size_t " << idx << " = 0; " << idx
           << " < " << f.arrayDims[d] << "; ++" << idx << ") {\n";
        indexing += std::string("[") + idx + "]";
        indent += "  ";
      }
      os << indent << "s " << op << " " << v << indexing << ";\n";
      for (size_t d = f.arrayDims.size(); d > 0; --d) {
        indent.resize(indent.size() - 2);
        os << indent << "}\n";
      }
      break;
    }
    case FieldCategory::SizedPointer:
      os << "  s " << op << " pcxx::ds::array(" << v << ", v." << f.sizeExpr
         << ");\n";
      break;
    case FieldCategory::RecursivePointer:
      if (!extract) {
        os << "  s << static_cast<std::uint8_t>(" << v
           << " != nullptr);\n"
           << "  if (" << v << " != nullptr) {\n"
           << "    s << *" << v << ";\n"
           << "  }\n";
      } else {
        os << "  {\n"
           << "    std::uint8_t has_" << f.name << " = 0;\n"
           << "    s >> has_" << f.name << ";\n"
           << "    if (has_" << f.name << " != 0) {\n"
           << "      if (" << v << " == nullptr) " << v << " = new "
           << def.name << "();\n"
           << "      s >> *" << v << ";\n"
           << "    }\n"
           << "  }\n";
      }
      break;
    case FieldCategory::Vector:
    case FieldCategory::String:
      os << "  s " << op << " " << v << ";\n";
      break;
    case FieldCategory::Skipped:
      os << "  // field '" << f.name << "' skipped (pcxx:skip or const)\n";
      break;
    case FieldCategory::UnknownPointer:
      // The paper: "In inserters and extractors for dynamic types
      // containing pointers stream-gen generates comment statements
      // allowing the programmer to specify exactly how the pointers should
      // be handled."
      os << "  // TODO(stream-gen): pointer field '" << f.name << "' ("
         << f.typeName << std::string(static_cast<size_t>(f.pointerDepth),
                                      '*')
         << ") has no pcxx:size(...) annotation.\n"
         << "  // Specify how this pointer should be handled, e.g.:\n"
         << "  //   s " << op << " pcxx::ds::array(v." << f.name
         << ", <element count>);\n";
      break;
  }
}

/// Types the runtime streams as raw fixed-size bytes (the
/// detail::kStreamableScalar set): for these, sizeof() is the encoded size.
bool isScalarTypeName(const std::string& t) {
  static const char* const kNames[] = {
      "bool",          "char",          "signed char",  "unsigned char",
      "short",         "unsigned short", "int",          "unsigned",
      "unsigned int",  "long",          "unsigned long", "long long",
      "unsigned long long",             "float",        "double",
      "int8_t",        "int16_t",       "int32_t",      "int64_t",
      "uint8_t",       "uint16_t",      "uint32_t",     "uint64_t",
      "std::int8_t",   "std::int16_t",  "std::int32_t", "std::int64_t",
      "std::uint8_t",  "std::uint16_t", "std::uint32_t", "std::uint64_t",
      "std::size_t",   "size_t"};
  for (const char* n : kNames) {
    if (t == n) return true;
  }
  return false;
}

}  // namespace

std::string generateFixedBytesConstant(const StructDef& def) {
  // The interleave format stores an element's fixed-size fields
  // contiguously, so a type whose streamed fields are all fixed-size can be
  // read back per field with IStream::project() strided reads. The constant
  // documents that eligibility: the encoded bytes per element, or 0 when a
  // dynamic field (sized pointer, vector, string, recursion) makes the
  // element size data-dependent.
  bool variable = false;
  std::vector<std::string> terms;
  for (const Field& f : def.fields) {
    switch (f.category) {
      case FieldCategory::Skipped:
        break;
      case FieldCategory::Scalar:
        if (isScalarTypeName(f.typeName)) {
          terms.push_back("sizeof(" + f.typeName + ")");
        } else {
          variable = true;  // nested type: encoded size unknown here
        }
        break;
      case FieldCategory::FixedArray:
        if (isScalarTypeName(f.typeName)) {
          std::string term = "sizeof(" + f.typeName + ")";
          for (const std::string& dim : f.arrayDims) {
            term += " * " + dim;
          }
          terms.push_back(term);
        } else {
          variable = true;
        }
        break;
      default:
        variable = true;
        break;
    }
    if (variable) break;
  }
  std::ostringstream os;
  os << "/// Encoded bytes per " << def.name
     << " element; 0 = variable (dynamic fields).\n"
     << "/// Nonzero marks the type eligible for IStream::project() strided "
        "field reads.\n"
     << "inline constexpr std::uint64_t kStreamFixedBytes_" << def.name
     << " =\n    ";
  if (variable || terms.empty()) {
    os << "0";
  } else {
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i != 0) os << " + ";
      os << terms[i];
    }
  }
  os << ";\n";
  return os.str();
}

std::string generateInserter(const StructDef& def) {
  std::ostringstream os;
  os << "declareStreamInserter(" << def.name << "& v) {\n";
  for (const Field& f : def.fields) {
    emitField(os, def, f, /*extract=*/false);
  }
  os << "}\n";
  return os.str();
}

std::string generateExtractor(const StructDef& def) {
  std::ostringstream os;
  os << "declareStreamExtractor(" << def.name << "& v) {\n";
  bool needAllocationNote = false;
  for (const Field& f : def.fields) {
    if (f.category == FieldCategory::SizedPointer) needAllocationNote = true;
  }
  if (needAllocationNote) {
    os << "  // note: null pcxx::ds::array targets are allocated with "
          "new[]\n";
  }
  for (const Field& f : def.fields) {
    emitField(os, def, f, /*extract=*/true);
  }
  os << "}\n";
  return os.str();
}

std::string generate(const ParsedUnit& unit, const CodegenOptions& options) {
  std::ostringstream os;
  os << "// Generated by stream-gen; do not edit.\n"
     << "// Insertion/extraction functions for d/stream I/O (pC++/streams)."
     << "\n"
     << "#ifndef " << options.guardMacro << "\n"
     << "#define " << options.guardMacro << "\n\n"
     << "#include <cstdint>\n"
     << "#include \"dstream/element_io.h\"\n";
  if (!options.includeHeader.empty()) {
    os << "#include \"" << options.includeHeader << "\"\n";
  }
  os << "\n";
  for (const StructDef& def : unit.structs) {
    if (!def.qualifiedName.empty() && def.qualifiedName != def.name) {
      // Reopen the enclosing namespaces so ADL finds the functions.
      const std::string nsPath =
          def.qualifiedName.substr(0, def.qualifiedName.rfind("::"));
      os << "namespace " << nsPath << " {\n";
      os << generateInserter(def) << "\n" << generateExtractor(def) << "\n"
         << generateFixedBytesConstant(def);
      os << "}  // namespace " << nsPath << "\n\n";
    } else {
      os << generateInserter(def) << "\n" << generateExtractor(def) << "\n"
         << generateFixedBytesConstant(def) << "\n";
    }
  }
  os << "#endif  // " << options.guardMacro << "\n";
  return os.str();
}

}  // namespace pcxx::sg
