// Code generator: emits d/stream insertion and extraction functions for
// parsed struct definitions (the output of the stream-gen tool, §4.2).
#pragma once

#include <string>

#include "streamgen/ast.h"

namespace pcxx::sg {

struct CodegenOptions {
  /// Header to #include in the generated file (the analyzed header), empty
  /// to omit.
  std::string includeHeader;
  /// Include guard macro; derived from the output name when empty.
  std::string guardMacro = "PCXX_STREAMGEN_GENERATED_H";
};

/// Generate the full output file (inserters + extractors for every struct).
std::string generate(const ParsedUnit& unit, const CodegenOptions& options);

/// Generate only the insertion function for one struct (testing).
std::string generateInserter(const StructDef& def);

/// Generate only the extraction function for one struct (testing).
std::string generateExtractor(const StructDef& def);

/// Generate the kStreamFixedBytes_<Name> constant: encoded bytes per
/// element when every streamed field is fixed-size (eligible for
/// IStream::project()), 0 when any field is data-dependent.
std::string generateFixedBytesConstant(const StructDef& def);

}  // namespace pcxx::sg
