#include "streamgen/lexer.h"

#include <cctype>

#include "util/error.h"

namespace pcxx::sg {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

TokenStream lex(const std::string& src) {
  TokenStream out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto peek = [&](size_t ahead = 0) -> char {
    return i + ahead < n ? src[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line: skip to end of line (honoring backslash splices).
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment (possibly a pcxx annotation).
    if (c == '/' && peek(1) == '/') {
      size_t end = i + 2;
      while (end < n && src[end] != '\n') ++end;
      std::string body = src.substr(i + 2, end - i - 2);
      // Trim and detect "pcxx:".
      size_t b = body.find_first_not_of(" \t");
      if (b != std::string::npos && body.compare(b, 5, "pcxx:") == 0) {
        out.annotations.push_back(Annotation{line, body.substr(b + 5)});
      }
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      if (j + 1 >= n) {
        throw FormatError("stream-gen: unterminated block comment at line " +
                          std::to_string(line));
      }
      i = j + 2;
      continue;
    }
    // String or char literal: skip content.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j];
          text += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;
        text += src[j];
        ++j;
      }
      if (j >= n) {
        throw FormatError("stream-gen: unterminated literal at line " +
                          std::to_string(line));
      }
      out.tokens.push_back(Token{TokKind::String, text, line});
      i = j + 1;
      continue;
    }
    if (isIdentStart(c)) {
      size_t j = i;
      while (j < n && isIdentChar(src[j])) ++j;
      out.tokens.push_back(Token{TokKind::Identifier, src.substr(i, j - i),
                                 line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (isIdentChar(src[j]) || src[j] == '.')) ++j;
      out.tokens.push_back(Token{TokKind::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Two-character scope operator kept as one token.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back(Token{TokKind::Symbol, "::", line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::Symbol, std::string(1, c), line});
    ++i;
  }
  out.tokens.push_back(Token{TokKind::EndOfFile, "", line});
  return out;
}

}  // namespace pcxx::sg
