#include "streamgen/lexer.h"

#include <cctype>

#include "util/error.h"
#include "util/srcpos.h"

namespace pcxx::sg {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

TokenStream lex(const std::string& src, const std::string& file) {
  TokenStream out;
  out.file = file;
  size_t i = 0;
  int line = 1;
  size_t lineStart = 0;  // offset of the current line's first character
  const size_t n = src.size();

  auto peek = [&](size_t ahead = 0) -> char {
    return i + ahead < n ? src[i + ahead] : '\0';
  };
  auto colOf = [&](size_t offset) -> int {
    return static_cast<int>(offset - lineStart) + 1;
  };
  auto fail = [&](int atLine, int atCol, const std::string& msg) {
    throw FormatError(formatDiagnostic(file, atLine, atCol, "error", msg));
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      lineStart = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line: skip to end of line (honoring backslash splices).
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          lineStart = i;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment (possibly a pcxx annotation).
    if (c == '/' && peek(1) == '/') {
      const int col = colOf(i);
      size_t end = i + 2;
      while (end < n && src[end] != '\n') ++end;
      std::string body = src.substr(i + 2, end - i - 2);
      // Trim and detect "pcxx:".
      size_t b = body.find_first_not_of(" \t");
      if (b != std::string::npos && body.compare(b, 5, "pcxx:") == 0) {
        out.annotations.push_back(Annotation{line, col, body.substr(b + 5)});
      }
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int startLine = line;
      const int startCol = colOf(i);
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          ++line;
          lineStart = j + 1;
        }
        ++j;
      }
      if (j + 1 >= n) {
        fail(startLine, startCol, "unterminated block comment");
      }
      i = j + 2;
      continue;
    }
    // String or char literal: skip content.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int startLine = line;
      const int startCol = colOf(i);
      size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j];
          text += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') {
          ++line;
          lineStart = j + 1;
        }
        text += src[j];
        ++j;
      }
      if (j >= n) {
        fail(startLine, startCol, "unterminated literal");
      }
      out.tokens.push_back(Token{TokKind::String, text, startLine, startCol});
      i = j + 1;
      continue;
    }
    if (isIdentStart(c)) {
      const int col = colOf(i);
      size_t j = i;
      while (j < n && isIdentChar(src[j])) ++j;
      out.tokens.push_back(
          Token{TokKind::Identifier, src.substr(i, j - i), line, col});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int col = colOf(i);
      size_t j = i;
      while (j < n && (isIdentChar(src[j]) || src[j] == '.')) ++j;
      out.tokens.push_back(
          Token{TokKind::Number, src.substr(i, j - i), line, col});
      i = j;
      continue;
    }
    // Two-character scope operator kept as one token.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back(Token{TokKind::Symbol, "::", line, colOf(i)});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::Symbol, std::string(1, c), line,
                               colOf(i)});
    ++i;
  }
  out.tokens.push_back(Token{TokKind::EndOfFile, "", line, colOf(i)});
  return out;
}

}  // namespace pcxx::sg
