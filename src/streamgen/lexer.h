// Lexer for the stream-gen C++ subset.
//
// Tokenizes identifiers, numbers, strings, and punctuation; strips comments
// and preprocessor lines, but records `// pcxx:...` annotation comments
// (with their line numbers) so the parser can attach them to fields.
#pragma once

#include <string>

#include "streamgen/token.h"

namespace pcxx::sg {

/// Tokenize `source`. Throws FormatError on unterminated strings/comments;
/// error messages carry GCC-style `file:line:col:` positions (`file` names
/// the source in diagnostics and may be empty).
TokenStream lex(const std::string& source, const std::string& file = "");

}  // namespace pcxx::sg
