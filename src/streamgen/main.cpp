// stream-gen: analyzes C++ headers and generates d/stream insertion and
// extraction functions for the programmer-defined types they declare
// (paper §4.2; the original was built on the Sage++ toolkit).
//
// Usage:
//   streamgen particle.h -o particle_streams.h
//
// Pointer fields need a size annotation in the source:
//   double* mass;  // pcxx:size(numberOfParticles)
// Unannotated pointers produce TODO comments in the generated code for the
// programmer to resolve; `// pcxx:skip` excludes a field entirely.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "streamgen/codegen.h"
#include "streamgen/parser.h"
#include "util/error.h"
#include "util/options.h"
#include "util/srcpos.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw pcxx::IoError("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string guardFromName(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return "PCXX_STREAMGEN_" + name;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    pcxx::Options opts("streamgen",
                       "generate d/stream inserters/extractors for the "
                       "struct definitions in a C++ header");
    opts.add("o", "-", "output file ('-' for stdout)");
    opts.add("include", "",
             "header to #include in the generated file (defaults to the "
             "input path)");
    opts.addFlag("list", "only list the types and fields found");
    if (!opts.parse(argc, argv)) return 0;

    if (opts.positional().size() != 1) {
      std::fputs(opts.usage().c_str(), stderr);
      std::fputs("error: exactly one input header required\n", stderr);
      return 2;
    }
    const std::string inputPath = opts.positional()[0];
    const pcxx::sg::ParsedUnit unit =
        pcxx::sg::parseSource(readFile(inputPath), inputPath);

    // Promote the generated TODO comment into a real, positioned warning:
    // an unannotated pointer produces code the programmer must finish.
    for (const auto& def : unit.structs) {
      for (const auto& f : def.fields) {
        if (f.category == pcxx::sg::FieldCategory::UnknownPointer) {
          std::fprintf(stderr, "%s\n",
                       pcxx::formatDiagnostic(
                           inputPath, f.line, f.col, "warning",
                           "pointer field '" + f.name + "' of '" +
                               def.qualifiedName +
                               "' has no pcxx:size(...) annotation; the "
                               "generated inserter/extractor contains a TODO "
                               "[-Wstreamgen-pointer]")
                           .c_str());
        }
      }
    }

    if (unit.structs.empty()) {
      std::fprintf(stderr, "streamgen: no struct/class definitions in %s\n",
                   inputPath.c_str());
      return 1;
    }

    if (opts.getFlag("list")) {
      for (const auto& def : unit.structs) {
        std::printf("%s (%zu fields)\n", def.qualifiedName.c_str(),
                    def.fields.size());
        for (const auto& f : def.fields) {
          std::printf("  %s %s%s\n", f.typeName.c_str(),
                      std::string(static_cast<size_t>(f.pointerDepth), '*')
                          .c_str(),
                      f.name.c_str());
        }
      }
      return 0;
    }

    pcxx::sg::CodegenOptions cg;
    cg.includeHeader =
        opts.get("include").empty() ? inputPath : opts.get("include");
    const std::string outPath = opts.get("o");
    cg.guardMacro = guardFromName(outPath == "-" ? inputPath : outPath);
    const std::string code = pcxx::sg::generate(unit, cg);

    if (outPath == "-") {
      std::fputs(code.c_str(), stdout);
    } else {
      std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw pcxx::IoError("cannot open '" + outPath + "' for writing");
      }
      out << code;
    }
    return 0;
  } catch (const pcxx::FormatError& e) {
    // Parse errors carry a file:line:col: prefix; print GCC-style (drop the
    // exception hierarchy's "format error: " tag so the path leads).
    std::string w = e.what();
    const std::string tag = "format error: ";
    if (w.rfind(tag, 0) == 0) w.erase(0, tag.size());
    std::fprintf(stderr, "%s\n", w.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "streamgen: %s\n", e.what());
    return 1;
  }
}
