#include "streamgen/parser.h"

#include <algorithm>

#include "streamgen/lexer.h"
#include "util/error.h"
#include "util/srcpos.h"

namespace pcxx::sg {
namespace {

class Parser {
 public:
  explicit Parser(const TokenStream& stream)
      : file_(stream.file),
        tokens_(stream.tokens),
        annotations_(stream.annotations) {}

  ParsedUnit run() {
    unit_.file = file_;
    std::vector<std::string> ns;
    parseScope(ns, /*topLevel=*/true);
    attachAnnotations();
    classify();
    return std::move(unit_);
  }

 private:
  // -- token helpers ---------------------------------------------------------

  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool atEof() const { return cur().is(TokKind::EndOfFile); }

  [[noreturn]] void fail(const Token& at, const std::string& msg) const {
    throw FormatError(formatDiagnostic(file_, at.line, at.col, "error", msg));
  }

  void expectSymbol(const std::string& sym) {
    if (!cur().isSymbol(sym)) {
      fail(cur(), "expected '" + sym + "' before '" + cur().text + "'");
    }
    advance();
  }

  /// Skip a balanced pair starting at the current `open` symbol.
  void skipBalanced(const std::string& open, const std::string& close) {
    expectSymbol(open);
    int depth = 1;
    while (depth > 0 && !atEof()) {
      if (cur().isSymbol(open)) ++depth;
      if (cur().isSymbol(close)) --depth;
      advance();
    }
  }

  /// Skip to just past the next ';' at the current brace depth, skipping
  /// balanced braces/parens/brackets on the way.
  void skipStatement() {
    while (!atEof()) {
      if (cur().isSymbol(";")) {
        advance();
        return;
      }
      if (cur().isSymbol("{")) {
        skipBalanced("{", "}");
        // A function body may end without ';'.
        if (cur().isSymbol(";")) advance();
        return;
      }
      if (cur().isSymbol("(")) {
        skipBalanced("(", ")");
        continue;
      }
      if (cur().isSymbol("[")) {
        skipBalanced("[", "]");
        continue;
      }
      advance();
    }
  }

  // -- scopes ----------------------------------------------------------------

  /// Parse declarations until the matching '}' (or EOF for the top level).
  void parseScope(std::vector<std::string>& ns, bool topLevel) {
    while (!atEof()) {
      if (cur().isSymbol("}")) {
        if (topLevel) {
          fail(cur(), "unmatched '}'");
        }
        advance();
        return;
      }
      if (cur().isIdent("namespace")) {
        advance();
        std::string name;
        while (cur().is(TokKind::Identifier) || cur().isSymbol("::")) {
          name += cur().text;
          advance();
        }
        if (cur().isSymbol("{")) {
          advance();
          ns.push_back(name);
          parseScope(ns, /*topLevel=*/false);
          ns.pop_back();
        } else {
          skipStatement();  // namespace alias
        }
        continue;
      }
      if (cur().isIdent("template")) {
        advance();
        if (cur().isSymbol("<")) skipAngles();
        skipStatement();  // skip the templated entity entirely
        continue;
      }
      if (cur().isIdent("struct") || cur().isIdent("class")) {
        parseStructOrSkip(ns);
        continue;
      }
      if (cur().isIdent("enum")) {
        skipStatement();
        continue;
      }
      skipStatement();
    }
  }

  /// Skip a balanced template argument list starting at '<'.
  void skipAngles() {
    expectSymbol("<");
    int depth = 1;
    while (depth > 0 && !atEof()) {
      if (cur().isSymbol("<")) ++depth;
      if (cur().isSymbol(">")) --depth;
      advance();
    }
  }

  void parseStructOrSkip(const std::vector<std::string>& ns) {
    const int structLine = cur().line;
    const int structCol = cur().col;
    advance();  // struct / class
    if (!cur().is(TokKind::Identifier)) {
      // Anonymous struct; skip.
      skipStatement();
      return;
    }
    const std::string name = cur().text;
    advance();
    // Base clause or body or forward declaration.
    while (!cur().isSymbol("{") && !cur().isSymbol(";") && !atEof()) {
      advance();  // ": public Base", "final", ...
    }
    if (cur().isSymbol(";")) {
      advance();  // forward declaration
      return;
    }
    expectSymbol("{");

    StructDef def;
    def.name = name;
    def.line = structLine;
    def.col = structCol;
    def.qualifiedName.clear();
    for (const auto& part : ns) {
      def.qualifiedName += part + "::";
    }
    def.qualifiedName += name;

    parseStructBody(def, ns);
    // Optional trailing declarator list ("} x;") — skip to ';'.
    while (!cur().isSymbol(";") && !atEof()) advance();
    if (cur().isSymbol(";")) advance();
    unit_.structs.push_back(std::move(def));
  }

  void parseStructBody(StructDef& def, const std::vector<std::string>& ns) {
    while (!atEof() && !cur().isSymbol("}")) {
      // Access specifiers.
      if ((cur().isIdent("public") || cur().isIdent("private") ||
           cur().isIdent("protected")) &&
          peek().isSymbol(":")) {
        advance();
        advance();
        continue;
      }
      if (cur().isIdent("using") || cur().isIdent("typedef") ||
          cur().isIdent("static") || cur().isIdent("friend") ||
          cur().isIdent("template") || cur().isIdent("enum")) {
        if (cur().isIdent("template")) {
          advance();
          if (cur().isSymbol("<")) skipAngles();
        }
        skipStatement();
        continue;
      }
      // Nested struct/class definition.
      if ((cur().isIdent("struct") || cur().isIdent("class")) &&
          peek().is(TokKind::Identifier) &&
          (peek(2).isSymbol("{") || peek(2).isSymbol(":"))) {
        auto nested = ns;
        nested.push_back(def.name);
        parseStructOrSkip(nested);
        continue;
      }
      // Destructor / constructor / operator: starts with ~ or the struct's
      // own name followed by '(' — or returns nothing we can parse.
      if (cur().isSymbol("~") ||
          (cur().isIdent(def.name) && peek().isSymbol("("))) {
        skipStatement();
        continue;
      }
      if (!tryParseField(def)) {
        skipStatement();
      }
    }
    if (cur().isSymbol("}")) advance();
  }

  // -- fields ----------------------------------------------------------------

  /// Attempt to parse one data-member declaration (possibly with several
  /// declarators). Returns false (position restored) if it is not a field.
  bool tryParseField(StructDef& def) {
    const size_t save = pos_;

    bool sawConst = false;
    while (cur().isIdent("const") || cur().isIdent("mutable") ||
           cur().isIdent("volatile")) {
      sawConst = sawConst || cur().isIdent("const");
      advance();
    }

    // Type name: identifiers joined by '::', plus known multi-keyword
    // builtins ("unsigned int", "long long", ...).
    std::string typeName;
    if (!cur().is(TokKind::Identifier)) {
      pos_ = save;
      return false;
    }
    static const char* kBuiltinWords[] = {"unsigned", "signed", "long",
                                          "short", "int", "char", "double",
                                          "float", "bool"};
    auto isBuiltinWord = [&](const Token& t) {
      if (!t.is(TokKind::Identifier)) return false;
      for (const char* w : kBuiltinWords) {
        if (t.text == w) return true;
      }
      return false;
    };
    if (isBuiltinWord(cur())) {
      while (isBuiltinWord(cur())) {
        if (!typeName.empty()) typeName += " ";
        typeName += cur().text;
        advance();
      }
    } else {
      typeName = cur().text;
      advance();
      while (cur().isSymbol("::") && peek().is(TokKind::Identifier)) {
        typeName += "::";
        advance();
        typeName += cur().text;
        advance();
      }
      // Template arguments (std::vector<double>, ...).
      if (cur().isSymbol("<")) {
        const size_t argsStart = pos_;
        skipAngles();
        typeName += renderTokens(argsStart, pos_);
      }
    }

    // One or more declarators.
    bool any = false;
    for (;;) {
      int pointerDepth = 0;
      while (cur().isSymbol("*") || cur().isSymbol("&") ||
             cur().isIdent("const")) {
        if (cur().isSymbol("*")) ++pointerDepth;
        if (cur().isSymbol("&")) {
          pos_ = save;
          return false;  // reference members are not streamable fields
        }
        advance();
      }
      if (!cur().is(TokKind::Identifier)) {
        pos_ = save;
        return false;
      }
      Field field;
      field.typeName = typeName;
      field.pointerDepth = pointerDepth;
      field.name = cur().text;
      field.line = cur().line;
      field.col = cur().col;
      advance();

      if (cur().isSymbol("(")) {
        pos_ = save;
        return false;  // a method, not a field
      }
      while (cur().isSymbol("[")) {
        const size_t dimStart = pos_ + 1;
        skipBalanced("[", "]");
        field.arrayDims.push_back(renderTokens(dimStart, pos_ - 1));
      }
      // Default member initializer.
      if (cur().isSymbol("=")) {
        while (!cur().isSymbol(",") && !cur().isSymbol(";") && !atEof()) {
          if (cur().isSymbol("{")) {
            skipBalanced("{", "}");
            continue;
          }
          advance();
        }
      } else if (cur().isSymbol("{")) {
        skipBalanced("{", "}");
      }

      if (sawConst) {
        field.category = FieldCategory::Skipped;
      }
      def.fields.push_back(std::move(field));
      any = true;

      if (cur().isSymbol(",")) {
        advance();
        continue;
      }
      break;
    }
    if (!cur().isSymbol(";")) {
      pos_ = save;
      return false;
    }
    advance();
    return any;
  }

  /// Attach annotations to fields: a trailing comment on the field's own
  /// line wins; an annotation on the line directly above applies only when
  /// it was not a trailing comment of some other field.
  void attachAnnotations() {
    std::vector<bool> used(annotations_.size(), false);
    auto fields = [&](auto&& fn) {
      for (StructDef& def : unit_.structs) {
        for (Field& f : def.fields) fn(f);
      }
    };
    fields([&](Field& f) {
      for (size_t i = 0; i < annotations_.size(); ++i) {
        if (annotations_[i].line == f.line) {
          applyAnnotation(f, annotations_[i]);
          used[i] = true;
        }
      }
    });
    fields([&](Field& f) {
      for (size_t i = 0; i < annotations_.size(); ++i) {
        if (!used[i] && annotations_[i].line == f.line - 1) {
          applyAnnotation(f, annotations_[i]);
          used[i] = true;
        }
      }
    });
  }

  void applyAnnotation(Field& field, const Annotation& ann) const {
    if (ann.body.rfind("skip", 0) == 0) {
      field.category = FieldCategory::Skipped;
      return;
    }
    if (ann.body.rfind("size(", 0) == 0) {
      const size_t close = ann.body.rfind(')');
      if (close == std::string::npos || close < 5) {
        throw FormatError(formatDiagnostic(
            file_, ann.line, ann.col, "error",
            "malformed pcxx:size annotation '" + ann.body + "'"));
      }
      field.sizeExpr = ann.body.substr(5, close - 5);
    }
  }

  /// Reconstruct source text for tokens [from, to).
  std::string renderTokens(size_t from, size_t to) const {
    std::string out;
    for (size_t i = from; i < to; ++i) {
      const Token& t = tokens_[i];
      if (!out.empty() && t.is(TokKind::Identifier) &&
          !tokens_[i - 1].isSymbol("::") && !tokens_[i - 1].isSymbol("<")) {
        out += " ";
      }
      out += t.text;
    }
    // The caller includes the '<'...'>' when slicing from the symbol; keep
    // as-is otherwise.
    return out;
  }

  // -- classification --------------------------------------------------------

  void classify() {
    for (StructDef& def : unit_.structs) {
      for (Field& f : def.fields) {
        if (f.category == FieldCategory::Skipped) continue;
        if (f.pointerDepth > 1) {
          f.category = FieldCategory::UnknownPointer;
          continue;
        }
        if (f.pointerDepth == 1) {
          if (!f.sizeExpr.empty()) {
            f.category = FieldCategory::SizedPointer;
          } else if (f.typeName == def.name ||
                     f.typeName == def.qualifiedName) {
            f.category = FieldCategory::RecursivePointer;
          } else {
            f.category = FieldCategory::UnknownPointer;
          }
          continue;
        }
        if (!f.arrayDims.empty()) {
          f.category = FieldCategory::FixedArray;
          continue;
        }
        if (f.typeName.rfind("std::vector<", 0) == 0 ||
            f.typeName.rfind("vector<", 0) == 0) {
          f.category = FieldCategory::Vector;
          continue;
        }
        if (f.typeName == "std::string" || f.typeName == "string") {
          f.category = FieldCategory::String;
          continue;
        }
        f.category = FieldCategory::Scalar;
      }
    }
  }

  const std::string file_;
  const std::vector<Token>& tokens_;
  const std::vector<Annotation>& annotations_;
  size_t pos_ = 0;
  ParsedUnit unit_;
};

}  // namespace

ParsedUnit parse(const TokenStream& stream) { return Parser(stream).run(); }

ParsedUnit parseSource(const std::string& source, const std::string& file) {
  return parse(lex(source, file));
}

}  // namespace pcxx::sg
