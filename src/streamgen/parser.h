// Parser for the stream-gen C++ subset.
//
// Recognizes struct/class definitions (top level and inside namespaces) and
// their data members:
//
//   * scalar fields:              int n;  double mass;  Position p;
//   * fixed arrays:               double m[3];  int grid[4][4];
//   * annotated dynamic arrays:   double* mass;     // pcxx:size(n)
//   * recursive pointers:         Node* next;       (pointer to own type)
//   * std::vector<T>, std::string (self-describing containers)
//   * skipped fields:             void* handle;     // pcxx:skip
//
// Member functions, constructors, access specifiers, static members, and
// type aliases are recognized and ignored. Pointers with no annotation are
// kept and marked UnknownPointer so the generator can emit the paper's
// "comment statements allowing the programmer to specify exactly how the
// pointers should be handled".
#pragma once

#include <string>

#include "streamgen/ast.h"
#include "streamgen/token.h"

namespace pcxx::sg {

/// Parse a token stream (with its annotations). Throws FormatError on
/// constructs the subset cannot skip safely; error messages carry GCC-style
/// `file:line:col:` positions taken from the token stream.
ParsedUnit parse(const TokenStream& stream);

/// Convenience: lex + parse a source string. `file` names the source in
/// diagnostics (may be empty).
ParsedUnit parseSource(const std::string& source, const std::string& file = "");

}  // namespace pcxx::sg
