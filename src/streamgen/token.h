// Token stream for the stream-gen C++ subset parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcxx::sg {

enum class TokKind {
  Identifier,  // foo, std, vector
  Number,      // 123
  Symbol,      // { } ( ) ; : , * & < > [ ] = ::
  String,      // "..."
  EndOfFile,
};

struct Token {
  TokKind kind = TokKind::EndOfFile;
  std::string text;
  int line = 0;
  int col = 0;  ///< 1-based column of the token's first character

  bool is(TokKind k) const { return kind == k; }
  bool isSymbol(const std::string& s) const {
    return kind == TokKind::Symbol && text == s;
  }
  bool isIdent(const std::string& s) const {
    return kind == TokKind::Identifier && text == s;
  }
};

/// A `// pcxx:...` annotation comment found in the source.
struct Annotation {
  int line = 0;
  int col = 0;       ///< column of the "//" that starts the comment
  std::string body;  ///< text after "pcxx:", e.g. "size(numberOfParticles)"
};

struct TokenStream {
  std::string file;  ///< source name for diagnostics (may be empty)
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
};

}  // namespace pcxx::sg
