// Byte-level serialization helpers.
//
// All pcxx on-disk formats are little-endian with explicit widths; these
// codecs are the single place where host values are converted to file bytes.
// ByteWriter appends to a growable buffer; ByteReader consumes a span and
// throws FormatError on underrun so truncated files surface as typed errors.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace pcxx {

using Byte = std::uint8_t;
using ByteBuffer = std::vector<Byte>;

/// Encode an unsigned 64-bit value little-endian into `out[0..8)`.
inline void encodeU64(std::uint64_t v, Byte* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<Byte>(v >> (8 * i));
  }
}

/// Decode a little-endian unsigned 64-bit value from `in[0..8)`.
inline std::uint64_t decodeU64(const Byte* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

/// Encode an unsigned 32-bit value little-endian into `out[0..4)`.
inline void encodeU32(std::uint32_t v, Byte* out) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<Byte>(v >> (8 * i));
  }
}

/// Decode a little-endian unsigned 32-bit value from `in[0..4)`.
inline std::uint32_t decodeU32(const Byte* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

/// Appends encoded values to a ByteBuffer.
class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer& buf) : buf_(buf) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    Byte tmp[4];
    encodeU32(v, tmp);
    buf_.insert(buf_.end(), tmp, tmp + 4);
  }
  void u64(std::uint64_t v) {
    Byte tmp[8];
    encodeU64(v, tmp);
    buf_.insert(buf_.end(), tmp, tmp + 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(std::span<const Byte> s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed string (u32 length + raw bytes).
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  size_t size() const { return buf_.size(); }

 private:
  ByteBuffer& buf_;
};

/// Consumes encoded values from a byte span; throws FormatError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const Byte> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() { return decodeU32(take(4).data()); }
  std::uint64_t u64() { return decodeU64(take(8).data()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::span<const Byte> bytes(size_t n) { return take(n); }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  void skip(size_t n) { take(n); }

 private:
  std::span<const Byte> take(size_t n) {
    if (pos_ + n > data_.size()) {
      throw FormatError("byte stream underrun: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()));
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const Byte> data_;
  size_t pos_ = 0;
};

/// View any trivially copyable object as a const byte span.
template <typename T>
std::span<const Byte> asBytes(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const Byte*>(&v), sizeof(T)};
}

/// View a contiguous array of trivially copyable objects as a const byte span.
template <typename T>
std::span<const Byte> asBytes(const T* p, size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const Byte*>(p), n * sizeof(T)};
}

/// View any trivially copyable object as a mutable byte span.
template <typename T>
std::span<Byte> asWritableBytes(T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<Byte*>(&v), sizeof(T)};
}

}  // namespace pcxx
