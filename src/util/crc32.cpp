#include "util/crc32.h"

#include <array>
#include <cstring>

namespace pcxx {
namespace {

// Slicing-by-8: eight derived tables let update() consume 8 input bytes
// per iteration instead of one — the standard fast software CRC.
using SliceTables = std::array<std::array<std::uint32_t, 256>, 8>;

SliceTables makeTables() {
  SliceTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (size_t slice = 1; slice < 8; ++slice) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[slice][i] = c;
    }
  }
  return t;
}

const SliceTables& tables() {
  static const SliceTables t = makeTables();
  return t;
}

}  // namespace

void Crc32::update(std::span<const Byte> data) {
  const SliceTables& t = tables();
  const Byte* p = data.data();
  size_t n = data.size();
  std::uint32_t c = state_;

  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = t[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
    ++p;
    --n;
  }
  state_ = c;
}

std::uint32_t crc32(std::span<const Byte> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

namespace {

// GF(2) 32x32 matrix operations over CRC state vectors (zlib's
// crc32_combine). matrix[i] is the image of basis vector 1<<i.
using GfMatrix = std::array<std::uint32_t, 32>;

std::uint32_t gfTimesVec(const GfMatrix& m, std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1u) sum ^= m[static_cast<size_t>(i)];
  }
  return sum;
}

GfMatrix gfSquare(const GfMatrix& m) {
  GfMatrix out;
  for (size_t i = 0; i < 32; ++i) {
    out[i] = gfTimesVec(m, m[i]);
  }
  return out;
}

}  // namespace

std::uint32_t crc32Combine(std::uint32_t crcA, std::uint32_t crcB,
                           std::uint64_t lenB) {
  if (lenB == 0) return crcA;

  // odd = the operator "advance CRC state by one zero bit".
  GfMatrix odd;
  odd[0] = 0xEDB88320u;  // reflected polynomial
  std::uint32_t row = 1;
  for (size_t i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  GfMatrix even = gfSquare(odd);   // advance by 2 zero bits
  odd = gfSquare(even);            // advance by 4 zero bits

  // Apply "advance by lenB zero BYTES" to crcA, squaring as we walk the
  // bit-length of lenB (alternating between the two matrix registers).
  std::uint64_t len = lenB;
  do {
    even = gfSquare(odd);
    if (len & 1u) crcA = gfTimesVec(even, crcA);
    len >>= 1;
    if (len == 0) break;
    odd = gfSquare(even);
    if (len & 1u) crcA = gfTimesVec(odd, crcA);
    len >>= 1;
  } while (len != 0);

  return crcA ^ crcB;
}

}  // namespace pcxx
