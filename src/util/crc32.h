// CRC-32 (IEEE 802.3 polynomial) used to checksum d/stream record headers.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace pcxx {

/// Incremental CRC-32. Construct, feed bytes with update(), read value().
class Crc32 {
 public:
  void update(std::span<const Byte> data);
  /// Finalized CRC of everything fed so far.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte span.
std::uint32_t crc32(std::span<const Byte> data);

/// Combine CRCs of two adjacent blocks: given crcA = crc32(A) and
/// crcB = crc32(B), returns crc32(A || B) where B has `lenB` bytes — the
/// zlib crc32_combine construction (GF(2) matrix exponentiation). This is
/// what lets each node checksum only its own block of a node-order parallel
/// write and still produce the checksum of the whole data section.
std::uint32_t crc32Combine(std::uint32_t crcA, std::uint32_t crcB,
                           std::uint64_t lenB);

}  // namespace pcxx
