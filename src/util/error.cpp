#include "util/error.h"

#include <sstream>

namespace pcxx::detail {

void throwInternal(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "invariant `" << expr << "` violated at " << file << ":" << line;
  throw InternalError(os.str());
}

void throwUsage(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << msg << " (precondition `" << expr << "` at " << file << ":" << line
     << ")";
  throw UsageError(os.str());
}

}  // namespace pcxx::detail
