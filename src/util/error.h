// Error types shared by all pcxx modules.
//
// The library reports failures with typed exceptions rooted at pcxx::Error.
// I/O failures (including injected faults from the pfs layer) throw IoError;
// misuse of the d/stream state machine throws StateError; malformed files
// throw FormatError. PCXX_CHECK/PCXX_REQUIRE are used at API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace pcxx {

/// Root of the pcxx exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An operating-system or simulated-device I/O failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// A d/stream primitive was invoked in a state where it is not permitted
/// (see the Figure 2 state machines in the paper).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what)
      : Error("state error: " + what) {}
};

/// The on-disk d/stream file is malformed (bad magic, truncated record,
/// checksum mismatch, or an extract that does not match the insert layout).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error("format error: " + what) {}
};

/// A constraint on d/stream usage was violated (e.g. interleaved inserts
/// with mismatched sizes, or extracting into a collection of the wrong size).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what)
      : Error("usage error: " + what) {}
};

/// Internal invariant violation; indicates a library bug, not user error.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] void throwInternal(const char* expr, const char* file, int line);
[[noreturn]] void throwUsage(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace pcxx

/// Internal invariant check: throws InternalError when violated.
#define PCXX_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::pcxx::detail::throwInternal(#expr, __FILE__, __LINE__); \
    }                                                           \
  } while (0)

/// API precondition check: throws UsageError with a caller-facing message.
#define PCXX_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::pcxx::detail::throwUsage(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (0)
