#include "util/faultspec.h"

#include <cstdlib>

namespace pcxx::spec {

std::vector<std::string> splitClauses(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(start, end - start);
    start = end + 1;
    while (!clause.empty() && clause.front() == ' ') clause.erase(0, 1);
    while (!clause.empty() && clause.back() == ' ') clause.pop_back();
    if (!clause.empty()) out.push_back(std::move(clause));
  }
  return out;
}

void badClause(const char* plane, const std::string& clause, const char* why) {
  throw UsageError(std::string(plane) + " spec clause '" + clause +
                   "': " + why);
}

std::uint64_t clauseU64(const char* plane, const std::string& clause,
                        const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    badClause(plane, clause, "expected a non-negative integer");
  }
  return std::stoull(text);
}

double clauseDouble(const char* plane, const std::string& clause,
                    const std::string& text, double lo, double hi,
                    const char* whyOnError) {
  char* rest = nullptr;
  const double v = std::strtod(text.c_str(), &rest);
  if (text.empty() || rest == nullptr || *rest != '\0' || v < lo || v > hi) {
    badClause(plane, clause, whyOnError);
  }
  return v;
}

}  // namespace pcxx::spec
