// Shared helpers for the compact fault/chaos spec-string grammars.
//
// Both fault planes — pfs::FaultPlan (storage ops) and rt::ChaosPlan
// (messages/collectives) — describe seeded, deterministic schedules with a
// ';'-separated clause grammar ("fail@3;crash@9", "drop@1;skew@0:0.5").
// The clause tokenization, integer/number validation, and the error style
// ("<plane> spec clause '...': why") are identical by design, so the CLI
// and docs stay uniform; this header is the single implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace pcxx::spec {

/// Split `spec` on ';' into clauses, trimming surrounding spaces and
/// dropping empty clauses. Never throws; an all-empty spec yields {}.
std::vector<std::string> splitClauses(const std::string& spec);

/// Throw UsageError "<plane> spec clause '<clause>': <why>".
[[noreturn]] void badClause(const char* plane, const std::string& clause,
                            const char* why);

/// Parse a non-negative integer, or badClause(plane, clause, ...).
std::uint64_t clauseU64(const char* plane, const std::string& clause,
                        const std::string& text);

/// Parse a double in [lo, hi], or badClause(plane, clause, whyOnError).
double clauseDouble(const char* plane, const std::string& clause,
                    const std::string& text, double lo, double hi,
                    const char* whyOnError);

}  // namespace pcxx::spec
