#include "util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pcxx {
namespace {

LogLevel levelFromEnv() {
  // Read once before any thread can spawn (initializes a function-local
  // static), so the non-thread-safe getenv is fine here.
  const char* env = std::getenv("PCXX_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

Logger::Logger() : level_(levelFromEnv()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (level < level_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[pcxx %s] %s\n", levelName(level), msg.c_str());
}

namespace detail {

void logf(LogLevel level, const char* fmt, ...) {
  Logger& logger = Logger::instance();
  if (level < logger.level()) return;
  va_list ap;
  va_start(ap, fmt);
  std::string msg = vstrfmt(fmt, ap);
  va_end(ap);
  logger.write(level, msg);
}

}  // namespace detail
}  // namespace pcxx
