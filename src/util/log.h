// Tiny leveled logger. Thread-safe; off by default above WARN.
//
// The runtime and pfs layers log at DEBUG for tracing collective and I/O
// activity in tests; set PCXX_LOG=debug (env) or Logger::setLevel to enable.
#pragma once

#include <mutex>
#include <string>

#include "util/strfmt.h"

namespace pcxx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide logger singleton.
class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger();

  LogLevel level_;
  std::mutex mu_;
};

namespace detail {
[[gnu::format(printf, 2, 3)]] void logf(LogLevel level, const char* fmt, ...);
}  // namespace detail

}  // namespace pcxx

#define PCXX_LOG_DEBUG(...) \
  ::pcxx::detail::logf(::pcxx::LogLevel::Debug, __VA_ARGS__)
#define PCXX_LOG_INFO(...) \
  ::pcxx::detail::logf(::pcxx::LogLevel::Info, __VA_ARGS__)
#define PCXX_LOG_WARN(...) \
  ::pcxx::detail::logf(::pcxx::LogLevel::Warn, __VA_ARGS__)
#define PCXX_LOG_ERROR(...) \
  ::pcxx::detail::logf(::pcxx::LogLevel::Error, __VA_ARGS__)
