#include "util/options.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace pcxx {

void Options::add(const std::string& name, const std::string& defaultValue,
                  const std::string& help) {
  specs_[name] = Spec{defaultValue, help, /*isFlag=*/false};
}

void Options::addFlag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{"false", help, /*isFlag=*/true};
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    // "-x" short options are accepted as aliases for "--x"; a bare "-"
    // stays positional (conventional stdin/stdout marker).
    if (arg.rfind("--", 0) != 0 && (arg.size() < 2 || arg[0] != '-')) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(arg.rfind("--", 0) == 0 ? 2 : 1);
    std::string value;
    bool haveValue = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      haveValue = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw UsageError("unknown option --" + name + "\n" + usage());
    }
    if (it->second.isFlag) {
      values_[name] = haveValue ? value : "true";
    } else {
      if (!haveValue) {
        if (i + 1 >= argc) {
          throw UsageError("option --" + name + " requires a value");
        }
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

const std::string& Options::get(const std::string& name) const {
  auto spec = specs_.find(name);
  if (spec == specs_.end()) {
    throw UsageError("option --" + name + " was never declared");
  }
  auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.defaultValue;
}

std::int64_t Options::getInt(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw UsageError("option --" + name + " expects an integer, got '" + v +
                     "'");
  }
  return out;
}

double Options::getDouble(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw UsageError("option --" + name + " expects a number, got '" + v +
                     "'");
  }
  return out;
}

bool Options::getFlag(const std::string& name) const {
  return get(name) == "true";
}

std::string Options::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n" << description_ << "\n\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.isFlag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.isFlag) os << " (default: " << spec.defaultValue << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace pcxx
