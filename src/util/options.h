// Minimal CLI option parsing for examples and bench binaries.
//
// Supports "--name value", "--name=value", and bare "--flag" booleans.
// Unknown options throw UsageError so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcxx {

/// Parsed command line. Declare expected options up front, then parse.
class Options {
 public:
  Options(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declare a string option with a default value.
  void add(const std::string& name, const std::string& defaultValue,
           const std::string& help);
  /// Declare a boolean flag (defaults to false).
  void addFlag(const std::string& name, const std::string& help);

  /// Parse argv. Throws UsageError on unknown options or missing values.
  /// Returns false (after printing usage) when --help was requested.
  bool parse(int argc, const char* const* argv);

  const std::string& get(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getFlag(const std::string& name) const;

  /// Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string defaultValue;
    std::string help;
    bool isFlag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pcxx
