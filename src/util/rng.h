// Deterministic pseudo-random number generation for workloads and tests.
//
// SplitMix64 seeds an xoshiro256** generator; both are tiny, fast, and give
// identical sequences on every platform, which keeps workloads and
// property-test sweeps reproducible.
#pragma once

#include <cstdint>

namespace pcxx {

/// SplitMix64 — used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform01() * (hi - lo); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pcxx
