// Source positions and GCC-style diagnostic formatting, shared by the
// stream-gen front end and the dslint analyzer.
//
// Every diagnostic the tooling prints follows the compiler convention
//   path:line:col: severity: message
// so editors and CI annotators can parse it.
#pragma once

#include <string>

namespace pcxx {

/// A position in a source file. `col` is 1-based; 0 means "unknown".
struct SrcLoc {
  std::string file;
  int line = 0;
  int col = 0;
};

/// "path:line:col" (omitting missing parts): "t.h:3:7", "t.h:3", "<source>".
inline std::string locString(const std::string& file, int line, int col) {
  std::string out = file.empty() ? "<source>" : file;
  if (line > 0) {
    out.append(":").append(std::to_string(line));
    if (col > 0) out.append(":").append(std::to_string(col));
  }
  return out;
}

/// Full GCC-style diagnostic line: "t.h:3:7: error: unterminated comment".
inline std::string formatDiagnostic(const std::string& file, int line, int col,
                                    const std::string& severity,
                                    const std::string& message) {
  std::string out = locString(file, line, col);
  out.append(": ").append(severity).append(": ").append(message);
  return out;
}

}  // namespace pcxx
