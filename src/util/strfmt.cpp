#include "util/strfmt.h"

#include <vector>

namespace pcxx {

std::string vstrfmt(const char* fmt, va_list ap) {
  if (fmt == nullptr) return {};
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = vstrfmt(fmt, ap);
  va_end(ap);
  return out;
}

std::string humanBytes(unsigned long long bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024ull * 1024 * 1024) {
    return strfmt("%.1f GB", b / (1024.0 * 1024 * 1024));
  }
  if (bytes >= 1024ull * 1024) {
    return strfmt("%.1f MB", b / (1024.0 * 1024));
  }
  if (bytes >= 1024ull) {
    return strfmt("%.1f KB", b / 1024.0);
  }
  return strfmt("%llu B", bytes);
}

std::string humanSeconds(double seconds) {
  if (seconds >= 100.0) return strfmt("%.2f", seconds);
  if (seconds >= 1.0) return strfmt("%.2f", seconds);
  return strfmt("%.3f", seconds);
}

}  // namespace pcxx
